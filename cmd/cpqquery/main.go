// Command cpqquery runs closest-pair queries over two CSV point files,
// printing the result pairs and the cost statistics. It is the
// command-line face of the library's public API.
//
// Usage:
//
//	cpqquery -p sites.csv -q resorts.csv -k 10
//	cpqquery -p a.csv -q b.csv -k 100 -algorithm STD -buffer 128
//	cpqquery -p a.csv -q b.csv -k 5 -incremental SML
//	cpqquery -p a.csv -self -k 5
//	cpqquery -p a.csv -q b.csv -semi
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	cpq "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		pPath       = flag.String("p", "", "CSV file of the first point set (required)")
		qPath       = flag.String("q", "", "CSV file of the second point set")
		k           = flag.Int("k", 1, "number of closest pairs")
		algorithm   = flag.String("algorithm", "HEAP", "NAIVE, EXH, SIM, STD or HEAP")
		buffer      = flag.Int("buffer", 0, "total LRU buffer pages (split between the trees)")
		incremental = flag.String("incremental", "", "use the incremental baseline instead: BAS, EVN or SML")
		self        = flag.Bool("self", false, "self closest pairs within -p")
		semi        = flag.Bool("semi", false, "semi-CPQ: nearest -q point for every -p point")
		quiet       = flag.Bool("quiet", false, "print only statistics, not pairs")
	)
	flag.Parse()

	if *pPath == "" {
		fatal(fmt.Errorf("-p is required"))
	}
	p := buildIndex(*pPath, *buffer/2)
	defer p.Close()

	var q *cpq.Index
	if *qPath != "" {
		q = buildIndex(*qPath, *buffer/2)
		defer q.Close()
	}

	start := time.Now()
	var (
		pairs []cpq.Pair
		stats cpq.Stats
		err   error
	)
	switch {
	case *self:
		pairs, stats, err = cpq.SelfKClosestPairs(p, *k, cpq.WithAlgorithm(parseAlgorithm(*algorithm)))
	case *semi:
		if q == nil {
			fatal(fmt.Errorf("-semi needs -q"))
		}
		pairs, stats, err = cpq.SemiClosestPairs(p, q)
	case *incremental != "":
		if q == nil {
			fatal(fmt.Errorf("-incremental needs -q"))
		}
		it, e := cpq.NewIncrementalJoin(p, q,
			cpq.WithTraversal(parseTraversal(*incremental)), cpq.WithMaxPairs(*k))
		if e != nil {
			fatal(e)
		}
		for {
			pair, ok, e := it.Next()
			if e != nil {
				fatal(e)
			}
			if !ok {
				break
			}
			pairs = append(pairs, pair)
		}
		js := it.Stats()
		fmt.Printf("# incremental %s: %d pairs, %d disk accesses, max queue %d, %s\n",
			*incremental, len(pairs), js.Accesses(), js.MaxQueueSize,
			time.Since(start).Round(time.Microsecond))
		printPairs(pairs, *quiet)
		return
	default:
		if q == nil {
			fatal(fmt.Errorf("-q is required (or use -self)"))
		}
		pairs, stats, err = cpq.KClosestPairs(p, q, *k, cpq.WithAlgorithm(parseAlgorithm(*algorithm)))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s: %d pairs, %d disk accesses (P=%d Q=%d), %s\n",
		strings.ToUpper(*algorithm), len(pairs), stats.Accesses(),
		stats.IOP.Reads, stats.IOQ.Reads, time.Since(start).Round(time.Microsecond))
	printPairs(pairs, *quiet)
}

func buildIndex(path string, bufferPages int) *cpq.Index {
	pts, err := dataset.LoadPoints(path)
	if err != nil {
		fatal(err)
	}
	idx, err := cpq.BuildIndex(pts, cpq.WithBufferPages(bufferPages))
	if err != nil {
		fatal(err)
	}
	idx.DropCaches()
	idx.ResetIOStats()
	return idx
}

func parseAlgorithm(s string) cpq.Algorithm {
	switch strings.ToUpper(s) {
	case "NAIVE":
		return cpq.NaiveAlgorithm
	case "EXH":
		return cpq.ExhaustiveAlgorithm
	case "SIM":
		return cpq.SimpleAlgorithm
	case "STD":
		return cpq.SortedDistancesAlgorithm
	case "HEAP":
		return cpq.HeapAlgorithm
	default:
		fatal(fmt.Errorf("unknown algorithm %q", s))
		panic("unreachable")
	}
}

func parseTraversal(s string) cpq.Traversal {
	switch strings.ToUpper(s) {
	case "BAS":
		return cpq.BasicTraversal
	case "EVN":
		return cpq.EvenTraversal
	case "SML":
		return cpq.SimultaneousTraversal
	default:
		fatal(fmt.Errorf("unknown traversal %q", s))
		panic("unreachable")
	}
}

func printPairs(pairs []cpq.Pair, quiet bool) {
	if quiet {
		return
	}
	for i, p := range pairs {
		fmt.Printf("%6d  (%.6f, %.6f) #%d  --  (%.6f, %.6f) #%d  dist %.9f\n",
			i+1, p.P.X, p.P.Y, p.RefP, p.Q.X, p.Q.Y, p.RefQ, p.Dist)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqquery:", err)
	os.Exit(1)
}

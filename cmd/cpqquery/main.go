// Command cpqquery runs closest-pair queries over two CSV point files,
// printing the result pairs and the cost statistics. It is the
// command-line face of the library's public API.
//
// Usage:
//
//	cpqquery -p sites.csv -q resorts.csv -k 10
//	cpqquery -p a.csv -q b.csv -k 100 -algorithm STD -buffer 128
//	cpqquery -p a.csv -q b.csv -k 5 -incremental SML
//	cpqquery -p a.csv -self -k 5
//	cpqquery -p a.csv -q b.csv -semi
//	cpqquery -p a.csv -q b.csv -k 100 -watch
//	cpqquery -p a.csv -q b.csv -k 10 -shards 4 -explain
//	cpqquery -p a.csv -q b.csv -k 10 -explain-json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cpq "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		pPath       = flag.String("p", "", "CSV file of the first point set (required)")
		qPath       = flag.String("q", "", "CSV file of the second point set")
		k           = flag.Int("k", 1, "number of closest pairs")
		algorithm   = flag.String("algorithm", "HEAP", "NAIVE, EXH, SIM, STD or HEAP")
		buffer      = flag.Int("buffer", 0, "total LRU buffer pages (split between the trees)")
		incremental = flag.String("incremental", "", "use the incremental baseline instead: BAS, EVN or SML")
		self        = flag.Bool("self", false, "self closest pairs within -p")
		semi        = flag.Bool("semi", false, "semi-CPQ: nearest -q point for every -p point")
		watch       = flag.Bool("watch", false, "live progress on stderr while the query runs, and a bound-convergence chart at the end")
		quiet       = flag.Bool("quiet", false, "print only statistics, not pairs")
		shards      = flag.Int("shards", 1, "run the bichromatic query scatter-gather over this many spatial tiles")
		explain     = flag.Bool("explain", false, "print the query's EXPLAIN/ANALYZE tree (plan + execution)")
		explainJSON = flag.Bool("explain-json", false, "print the EXPLAIN/ANALYZE snapshot as canonical JSON")
	)
	flag.Parse()

	if *pPath == "" {
		fatal(fmt.Errorf("-p is required"))
	}
	p := buildIndex(*pPath, *buffer/2)
	defer p.Close()

	var q *cpq.Index
	if *qPath != "" {
		q = buildIndex(*qPath, *buffer/2)
		defer q.Close()
	}

	// -watch attaches a progress tracer to the query and the indexes, and
	// a ticker goroutine that repaints one stderr status line while the
	// query runs.
	var (
		wt      *watchTracer
		qopts   []cpq.QueryOption
		watchWG sync.WaitGroup
	)
	qopts = append(qopts, cpq.WithAlgorithm(parseAlgorithm(*algorithm)))
	if *shards > 1 {
		qopts = append(qopts, cpq.WithShards(*shards))
	}
	doExplain := *explain || *explainJSON
	if doExplain && (*self || *semi || *incremental != "") {
		fatal(fmt.Errorf("-explain supports only the bichromatic K-CPQ"))
	}
	watchDone := make(chan struct{})
	if *watch {
		if *incremental != "" {
			fatal(fmt.Errorf("-watch does not support -incremental"))
		}
		wt = newWatchTracer()
		qopts = append(qopts, cpq.WithTracer(wt))
		p.SetTracer(wt)
		if q != nil {
			q.SetTracer(wt)
		}
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			wt.watch(watchDone)
		}()
	}

	start := time.Now()
	var (
		pairs  []cpq.Pair
		stats  cpq.Stats
		report *cpq.ExplainReport
		err    error
	)
	switch {
	case *self:
		pairs, stats, err = cpq.SelfKClosestPairs(p, *k, qopts...)
	case *semi:
		if q == nil {
			fatal(fmt.Errorf("-semi needs -q"))
		}
		pairs, stats, err = cpq.SemiClosestPairs(p, q, qopts...)
	case *incremental != "":
		if q == nil {
			fatal(fmt.Errorf("-incremental needs -q"))
		}
		it, e := cpq.NewIncrementalJoin(p, q,
			cpq.WithTraversal(parseTraversal(*incremental)), cpq.WithMaxPairs(*k))
		if e != nil {
			fatal(e)
		}
		for {
			pair, ok, e := it.Next()
			if e != nil {
				fatal(e)
			}
			if !ok {
				break
			}
			pairs = append(pairs, pair)
		}
		js := it.Stats()
		fmt.Printf("# incremental %s: %d pairs, %d disk accesses, max queue %d, %s\n",
			*incremental, len(pairs), js.Accesses(), js.MaxQueueSize,
			time.Since(start).Round(time.Microsecond))
		printPairs(pairs, *quiet)
		return
	default:
		if q == nil {
			fatal(fmt.Errorf("-q is required (or use -self)"))
		}
		if doExplain {
			pairs, stats, report, err = cpq.Explain(p, q, *k, qopts...)
		} else {
			pairs, stats, err = cpq.KClosestPairs(p, q, *k, qopts...)
		}
	}
	close(watchDone)
	watchWG.Wait()
	if err != nil {
		fatal(err)
	}
	cache := ""
	if lookups := stats.NodeCacheHits + stats.NodeCacheMisses; lookups > 0 {
		cache = fmt.Sprintf(", node cache %d/%d (%.1f%% hit)",
			stats.NodeCacheHits, lookups, 100*stats.NodeCacheHitRatio())
	}
	fmt.Printf("# %s: %d pairs, %d disk accesses (P=%d Q=%d)%s, %s\n",
		strings.ToUpper(*algorithm), len(pairs), stats.Accesses(),
		stats.IOP.Reads, stats.IOQ.Reads, cache, time.Since(start).Round(time.Microsecond))
	if wt != nil {
		wt.render(os.Stderr)
	}
	if report != nil {
		if *explainJSON {
			raw, jerr := report.JSONIndent()
			if jerr != nil {
				fatal(jerr)
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(report.Render())
		}
	}
	printPairs(pairs, *quiet)
}

// watchTracer is the -watch consumer: atomic counters for the live status
// line plus a sampled bound trajectory for the final convergence chart.
// The bound arrives as a metric key (squared for the default Euclidean
// metric); it is decoded only here, at the display edge.
type watchTracer struct {
	expanded  atomic.Int64
	pruned    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	boundBits atomic.Uint64 // Float64bits of the latest bound key

	mu      sync.Mutex
	samples []boundSample
}

type boundSample struct {
	expanded int64
	key      float64
}

func newWatchTracer() *watchTracer {
	w := &watchTracer{}
	w.boundBits.Store(math.Float64bits(math.Inf(1)))
	return w
}

func (w *watchTracer) Event(e cpq.TraceEvent) {
	switch e.Kind {
	case cpq.EvNodeExpanded:
		w.expanded.Add(1)
	case cpq.EvBoundTightened:
		w.boundBits.Store(math.Float64bits(e.New))
		w.mu.Lock()
		w.samples = append(w.samples, boundSample{w.expanded.Load(), e.New})
		w.mu.Unlock()
	case cpq.EvLeafSweepPruned:
		w.pruned.Add(e.N)
	case cpq.EvCacheHit:
		w.hits.Add(1)
	case cpq.EvCacheMiss:
		w.misses.Add(1)
	}
}

// watch repaints one stderr status line until done closes.
func (w *watchTracer) watch(done <-chan struct{}) {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			fmt.Fprint(os.Stderr, "\r\x1b[2K")
			return
		case <-tick.C:
			bound := math.Float64frombits(w.boundBits.Load())
			b := "inf"
			if !math.IsInf(bound, 1) {
				b = fmt.Sprintf("%.9f", math.Sqrt(bound))
			}
			fmt.Fprintf(os.Stderr, "\r\x1b[2Kwatch: %d node pairs expanded, bound %s, %d point pairs sweep-pruned, cache %d/%d",
				w.expanded.Load(), b, w.pruned.Load(), w.hits.Load(), w.hits.Load()+w.misses.Load())
		}
	}
}

// render draws the bound-vs-expansions convergence chart: each column is a
// slice of the node expansions processed so far, each row a distance level
// between the first finite bound and the final one.
func (w *watchTracer) render(out *os.File) {
	w.mu.Lock()
	samples := w.samples
	w.mu.Unlock()
	if len(samples) == 0 {
		fmt.Fprintln(out, "watch: no bound tightenings recorded")
		return
	}
	const width, height = 60, 8
	hi := math.Sqrt(samples[0].key)
	lo := math.Sqrt(samples[len(samples)-1].key)
	total := w.expanded.Load()
	if total == 0 {
		total = 1
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	// For each column, the tightest bound reached by that share of the
	// expansions; -1 marks columns before the first tightening.
	cols := make([]int, width)
	for i := range cols {
		cols[i] = -1
	}
	for _, s := range samples {
		c := int(float64(s.expanded) / float64(total) * float64(width))
		if c >= width {
			c = width - 1
		}
		r := int((math.Sqrt(s.key) - lo) / span * float64(height-1))
		if cols[c] == -1 || r < cols[c] {
			cols[c] = r
		}
	}
	// Carry each column's bound forward so the staircase is continuous.
	last := -1
	for i := range cols {
		if cols[i] == -1 {
			cols[i] = last
		} else {
			last = cols[i]
		}
	}
	fmt.Fprintf(out, "watch: bound convergence, %d tightenings over %d node expansions\n", len(samples), w.expanded.Load())
	for row := height - 1; row >= 0; row-- {
		label := ""
		switch row {
		case height - 1:
			label = fmt.Sprintf("%.6f", hi)
		case 0:
			label = fmt.Sprintf("%.6f", lo)
		}
		fmt.Fprintf(out, "%10s |", label)
		for _, c := range cols {
			switch {
			case c == -1:
				fmt.Fprint(out, " ")
			case c == row:
				fmt.Fprint(out, "*")
			case c < row:
				fmt.Fprint(out, " ")
			default:
				fmt.Fprint(out, ".")
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%10s +%s\n", "", strings.Repeat("-", width))
}

func buildIndex(path string, bufferPages int) *cpq.Index {
	pts, err := dataset.LoadPoints(path)
	if err != nil {
		fatal(err)
	}
	idx, err := cpq.BuildIndex(pts, cpq.WithBufferPages(bufferPages))
	if err != nil {
		fatal(err)
	}
	idx.DropCaches()
	idx.ResetIOStats()
	return idx
}

func parseAlgorithm(s string) cpq.Algorithm {
	switch strings.ToUpper(s) {
	case "NAIVE":
		return cpq.NaiveAlgorithm
	case "EXH":
		return cpq.ExhaustiveAlgorithm
	case "SIM":
		return cpq.SimpleAlgorithm
	case "STD":
		return cpq.SortedDistancesAlgorithm
	case "HEAP":
		return cpq.HeapAlgorithm
	default:
		fatal(fmt.Errorf("unknown algorithm %q", s))
		panic("unreachable")
	}
}

func parseTraversal(s string) cpq.Traversal {
	switch strings.ToUpper(s) {
	case "BAS":
		return cpq.BasicTraversal
	case "EVN":
		return cpq.EvenTraversal
	case "SML":
		return cpq.SimultaneousTraversal
	default:
		fatal(fmt.Errorf("unknown traversal %q", s))
		panic("unreachable")
	}
}

func printPairs(pairs []cpq.Pair, quiet bool) {
	if quiet {
		return
	}
	for i, p := range pairs {
		fmt.Printf("%6d  (%.6f, %.6f) #%d  --  (%.6f, %.6f) #%d  dist %.9f\n",
			i+1, p.P.X, p.P.Y, p.RefP, p.Q.X, p.Q.Y, p.RefQ, p.Dist)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqquery:", err)
	os.Exit(1)
}

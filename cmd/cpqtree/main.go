// Command cpqtree inspects an on-disk index created with the library's
// WithPath option: it prints the tree's shape, validates its structural
// invariants, and can dump node contents level by level.
//
// Usage:
//
//	cpqtree -index points.idx              # summary + invariant check
//	cpqtree -index points.idx -dump        # also dump every node
//	cpqtree -index points.idx -page-size 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/rtree"
	"repro/internal/storage"
)

func main() {
	var (
		path     = flag.String("index", "", "index file to inspect (required)")
		pageSize = flag.Int("page-size", 1024, "page size the index was created with")
		dump     = flag.Bool("dump", false, "dump every node's entries")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("-index is required"))
	}

	file, err := storage.OpenDiskFile(*path, *pageSize)
	if err != nil {
		fatal(err)
	}
	//lint:ignore errprop read-only inspection tool; nothing to persist on exit
	defer file.Close()
	pool := storage.NewBufferPool(file, 256)
	tree, err := rtree.Open(pool)
	if err != nil {
		fatal(err)
	}

	cfg := tree.Config()
	fmt.Printf("index:        %s\n", *path)
	fmt.Printf("page size:    %d bytes (%d pages on disk)\n", cfg.PageSize, file.NumPages())
	fmt.Printf("node fanout:  M=%d m=%d\n", cfg.MaxEntries, cfg.MinEntries)
	fmt.Printf("points:       %d\n", tree.Len())
	fmt.Printf("height:       %d\n", tree.Height())
	if b, err := tree.Bounds(); err == nil {
		fmt.Printf("bounds:       %v\n", b)
	}
	counts, err := tree.NodeCount()
	if err != nil {
		fatal(err)
	}
	for lvl, c := range counts {
		kind := "internal"
		if lvl == 0 {
			kind = "leaf"
		}
		fmt.Printf("level %d:      %d %s nodes\n", lvl, c, kind)
	}

	if err := tree.CheckInvariants(); err != nil {
		fmt.Printf("invariants:   FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("invariants:   ok\n")

	if *dump {
		fmt.Println()
		err := tree.Walk(func(n *rtree.Node) error {
			fmt.Printf("page %d (level %d, %d entries):\n", n.ID, n.Level, len(n.Entries))
			for i, e := range n.Entries {
				if n.IsLeaf() {
					fmt.Printf("  %3d: point %v ref=%d\n", i, e.Rect.Min, e.Ref)
				} else {
					fmt.Printf("  %3d: child page %d mbr=%v\n", i, e.Child(), e.Rect)
				}
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqtree:", err)
	os.Exit(1)
}

// Command cpqlint is the repository's static analyzer. It loads the
// requested packages from source (stdlib go/parser + go/types only, no
// external tooling), runs the repo-specific invariant checks and prints
// one "file:line: [check] message" diagnostic per finding, exiting with
// status 1 when any survive //lint:ignore suppression. ci.sh runs it as a
// hard gate over the whole module.
//
// Usage:
//
//	cpqlint ./...                            # lint the whole module
//	cpqlint internal/core internal/storage   # specific package directories
//	cpqlint -check sqrtfree,errprop ./...    # a subset of the checks
//	cpqlint -list                            # list available checks
//
// The checks are bufferdiscipline (no BufferPool.Get/Put on paths
// reachable from goroutines — concurrent readers must use View),
// atomicfields (fields touched via sync/atomic must be atomic everywhere),
// sqrtfree (no math.Sqrt on pruning/traversal hot paths outside the
// result-reporting allowlist) and errprop (no discarded errors from the
// storage / R-tree I/O layers). See DESIGN.md §7 for the contracts each
// check guards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checkList = flag.String("check", "", "comma-separated subset of checks to run (default: all)")
		list      = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Println(c.Name())
		}
		return
	}
	if *checkList != "" {
		byName := make(map[string]lint.Check, len(checks))
		for _, c := range checks {
			byName[c.Name()] = c
		}
		var selected []lint.Check
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("unknown check %q (try -list)", name))
			}
			selected = append(selected, c)
		}
		checks = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(prog, checks)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cpqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqlint:", err)
	os.Exit(2)
}

// Command cpqlint is the repository's static analyzer. It loads the
// requested packages from source (stdlib go/parser + go/types only, no
// external tooling), runs the repo-specific invariant checks and prints
// one "file:line: [check] message" diagnostic per finding, exiting with
// status 1 when any survive //lint:ignore suppression and status 2 when
// any requested package fails to load (a package that does not load is a
// package that was not linted, so load errors can never pass the gate).
// ci.sh runs `go run ./cmd/cpqlint ./...` as a hard gate over the whole
// module; that invocation is the single supported entry point.
//
// Usage:
//
//	cpqlint ./...                             # lint the whole module
//	cpqlint internal/core internal/storage    # specific package directories
//	cpqlint -checks sqrtfree,errprop ./...    # a subset of the checks
//	cpqlint -checks shareguard ./...          # a group alias expands
//	cpqlint -json ./...                       # SARIF-style JSON on stdout
//	cpqlint -timing -budget 30s ./...         # fail if any check runs long
//	cpqlint -list                             # list available checks
//
// The syntactic checks are bufferdiscipline (no BufferPool.Get/Put on
// paths reachable from goroutines — concurrent readers must use View),
// atomicfields (fields touched via sync/atomic must be atomic everywhere),
// sqrtfree (no math.Sqrt on pruning/traversal hot paths outside the
// result-reporting allowlist) and errprop (no discarded errors from the
// storage / R-tree I/O layers). The path-sensitive checks, which run on
// the SSA-lite IR, are pinleak (storage handles released on every path),
// lockorder (acyclic lock-ordering graph, no nested shard locks),
// boundmono (the parallel pruning bound only tightens) and deferinloop
// (no deferred releases inside loops). Two interprocedural groups ride
// the shared callgraph: ctxflow (ctxprop, cancelpoll, ctxleak — the
// cancellation contract of DESIGN.md §11) and shareguard (sharedfield,
// guardlock, pubimmut — the static data-race pass of DESIGN.md §12).
// See DESIGN.md §7 for the contracts the per-check analyses guard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	var (
		checksFlag = flag.String("checks", "", "comma-separated subset of checks to run; group aliases like ctxflow expand (default: all)")
		checkAlias = flag.String("check", "", "alias for -checks")
		jsonOut    = flag.Bool("json", false, "emit findings as SARIF-style JSON on stdout")
		timing     = flag.Bool("timing", false, "print a per-check wall-clock breakdown on stderr")
		budget     = flag.Duration("budget", 0, "per-check wall-clock budget; any check over it fails the run (0 = unlimited)")
		list       = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	checks := lint.Checks()
	groups := lint.CheckGroups()
	if *list {
		for _, c := range checks {
			fmt.Println(c.Name())
		}
		for g, names := range groups {
			fmt.Printf("%s (group: %s)\n", g, strings.Join(names, ","))
		}
		return
	}
	selection := *checksFlag
	if selection == "" {
		selection = *checkAlias
	}
	if selection != "" {
		byName := make(map[string]lint.Check, len(checks))
		for _, c := range checks {
			byName[c.Name()] = c
		}
		var selected []lint.Check
		seen := make(map[string]bool)
		add := func(name string) {
			c, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("unknown check %q (try -list)", name))
			}
			if !seen[name] {
				seen[name] = true
				selected = append(selected, c)
			}
		}
		for _, name := range strings.Split(selection, ",") {
			name = strings.TrimSpace(name)
			if expansion, ok := groups[name]; ok {
				for _, n := range expansion {
					add(n)
				}
				continue
			}
			add(name)
		}
		checks = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, suppressed, timings := lint.RunAll(prog, checks)
	if *timing {
		var total time.Duration
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "%-18s %10s\n", t.Name, t.Elapsed.Round(time.Microsecond))
			total += t.Elapsed
		}
		fmt.Fprintf(os.Stderr, "%-18s %10s\n", "total", total.Round(time.Microsecond))
	}
	// The budget gate keeps the lint step's latency a tested property: a
	// check that regresses past the allowance fails CI the same way a
	// finding would, instead of silently stretching every build.
	var overBudget []string
	if *budget > 0 {
		for _, t := range timings {
			if t.Elapsed > *budget {
				overBudget = append(overBudget, fmt.Sprintf(
					"check %s took %s, over the %s budget",
					t.Name, t.Elapsed.Round(time.Millisecond), *budget))
			}
		}
	}
	if *jsonOut {
		if err := writeSARIF(os.Stdout, checks, diags, suppressed); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	// Load failures are reported last and dominate the exit status: a
	// clean run over half the module proves nothing about the half that
	// did not type-check.
	for _, le := range prog.Failed {
		fmt.Fprintln(os.Stderr, "cpqlint: load:", le.Error())
	}
	for _, msg := range overBudget {
		fmt.Fprintln(os.Stderr, "cpqlint: budget:", msg)
	}
	switch {
	case len(prog.Failed) > 0:
		fmt.Fprintf(os.Stderr, "cpqlint: %d package(s) failed to load\n", len(prog.Failed))
		os.Exit(2)
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "cpqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	case len(overBudget) > 0:
		os.Exit(1)
	}
}

// SARIF-style output, close enough to SARIF 2.1.0 for log viewers:
// one run, one rule per check, one result per finding.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool     `json:"tool"`
	Results    []sarifResult `json:"results"`
	Properties sarifRunProps `json:"properties"`
}

// sarifRunProps is the run-level property bag; suppressed counts the
// findings dropped by //lint:ignore directives, so a log consumer can
// tell a genuinely clean run from a heavily waived one.
type sarifRunProps struct {
	Suppressed int `json:"suppressed"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID string `json:"id"`
}

type sarifResult struct {
	RuleID     string           `json:"ruleId"`
	Level      string           `json:"level"`
	Message    sarifMessage     `json:"message"`
	Locations  []sarifLocation  `json:"locations"`
	Properties sarifResultProps `json:"properties"`
}

// sarifResultProps carries the check-group alias ("ctxflow",
// "shareguard", ... or "" for ungrouped checks) so findings can be
// filtered by pass without knowing the member-check names.
type sarifResultProps struct {
	Group string `json:"group"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w io.Writer, checks []lint.Check, diags []lint.Diagnostic, suppressed int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildSARIF(checks, diags, suppressed))
}

func buildSARIF(checks []lint.Check, diags []lint.Diagnostic, suppressed int) sarifLog {
	rules := make([]sarifRule, 0, len(checks))
	for _, c := range checks {
		rules = append(rules, sarifRule{ID: c.Name()})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			Properties: sarifResultProps{Group: lint.GroupOf(d.Check)},
		})
	}
	return sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:       sarifTool{Driver: sarifDriver{Name: "cpqlint", Rules: rules}},
			Results:    results,
			Properties: sarifRunProps{Suppressed: suppressed},
		}},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqlint:", err)
	os.Exit(2)
}

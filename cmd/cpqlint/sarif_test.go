package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"repro/internal/lint"
)

// TestSARIFRoundTrip encodes a log through writeSARIF and decodes it back
// through the same schema structs: every field the CI consumers rely on —
// ruleId, location, the per-result group and the run-level suppressed
// count — must survive the trip unchanged.
func TestSARIFRoundTrip(t *testing.T) {
	checks := []lint.Check{lint.NewSharedField(), lint.NewSqrtFree()}
	diags := []lint.Diagnostic{
		{
			Pos:     token.Position{Filename: "internal/core/engine.go", Line: 24, Column: 2},
			Check:   "sharedfield",
			Message: "field hub.n is written here with no lock held",
		},
		{
			Pos:     token.Position{Filename: "internal/core/dist.go", Line: 7, Column: 9},
			Check:   "sqrtfree",
			Message: "math.Sqrt on a pruning path",
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, checks, diags, 3); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}

	var got sarifLog
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", got.Version)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(got.Runs))
	}
	run := got.Runs[0]
	if run.Tool.Driver.Name != "cpqlint" {
		t.Errorf("driver = %q, want cpqlint", run.Tool.Driver.Name)
	}
	if run.Properties.Suppressed != 3 {
		t.Errorf("suppressed = %d, want 3", run.Properties.Suppressed)
	}
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "sharedfield" {
		t.Errorf("rules = %+v, want [sharedfield sqrtfree]", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "sharedfield" {
		t.Errorf("ruleId = %q, want sharedfield", first.RuleID)
	}
	if first.Properties.Group != "shareguard" {
		t.Errorf("group = %q, want shareguard", first.Properties.Group)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/engine.go" ||
		loc.Region.StartLine != 24 || loc.Region.StartColumn != 2 {
		t.Errorf("location = %+v, want engine.go:24:2", loc)
	}
	// An ungrouped check keeps the group field present but empty, so
	// filters can treat it uniformly.
	if got := run.Results[1].Properties.Group; got != "" {
		t.Errorf("sqrtfree group = %q, want empty", got)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"group": ""`)) {
		t.Errorf("encoded log omits the empty group field:\n%s", buf.String())
	}
}

// TestSARIFEmptyRun keeps the zero-finding shape stable: results must be
// an empty array (not null) and the suppressed count still present.
func TestSARIFEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, lint.Checks(), nil, 0); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("empty run should encode results as [], got:\n%s", buf.String())
	}
	var got sarifLog
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Runs[0].Properties.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", got.Runs[0].Properties.Suppressed)
	}
}

// Command cpqbench regenerates the tables and figures of the paper's
// experimental study (Sections 4 and 5). Each figure of the paper maps to
// one experiment; see DESIGN.md for the full index.
//
// Usage:
//
//	cpqbench                       # run every experiment at full scale
//	cpqbench -experiment fig4      # one experiment
//	cpqbench -quick                # 1/10 cardinalities (smoke run)
//	cpqbench -scale 0.25           # custom scale
//	cpqbench -parallel 4           # 4 HEAP workers (0 = GOMAXPROCS)
//	cpqbench -json                 # one JSON summary object per experiment
//	cpqbench -list                 # list experiments
//	cpqbench -out results.txt      # also write output to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// summary is the -json record emitted per experiment: wall time plus the
// aggregated statistics of every query the experiment ran.
type summary struct {
	Experiment string       `json:"experiment"`
	Title      string       `json:"title"`
	Parallel   int          `json:"parallel"`
	WallMS     float64      `json:"wall_ms"`
	Totals     bench.Totals `json:"totals"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (default: all); see -list")
		quick      = flag.Bool("quick", false, "scale cardinalities down to 1/10 for a fast smoke run")
		scale      = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = the paper's sizes)")
		parallel   = flag.Int("parallel", 1, "HEAP worker count for experiments that don't pick their own; 1 = the paper's sequential algorithm, 0 = GOMAXPROCS")
		jsonOut    = flag.Bool("json", false, "emit one JSON summary per experiment on stdout (tables go only to -out)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		out        = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	workers := *parallel
	if workers <= 0 {
		bench.SetDefaultParallelism(core.AutoParallelism)
		workers = runtime.GOMAXPROCS(0)
	} else {
		bench.SetDefaultParallelism(workers)
	}

	s := *scale
	if *quick {
		s = 0.1
	}
	lab := bench.NewLab(s)

	// In -json mode stdout carries only the JSON records; the human tables
	// go to the -out file if one was given, and are dropped otherwise.
	var w io.Writer = os.Stdout
	if *jsonOut {
		w = io.Discard
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *jsonOut {
			w = f
		} else {
			w = io.MultiWriter(os.Stdout, f)
		}
	}

	toRun := bench.Experiments()
	if *experiment != "" {
		toRun = nil
		for _, name := range strings.Split(*experiment, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q; available: %s",
					name, strings.Join(bench.Names(), ", ")))
			}
			toRun = append(toRun, e)
		}
	}

	fmt.Fprintf(w, "cpqbench — Closest Pair Queries in Spatial Databases (SIGMOD 2000) reproduction\n")
	fmt.Fprintf(w, "scale %.3g; page size 1KB, M=21, m=7; disk accesses = buffer misses (B/2 pages per tree)\n\n", s)

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	for _, e := range toRun {
		fmt.Fprintf(w, "=== %s: %s ===\n\n", e.Name, e.Title)
		bench.ResetTotals()
		expStart := time.Now()
		if err := e.Run(lab, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		if *jsonOut {
			if err := enc.Encode(summary{
				Experiment: e.Name,
				Title:      e.Title,
				Parallel:   workers,
				WallMS:     float64(time.Since(expStart).Microseconds()) / 1000,
				Totals:     bench.CurrentTotals(),
			}); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqbench:", err)
	os.Exit(1)
}

// Command cpqbench regenerates the tables and figures of the paper's
// experimental study (Sections 4 and 5). Each figure of the paper maps to
// one experiment; see DESIGN.md for the full index.
//
// Usage:
//
//	cpqbench                       # run every experiment at full scale
//	cpqbench -experiment fig4      # one experiment
//	cpqbench -quick                # 1/10 cardinalities (smoke run)
//	cpqbench -scale 0.25           # custom scale
//	cpqbench -parallel 4           # 4 HEAP workers (0 = GOMAXPROCS)
//	cpqbench -leafscan brute       # force a leaf scan strategy on every run
//	cpqbench -leafscan auto        # let the cost-model advisor pick per run
//	cpqbench -batch-expand         # batched heap dequeues in sequential HEAP
//	cpqbench -nodecache 4096       # attach a decoded-node cache to every tree
//	cpqbench -shards 8             # run every query sharded over 8 STR tiles
//	cpqbench -shard-transport inproc  # transport for sharded runs (or CPQ_SHARDS env)
//	cpqbench -pr4 BENCH_PR4.json   # run the leafscan ablation, write its report
//	cpqbench -pr6 BENCH_PR6.json   # run the kernel ablation, write its report
//	cpqbench -pr9 BENCH_PR9.json   # run the sharding gate, write its report
//	cpqbench -pr10 BENCH_PR10.json # run the explain-overhead gate, write its report
//	cpqbench -explain              # capture EXPLAIN per query, print the last query's tree
//	cpqbench -timeout 2m           # wall-clock budget (or CPQ_TIMEOUT); exits 3 with partial totals
//	cpqbench -trace trace.jsonl    # write every query's trace events as JSON lines
//	cpqbench -metrics-addr :9090   # serve /metrics (Prometheus text) and /debug/vars
//	cpqbench -pprof                # with -metrics-addr, also mount /debug/pprof/
//	cpqbench -json                 # one JSON summary object per experiment
//	cpqbench -list                 # list experiments
//	cpqbench -out results.txt      # also write output to a file
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// envTimeout reads the CPQ_TIMEOUT environment knob, the -timeout flag's
// default. A malformed value aborts the run rather than silently running
// without the budget the caller asked for.
func envTimeout() time.Duration {
	v := os.Getenv("CPQ_TIMEOUT")
	if v == "" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		fatal(fmt.Errorf("CPQ_TIMEOUT: %w", err))
	}
	return d
}

// envShards reads the CPQ_SHARDS environment knob, the -shards flag's
// default. A malformed value aborts the run.
func envShards() int {
	v := os.Getenv("CPQ_SHARDS")
	if v == "" {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		fatal(fmt.Errorf("CPQ_SHARDS: %w", err))
	}
	return n
}

// summary is the -json record emitted per experiment: wall time plus the
// aggregated statistics of every query the experiment ran.
type summary struct {
	Experiment string       `json:"experiment"`
	Title      string       `json:"title"`
	Parallel   int          `json:"parallel"`
	WallMS     float64      `json:"wall_ms"`
	Totals     bench.Totals `json:"totals"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (default: all); see -list")
		quick      = flag.Bool("quick", false, "scale cardinalities down to 1/10 for a fast smoke run")
		scale      = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = the paper's sizes)")
		parallel   = flag.Int("parallel", 1, "HEAP worker count for experiments that don't pick their own; 1 = the paper's sequential algorithm, 0 = GOMAXPROCS")
		leafScan   = flag.String("leafscan", "", "force a leaf scan strategy on every run: sweep, brute, grid or auto (default: per-experiment choice)")
		batchExp   = flag.Bool("batch-expand", false, "batched heap dequeues in the sequential HEAP algorithm on every run")
		nodeCache  = flag.Int("nodecache", 0, "decoded-node cache capacity (nodes per tree) attached to experiment trees; 0 = no cache (the paper's exact disk accounting)")
		shards     = flag.Int("shards", envShards(), "run every query sharded over this many STR tiles (scatter-gather executor); <= 1 = the monolithic join (default from CPQ_SHARDS)")
		shardTr    = flag.String("shard-transport", "inproc", "transport carrying shard-pair joins of sharded runs (inproc)")
		pr4        = flag.String("pr4", "", "run the leafscan ablation and write its JSON report to this file")
		pr6        = flag.String("pr6", "", "run the pr6 kernel ablation and write its JSON report to this file")
		pr9        = flag.String("pr9", "", "run the pr9 sharding gate and write its JSON report to this file")
		pr10       = flag.String("pr10", "", "run the pr10 explain-overhead gate and write its JSON report to this file")
		explainOn  = flag.Bool("explain", false, "attach an EXPLAIN capture to every query and print the last query's plan+execution tree at the end")
		traceFile  = flag.String("trace", "", "write every query's trace events to this file as JSON lines")
		metricsAt  = flag.String("metrics-addr", "", "serve engine metrics on this address (/metrics Prometheus text, /debug/vars expvar)")
		pprofOn    = flag.Bool("pprof", false, "with -metrics-addr, also mount net/http/pprof under /debug/pprof/")
		jsonOut    = flag.Bool("json", false, "emit one JSON summary per experiment on stdout (tables go only to -out)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		out        = flag.String("out", "", "also write the report to this file")
		timeout    = flag.Duration("timeout", envTimeout(), "wall-clock budget for the whole run; queries observe it via context and the run exits non-zero with partial totals (0 = none; default from CPQ_TIMEOUT)")
	)
	flag.Parse()

	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		bench.SetDefaultContext(ctx)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	workers := *parallel
	if workers <= 0 {
		bench.SetDefaultParallelism(core.AutoParallelism)
		workers = runtime.GOMAXPROCS(0)
	} else {
		bench.SetDefaultParallelism(workers)
	}

	switch *leafScan {
	case "":
	case "sweep":
		bench.SetDefaultLeafScan(core.LeafScanSweep)
	case "brute":
		bench.SetDefaultLeafScan(core.LeafScanBrute)
	case "grid":
		bench.SetDefaultLeafScan(core.LeafScanGrid)
	case "auto":
		bench.SetDefaultLeafScanAuto()
	default:
		fatal(fmt.Errorf("unknown -leafscan %q; want sweep, brute, grid or auto", *leafScan))
	}
	if *batchExp {
		bench.SetDefaultBatchExpand(true)
	}
	if *nodeCache > 0 {
		bench.SetDefaultNodeCache(*nodeCache)
	}
	switch *shardTr {
	case "inproc":
		bench.SetDefaultShardTransport(shard.InProc{})
	default:
		fatal(fmt.Errorf("unknown -shard-transport %q; want inproc", *shardTr))
	}
	if *shards > 1 {
		bench.SetDefaultShards(*shards)
	}
	if *explainOn {
		bench.SetDefaultExplain(true)
	}

	var tracer *obs.JSONLWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracer = obs.NewJSONLWriter(f)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "cpqbench: trace:", err)
			}
		}()
		bench.SetDefaultTracer(tracer)
	}
	if *metricsAt != "" {
		reg := obs.Default()
		bench.SetDefaultMetrics(obs.NewEngineMetrics(reg))
		reg.PublishExpvar("cpq")
		mux := obs.NewServeMux(reg, *pprofOn)
		go func() {
			if err := http.ListenAndServe(*metricsAt, mux); err != nil {
				fmt.Fprintln(os.Stderr, "cpqbench: metrics server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cpqbench: serving metrics on %s/metrics\n", *metricsAt)
	} else if *pprofOn {
		fatal(fmt.Errorf("-pprof requires -metrics-addr"))
	}

	s := *scale
	if *quick {
		s = 0.1
	}
	lab := bench.NewLab(s)

	// In -json mode stdout carries only the JSON records; the human tables
	// go to the -out file if one was given, and are dropped otherwise.
	var w io.Writer = os.Stdout
	if *jsonOut {
		w = io.Discard
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *jsonOut {
			w = f
		} else {
			w = io.MultiWriter(os.Stdout, f)
		}
	}

	toRun := bench.Experiments()
	if *experiment != "" {
		toRun = nil
		for _, name := range strings.Split(*experiment, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q; available: %s",
					name, strings.Join(bench.Names(), ", ")))
			}
			toRun = append(toRun, e)
		}
	}
	// -pr4/-pr6/-pr9 need their ablations; append them if not selected.
	for _, need := range []struct {
		flagVal string
		exp     string
	}{{*pr4, "leafscan"}, {*pr6, "pr6"}, {*pr9, "pr9"}, {*pr10, "pr10"}} {
		if need.flagVal == "" {
			continue
		}
		found := false
		for _, e := range toRun {
			if e.Name == need.exp {
				found = true
				break
			}
		}
		if !found {
			e, _ := bench.ByName(need.exp)
			toRun = append(toRun, e)
		}
	}

	fmt.Fprintf(w, "cpqbench — Closest Pair Queries in Spatial Databases (SIGMOD 2000) reproduction\n")
	fmt.Fprintf(w, "scale %.3g; page size 1KB, M=21, m=7; disk accesses = buffer misses (B/2 pages per tree)\n\n", s)

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	for _, e := range toRun {
		fmt.Fprintf(w, "=== %s: %s ===\n\n", e.Name, e.Title)
		bench.ResetTotals()
		expStart := time.Now()
		if err := e.Run(lab, w); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				t := bench.CurrentTotals()
				fmt.Fprintf(os.Stderr,
					"cpqbench: %s: wall-clock budget of %s exhausted after %s; partial totals: %d queries, %d disk accesses, %d node pairs\n",
					e.Name, *timeout, time.Since(start).Round(time.Millisecond),
					t.Queries, t.Accesses, t.NodePairs)
				os.Exit(3)
			}
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		if *jsonOut {
			if err := enc.Encode(summary{
				Experiment: e.Name,
				Title:      e.Title,
				Parallel:   workers,
				WallMS:     float64(time.Since(expStart).Microseconds()) / 1000,
				Totals:     bench.CurrentTotals(),
			}); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))

	if *pr4 != "" {
		rep := bench.LeafScanReport()
		if rep == nil {
			fatal(fmt.Errorf("leafscan ablation produced no report"))
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*pr4, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote leafscan report to %s\n", *pr4)
	}
	if *pr6 != "" {
		rep := bench.PR6LastReport()
		if rep == nil {
			fatal(fmt.Errorf("pr6 ablation produced no report"))
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*pr6, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote pr6 report to %s\n", *pr6)
	}
	if *pr9 != "" {
		rep := bench.PR9LastReport()
		if rep == nil {
			fatal(fmt.Errorf("pr9 sharding gate produced no report"))
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*pr9, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote pr9 report to %s\n", *pr9)
	}
	if *pr10 != "" {
		rep := bench.PR10LastReport()
		if rep == nil {
			fatal(fmt.Errorf("pr10 explain gate produced no report"))
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*pr10, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote pr10 report to %s\n", *pr10)
	}
	if *explainOn {
		if snap := bench.LastExplain(); snap != nil {
			fmt.Fprintf(w, "\nEXPLAIN of the last query:\n%s", snap.Render())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqbench:", err)
	os.Exit(1)
}

// Command cpqbench regenerates the tables and figures of the paper's
// experimental study (Sections 4 and 5). Each figure of the paper maps to
// one experiment; see DESIGN.md for the full index.
//
// Usage:
//
//	cpqbench                       # run every experiment at full scale
//	cpqbench -experiment fig4      # one experiment
//	cpqbench -quick                # 1/10 cardinalities (smoke run)
//	cpqbench -scale 0.25           # custom scale
//	cpqbench -list                 # list experiments
//	cpqbench -out results.txt      # also write output to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (default: all); see -list")
		quick      = flag.Bool("quick", false, "scale cardinalities down to 1/10 for a fast smoke run")
		scale      = flag.Float64("scale", 1.0, "cardinality scale factor (1.0 = the paper's sizes)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		out        = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	s := *scale
	if *quick {
		s = 0.1
	}
	lab := bench.NewLab(s)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "cpqbench — Closest Pair Queries in Spatial Databases (SIGMOD 2000) reproduction\n")
	fmt.Fprintf(w, "scale %.3g; page size 1KB, M=21, m=7; disk accesses = buffer misses (B/2 pages per tree)\n\n", s)

	start := time.Now()
	if *experiment == "" {
		if err := bench.RunAll(lab, w); err != nil {
			fatal(err)
		}
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q; available: %s",
					name, strings.Join(bench.Names(), ", ")))
			}
			fmt.Fprintf(w, "=== %s: %s ===\n\n", e.Name, e.Title)
			if err := e.Run(lab, w); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqbench:", err)
	os.Exit(1)
}

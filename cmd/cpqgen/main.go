// Command cpqgen generates the study's point data sets as CSV files:
// uniform sets of any cardinality and the clustered "Sequoia-substitute"
// set (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	cpqgen -kind uniform -n 60000 -seed 7 -out u60k.csv
//	cpqgen -kind real -out real.csv
//	cpqgen -kind clustered -n 10000 -overlap 0.5 -out c10k.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	var (
		kind    = flag.String("kind", "uniform", "data kind: uniform, clustered, real")
		n       = flag.Int("n", 10000, "number of points (ignored for -kind real)")
		seed    = flag.Int64("seed", 1, "generator seed (ignored for -kind real)")
		overlap = flag.Float64("overlap", 1.0, "workspace overlap with the unit workspace (1 = same workspace)")
		out     = flag.String("out", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	var pts []geom.Point
	switch *kind {
	case "uniform":
		pts = dataset.Uniform(*seed, *n)
	case "clustered":
		pts = dataset.Clustered(*seed, *n)
	case "real":
		pts = dataset.Real()
	default:
		fatal(fmt.Errorf("unknown kind %q (uniform, clustered, real)", *kind))
	}
	placed, err := dataset.PlaceWithOverlap(pts, *overlap)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := dataset.WritePoints(os.Stdout, placed); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.SavePoints(*out, placed); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d points to %s\n", len(placed), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpqgen:", err)
	os.Exit(1)
}

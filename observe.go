package cpq

import (
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// This file is the public observability surface: tracers, the metrics
// registry, the slow-query log, and the query options that attach them.
// Everything is a thin alias over internal/obs, the stdlib-only layer the
// engine emits into (see DESIGN.md §9).

// Tracer consumes per-query trace events. Implementations must be safe
// for concurrent use: parallel HEAP workers emit from many goroutines.
type Tracer = obs.Tracer

// TraceEvent is one typed trace record.
type TraceEvent = obs.Event

// TraceEventKind identifies the type of a trace event.
type TraceEventKind = obs.EventKind

// The event taxonomy (see DESIGN.md §9 for field semantics).
const (
	EvQueryStart      = obs.EvQueryStart
	EvQueryEnd        = obs.EvQueryEnd
	EvNodeExpanded    = obs.EvNodeExpanded
	EvBoundTightened  = obs.EvBoundTightened
	EvHeapHighWater   = obs.EvHeapHighWater
	EvLeafSweepPruned = obs.EvLeafSweepPruned
	EvCacheHit        = obs.EvCacheHit
	EvCacheMiss       = obs.EvCacheMiss
	EvWorkerSteal     = obs.EvWorkerSteal
	EvPoolEvict       = obs.EvPoolEvict
	EvLeafGridPruned  = obs.EvLeafGridPruned
	EvGridRebucket    = obs.EvGridRebucket
	EvHeapBatch       = obs.EvHeapBatch
	EvShardPlan       = obs.EvShardPlan
	EvShardPruned     = obs.EvShardPruned
	EvShardJoin       = obs.EvShardJoin
)

// BoundSource names the pruning rule behind a bound_tightened event.
type BoundSource = obs.BoundSource

// Metrics is a registry of counters, gauges and histograms with
// Prometheus-text and expvar exposition.
type Metrics = obs.Metrics

// EngineMetrics is the engine's pre-registered metric set (latency,
// accesses, result distance, cache hit ratio, worker utilization).
type EngineMetrics = obs.EngineMetrics

// SlowQueryLog aggregates per-query cost reports and writes queries
// slower than its threshold as JSON lines.
type SlowQueryLog = obs.SlowQueryLog

// QueryReport is one finished query's cost summary.
type QueryReport = obs.QueryReport

// JSONLTracer is a Tracer writing one JSON object per event.
type JSONLTracer = obs.JSONLWriter

// NewMetrics returns an empty metrics registry. Serve it with
// MetricsHandler or ObservabilityMux; DefaultMetrics returns a shared
// process-wide registry instead.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// DefaultMetrics returns the process-wide registry.
func DefaultMetrics() *Metrics { return obs.Default() }

// NewEngineMetrics registers the engine metric set (cpq_* names) on m and
// returns the handles to pass to WithMetrics.
func NewEngineMetrics(m *Metrics) *EngineMetrics { return obs.NewEngineMetrics(m) }

// NewJSONLTracer returns a tracer writing JSON lines to w; call Err when
// done to flush and collect the first write error.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLWriter(w) }

// NewSlowQueryLog returns a slow-query log: queries at or above threshold
// are written to w (which may be nil to aggregate only) as JSON lines,
// and every query feeds the per-shape aggregates behind Summary.
func NewSlowQueryLog(threshold time.Duration, w io.Writer) *SlowQueryLog {
	return obs.NewSlowQueryLog(threshold, w)
}

// MetricsHandler returns an http.Handler serving m in the Prometheus text
// format (mount it on /metrics).
func MetricsHandler(m *Metrics) http.Handler { return m.Handler() }

// ObservabilityMux returns a mux serving m on /metrics and expvar on
// /debug/vars; withPprof additionally mounts the net/http/pprof handlers
// under /debug/pprof/.
func ObservabilityMux(m *Metrics, withPprof bool) *http.ServeMux {
	return obs.NewServeMux(m, withPprof)
}

// WithTracer attaches a tracer to the query: it receives a span of typed
// events (node expansions, bound tightenings, heap high-water marks,
// worker steals). The default nil tracer is free: every emission site in
// the engine hides behind one nil check and allocates nothing.
func WithTracer(tr Tracer) QueryOption {
	return func(o *queryConfig) { o.core.Tracer = tr }
}

// WithMetrics records the query's cost (latency, accesses, K-th distance,
// cache counters, worker utilization) into the given engine metric set at
// completion. Recording happens once per query, never inside the
// traversal.
func WithMetrics(em *EngineMetrics) QueryOption {
	return func(o *queryConfig) { o.core.Metrics = em }
}

// WithSlowQueryLog feeds the query's cost report to the given slow-query
// log: aggregated always, written as a JSON line when the latency meets
// the log's threshold.
func WithSlowQueryLog(l *SlowQueryLog) QueryOption {
	return func(o *queryConfig) { o.core.SlowLog = l }
}

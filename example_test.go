package cpq_test

import (
	"fmt"
	"log"

	cpq "repro"
)

// ExampleClosestPair finds the single closest pair between two indexed
// point sets (the paper's 1-CPQ).
func ExampleClosestPair() {
	p, err := cpq.BuildIndex([]cpq.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 9, Y: 1}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	q, err := cpq.BuildIndex([]cpq.Point{{X: 4, Y: 4}, {X: 20, Y: 20}})
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()

	pair, _, err := cpq.ClosestPair(p, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v — %v at distance %.3f\n", pair.P, pair.Q, pair.Dist)
	// Output: (5, 5) — (4, 4) at distance 1.414
}

// ExampleKClosestPairs finds the K closest pairs with a specific
// algorithm and tie strategy from the paper.
func ExampleKClosestPairs() {
	p, err := cpq.BuildIndex([]cpq.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	q, err := cpq.BuildIndex([]cpq.Point{{X: 0, Y: 1}, {X: 4, Y: 0}})
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()

	pairs, _, err := cpq.KClosestPairs(p, q, 2,
		cpq.WithAlgorithm(cpq.SortedDistancesAlgorithm),
		cpq.WithTieStrategy(cpq.Tie1))
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range pairs {
		fmt.Printf("%v — %v  %.3f\n", pr.P, pr.Q, pr.Dist)
	}
	// Output:
	// (0, 0) — (0, 1)  1.000
	// (1, 0) — (0, 1)  1.414
}

// ExampleNewIncrementalJoin streams pairs in ascending distance order
// using the Hjaltason & Samet baseline.
func ExampleNewIncrementalJoin() {
	p, err := cpq.BuildIndex([]cpq.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	q, err := cpq.BuildIndex([]cpq.Point{{X: 1, Y: 0}, {X: 12, Y: 0}})
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()

	it, err := cpq.NewIncrementalJoin(p, q, cpq.WithMaxPairs(2))
	if err != nil {
		log.Fatal(err)
	}
	for {
		pair, ok, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%.0f\n", pair.Dist)
	}
	// Output:
	// 1
	// 2
}

// ExampleIndex_Nearest runs a plain nearest-neighbor query against one
// index.
func ExampleIndex_Nearest() {
	idx, err := cpq.BuildIndex([]cpq.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 10, Y: 10}})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	nn, err := idx.Nearest(cpq.Point{X: 2, Y: 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v at %.3f\n", nn[0].Point, nn[0].Dist)
	// Output: (3, 4) at 1.414
}

package cpq

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestExplainUnsharded checks the monolithic EXPLAIN path: results are
// bit-identical to the plain query, the plan carries the resolved knobs
// and the advisor's decision, and the execution totals mirror the stats.
func TestExplainUnsharded(t *testing.T) {
	p, err := BuildIndex(randomPoints(61, 500, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(62, 500, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	want, wantStats, err := KClosestPairs(p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, rep, err := Explain(p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result length: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
			t.Fatalf("pair %d: distance differs under explain: %v vs %v", i, want[i].Dist, got[i].Dist)
		}
	}
	if gotStats.NodePairsProcessed != wantStats.NodePairsProcessed {
		t.Fatalf("explain changed traversal: %d vs %d node pairs",
			gotStats.NodePairsProcessed, wantStats.NodePairsProcessed)
	}

	if rep.Plan.Algorithm != "HEAP" || rep.Plan.K != 10 {
		t.Fatalf("plan: %+v", rep.Plan)
	}
	if len(rep.Plan.Decisions) == 0 {
		t.Fatal("plan carries no advisor decisions")
	}
	if rep.Exec.Results != len(got) || rep.Exec.Stats.NodePairsProcessed != gotStats.NodePairsProcessed {
		t.Fatalf("execution totals: %d results / %d node pairs, stats say %d / %d",
			rep.Exec.Results, rep.Exec.Stats.NodePairsProcessed, len(got), gotStats.NodePairsProcessed)
	}
	if len(rep.Exec.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1 (the query span)", len(rep.Exec.Spans))
	}
	if !strings.Contains(rep.Render(), "QUERY") {
		t.Fatalf("render has no header:\n%s", rep.Render())
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("explain JSON is not byte-stable across a round trip")
	}
}

// TestExplainSharded checks the sharded EXPLAIN path end to end: the
// plan records shard count, transport and tile boundaries; the shard-pair
// rows sum to planned = joined + pruned; and every join span hangs under
// the executor span with the query's trace id.
func TestExplainSharded(t *testing.T) {
	p, err := BuildIndex(randomPoints(63, 900, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(64, 900, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	want, _, err := KClosestPairs(p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, _, rep, err := Explain(p, q, 10, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
			t.Fatalf("pair %d: sharded explain distance differs", i)
		}
	}

	if rep.Plan.Shards != 4 || rep.Plan.Transport != "inproc" || len(rep.Plan.Tiles) != 4 {
		t.Fatalf("shard plan: %+v", rep.Plan)
	}
	var joined, pruned int
	for _, row := range rep.Exec.ShardPairs {
		switch row.Status {
		case "joined":
			joined++
		case "pruned":
			pruned++
		default:
			t.Fatalf("shard pair [%d,%d] has status %q", row.A, row.B, row.Status)
		}
	}
	if joined+pruned != len(rep.Exec.ShardPairs) || len(rep.Exec.ShardPairs) == 0 {
		t.Fatalf("shard-pair rows: %d joined + %d pruned of %d", joined, pruned, len(rep.Exec.ShardPairs))
	}
	var names []string
	for _, ph := range rep.Exec.Phases {
		names = append(names, ph.Name)
	}
	if strings.Join(names, " ") != "partition build dispatch join merge" {
		t.Fatalf("phases = %v", names)
	}
	if len(rep.Exec.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(rep.Exec.Spans))
	}
	root := rep.Exec.Spans[0]
	if len(root.Children) != joined {
		t.Fatalf("span children: want %d (one per join), got %d", joined, len(root.Children))
	}
	for _, child := range root.Children {
		if child.Trace != root.Trace || child.Parent != root.Span {
			t.Fatalf("join span %d not correlated: trace %d parent %d, want %d/%d",
				child.Span, child.Trace, child.Parent, root.Trace, root.Span)
		}
	}
	out := rep.Render()
	for _, frag := range []string{"shards: 4 tiles via inproc", "shard pairs", "partition", "tile 0"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestExplainTeesTracer checks that WithTracer keeps working under
// explain: the user's tracer still sees the full event stream.
func TestExplainTeesTracer(t *testing.T) {
	p, err := BuildIndex(randomPoints(65, 300, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(66, 300, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	if _, _, _, err := Explain(p, q, 5, WithTracer(jt)); err != nil {
		t.Fatal(err)
	}
	if err := jt.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"query_start"`) {
		t.Fatal("teed tracer saw no events")
	}
}

// TestExplainSlowLogEmbedsSnapshot checks that a slow-query log attached
// to an explained query embeds the explain snapshot in its JSON line.
func TestExplainSlowLogEmbedsSnapshot(t *testing.T) {
	p, err := BuildIndex(randomPoints(67, 300, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(68, 300, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var buf bytes.Buffer
	slow := NewSlowQueryLog(0, &buf) // threshold 0: every query logs
	if _, _, _, err := Explain(p, q, 5, WithSlowQueryLog(slow)); err != nil {
		t.Fatal(err)
	}
	var entry struct {
		Explain json.RawMessage `json:"explain"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log line: %v\n%s", err, buf.String())
	}
	if len(entry.Explain) == 0 {
		t.Fatalf("slow log line has no embedded explain: %s", buf.String())
	}
	var rep ExplainReport
	if err := json.Unmarshal(entry.Explain, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Exec.Results != 5 {
		t.Fatalf("embedded snapshot reports %d results, want 5", rep.Exec.Results)
	}
}

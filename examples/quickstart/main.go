// Quickstart: index two small point sets and run the closest-pair queries
// of the paper through the public API.
package main

import (
	"fmt"
	"log"

	cpq "repro"
)

func main() {
	// Two tiny data sets: warehouses and stores of a delivery network.
	warehouses := []cpq.Point{
		{X: 2, Y: 3}, {X: 8, Y: 1}, {X: 5, Y: 9}, {X: 1, Y: 7}, {X: 9, Y: 8},
	}
	stores := []cpq.Point{
		{X: 3, Y: 4}, {X: 7, Y: 2}, {X: 4, Y: 8}, {X: 9, Y: 9}, {X: 0, Y: 0},
		{X: 6, Y: 6}, {X: 2, Y: 9},
	}

	w, err := cpq.BuildIndex(warehouses)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	s, err := cpq.BuildIndex(stores)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// 1-CPQ: the warehouse/store pair with the smallest distance.
	pair, stats, err := cpq.ClosestPair(w, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest pair: warehouse %v — store %v, distance %.3f\n",
		pair.P, pair.Q, pair.Dist)
	fmt.Printf("cost: %d disk accesses\n\n", stats.Accesses())

	// K-CPQ: the three closest pairs, using the Sorted Distances algorithm.
	pairs, _, err := cpq.KClosestPairs(w, s, 3,
		cpq.WithAlgorithm(cpq.SortedDistancesAlgorithm))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three closest pairs:")
	for i, p := range pairs {
		fmt.Printf("  %d. warehouse %v — store %v, distance %.3f\n", i+1, p.P, p.Q, p.Dist)
	}

	// Incremental join: stream pairs in ascending distance order.
	it, err := cpq.NewIncrementalJoin(w, s, cpq.WithMaxPairs(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nincremental join (first 5 pairs):")
	for {
		p, ok, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("  %v — %v  %.3f\n", p.P, p.Q, p.Dist)
	}

	// The index is a full spatial index: range and NN queries work too.
	nn, err := s.Nearest(cpq.Point{X: 5, Y: 5}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo stores nearest to (5,5): %v and %v\n", nn[0].Point, nn[1].Point)
}

// Trip: multi-way closest tuples (the paper's future-work item (a)) on a
// trip-planning scenario — pick a hotel, a restaurant and a museum that
// minimize the total walking distance, either as a chain
// (hotel → restaurant → museum) or a round trip (ring).
package main

import (
	"fmt"
	"log"
	"math/rand"

	cpq "repro"
)

func cluster(rng *rand.Rand, cx, cy, sigma float64, n int) []cpq.Point {
	pts := make([]cpq.Point, n)
	for i := range pts {
		pts[i] = cpq.Point{
			X: cx + rng.NormFloat64()*sigma,
			Y: cy + rng.NormFloat64()*sigma,
		}
	}
	return pts
}

func main() {
	rng := rand.New(rand.NewSource(77))

	// Three amenity layers of a city, each with its own geography.
	hotels := append(cluster(rng, 2, 2, 0.8, 300), cluster(rng, 6, 5, 0.5, 200)...)
	restaurants := append(cluster(rng, 3, 3, 1.0, 500), cluster(rng, 5, 4, 0.7, 300)...)
	museums := append(cluster(rng, 4, 4, 0.6, 80), cluster(rng, 2.5, 2.5, 0.4, 40)...)

	var indexes []*cpq.Index
	for _, layer := range [][]cpq.Point{hotels, restaurants, museums} {
		idx, err := cpq.BuildIndex(layer)
		if err != nil {
			log.Fatal(err)
		}
		defer idx.Close()
		indexes = append(indexes, idx)
	}

	// Chain: hotel -> restaurant -> museum.
	tuples, stats, err := cpq.KClosestTuples(indexes, 5,
		cpq.WithTuplePattern(cpq.ChainPattern))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("five best hotel→restaurant→museum chains (%d disk accesses):\n",
		stats.Accesses())
	for i, tp := range tuples {
		fmt.Printf("  %d. hotel (%.2f, %.2f) → restaurant (%.2f, %.2f) → museum (%.2f, %.2f): %.3f km\n",
			i+1, tp.Points[0].X, tp.Points[0].Y,
			tp.Points[1].X, tp.Points[1].Y,
			tp.Points[2].X, tp.Points[2].Y, tp.Dist)
	}

	// Ring: walk back to the hotel afterwards.
	rings, _, err := cpq.KClosestTuples(indexes, 3,
		cpq.WithTuplePattern(cpq.RingPattern))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthree best round trips (back to the hotel):")
	for i, tp := range rings {
		fmt.Printf("  %d. total loop %.3f km via (%.2f, %.2f), (%.2f, %.2f), (%.2f, %.2f)\n",
			i+1, tp.Dist,
			tp.Points[0].X, tp.Points[0].Y,
			tp.Points[1].X, tp.Points[1].Y,
			tp.Points[2].X, tp.Points[2].Y)
	}

	// Manhattan walking distances change the winner.
	l1, _, err := cpq.KClosestTuples(indexes, 1,
		cpq.WithTuplePattern(cpq.ChainPattern),
		cpq.WithTupleMetric(cpq.Manhattan()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest chain under Manhattan (street-grid) distance: %.3f km\n", l1[0].Dist)
}

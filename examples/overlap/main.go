// Overlap: a miniature of the paper's central experimental finding
// (Sections 4.3.2 and 5.1.2) — closest-pair cost is extremely sensitive to
// the portion of overlap between the two data sets' workspaces, and the
// pruning-based algorithms beat the exhaustive one by orders of magnitude
// when the overlap is small.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cpq "repro"
)

func buildShifted(seed int64, n int, shift float64) (*cpq.Index, error) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]cpq.Point, n)
	for i := range pts {
		pts[i] = cpq.Point{X: shift + rng.Float64(), Y: rng.Float64()}
	}
	// Zero buffer pages: every page read is a disk access, the paper's
	// B=0 configuration.
	return cpq.BuildIndex(pts, cpq.WithBufferPages(0))
}

func main() {
	const n = 10000
	left, err := buildShifted(1, n, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer left.Close()

	fmt.Printf("1-CPQ disk accesses, %d vs %d uniform points, B=0\n\n", n, n)
	fmt.Printf("%8s %10s %10s %10s %12s\n", "overlap", "EXH", "STD", "HEAP", "CP distance")
	for _, overlap := range []float64{0, 0.05, 0.25, 0.5, 1.0} {
		right, err := buildShifted(2, n, 1-overlap)
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%7.0f%%", overlap*100)
		var dist float64
		for _, alg := range []cpq.Algorithm{
			cpq.ExhaustiveAlgorithm, cpq.SortedDistancesAlgorithm, cpq.HeapAlgorithm,
		} {
			left.DropCaches()
			left.ResetIOStats()
			right.DropCaches()
			right.ResetIOStats()
			pair, stats, err := cpq.ClosestPair(left, right, cpq.WithAlgorithm(alg))
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %10d", stats.Accesses())
			dist = pair.Dist
		}
		fmt.Printf("%s %12.6f\n", row, dist)
		right.Close()
	}
	fmt.Println("\nNote how cost explodes with overlap while the pruning")
	fmt.Println("algorithms dominate EXH on disjoint workspaces — the paper's")
	fmt.Println("guideline for query optimizers.")
}

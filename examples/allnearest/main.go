// Allnearest: the semi-CPQ variant (paper Section 6) on a realistic
// matching problem — assign every ambulance station its nearest hospital,
// and audit the worst-served stations. Also demonstrates on-disk indexes:
// the hospital index is persisted and reopened.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	cpq "repro"
)

func main() {
	rng := rand.New(rand.NewSource(112))

	// Hospitals: a few dozen, clustered near city centers.
	centers := []cpq.Point{{X: 0.3, Y: 0.3}, {X: 0.75, Y: 0.6}, {X: 0.5, Y: 0.85}}
	var hospitals []cpq.Point
	for i := 0; i < 40; i++ {
		c := centers[rng.Intn(len(centers))]
		hospitals = append(hospitals, cpq.Point{
			X: c.X + rng.NormFloat64()*0.08,
			Y: c.Y + rng.NormFloat64()*0.08,
		})
	}
	// Ambulance stations: spread across the whole region.
	var stations []cpq.Point
	for i := 0; i < 500; i++ {
		stations = append(stations, cpq.Point{X: rng.Float64(), Y: rng.Float64()})
	}

	// Persist the hospital index to disk and reopen it, as a long-lived
	// service would.
	dir, err := os.MkdirTemp("", "cpq-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "hospitals.idx")

	h, err := cpq.BuildIndex(hospitals, cpq.WithPath(path))
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Close(); err != nil {
		log.Fatal(err)
	}
	h, err = cpq.OpenIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Printf("reopened hospital index from %s: %d hospitals, height %d\n\n",
		path, h.Len(), h.Height())

	s, err := cpq.BuildIndex(stations)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Semi-CPQ: every station gets its nearest hospital, results sorted by
	// ascending distance — so the tail is the underserved stations.
	assign, stats, err := cpq.SemiClosestPairs(s, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigned %d stations to hospitals (%d disk accesses)\n",
		len(assign), stats.Accesses())

	fmt.Println("\nbest-served stations:")
	for _, p := range assign[:3] {
		fmt.Printf("  station (%.3f, %.3f) → hospital (%.3f, %.3f), dist %.4f\n",
			p.P.X, p.P.Y, p.Q.X, p.Q.Y, p.Dist)
	}
	fmt.Println("worst-served stations (candidates for a new hospital):")
	for _, p := range assign[len(assign)-3:] {
		fmt.Printf("  station (%.3f, %.3f) → hospital (%.3f, %.3f), dist %.4f\n",
			p.P.X, p.P.Y, p.Q.X, p.Q.Y, p.Dist)
	}

	// Load statistics: how many stations each of the top hospitals serves.
	load := map[int64]int{}
	for _, p := range assign {
		load[p.RefQ]++
	}
	busiest, busiestLoad := int64(-1), 0
	for ref, n := range load {
		if n > busiestLoad {
			busiest, busiestLoad = ref, n
		}
	}
	fmt.Printf("\nbusiest hospital: #%d at (%.3f, %.3f) serving %d stations\n",
		busiest, hospitals[busiest].X, hospitals[busiest].Y, busiestLoad)
}

// Tourism: the paper's motivating scenario (Section 1). One data set holds
// the locations of archeological sites, the other the most important
// holiday resorts; a K-CPQ discovers the K site/resort pairs with the
// smallest distances, so that tourists in a resort can easily visit the
// site of each pair — the value of K depending on the advertising budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cpq "repro"
)

func main() {
	rng := rand.New(rand.NewSource(1821))

	// Archeological sites: clustered around a handful of ancient regions.
	regions := []cpq.Point{
		{X: 22.5, Y: 37.6}, // Peloponnese
		{X: 23.7, Y: 38.0}, // Attica
		{X: 22.4, Y: 39.9}, // Thessaly
		{X: 25.1, Y: 35.3}, // Crete
		{X: 27.1, Y: 37.7}, // Dodecanese
	}
	var sites []cpq.Point
	for i := 0; i < 4000; i++ {
		r := regions[rng.Intn(len(regions))]
		sites = append(sites, cpq.Point{
			X: r.X + rng.NormFloat64()*0.35,
			Y: r.Y + rng.NormFloat64()*0.25,
		})
	}

	// Holiday resorts: mostly coastal, drawn from a different pattern.
	var resorts []cpq.Point
	for i := 0; i < 800; i++ {
		t := rng.Float64()
		resorts = append(resorts, cpq.Point{
			X: 21.5 + t*6 + rng.NormFloat64()*0.4,
			Y: 35.0 + 5*rng.Float64() + rng.NormFloat64()*0.2,
		})
	}

	siteIdx, err := cpq.BuildIndex(sites)
	if err != nil {
		log.Fatal(err)
	}
	defer siteIdx.Close()
	resortIdx, err := cpq.BuildIndex(resorts)
	if err != nil {
		log.Fatal(err)
	}
	defer resortIdx.Close()

	// The advertising budget pays for ten brochures: K = 10.
	const budgetK = 10
	pairs, stats, err := cpq.KClosestPairs(siteIdx, resortIdx, budgetK,
		cpq.WithAlgorithm(cpq.HeapAlgorithm))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d site/resort pairs (HEAP algorithm, %d disk accesses):\n",
		budgetK, stats.Accesses())
	for i, p := range pairs {
		fmt.Printf("  %2d. site (%.3f, %.3f) ↔ resort (%.3f, %.3f): %.2f km apart\n",
			i+1, p.P.X, p.P.Y, p.Q.X, p.Q.Y, p.Dist*111) // ~111 km per degree
	}

	// Which resort should a new site museum partner with? Semi-CPQ gives
	// every site its nearest resort; here we just show the five best.
	semi, _, err := cpq.SemiClosestPairs(siteIdx, resortIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfive sites with a resort at their doorstep (semi-CPQ):")
	for i := 0; i < 5 && i < len(semi); i++ {
		fmt.Printf("  site (%.3f, %.3f) → resort (%.3f, %.3f), %.2f km\n",
			semi[i].P.X, semi[i].P.Y, semi[i].Q.X, semi[i].Q.Y, semi[i].Dist*111)
	}

	// The tourist board also wants to know the two most crowded spots of
	// the resort map itself: a self-CPQ.
	self, _, err := cpq.SelfKClosestPairs(resortIdx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost crowded resort pair: (%.3f, %.3f) and (%.3f, %.3f), %.2f km apart\n",
		self[0].P.X, self[0].P.Y, self[0].Q.X, self[0].Q.Y, self[0].Dist*111)
}

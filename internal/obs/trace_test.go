package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureTracer records events for assertions.
type captureTracer struct {
	mu     sync.Mutex
	events []Event
}

func (c *captureTracer) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func TestNilSpanIsNoOp(t *testing.T) {
	s := StartSpan(nil, "q")
	if s != nil {
		t.Fatalf("StartSpan(nil) = %v, want nil", s)
	}
	if s.Enabled() {
		t.Fatalf("nil span reports Enabled")
	}
	// All methods must be nil-safe.
	s.Emit(Event{Kind: EvNodeExpanded})
	s.End(0, 0, "")
}

func TestNilSpanZeroAlloc(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit(Event{Kind: EvNodeExpanded, Level: 3, New: 1.5})
		s.End(0, 0, "")
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestSpanStamping(t *testing.T) {
	tr := &captureTracer{}
	s := StartSpan(tr, "heap k=10")
	s.Emit(Event{Kind: EvNodeExpanded, Level: 2, New: 4})
	s.Emit(Event{Kind: EvBoundTightened, Old: 9, New: 4, Source: SourceKHeap})
	s.End(4, 10, "")
	ev := tr.events
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	if ev[0].Kind != EvQueryStart || ev[0].Label != "heap k=10" {
		t.Fatalf("first event = %+v, want query_start with label", ev[0])
	}
	if ev[3].Kind != EvQueryEnd || ev[3].N != 10 || ev[3].New != 4 {
		t.Fatalf("last event = %+v, want query_end n=10 new=4", ev[3])
	}
	for i, e := range ev {
		if e.Span != ev[0].Span {
			t.Errorf("event %d span id %d, want %d", i, e.Span, ev[0].Span)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Nanos < 0 {
			t.Errorf("event %d has negative relative time", i)
		}
	}
	s2 := StartSpan(tr, "other")
	if tr.events[4].Span == ev[0].Span {
		t.Fatalf("second span reused id %d", ev[0].Span)
	}
	_ = s2
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvQueryStart, EvQueryEnd, EvNodeExpanded, EvBoundTightened,
		EvHeapHighWater, EvLeafSweepPruned, EvCacheHit, EvCacheMiss, EvWorkerSteal, EvPoolEvict}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should stringify as unknown")
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	s := StartSpan(w, `label with "quotes" and
newline`)
	s.Emit(Event{Kind: EvNodeExpanded, Level: 1, Level2: 1, New: 2.5, Worker: 3})
	s.Emit(Event{Kind: EvBoundTightened, Old: mathInf(), New: 2.5, Source: SourceMinMax})
	s.End(2.5, 1, "")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	kinds := []string{"query_start", "node_expanded", "bound_tightened", "query_end"}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%s)", i+1, err, line)
		}
		if m["kind"] != kinds[i] {
			t.Errorf("line %d kind = %v, want %s", i+1, m["kind"], kinds[i])
		}
	}
	var bt map[string]any
	_ = json.Unmarshal([]byte(lines[2]), &bt)
	if bt["old"] != nil {
		t.Errorf("infinite old bound should encode as null, got %v", bt["old"])
	}
	if bt["new"] != 2.5 || bt["source"] != "minmax" {
		t.Errorf("bound_tightened line = %v", bt)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(10*time.Millisecond, &buf)
	l.Record(QueryReport{Label: "heap k=10", Seconds: 0.001, Accesses: 10})
	l.Record(QueryReport{Label: "heap k=10", Seconds: 0.050, Accesses: 400})
	l.Record(QueryReport{Label: "std k=10", Seconds: 0.002, Accesses: 20})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log wrote %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var r QueryReport
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("slow line is not valid JSON: %v", err)
	}
	if r.Seconds != 0.050 || r.Accesses != 400 {
		t.Fatalf("slow line = %+v", r)
	}
	sum := l.Summary()
	if !strings.Contains(sum, "1/3 queries") {
		t.Errorf("summary missing slow/total: %s", sum)
	}
	if !strings.Contains(sum, "heap k=10") || !strings.Contains(sum, "std k=10") {
		t.Errorf("summary missing labels: %s", sum)
	}
	// heap (avg ~25.5ms) must sort before std (avg 2ms).
	if strings.Index(sum, "heap k=10") > strings.Index(sum, "std k=10") {
		t.Errorf("summary not sorted by average latency: %s", sum)
	}
	var nilLog *SlowQueryLog
	nilLog.Record(QueryReport{})
	if nilLog.Summary() != "" {
		t.Errorf("nil log summary should be empty")
	}
}

package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotent(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("reqs_total", "requests", Label{Key: "algo", Value: "heap"})
	b := m.Counter("reqs_total", "requests", Label{Key: "algo", Value: "heap"})
	if a != b {
		t.Fatalf("same identity returned distinct handles")
	}
	c := m.Counter("reqs_total", "requests", Label{Key: "algo", Value: "std"})
	if a == c {
		t.Fatalf("distinct label values returned the same handle")
	}
	if got := len(m.snapshot()); got != 2 {
		t.Fatalf("snapshot size = %d, want 2", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	m.Gauge("x", "")
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"cpq_queries_total": "cpq_queries_total",
		"9lives":            "_9lives",
		"a b/c":             "a_b_c",
		"":                  "_",
		"ns:sub":            "ns:sub",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeLabelKey("ns:sub"); got != "ns_sub" {
		t.Errorf("sanitizeLabelKey(ns:sub) = %q, want ns_sub", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c", "")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := m.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	h := m.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("hist sum = %v, want 556.5", h.Sum())
	}
	// Bucket assignment: le=1 gets {0.5, 1}, le=10 gets {5}, le=100 gets
	// {50}, +Inf gets {500}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramBucketNormalization(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", "", []float64{10, 1, 10, mathInf()})
	if len(h.bounds) != 2 || h.bounds[0] != 1 || h.bounds[1] != 10 {
		t.Fatalf("bounds = %v, want [1 10]", h.bounds)
	}
}

func mathInf() float64 { v := 0.0; return 1 / v }

func TestWritePrometheusParses(t *testing.T) {
	m := NewMetrics()
	m.Counter("cpq_queries_total", "Completed queries.", Label{Key: "algo", Value: `he"ap\n`}).Inc()
	m.Gauge("cpq_hit_ratio", "Cache hit ratio.").Set(0.75)
	m.Histogram("cpq_latency", "Latency.", []float64{0.001, 0.01}).Observe(0.002)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := validateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cpq_queries_total counter",
		`cpq_queries_total{algo="he\"ap\\n"} 1`,
		"cpq_hit_ratio 0.75",
		`cpq_latency_bucket{le="+Inf"} 1`,
		"cpq_latency_sum 0.002",
		"cpq_latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPublishExpvarDuplicate(t *testing.T) {
	m := NewMetrics()
	m.Counter("dup_total", "").Inc()
	m.PublishExpvar("obs_test_dup")
	// A second publication under the same name must not panic.
	NewMetrics().PublishExpvar("obs_test_dup")
}

// TestMetricsConcurrent hammers one registry from many goroutines while a
// reader encodes it; run under -race (ci.sh obs does).
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.Counter("con_total", "")
			g := m.Gauge("con_gauge", "")
			h := m.Histogram("con_hist", "", LinearBuckets(0, 10, 8))
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 80))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := m.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := m.Counter("con_total", "").Value(); got != 8*2000 {
		t.Fatalf("counter = %d, want %d", got, 8*2000)
	}
	if got := m.Gauge("con_gauge", "").Value(); got != 8*2000 {
		t.Fatalf("gauge = %v, want %d", got, 8*2000)
	}
	if got := m.Histogram("con_hist", "", nil).Count(); got != 8*2000 {
		t.Fatalf("histogram count = %d, want %d", got, 8*2000)
	}
}

func TestEngineMetricsRecord(t *testing.T) {
	m := NewMetrics()
	em := NewEngineMetrics(m)
	em.Record(QueryReport{Seconds: 0.01, Accesses: 42, Results: 10, KthDistance: 1.5, CacheHits: 3, CacheMisses: 1})
	em.Record(QueryReport{Err: "boom"})
	if em.Queries.Value() != 1 || em.QueryErrors.Value() != 1 {
		t.Fatalf("queries=%d errors=%d, want 1/1", em.Queries.Value(), em.QueryErrors.Value())
	}
	if em.AccessesTotal.Value() != 42 {
		t.Fatalf("accesses = %d, want 42", em.AccessesTotal.Value())
	}
	if got := em.NodeCacheHitRatio.Value(); got != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", got)
	}
	// Nil receiver is a no-op.
	var nilEM *EngineMetrics
	nilEM.Record(QueryReport{Seconds: 1})
}

// validateExposition checks that data is well-formed Prometheus text
// format (version 0.0.4): every line is a # HELP / # TYPE comment or a
// sample `name{labels} value` with valid names, escapes and float values.
// Shared with FuzzMetricsExposition.
func validateExposition(data []byte) error {
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			if i == len(lines)-1 {
				continue
			}
			return fmt.Errorf("line %d: empty line inside exposition", i+1)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name := rest
			if sp := strings.IndexByte(rest, ' '); sp >= 0 {
				name = rest[:sp]
			}
			if !validMetricName(name) {
				return fmt.Errorf("line %d: bad HELP metric name %q", i+1, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", i+1)
			}
			if !validMetricName(fields[0]) {
				return fmt.Errorf("line %d: bad TYPE metric name %q", i+1, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown type %q", i+1, fields[1])
			}
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			if err := validateSample(line); err != nil {
				return fmt.Errorf("line %d: %v (%q)", i+1, err, line)
			}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

func validateSample(line string) error {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	if !validMetricName(line[:i]) {
		return fmt.Errorf("bad metric name %q", line[:i])
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) || !validLabelKey(line[i:j]) {
				return fmt.Errorf("bad label key %q", line[i:j])
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return fmt.Errorf("label value not quoted")
			}
			i = j + 2
			for {
				if i >= len(line) {
					return fmt.Errorf("unterminated label value")
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(line) {
						return fmt.Errorf("dangling escape")
					}
					switch line[i+1] {
					case '\\', '"', 'n':
					default:
						return fmt.Errorf("bad escape \\%c", line[i+1])
					}
					i += 2
					continue
				}
				i++
			}
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return fmt.Errorf("missing space before value")
	}
	if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
		return fmt.Errorf("bad sample value %q", line[i+1:])
	}
	return nil
}

package obs

import (
	"bytes"
	"testing"
)

// FuzzMetricsExposition feeds arbitrary metric names, help text and label
// pairs through registration and the Prometheus text encoder, and asserts
// the output always parses: names land in the legal charset, label values
// are escaped, sample values are floats. This pins the sanitize/escape
// pair — any byte sequence a caller registers must still produce a
// scrapeable page.
func FuzzMetricsExposition(f *testing.F) {
	f.Add("cpq_queries_total", "Completed queries.", "algo", "heap", 1.5)
	f.Add("9starts_with_digit", "help\nwith newline", "le", "quo\"te", -0.0)
	f.Add("", "", "", `back\slash`, 1e300)
	f.Add("ns:colons:ok", "tabs\tand\rreturns", "key:colon", "v1", 0.001)
	f.Fuzz(func(t *testing.T, name, help, lkey, lval string, v float64) {
		m := NewMetrics()
		c := m.Counter(name, help, Label{Key: lkey, Value: lval})
		c.Inc()
		m.Gauge(name+"_g", help).Set(v)
		h := m.Histogram(name+"_h", help, []float64{v, 1, 10}, Label{Key: lkey, Value: lval})
		h.Observe(v)
		h.Observe(1)
		var buf bytes.Buffer
		if err := m.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := validateExposition(buf.Bytes()); err != nil {
			t.Fatalf("exposition does not parse: %v\ninput name=%q help=%q lkey=%q lval=%q v=%v\noutput:\n%s",
				err, name, help, lkey, lval, v, buf.String())
		}
	})
}

// Package obs is the engine's observability layer: a stdlib-only metrics
// registry with Prometheus-text and expvar exposition (metrics.go,
// expose.go), a query tracer with typed events (this file), and the
// standard consumers — a JSONL trace writer (jsonl.go) and an aggregating
// slow-query log (slowlog.go).
//
// The package sits below every engine layer (it imports only the standard
// library), so internal/storage, internal/rtree and internal/core can all
// emit events. Emission follows one discipline, enforced by the cpqlint
// obshooks check: hot-path code never calls a Tracer or Span method
// directly; it goes through a tiny nil-guarded helper, so a disabled
// tracer costs one pointer comparison and zero allocations.
package obs

import (
	"sync/atomic"
	"time"
)

// EventKind identifies the type of a trace event.
type EventKind uint8

// The event taxonomy (DESIGN.md §9). Query-span events carry the owning
// span's id; tree- and pool-level events (cache lookups, evictions) are
// emitted outside any span and carry span id 0.
const (
	// EvQueryStart opens a query span. Label describes the query
	// (algorithm, K, tie strategy).
	EvQueryStart EventKind = iota
	// EvQueryEnd closes a query span. New is the final pruning bound
	// (metric key, i.e. squared distance under L2), N the result count,
	// and Label the error text for failed queries.
	EvQueryEnd
	// EvNodeExpanded records one processed node pair (a recursive call or
	// a heap pop that reads two nodes). Level and Level2 are the pair's
	// levels, New its MINMINDIST key, Worker the parallel worker id (0
	// when sequential).
	EvNodeExpanded
	// EvBoundTightened records a strict decrease of the effective pruning
	// bound T. Old and New are metric keys; Source tells which rule
	// tightened.
	EvBoundTightened
	// EvHeapHighWater records a new high-water mark of the HEAP
	// algorithm's pair heap; N is the new queue length.
	EvHeapHighWater
	// EvLeafSweepPruned records one plane-sweep leaf scan; N is the
	// number of point pairs the sweep skipped relative to the brute
	// all-pairs scan.
	EvLeafSweepPruned
	// EvCacheHit and EvCacheMiss record decoded-node cache lookups in
	// rtree.ReadNode; N is the page id.
	EvCacheHit
	EvCacheMiss
	// EvWorkerSteal records a parallel worker claiming a batch from the
	// shared frontier; Worker is the worker id, N the batch size.
	EvWorkerSteal
	// EvPoolEvict records a buffer-pool page eviction; N is the page id.
	EvPoolEvict
	// EvLeafGridPruned records one grid-hash leaf scan; N is the number of
	// point pairs the grid skipped relative to the brute all-pairs scan
	// (negative only if cell aliasing made it evaluate extra pairs, which
	// the slack factor makes vanishingly rare).
	EvLeafGridPruned
	// EvGridRebucket records one δ-hysteresis re-bucketing of a grid leaf
	// scan: the pruning bound shrank enough that the cells were rebuilt
	// with a smaller side. N is the number of re-hashed entries.
	EvGridRebucket
	// EvHeapBatch records one batched dequeue of the HEAP algorithm's pair
	// heap (Options.BatchExpand); N is the batch size.
	EvHeapBatch
	// EvShardPlan records the shard executor planning its work list; N is
	// the number of shard pairs planned (non-empty tile products).
	EvShardPlan
	// EvShardPruned records a shard pair skipped because the MINMINDIST
	// between its tile MBRs exceeded the broadcast bound at dispatch time;
	// N encodes the pair as shardA*tiles + shardB, New its MINMINDIST key.
	EvShardPruned
	// EvShardJoin records one dispatched shard-pair join; N encodes the
	// pair as shardA*tiles + shardB, New the broadcast bound at dispatch,
	// Worker the executor worker id.
	EvShardJoin

	// evKindCount counts the declared event kinds. Keep it the last
	// member of this block: the exhaustiveness test iterates [0,
	// evKindCount) and fails the build of any PR that adds a kind without
	// a String name and a JSONL encoding.
	evKindCount
)

// String implements fmt.Stringer with stable lowercase names (the JSONL
// writer uses them as the "kind" field).
func (k EventKind) String() string {
	switch k {
	case EvQueryStart:
		return "query_start"
	case EvQueryEnd:
		return "query_end"
	case EvNodeExpanded:
		return "node_expanded"
	case EvBoundTightened:
		return "bound_tightened"
	case EvHeapHighWater:
		return "heap_high_water"
	case EvLeafSweepPruned:
		return "leaf_sweep_pruned"
	case EvCacheHit:
		return "cache_hit"
	case EvCacheMiss:
		return "cache_miss"
	case EvWorkerSteal:
		return "worker_steal"
	case EvPoolEvict:
		return "pool_evict"
	case EvLeafGridPruned:
		return "leaf_grid_pruned"
	case EvGridRebucket:
		return "grid_rebucket"
	case EvHeapBatch:
		return "heap_batch"
	case EvShardPlan:
		return "shard_plan"
	case EvShardPruned:
		return "shard_pruned"
	case EvShardJoin:
		return "shard_join"
	default:
		return "unknown"
	}
}

// BoundSource tells which pruning rule tightened the bound in an
// EvBoundTightened event.
type BoundSource uint8

const (
	// SourceNone is the zero value (no source applies).
	SourceNone BoundSource = iota
	// SourceMinMax is Inequality 2: the MINMAXDIST of a generated
	// sub-pair bounds the closest distance (K = 1).
	SourceMinMax
	// SourceMaxMax is the technical report's K > 1 rule: the MAXMAXDIST
	// prefix guaranteeing K enclosed point pairs.
	SourceMaxMax
	// SourceKHeap is the K-heap threshold: the K-th smallest distance
	// found so far, after a leaf scan accepted pairs.
	SourceKHeap
	// SourceMerge is the parallel engine publishing a worker's local
	// K-heap into the global one.
	SourceMerge
)

// String implements fmt.Stringer.
func (s BoundSource) String() string {
	switch s {
	case SourceMinMax:
		return "minmax"
	case SourceMaxMax:
		return "maxmax"
	case SourceKHeap:
		return "kheap"
	case SourceMerge:
		return "merge"
	default:
		return "none"
	}
}

// Event is one typed trace record. It is a flat value (no pointers beyond
// the Label string) so emitting an event allocates nothing; the field set
// is a union over kinds, documented on the EventKind constants.
type Event struct {
	Kind EventKind
	// Span is the owning query span's id, 0 for tree/pool-level events.
	Span uint64
	// Trace is the distributed trace id the owning span belongs to (the
	// root span's id), 0 for spanless events. Parent is the id of the
	// span this one was started from (StartSpanFrom), 0 for root spans.
	// Together they let a collector rebuild the span tree of a sharded
	// query even when shard joins ran on other nodes.
	Trace, Parent uint64
	// Seq is the event's sequence number within its span (1-based), 0
	// for spanless events.
	Seq uint64
	// Nanos is the time since the span started, 0 for spanless events.
	Nanos int64
	// Level and Level2 are the node levels of a NodeExpanded pair.
	Level, Level2 int32
	// Worker is the parallel worker id (0 in sequential mode).
	Worker int32
	// Source tells which rule tightened the bound (EvBoundTightened).
	Source BoundSource
	// Old and New carry bound values as metric keys (squared distances
	// under L2); New doubles as the MINMINDIST key of an expanded pair.
	Old, New float64
	// N is a count or id, per kind.
	N int64
	// Label annotates span starts (query description) and ends (error
	// text, empty on success).
	Label string
}

// Tracer consumes trace events. Implementations must be safe for
// concurrent use: parallel HEAP workers emit from many goroutines.
//
// Engine code does not call Event directly on a possibly-nil tracer —
// every emission site sits behind a nil-guarded helper (the cpqlint
// obshooks check enforces this), so tracing disabled costs one branch.
type Tracer interface {
	Event(e Event)
}

// spanIDs issues process-unique span ids.
var spanIDs atomic.Uint64

// TraceContext identifies one span's position in a distributed trace: the
// trace id shared by every span of the query and the span's own id. It is
// the value that crosses process boundaries — the shard executor hands its
// query span's context through Transport.Join so remote joins start child
// spans under the same trace id (three uint64s on a wire, no pointers).
// The zero value means "no parent": StartSpanFrom then opens a fresh root
// trace, so code that never propagates context behaves exactly as before.
type TraceContext struct {
	// TraceID is the id shared by every span of one query (the root
	// span's id); 0 when no trace is active.
	TraceID uint64
	// SpanID is the id of the span this context describes; a span started
	// from the context records it as its parent.
	SpanID uint64
}

// Span stamps one query's events with a shared id, a sequence number and
// a relative timestamp. A nil *Span is the disabled tracer: every method
// is a cheap no-op, so call sites guard on nil once and pay nothing more.
type Span struct {
	id     uint64
	trace  uint64
	parent uint64
	tr     Tracer
	start  time.Time
	seq    atomic.Uint64
}

// StartSpan opens a root span on tr and emits EvQueryStart with the given
// label. A nil tr returns a nil span, on which every method no-ops.
func StartSpan(tr Tracer, label string) *Span {
	return StartSpanFrom(tr, TraceContext{}, label)
}

// StartSpanFrom opens a span under the given parent context: the new span
// inherits the parent's trace id and records the parent's span id, so a
// collector can rebuild the tree from the EvQueryStart events alone. A
// zero parent opens a fresh root trace (the span's own id becomes the
// trace id), which makes StartSpanFrom(tr, TraceContext{}, l) identical
// to StartSpan(tr, l). A nil tr returns a nil span.
func StartSpanFrom(tr Tracer, parent TraceContext, label string) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{id: spanIDs.Add(1), parent: parent.SpanID, tr: tr, start: time.Now()}
	s.trace = parent.TraceID
	if s.trace == 0 {
		s.trace = s.id
	}
	s.Emit(Event{Kind: EvQueryStart, Label: label})
	return s
}

// Context returns the span's trace context, the value to propagate to
// child spans (possibly across a process boundary). Nil-safe: a nil span
// returns the zero context, under which children open fresh root traces.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id}
}

// Enabled reports whether events reach a tracer.
func (s *Span) Enabled() bool { return s != nil }

// Emit stamps e with the span's id, next sequence number and relative
// time, and forwards it to the tracer. No-op on a nil span.
func (s *Span) Emit(e Event) {
	if s == nil {
		return
	}
	e.Span = s.id
	e.Trace = s.trace
	e.Parent = s.parent
	e.Seq = s.seq.Add(1)
	e.Nanos = time.Since(s.start).Nanoseconds()
	s.tr.Event(e)
}

// End emits EvQueryEnd with the final pruning bound (a metric key), the
// result count and the error text (empty on success). No-op on nil.
func (s *Span) End(finalBound float64, results int, errText string) {
	if s == nil {
		return
	}
	s.Emit(Event{Kind: EvQueryEnd, New: finalBound, N: int64(results), Label: errText})
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SlowQueryLog records queries slower than a threshold and aggregates
// cost statistics per query label. Fast queries cost one mutex-guarded
// aggregate update at completion; slow ones additionally write a JSON
// line, so the log doubles as a targeted trace of the outliers.
type SlowQueryLog struct {
	threshold time.Duration

	mu   sync.Mutex
	w    io.Writer
	agg  map[string]*slowAgg
	slow int64
	all  int64
}

// slowAgg is the per-label aggregate.
type slowAgg struct {
	count    int64
	slow     int64
	seconds  float64
	maxSecs  float64
	accesses int64
}

// NewSlowQueryLog returns a log writing queries at or above threshold to
// w as JSON lines (w may be nil to aggregate only).
func NewSlowQueryLog(threshold time.Duration, w io.Writer) *SlowQueryLog {
	return &SlowQueryLog{threshold: threshold, w: w, agg: make(map[string]*slowAgg)}
}

// Threshold returns the slow-query cutoff.
func (l *SlowQueryLog) Threshold() time.Duration { return l.threshold }

// Record folds one finished query into the aggregates and, when its
// latency meets the threshold, writes it as a JSON line. Nil-safe.
func (l *SlowQueryLog) Record(r QueryReport) {
	if l == nil {
		return
	}
	isSlow := time.Duration(r.Seconds*float64(time.Second)) >= l.threshold
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.agg[r.Label]
	if a == nil {
		a = &slowAgg{}
		l.agg[r.Label] = a
	}
	l.all++
	a.count++
	a.seconds += r.Seconds
	a.accesses += r.Accesses
	if r.Seconds > a.maxSecs {
		a.maxSecs = r.Seconds
	}
	if !isSlow {
		return
	}
	l.slow++
	a.slow++
	if l.w != nil {
		if b, err := json.Marshal(r); err == nil {
			b = append(b, '\n')
			l.w.Write(b)
		}
	}
}

// Summary renders the per-label aggregates, slowest average first — the
// operator's answer to "which query shape is eating the latency budget".
func (l *SlowQueryLog) Summary() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	labels := make([]string, 0, len(l.agg))
	for k := range l.agg {
		labels = append(labels, k)
	}
	sort.Slice(labels, func(i, j int) bool {
		ai, aj := l.agg[labels[i]], l.agg[labels[j]]
		return ai.seconds/float64(ai.count) > aj.seconds/float64(aj.count)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "slow-query log: %d/%d queries >= %v\n", l.slow, l.all, l.threshold)
	for _, k := range labels {
		a := l.agg[k]
		fmt.Fprintf(&b, "  %-32s n=%d slow=%d avg=%.3fms max=%.3fms avg_accesses=%.0f\n",
			k, a.count, a.slow,
			1e3*a.seconds/float64(a.count), 1e3*a.maxSecs,
			float64(a.accesses)/float64(a.count))
	}
	return b.String()
}

package obs

// EngineMetrics is the fixed metric set the CPQ engine records into — one
// struct of pre-registered handles so the per-query recording path does no
// name lookups. Everything is updated at query completion (plus one
// utilization sample per parallel run), so the hot traversal loop carries
// no metric work at all; per-event visibility is the Tracer's job.
type EngineMetrics struct {
	// Queries counts completed queries; QueryErrors the failed ones.
	Queries     *Counter
	QueryErrors *Counter
	// QuerySeconds is the query latency histogram (seconds).
	QuerySeconds *Histogram
	// QueryAccesses is the per-query disk access histogram — the paper's
	// cost metric, as a distribution.
	QueryAccesses *Histogram
	// AccessesTotal accumulates disk accesses over all queries, matching
	// the sum of core.Stats.Accesses() snapshots.
	AccessesTotal *Counter
	// ResultDistance is the K-th (largest reported) distance at query
	// completion.
	ResultDistance *Histogram
	// NodeCacheHits / NodeCacheMisses accumulate decoded-node cache
	// lookups; NodeCacheHitRatio is hits/lookups over those totals.
	NodeCacheHits     *Counter
	NodeCacheMisses   *Counter
	NodeCacheHitRatio *Gauge
	// WorkerUtilization is busy-time / (workers × wall-time) per parallel
	// query (0..1); sequential queries do not record it.
	WorkerUtilization *Histogram
}

// NewEngineMetrics registers the engine's metric set on m under the cpq_
// namespace and returns the handles.
func NewEngineMetrics(m *Metrics) *EngineMetrics {
	return &EngineMetrics{
		Queries:     m.Counter("cpq_queries_total", "Completed closest-pair queries."),
		QueryErrors: m.Counter("cpq_query_errors_total", "Closest-pair queries that returned an error."),
		QuerySeconds: m.Histogram("cpq_query_seconds", "Query latency in seconds.",
			ExpBuckets(100e-6, 4, 12)), // 100µs .. ~420s
		QueryAccesses: m.Histogram("cpq_query_accesses", "Disk accesses (buffer misses) per query.",
			ExpBuckets(4, 4, 12)),
		AccessesTotal: m.Counter("cpq_accesses_total", "Disk accesses (buffer misses) over all queries."),
		ResultDistance: m.Histogram("cpq_result_distance", "K-th closest distance at query completion.",
			ExpBuckets(1e-6, 10, 12)),
		NodeCacheHits:   m.Counter("cpq_node_cache_hits_total", "Decoded-node cache hits over all queries."),
		NodeCacheMisses: m.Counter("cpq_node_cache_misses_total", "Decoded-node cache misses over all queries."),
		NodeCacheHitRatio: m.Gauge("cpq_node_cache_hit_ratio",
			"Decoded-node cache hits / lookups over all queries (0 when no cache is attached)."),
		WorkerUtilization: m.Histogram("cpq_worker_utilization",
			"Busy time / (workers x wall time) per parallel query.",
			LinearBuckets(0.1, 0.1, 10)),
	}
}

// QueryReport is one finished query's cost summary, fed to EngineMetrics
// and the slow-query log by the engine.
type QueryReport struct {
	// Label describes the query (algorithm, K), as in the span label.
	Label string `json:"label"`
	// Seconds is the wall-clock latency.
	Seconds float64 `json:"seconds"`
	// Accesses is core.Stats.Accesses().
	Accesses int64 `json:"accesses"`
	// NodePairs and PointPairs are the work counters.
	NodePairs  int64 `json:"node_pairs"`
	PointPairs int64 `json:"point_pairs"`
	// CacheHits and CacheMisses are the decoded-node cache deltas.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Results is the number of pairs returned; KthDistance the largest
	// reported distance (0 when no results).
	Results     int     `json:"results"`
	KthDistance float64 `json:"kth_distance"`
	// Workers is the parallel worker count (1 = sequential).
	Workers int `json:"workers"`
	// Err is the error text for failed queries, empty on success.
	Err string `json:"err,omitempty"`
}

// Record feeds one query report into the metric set. Nil-safe so the
// engine can call it unconditionally on its (possibly nil) handle.
func (em *EngineMetrics) Record(r QueryReport) {
	if em == nil {
		return
	}
	if r.Err != "" {
		em.QueryErrors.Inc()
		return
	}
	em.Queries.Inc()
	em.QuerySeconds.Observe(r.Seconds)
	em.QueryAccesses.Observe(float64(r.Accesses))
	em.AccessesTotal.Add(r.Accesses)
	if r.Results > 0 {
		em.ResultDistance.Observe(r.KthDistance)
	}
	em.NodeCacheHits.Add(r.CacheHits)
	em.NodeCacheMisses.Add(r.CacheMisses)
	if lookups := em.NodeCacheHits.Value() + em.NodeCacheMisses.Value(); lookups > 0 {
		em.NodeCacheHitRatio.Set(float64(em.NodeCacheHits.Value()) / float64(lookups))
	}
}

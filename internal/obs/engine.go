package obs

import (
	"encoding/json"
	"strconv"
)

// EngineMetrics is the fixed metric set the CPQ engine records into — one
// struct of pre-registered handles so the per-query recording path does no
// name lookups. Everything is updated at query completion (plus one
// utilization sample per parallel run), so the hot traversal loop carries
// no metric work at all; per-event visibility is the Tracer's job.
type EngineMetrics struct {
	// Queries counts completed queries; QueryErrors the failed ones.
	Queries     *Counter
	QueryErrors *Counter
	// QuerySeconds is the query latency histogram (seconds).
	QuerySeconds *Histogram
	// QueryAccesses is the per-query disk access histogram — the paper's
	// cost metric, as a distribution.
	QueryAccesses *Histogram
	// AccessesTotal accumulates disk accesses over all queries, matching
	// the sum of core.Stats.Accesses() snapshots.
	AccessesTotal *Counter
	// ResultDistance is the K-th (largest reported) distance at query
	// completion.
	ResultDistance *Histogram
	// NodeCacheHits / NodeCacheMisses accumulate decoded-node cache
	// lookups; NodeCacheHitRatio is hits/lookups over those totals.
	NodeCacheHits     *Counter
	NodeCacheMisses   *Counter
	NodeCacheHitRatio *Gauge
	// WorkerUtilization is busy-time / (workers × wall-time) per parallel
	// query (0..1); sequential queries do not record it.
	WorkerUtilization *Histogram

	// reg is kept for the per-shard labeled series RecordShards mints on
	// demand: the shard axis is dynamic (tile counts vary per query), so
	// those handles cannot be pre-registered here. The registry's
	// get-or-create identity (name + label set) makes each lookup cheap
	// after the first query touches a shard id.
	reg *Metrics
}

// NewEngineMetrics registers the engine's metric set on m under the cpq_
// namespace and returns the handles.
func NewEngineMetrics(m *Metrics) *EngineMetrics {
	return &EngineMetrics{
		reg:         m,
		Queries:     m.Counter("cpq_queries_total", "Completed closest-pair queries."),
		QueryErrors: m.Counter("cpq_query_errors_total", "Closest-pair queries that returned an error."),
		QuerySeconds: m.Histogram("cpq_query_seconds", "Query latency in seconds.",
			ExpBuckets(100e-6, 4, 12)), // 100µs .. ~420s
		QueryAccesses: m.Histogram("cpq_query_accesses", "Disk accesses (buffer misses) per query.",
			ExpBuckets(4, 4, 12)),
		AccessesTotal: m.Counter("cpq_accesses_total", "Disk accesses (buffer misses) over all queries."),
		ResultDistance: m.Histogram("cpq_result_distance", "K-th closest distance at query completion.",
			ExpBuckets(1e-6, 10, 12)),
		NodeCacheHits:   m.Counter("cpq_node_cache_hits_total", "Decoded-node cache hits over all queries."),
		NodeCacheMisses: m.Counter("cpq_node_cache_misses_total", "Decoded-node cache misses over all queries."),
		NodeCacheHitRatio: m.Gauge("cpq_node_cache_hit_ratio",
			"Decoded-node cache hits / lookups over all queries (0 when no cache is attached)."),
		WorkerUtilization: m.Histogram("cpq_worker_utilization",
			"Busy time / (workers x wall time) per parallel query.",
			LinearBuckets(0.1, 0.1, 10)),
	}
}

// QueryReport is one finished query's cost summary, fed to EngineMetrics
// and the slow-query log by the engine.
type QueryReport struct {
	// Label describes the query (algorithm, K), as in the span label.
	Label string `json:"label"`
	// Seconds is the wall-clock latency.
	Seconds float64 `json:"seconds"`
	// Accesses is core.Stats.Accesses().
	Accesses int64 `json:"accesses"`
	// NodePairs and PointPairs are the work counters.
	NodePairs  int64 `json:"node_pairs"`
	PointPairs int64 `json:"point_pairs"`
	// CacheHits and CacheMisses are the decoded-node cache deltas.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Results is the number of pairs returned; KthDistance the largest
	// reported distance (0 when no results).
	Results     int     `json:"results"`
	KthDistance float64 `json:"kth_distance"`
	// Workers is the parallel worker count (1 = sequential).
	Workers int `json:"workers"`
	// Err is the error text for failed queries, empty on success.
	Err string `json:"err,omitempty"`
	// Explain, when non-nil, is the query's EXPLAIN/ANALYZE snapshot in
	// its canonical JSON form (internal/obs/explain). The facade attaches
	// it for explain-enabled queries so slow-query log lines carry the
	// full plan and execution breakdown of the outlier.
	Explain json.RawMessage `json:"explain,omitempty"`
}

// Record feeds one query report into the metric set. Nil-safe so the
// engine can call it unconditionally on its (possibly nil) handle.
func (em *EngineMetrics) Record(r QueryReport) {
	if em == nil {
		return
	}
	if r.Err != "" {
		em.QueryErrors.Inc()
		return
	}
	em.Queries.Inc()
	em.QuerySeconds.Observe(r.Seconds)
	em.QueryAccesses.Observe(float64(r.Accesses))
	em.AccessesTotal.Add(r.Accesses)
	if r.Results > 0 {
		em.ResultDistance.Observe(r.KthDistance)
	}
	em.NodeCacheHits.Add(r.CacheHits)
	em.NodeCacheMisses.Add(r.CacheMisses)
	if lookups := em.NodeCacheHits.Value() + em.NodeCacheMisses.Value(); lookups > 0 {
		em.NodeCacheHitRatio.Set(float64(em.NodeCacheHits.Value()) / float64(lookups))
	}
}

// ShardRecord is one shard's contribution to a sharded scatter-gather
// execution, fed to RecordShards by the shard executor at completion.
type ShardRecord struct {
	// Shard is the tile index (the metric label value).
	Shard int
	// Planned, Pruned and Joined count the shard-pair joins this shard
	// participated in: planned by the executor, eliminated by the
	// broadcast bound before dispatch, and actually dispatched.
	Planned, Pruned, Joined int64
	// Accesses is the shard's buffer-pool miss delta over the execution;
	// CacheHits/CacheMisses the decoded-node cache deltas.
	Accesses    int64
	CacheHits   int64
	CacheMisses int64
}

// RecordShards feeds one sharded execution's per-shard rows into the
// registry as cpq_shard_* counters labeled by shard id, so Prometheus
// exposition covers where a scatter-gather query's work went. Nil-safe on
// both the handle and a metric set built without a registry; like Record,
// it runs once per query on the gather goroutine, never inside a join.
func (em *EngineMetrics) RecordShards(rows []ShardRecord) {
	if em == nil || em.reg == nil {
		return
	}
	for _, r := range rows {
		l := Label{Key: "shard", Value: strconv.Itoa(r.Shard)}
		em.reg.Counter("cpq_shard_pairs_planned_total",
			"Shard-pair joins planned for this shard over all sharded queries.", l).Add(r.Planned)
		em.reg.Counter("cpq_shard_pairs_pruned_total",
			"Planned shard-pair joins the broadcast bound eliminated before dispatch.", l).Add(r.Pruned)
		em.reg.Counter("cpq_shard_pairs_joined_total",
			"Shard-pair joins dispatched through the transport for this shard.", l).Add(r.Joined)
		em.reg.Counter("cpq_shard_accesses_total",
			"Disk accesses (buffer-pool misses) charged to this shard's pools.", l).Add(r.Accesses)
		em.reg.Counter("cpq_shard_node_cache_hits_total",
			"Decoded-node cache hits on this shard's trees.", l).Add(r.CacheHits)
		em.reg.Counter("cpq_shard_node_cache_misses_total",
			"Decoded-node cache misses on this shard's trees.", l).Add(r.CacheMisses)
	}
}

package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONLWriter is a Tracer writing one JSON object per event to an
// io.Writer. It serializes by hand into a reused buffer — no
// encoding/json, no reflection — so tracing a hot query does not turn
// into an allocation storm; a mutex makes it safe for the parallel
// engine's workers.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLWriter returns a tracer writing JSON lines to w. Call Flush
// (or Err, which flushes) when done; the writer does not own w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Event implements Tracer.
func (j *JSONLWriter) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","span":`...)
	b = strconv.AppendUint(b, e.Span, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"ns":`...)
	b = strconv.AppendInt(b, e.Nanos, 10)
	// Trace correlation travels on the span-opening event only, and only
	// for child spans: root spans (Parent == 0) keep the pre-TraceContext
	// line shape byte for byte.
	if e.Kind == EvQueryStart && e.Parent != 0 {
		b = append(b, `,"trace":`...)
		b = strconv.AppendUint(b, e.Trace, 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, e.Parent, 10)
	}
	if e.Level != 0 || e.Level2 != 0 {
		b = append(b, `,"level":`...)
		b = strconv.AppendInt(b, int64(e.Level), 10)
		b = append(b, `,"level2":`...)
		b = strconv.AppendInt(b, int64(e.Level2), 10)
	}
	if e.Worker != 0 {
		b = append(b, `,"worker":`...)
		b = strconv.AppendInt(b, int64(e.Worker), 10)
	}
	if e.Source != SourceNone {
		b = append(b, `,"source":"`...)
		b = append(b, e.Source.String()...)
		b = append(b, '"')
	}
	if e.Kind == EvBoundTightened {
		b = append(b, `,"old":`...)
		b = appendJSONFloat(b, e.Old)
	}
	if e.Kind == EvBoundTightened || e.Kind == EvNodeExpanded || e.Kind == EvQueryEnd {
		b = append(b, `,"new":`...)
		b = appendJSONFloat(b, e.New)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, e.N, 10)
	}
	if e.Label != "" {
		b = append(b, `,"label":`...)
		b = appendJSONString(b, e.Label)
	}
	b = append(b, "}\n"...)
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// appendJSONFloat renders a float64 as a JSON number. JSON has no Inf or
// NaN; the engine's bounds start at +Inf, so map non-finite values to
// null (valid JSON, unambiguous on replay).
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString renders a JSON string with the required escapes.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// Flush drains buffered lines to the underlying writer.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err flushes and returns the first write error, if any.
func (j *JSONLWriter) Err() error { return j.Flush() }

package explain

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/obs"
)

// sampleExplain builds a representative snapshot covering every section of
// the model, shared by the golden and render tests.
func sampleExplain() *Explain {
	return &Explain{
		Plan: Plan{
			Label:     "HEAP k=8 shards=4",
			Algorithm: "HEAP",
			K:         8,
			Workers:   4,
			LeafScan:  "grid",
			Expand:    "batched",
			Decisions: []costmodel.Decision{{
				Subject: "leaf_scan", Choice: "grid",
				Reason: "expected pruning distance well below the leaf side",
				NA:     10000, NB: 10000, Overlap: 0.8, K: 8, Fanout: 14.7,
			}, {
				Subject: "shards", Choice: "4",
				Reason: "2x the 2 concurrent joins keeps workers busy",
				NA:     10000, NB: 10000, Overlap: 0.8, K: 8, Fanout: 14.7,
			}},
			Shards:    4,
			Transport: "inproc",
			Tiles: []Tile{
				{Index: 0, MinX: 0, MinY: 0, MaxX: 0.25, MaxY: 1},
				{Index: 1, MinX: 0.25, MinY: 0, MaxX: 0.5, MaxY: 1},
				{Index: 2, MinX: 0.5, MinY: 0, MaxX: 0.75, MaxY: 1},
				{Index: 3, Empty: true},
			},
		},
		Exec: Exec{
			DurationNS: 12_345_678,
			Phases: []Phase{
				{Name: "partition", DurationNS: 1_200_000},
				{Name: "build", DurationNS: 3_400_000},
				{Name: "dispatch", DurationNS: 100_000},
				{Name: "join", DurationNS: 6_500_000},
				{Name: "merge", DurationNS: 200_000},
			},
			ShardPairs: []ShardPair{
				{A: 0, B: 0, Status: StatusJoined, MinMinDist: 0, Bound: Unbounded,
					Worker: 1, DurationNS: 2_000_000, Results: 8, Accesses: 120, NodePairs: 64, PointPairs: 512},
				{A: 0, B: 1, Status: StatusJoined, MinMinDist: 0.001, Bound: 0.02,
					Worker: 2, DurationNS: 1_500_000, Results: 3, Accesses: 80, NodePairs: 40, PointPairs: 300},
				{A: 2, B: 3, Status: StatusPruned, MinMinDist: 0.5, Bound: 0.002},
			},
			Shards: []ShardStat{
				{Shard: 0, Planned: 2, Pruned: 0, Joined: 2, Accesses: 200, CacheHits: 10, CacheMisses: 2},
				{Shard: 1, Planned: 1, Pruned: 0, Joined: 1, Accesses: 80},
				{Shard: 2, Planned: 1, Pruned: 1, Joined: 0},
				{Shard: 3, Planned: 1, Pruned: 1, Joined: 0},
			},
			Bounds: []BoundStep{
				{Nanos: 800_000, Old: Unbounded, New: 0.02, Source: "kheap", Span: 18},
				{Nanos: 2_100_000, Old: 0.02, New: 0.002, Source: "merge", Span: 17},
			},
			Events: []KindCount{
				{Kind: "query_start", N: 3},
				{Kind: "node_expanded", N: 104},
				{Kind: "bound_tightened", N: 2},
			},
			Stats: Stats{
				Accesses: 280, ReadsP: 150, ReadsQ: 130, BufferHits: 900,
				NodePairsProcessed: 104, SubPairsGenerated: 800, SubPairsPruned: 512,
				PointPairsCompared: 812, MaxQueueSize: 37, NodeCacheHits: 10, NodeCacheMisses: 2,
			},
			Results:     8,
			KthDistance: 0.00132,
			Spans: []SpanNode{{
				Span: 17, Trace: 17, Label: "HEAP k=8 shards=4", DurationNS: 12_000_000,
				Events: 9, FinalBound: 0.002, Results: 8,
				Children: []SpanNode{
					{Span: 18, Trace: 17, Parent: 17, Label: "HEAP k=8", DurationNS: 2_000_000,
						Events: 60, FinalBound: 0.02, Results: 8},
					{Span: 19, Trace: 17, Parent: 17, Label: "HEAP k=8", DurationNS: 1_500_000,
						Events: 44, FinalBound: 0.002, Results: 3, Remote: true},
				},
			}},
		},
	}
}

// TestExplainGoldenRoundTrip pins the canonical JSON form byte for byte
// against the committed golden file and proves the encoding is stable
// under a decode/encode cycle.
func TestExplainGoldenRoundTrip(t *testing.T) {
	e := sampleExplain()
	got, err := e.JSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden.json")
	if os.Getenv("EXPLAIN_GOLDEN_REWRITE") != "" {
		if err := os.WriteFile(goldenPath, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with EXPLAIN_GOLDEN_REWRITE=1 go test ./internal/obs/explain -run TestExplainGoldenRoundTrip)", err)
	}
	want = bytes.TrimRight(want, "\n")
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical JSON drifted from testdata/golden.json:\n got: %s\nwant: %s", got, want)
	}

	// Round trip: decode the golden bytes and re-encode; byte-stable means
	// the two encodings are identical.
	var back Explain
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	again, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatalf("round trip not byte-stable:\n got: %s\nwant: %s", again, want)
	}
}

// TestCaptureSpanForest drives a Capture as a Tracer through a sharded
// query shape and checks the rebuilt span tree and bound trajectory.
func TestCaptureSpanForest(t *testing.T) {
	c := New(nil)
	root := obs.StartSpan(c, "query")
	rc := root.Context()
	child := obs.StartSpanFrom(c, rc, "join-0")
	child.Emit(obs.Event{Kind: obs.EvBoundTightened, Old: math.Inf(1), New: 0.5, Source: obs.SourceKHeap})
	child.End(0.5, 3, "")
	root.End(0.25, 8, "")

	snap := c.Snapshot()
	if len(snap.Exec.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1: %+v", len(snap.Exec.Spans), snap.Exec.Spans)
	}
	q := snap.Exec.Spans[0]
	if q.Trace != rc.TraceID || q.Span != rc.SpanID {
		t.Fatalf("root span = %+v, want trace %d span %d", q, rc.TraceID, rc.SpanID)
	}
	if len(q.Children) != 1 || q.Children[0].Label != "join-0" || q.Children[0].Trace != rc.TraceID {
		t.Fatalf("children = %+v", q.Children)
	}
	if q.FinalBound != 0.25 || q.Results != 8 {
		t.Fatalf("root end not captured: %+v", q)
	}
	if len(snap.Exec.Bounds) != 1 || snap.Exec.Bounds[0].Old != Unbounded || snap.Exec.Bounds[0].New != 0.5 {
		t.Fatalf("bounds = %+v, want one step inf→0.5", snap.Exec.Bounds)
	}
	if snap.Exec.Bounds[0].Source != "kheap" {
		t.Fatalf("bound source = %q", snap.Exec.Bounds[0].Source)
	}
}

// TestCaptureMergeSpans grafts a remote forest under the local query span
// (the wire-transport path) and checks orphan handling.
func TestCaptureMergeSpans(t *testing.T) {
	c := New(nil)
	root := obs.StartSpan(c, "query")
	rc := root.Context()
	c.MergeSpans([]SpanNode{{
		Span: 9001, Trace: rc.TraceID, Parent: rc.SpanID, Label: "remote join",
		Children: []SpanNode{{Span: 9002, Trace: rc.TraceID, Parent: 9001, Label: "inner"}},
	}})
	c.MergeSpans([]SpanNode{{Span: 7777, Trace: 42, Parent: 4242, Label: "orphan"}})
	root.End(1, 1, "")

	snap := c.Snapshot()
	if len(snap.Exec.Spans) != 2 {
		t.Fatalf("got %d roots, want query + orphan: %+v", len(snap.Exec.Spans), snap.Exec.Spans)
	}
	q := snap.Exec.Spans[0]
	if len(q.Children) != 1 || !q.Children[0].Remote || q.Children[0].Span != 9001 {
		t.Fatalf("remote child not grafted: %+v", q.Children)
	}
	if !q.Children[0].Children[0].Remote {
		t.Fatal("remote marking must recurse")
	}
	if snap.Exec.Spans[1].Span != 7777 || !snap.Exec.Spans[1].Remote {
		t.Fatalf("orphan = %+v", snap.Exec.Spans[1])
	}
}

// TestCaptureTee checks a user tracer still sees every event under
// -explain.
func TestCaptureTee(t *testing.T) {
	var got []obs.Event
	tee := tracerFunc(func(e obs.Event) { got = append(got, e) })
	c := New(tee)
	s := obs.StartSpan(c, "q")
	s.End(0, 0, "")
	if len(got) != 2 {
		t.Fatalf("tee saw %d events, want 2", len(got))
	}
}

type tracerFunc func(obs.Event)

func (f tracerFunc) Event(e obs.Event) { f(e) }

// TestNilCaptureZeroAlloc pins the disabled-hook discipline: every method
// on a nil *Capture is a no-op and allocates nothing.
func TestNilCaptureZeroAlloc(t *testing.T) {
	var c *Capture
	if c.Enabled() {
		t.Fatal("nil capture reports enabled")
	}
	if c.Snapshot() != nil {
		t.Fatal("nil capture returned a snapshot")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Event(obs.Event{Kind: obs.EvNodeExpanded})
		c.SetPlan(Plan{})
		c.Phase("join", 1)
		c.AddShardPair(ShardPair{A: 1, B: 2})
		c.SetShards(nil)
		c.SetResult(1, Stats{}, 1, 0.5)
		c.MergeSpans(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil capture allocated %.1f/op, want 0", allocs)
	}
}

// TestRender sanity-checks the text tree against the sample snapshot.
func TestRender(t *testing.T) {
	out := sampleExplain().Render()
	for _, want := range []string{
		"QUERY HEAP k=8 shards=4",
		"plan",
		"algorithm: HEAP  k=8  workers=4",
		"advisor leaf_scan → grid",
		"shards: 4 tiles via inproc",
		"tile 3: (empty)",
		"execution",
		"phases: partition 1.2ms",
		"shard pairs: 3 planned = 2 joined + 1 pruned",
		"[2,3] pruned",
		"bound trajectory: 2 tightenings, ∞ → 0.002",
		"stats: 280 accesses",
		"results: 8 pairs",
		"trace 17 · span 17",
		"remote",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if (*Explain)(nil).Render() != "" {
		t.Error("nil render must be empty")
	}
}

// TestKey pins the non-finite sanitizer.
func TestKey(t *testing.T) {
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if Key(v) != Unbounded {
			t.Errorf("Key(%v) = %v, want %v", v, Key(v), float64(Unbounded))
		}
	}
	if Key(0.5) != 0.5 || Key(0) != 0 {
		t.Error("Key must pass finite values through")
	}
}

// FuzzExplainRoundTrip feeds arbitrary JSON through the model and demands
// the canonical encoding be a fixed point: decode → encode → decode →
// encode must reproduce the first encoding byte for byte.
func FuzzExplainRoundTrip(f *testing.F) {
	seed, err := sampleExplain().JSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"plan":{"label":"STD k=1","algorithm":"STD","k":1,"workers":1,"leaf_scan":"sweep","expand":"batched"},"exec":{"duration_ns":1,"stats":{"accesses":2,"reads_p":1,"reads_q":1,"buffer_hits":0,"node_pairs":1,"sub_pairs_generated":0,"sub_pairs_pruned":0,"point_pairs":4,"max_queue_size":0,"node_cache_hits":0,"node_cache_misses":0},"results":1,"kth_distance":0.25}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var e Explain
		if err := json.Unmarshal(data, &e); err != nil {
			t.Skip()
		}
		first, err := e.JSON()
		if err != nil {
			// Hostile input can smuggle non-finite floats only through
			// strings; Go numbers parse finite, so encode must succeed.
			t.Skip()
		}
		var back Explain
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("canonical form does not decode: %v\n%s", err, first)
		}
		second, err := back.JSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("canonical encoding is not a fixed point:\n1: %s\n2: %s", first, second)
		}
	})
}

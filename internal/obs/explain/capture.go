package explain

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// Capture collects one query's EXPLAIN/ANALYZE data. It implements
// obs.Tracer, so attaching it as (or teeing it into) the query's tracer
// rebuilds the span tree and bound trajectory from the trace stream, while
// the gather-side code feeds it structured rows (plan, phases, shard-pair
// decisions) through the mutators.
//
// All methods are safe for concurrent use (parallel workers emit trace
// events) and nil-safe: every method on a nil *Capture returns
// immediately without touching its arguments, so capture points in the
// engine cost one pointer comparison when explain is off.
type Capture struct {
	mu     sync.Mutex
	inner  obs.Tracer // optional tee (the user's own tracer)
	plan   Plan
	phases []Phase
	pairs  []ShardPair
	shards []ShardStat
	bounds []BoundStep
	counts [int(obsKindCount)]int64
	spans  map[uint64]*spanState
	order  []uint64 // span ids in first-seen order
	merged []SpanNode
	dur    int64
	nres   int
	kth    float64
	stats  Stats
}

// obsKindCount mirrors the obs package's declared-kind count; the
// exhaustiveness test there pins it, and capturing an out-of-range kind
// just lands in the last bucket of a slightly larger array.
const obsKindCount = 32

type spanState struct {
	node   SpanNode
	events int64
}

// New returns an empty capture. inner, when non-nil, receives every event
// the capture sees (tee), so a user-supplied JSONL tracer keeps working
// under -explain.
func New(inner obs.Tracer) *Capture {
	return &Capture{inner: inner, spans: make(map[uint64]*spanState)}
}

// Enabled reports whether the capture collects (false for nil).
func (c *Capture) Enabled() bool { return c != nil }

// Event implements obs.Tracer: it maintains the span forest, the bound
// trajectory and the per-kind counts, and forwards to the tee.
func (c *Capture) Event(e obs.Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	k := int(e.Kind)
	if k >= obsKindCount {
		k = obsKindCount - 1
	}
	c.counts[k]++
	switch e.Kind {
	case obs.EvQueryStart:
		if _, ok := c.spans[e.Span]; !ok {
			c.spans[e.Span] = &spanState{node: SpanNode{
				Span: e.Span, Trace: e.Trace, Parent: e.Parent,
				Label: e.Label, FinalBound: Unbounded,
			}}
			c.order = append(c.order, e.Span)
		}
	case obs.EvQueryEnd:
		if s, ok := c.spans[e.Span]; ok {
			s.node.DurationNS = e.Nanos
			s.node.FinalBound = Key(e.New)
			s.node.Results = e.N
			s.node.Err = e.Label
		}
	case obs.EvBoundTightened:
		c.bounds = append(c.bounds, BoundStep{
			Nanos: e.Nanos, Old: Key(e.Old), New: Key(e.New),
			Source: e.Source.String(), Span: e.Span,
		})
	}
	if s, ok := c.spans[e.Span]; ok {
		s.events++
	}
	inner := c.inner
	c.mu.Unlock()
	if inner != nil {
		inner.Event(e)
	}
}

// SetTee routes every event the capture sees to tr as well, so a
// user-supplied tracer keeps working when the capture takes the tracer
// slot. Overwrites a tee given to New; call before the query starts.
func (c *Capture) SetTee(tr obs.Tracer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.inner = tr
	c.mu.Unlock()
}

// SetPlan records the query plan. Call once from the gather side before
// (or after — the capture does not order-check) execution.
func (c *Capture) SetPlan(p Plan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.plan = p
	c.mu.Unlock()
}

// SetPlanShards records the sharded layout on the plan — called once the
// partitioner has fixed the tile boundaries, separately from SetPlan
// because the facade knows the plan before the tiles exist.
func (c *Capture) SetPlanShards(shards int, transport string, tiles []Tile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.plan.Shards = shards
	c.plan.Transport = transport
	c.plan.Tiles = tiles
	c.mu.Unlock()
}

// Phase appends one named phase's wall time to the execution breakdown.
func (c *Capture) Phase(name string, ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.phases = append(c.phases, Phase{Name: name, DurationNS: ns})
	c.mu.Unlock()
}

// AddShardPair records one planned shard pair's fate (joined or pruned).
// Safe to call from executor workers.
func (c *Capture) AddShardPair(p ShardPair) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.pairs = append(c.pairs, p)
	c.mu.Unlock()
}

// SetShards records the per-shard work attribution rows.
func (c *Capture) SetShards(rows []ShardStat) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.shards = rows
	c.mu.Unlock()
}

// SetResult records the query's totals: wall time, aggregated counters,
// result count and the K-th distance.
func (c *Capture) SetResult(durNS int64, stats Stats, results int, kth float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.dur = durNS
	c.stats = stats
	c.nres = results
	c.kth = Key(kth)
	c.mu.Unlock()
}

// MergeSpans grafts span trees captured on another node (a wire
// transport's JoinResult.Spans) into this capture's forest. The nodes are
// marked Remote and keep their own ids; Snapshot links them under local
// spans by parent id when the remote side propagated the TraceContext.
func (c *Capture) MergeSpans(nodes []SpanNode) {
	if c == nil || len(nodes) == 0 {
		return
	}
	c.mu.Lock()
	for _, n := range nodes {
		markRemote(&n)
		c.merged = append(c.merged, n)
	}
	c.mu.Unlock()
}

func markRemote(n *SpanNode) {
	n.Remote = true
	for i := range n.Children {
		markRemote(&n.Children[i])
	}
}

// Snapshot assembles the explain report collected so far. The span forest
// is rebuilt from the trace stream: children attach under their parent
// span when it was captured locally; roots (and orphans whose parent ran
// elsewhere) surface at the top level, sorted by first appearance.
func (c *Capture) Snapshot() *Explain {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	e := &Explain{Plan: c.plan}
	e.Exec = Exec{
		DurationNS:  c.dur,
		Phases:      append([]Phase(nil), c.phases...),
		ShardPairs:  sortedPairs(c.pairs),
		Shards:      append([]ShardStat(nil), c.shards...),
		Bounds:      append([]BoundStep(nil), c.bounds...),
		Stats:       c.stats,
		Results:     c.nres,
		KthDistance: c.kth,
	}
	for k, n := range c.counts {
		if n > 0 {
			e.Exec.Events = append(e.Exec.Events, KindCount{Kind: obs.EventKind(k).String(), N: n})
		}
	}
	e.Exec.Spans = c.buildForest()
	return e
}

// sortedPairs orders shard-pair rows deterministically (by A then B):
// workers append concurrently, so arrival order varies run to run while
// the canonical JSON must not.
func sortedPairs(pairs []ShardPair) []ShardPair {
	out := append([]ShardPair(nil), pairs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// buildForest links captured spans into trees by parent id and grafts
// merged remote forests under their local parents. Caller holds c.mu.
func (c *Capture) buildForest() []SpanNode {
	if len(c.order) == 0 && len(c.merged) == 0 {
		return nil
	}
	// Group child ids under local parents, preserving first-seen order.
	children := make(map[uint64][]uint64)
	var roots []uint64
	for _, id := range c.order {
		s := c.spans[id]
		if p := s.node.Parent; p != 0 && c.spans[p] != nil {
			children[p] = append(children[p], id)
		} else {
			roots = append(roots, id)
		}
	}
	var build func(id uint64) SpanNode
	build = func(id uint64) SpanNode {
		s := c.spans[id]
		n := s.node
		n.Events = s.events
		for _, cid := range children[id] {
			n.Children = append(n.Children, build(cid))
		}
		for _, m := range c.merged {
			if m.Parent == id {
				n.Children = append(n.Children, m)
			}
		}
		return n
	}
	out := make([]SpanNode, 0, len(roots))
	for _, id := range roots {
		out = append(out, build(id))
	}
	// Remote trees whose parent was not captured locally surface as roots.
	attached := make(map[uint64]bool)
	for id := range c.spans {
		attached[id] = true
	}
	for _, m := range c.merged {
		if !attached[m.Parent] {
			out = append(out, m)
		}
	}
	return out
}

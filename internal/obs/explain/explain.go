// Package explain is the engine's per-query EXPLAIN/ANALYZE subsystem: a
// Capture that records one query's plan (algorithm, advisor decisions with
// their costmodel inputs, shard layout, transport) and execution (phase
// wall breakdown, per-shard-pair dispatch decisions, bound-tightening
// trajectory, span tree, full work counters), and renders the snapshot as
// a text tree or canonical JSON.
//
// The package sits beside the rest of internal/obs: it imports only obs,
// costmodel and the standard library, so core, shard and the facade can
// all feed it without cycles. A Capture doubles as an obs.Tracer, so one
// value both collects structured rows from the gather side and rebuilds
// the span tree from the trace stream — including spans opened on remote
// nodes, which wire transports return as SpanNode forests for MergeSpans.
//
// Everything is nil-safe in the PR 5 disabled-hook discipline: every
// method on a nil *Capture returns immediately, so explain-off query paths
// pay one pointer comparison per capture point and allocate nothing
// (enforced by the zero-alloc tests and the cpqlint obshooks check).
package explain

import (
	"encoding/json"

	"repro/internal/costmodel"
)

// Explain is one query's complete EXPLAIN/ANALYZE snapshot.
//
// The type (and everything it embeds) is built from structs and slices
// only — no maps — so encoding/json renders it with a fixed field order
// and the canonical encoding is byte-stable: Marshal ∘ Unmarshal is the
// identity on the bytes. Non-finite floats never appear (JSON has no Inf);
// the capture maps the engine's +Inf "no bound yet" sentinel to -1, see
// Unbounded.
type Explain struct {
	Plan Plan `json:"plan"`
	Exec Exec `json:"exec"`
}

// Unbounded is the serialized stand-in for the engine's +Inf pruning
// bound ("no bound established yet"): JSON has no Inf, and -1 is
// unambiguous since metric keys are squared distances (>= 0).
const Unbounded = -1

// Plan describes what the query decided to do before doing it.
type Plan struct {
	// Label is the engine's query label (core.QueryLabel), the same string
	// the span and the slow-query log use.
	Label string `json:"label"`
	// Algorithm is the CPQ algorithm's paper abbreviation (HEAP, STD, ...).
	Algorithm string `json:"algorithm"`
	// K is the number of closest pairs requested.
	K int `json:"k"`
	// Workers is the resolved parallel worker count (1 = sequential).
	Workers int `json:"workers"`
	// LeafScan and Expand are the chosen leaf-scan and expansion kernel
	// names (core option Stringers).
	LeafScan string `json:"leaf_scan"`
	Expand   string `json:"expand"`
	// Decisions are the advisor recommendations that shaped the plan, with
	// the costmodel inputs that produced them. Empty when the caller set
	// every knob explicitly.
	Decisions []costmodel.Decision `json:"decisions,omitempty"`
	// Shards is the tile count T of a sharded execution (0 or 1 =
	// unsharded); Transport names the shard-join transport ("inproc", a
	// wire transport's name); Tiles are the shard tile boundaries.
	Shards    int    `json:"shards,omitempty"`
	Transport string `json:"transport,omitempty"`
	Tiles     []Tile `json:"tiles,omitempty"`
}

// Tile is one shard's tile boundary: the union MBR of the shard's data
// from both sets. Empty marks a tile that received no data (its
// coordinates are zeroed: the engine's empty rectangle is a ±Inf sentinel
// JSON cannot carry).
type Tile struct {
	Index int     `json:"index"`
	MinX  float64 `json:"min_x"`
	MinY  float64 `json:"min_y"`
	MaxX  float64 `json:"max_x"`
	MaxY  float64 `json:"max_y"`
	Empty bool    `json:"empty,omitempty"`
}

// Exec describes what actually happened.
type Exec struct {
	// DurationNS is the query's total wall time.
	DurationNS int64 `json:"duration_ns"`
	// Phases is the wall breakdown in execution order (partition, build,
	// dispatch, join, merge for a sharded run).
	Phases []Phase `json:"phases,omitempty"`
	// ShardPairs has one row per planned shard pair, in decision order:
	// every pair the executor planned is either pruned here or joined
	// here, so the rows sum to the executor's planned/pruned counts.
	ShardPairs []ShardPair `json:"shard_pairs,omitempty"`
	// Shards attributes the work counters per shard (the same rows fed to
	// the cpq_shard_* metrics).
	Shards []ShardStat `json:"shards,omitempty"`
	// Bounds is the bound-tightening trajectory: every strict decrease of
	// the pruning bound, timestamped relative to its span's start.
	Bounds []BoundStep `json:"bounds,omitempty"`
	// Events counts the trace events per kind over the whole query.
	Events []KindCount `json:"events,omitempty"`
	// Stats are the aggregated work counters (core.Stats).
	Stats Stats `json:"stats"`
	// Results is the number of pairs returned; KthDistance the largest
	// reported distance (0 when no results).
	Results     int     `json:"results"`
	KthDistance float64 `json:"kth_distance"`
	// Spans is the query's span forest: the gather-side query span with
	// its shard-join children, including spans merged from remote nodes.
	Spans []SpanNode `json:"spans,omitempty"`
}

// Phase is one named phase's wall time.
type Phase struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// ShardPair is one planned shard-pair join and what became of it.
type ShardPair struct {
	// A and B are the two shard ids (A-side tile, B-side tile).
	A int `json:"a"`
	B int `json:"b"`
	// Status is "joined" or "pruned".
	Status string `json:"status"`
	// MinMinDist is the MINMINDIST key between the two tile MBRs; Bound is
	// the broadcast bound at decision time (Unbounded when no bound had
	// been established yet).
	MinMinDist float64 `json:"minmindist"`
	Bound      float64 `json:"bound"`
	// Worker is the executor worker that ran a joined pair.
	Worker int `json:"worker,omitempty"`
	// DurationNS, Results, Accesses, NodePairs and PointPairs describe a
	// joined pair's work (all zero for pruned pairs).
	DurationNS int64 `json:"duration_ns,omitempty"`
	Results    int   `json:"results,omitempty"`
	Accesses   int64 `json:"accesses,omitempty"`
	NodePairs  int64 `json:"node_pairs,omitempty"`
	PointPairs int64 `json:"point_pairs,omitempty"`
}

// Statuses for ShardPair.Status.
const (
	StatusJoined = "joined"
	StatusPruned = "pruned"
)

// ShardStat attributes executor work to one shard (mirrors
// obs.ShardRecord, which feeds the labeled metrics).
type ShardStat struct {
	Shard   int   `json:"shard"`
	Planned int64 `json:"planned"`
	Pruned  int64 `json:"pruned"`
	Joined  int64 `json:"joined"`
	// Accesses is the shard's buffer-pool miss delta; CacheHits and
	// CacheMisses the decoded-node cache deltas.
	Accesses    int64 `json:"accesses"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// BoundStep is one strict decrease of the pruning bound.
type BoundStep struct {
	// Nanos is the time since the emitting span started.
	Nanos int64 `json:"ns"`
	// Old and New are metric keys (squared distances); Old is Unbounded
	// for the first tightening from +Inf.
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Source names the pruning rule (obs.BoundSource).
	Source string `json:"source"`
	// Span is the emitting span's id (a shard join or the query span).
	Span uint64 `json:"span"`
}

// KindCount is one event kind's occurrence count.
type KindCount struct {
	Kind string `json:"kind"`
	N    int64  `json:"n"`
}

// Stats is core.Stats in canonical JSON form (explain stays import-free of
// core, which sits above obs in the build graph).
type Stats struct {
	Accesses           int64 `json:"accesses"`
	ReadsP             int64 `json:"reads_p"`
	ReadsQ             int64 `json:"reads_q"`
	BufferHits         int64 `json:"buffer_hits"`
	NodePairsProcessed int64 `json:"node_pairs"`
	SubPairsGenerated  int64 `json:"sub_pairs_generated"`
	SubPairsPruned     int64 `json:"sub_pairs_pruned"`
	PointPairsCompared int64 `json:"point_pairs"`
	MaxQueueSize       int   `json:"max_queue_size"`
	NodeCacheHits      int64 `json:"node_cache_hits"`
	NodeCacheMisses    int64 `json:"node_cache_misses"`
}

// SpanNode is one span of the query's trace, with its children. Wire
// transports return the remote side's forest in JoinResult.Spans; the
// gather side grafts it under the query span via MergeSpans.
type SpanNode struct {
	// Span is the span's id, Trace the distributed trace id it belongs
	// to, Parent the id of the span it was started from (0 for roots).
	Span   uint64 `json:"span"`
	Trace  uint64 `json:"trace"`
	Parent uint64 `json:"parent,omitempty"`
	// Label is the span's EvQueryStart label.
	Label string `json:"label"`
	// DurationNS is start-to-end wall time (0 if the span never ended).
	DurationNS int64 `json:"duration_ns"`
	// Events counts the span's own events (children excluded).
	Events int64 `json:"events"`
	// FinalBound is the final pruning bound at EvQueryEnd (Unbounded when
	// never tightened below +Inf); Results the span's result count; Err
	// the error text, empty on success.
	FinalBound float64 `json:"final_bound"`
	Results    int64   `json:"results"`
	Err        string  `json:"err,omitempty"`
	// Remote marks spans merged from another node's capture.
	Remote   bool       `json:"remote,omitempty"`
	Children []SpanNode `json:"children,omitempty"`
}

// JSON renders the snapshot in its canonical byte-stable form: fixed field
// order, no maps, no non-finite floats.
func (e *Explain) JSON() ([]byte, error) {
	return json.Marshal(e)
}

// JSONIndent renders the canonical form indented for human consumption.
func (e *Explain) JSONIndent() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// Key sanitizes a metric key for JSON: non-finite values (the engine's
// +Inf "no bound" sentinel, or a NaN from corrupt input) map to Unbounded.
func Key(v float64) float64 {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return Unbounded
	}
	return v
}

package explain

import (
	"fmt"
	"strings"
	"time"
)

// Render draws the snapshot as a text tree, the `cpqquery -explain`
// output: the plan first (what was decided and why), then the execution
// (where the time and the work went).
func (e *Explain) Render() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY %s\n", e.Plan.Label)

	// Plan.
	b.WriteString("├─ plan\n")
	planLines := []string{
		fmt.Sprintf("algorithm: %s  k=%d  workers=%d", e.Plan.Algorithm, e.Plan.K, e.Plan.Workers),
		fmt.Sprintf("leaf_scan: %s   expand: %s", e.Plan.LeafScan, e.Plan.Expand),
	}
	for _, d := range e.Plan.Decisions {
		planLines = append(planLines, fmt.Sprintf("advisor %s → %s — %s (n_a=%d n_b=%d overlap=%.2f k=%d fanout=%.1f)",
			d.Subject, d.Choice, d.Reason, d.NA, d.NB, d.Overlap, d.K, d.Fanout))
	}
	if e.Plan.Shards > 1 {
		planLines = append(planLines, fmt.Sprintf("shards: %d tiles via %s", e.Plan.Shards, e.Plan.Transport))
		for _, t := range e.Plan.Tiles {
			if t.Empty {
				planLines = append(planLines, fmt.Sprintf("tile %d: (empty)", t.Index))
				continue
			}
			planLines = append(planLines, fmt.Sprintf("tile %d: [%.4g, %.4g] × [%.4g, %.4g]",
				t.Index, t.MinX, t.MaxX, t.MinY, t.MaxY))
		}
	}
	writeBranch(&b, "│  ", planLines)

	// Execution.
	fmt.Fprintf(&b, "└─ execution (%s)\n", fmtDur(e.Exec.DurationNS))
	var lines []string
	if len(e.Exec.Phases) > 0 {
		parts := make([]string, len(e.Exec.Phases))
		for i, p := range e.Exec.Phases {
			parts[i] = fmt.Sprintf("%s %s", p.Name, fmtDur(p.DurationNS))
		}
		lines = append(lines, "phases: "+strings.Join(parts, " · "))
	}
	if len(e.Exec.ShardPairs) > 0 {
		var joined, pruned int
		for _, p := range e.Exec.ShardPairs {
			if p.Status == StatusPruned {
				pruned++
			} else {
				joined++
			}
		}
		lines = append(lines, fmt.Sprintf("shard pairs: %d planned = %d joined + %d pruned",
			len(e.Exec.ShardPairs), joined, pruned))
		for _, p := range e.Exec.ShardPairs {
			if p.Status == StatusPruned {
				lines = append(lines, fmt.Sprintf("  [%d,%d] pruned  minmin=%s bound=%s",
					p.A, p.B, fmtKey(p.MinMinDist), fmtKey(p.Bound)))
				continue
			}
			lines = append(lines, fmt.Sprintf("  [%d,%d] joined  minmin=%s bound=%s worker=%d %s: %d results, %d accesses, %d node pairs",
				p.A, p.B, fmtKey(p.MinMinDist), fmtKey(p.Bound), p.Worker, fmtDur(p.DurationNS),
				p.Results, p.Accesses, p.NodePairs))
		}
	}
	if len(e.Exec.Bounds) > 0 {
		lines = append(lines, fmt.Sprintf("bound trajectory: %d tightenings, %s → %s",
			len(e.Exec.Bounds), fmtKey(e.Exec.Bounds[0].Old), fmtKey(e.Exec.Bounds[len(e.Exec.Bounds)-1].New)))
		for _, s := range trajectoryHighlights(e.Exec.Bounds) {
			lines = append(lines, fmt.Sprintf("  @%s %s → %s (%s, span %d)",
				fmtDur(s.Nanos), fmtKey(s.Old), fmtKey(s.New), s.Source, s.Span))
		}
	}
	lines = append(lines, fmt.Sprintf("stats: %d accesses, %d node pairs, %d point pairs, cache %d/%d",
		e.Exec.Stats.Accesses, e.Exec.Stats.NodePairsProcessed, e.Exec.Stats.PointPairsCompared,
		e.Exec.Stats.NodeCacheHits, e.Exec.Stats.NodeCacheHits+e.Exec.Stats.NodeCacheMisses))
	lines = append(lines, fmt.Sprintf("results: %d pairs, k-th distance %.6g", e.Exec.Results, e.Exec.KthDistance))
	for _, s := range e.Exec.Spans {
		lines = append(lines, spanLines(s, 0)...)
	}
	writeBranch(&b, "   ", lines)
	return b.String()
}

// trajectoryHighlights keeps the trajectory readable: all steps when
// short, else first/last few.
func trajectoryHighlights(steps []BoundStep) []BoundStep {
	const max = 8
	if len(steps) <= max {
		return steps
	}
	out := append([]BoundStep(nil), steps[:max/2]...)
	return append(out, steps[len(steps)-max/2:]...)
}

func spanLines(s SpanNode, depth int) []string {
	indent := strings.Repeat("  ", depth)
	head := "span"
	if depth == 0 {
		head = fmt.Sprintf("trace %d · span", s.Trace)
	}
	where := ""
	if s.Remote {
		where = " remote"
	}
	status := ""
	if s.Err != "" {
		status = " err=" + s.Err
	}
	lines := []string{fmt.Sprintf("%s%s %d%s %q %s, %d events, %d results, final bound %s%s",
		indent, head, s.Span, where, s.Label, fmtDur(s.DurationNS), s.Events, s.Results,
		fmtKey(s.FinalBound), status)}
	for _, c := range s.Children {
		lines = append(lines, spanLines(c, depth+1)...)
	}
	return lines
}

// writeBranch writes lines as tree leaves under the current branch.
func writeBranch(b *strings.Builder, prefix string, lines []string) {
	for i, l := range lines {
		join := "├─ "
		if i == len(lines)-1 {
			join = "└─ "
		}
		b.WriteString(prefix + join + l + "\n")
	}
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// fmtKey renders a metric key, showing the Unbounded sentinel as ∞.
func fmtKey(v float64) string {
	if v == Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%.6g", v)
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestEventKindExhaustive pins EventKind.String and the JSONL encoding
// over every declared kind: a PR that appends a kind to the taxonomy
// (as PR 9 did with EvShard*) without naming it fails here instead of
// shipping "unknown" lines.
func TestEventKindExhaustive(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(0); k < evKindCount; k++ {
		name := k.String()
		if name == "unknown" {
			t.Errorf("declared kind %d stringifies as %q; add it to EventKind.String", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k

		// Every declared kind must encode as one valid JSON line whose
		// "kind" field round-trips the name.
		var buf bytes.Buffer
		w := NewJSONLWriter(&buf)
		w.Event(Event{Kind: k, New: 1.5, Old: 2.5, N: 7, Label: "x"})
		if err := w.Err(); err != nil {
			t.Fatalf("kind %s: %v", name, err)
		}
		var m map[string]any
		if err := json.Unmarshal(bytes.TrimRight(buf.Bytes(), "\n"), &m); err != nil {
			t.Fatalf("kind %s encodes invalid JSON: %v (%s)", name, err, buf.String())
		}
		if m["kind"] != name {
			t.Errorf("kind %s encodes as %v", name, m["kind"])
		}
	}
	if evKindCount.String() != "unknown" {
		t.Errorf("sentinel evKindCount has a String name; keep it last and unnamed")
	}
}

// TestStartSpanFrom pins the trace-propagation contract: a root span's
// trace id is its own id, a child inherits the parent's trace id and
// records the parent's span id, and every stamped event carries both.
func TestStartSpanFrom(t *testing.T) {
	tr := &captureTracer{}
	root := StartSpan(tr, "query")
	rc := root.Context()
	if rc.TraceID == 0 || rc.TraceID != rc.SpanID {
		t.Fatalf("root context = %+v, want trace id == span id != 0", rc)
	}
	child := StartSpanFrom(tr, rc, "shard-join")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace id %d, want parent's %d", cc.TraceID, rc.TraceID)
	}
	if cc.SpanID == rc.SpanID {
		t.Fatalf("child reused the parent span id %d", rc.SpanID)
	}
	child.Emit(Event{Kind: EvNodeExpanded})
	child.End(0, 1, "")
	for _, e := range tr.events[1:] { // events of the child span
		if e.Trace != rc.TraceID {
			t.Errorf("child event %s trace %d, want %d", e.Kind, e.Trace, rc.TraceID)
		}
		if e.Parent != rc.SpanID {
			t.Errorf("child event %s parent %d, want %d", e.Kind, e.Parent, rc.SpanID)
		}
	}

	// Nil-safety: a nil span yields the zero context, and a zero context
	// opens a fresh root trace.
	var nilSpan *Span
	if nilSpan.Context() != (TraceContext{}) {
		t.Fatalf("nil span context = %+v, want zero", nilSpan.Context())
	}
	if s := StartSpanFrom(nil, rc, "x"); s != nil {
		t.Fatalf("StartSpanFrom(nil tracer) = %v, want nil", s)
	}
}

// TestJSONLTraceFields pins the wire shape: root query_start lines keep
// the pre-TraceContext byte layout (no trace/parent keys), child spans
// carry both on query_start only.
func TestJSONLTraceFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	root := StartSpan(w, "q")
	child := StartSpanFrom(w, root.Context(), "join")
	child.Emit(Event{Kind: obsTestKindNode, New: 1})
	child.End(1, 1, "")
	root.End(1, 1, "")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	if strings.Contains(lines[0], `"trace"`) || strings.Contains(lines[0], `"parent"`) {
		t.Errorf("root query_start grew trace fields: %s", lines[0])
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	rc := root.Context()
	if m["trace"] != float64(rc.TraceID) || m["parent"] != float64(rc.SpanID) {
		t.Errorf("child query_start = %v, want trace=%d parent=%d", m, rc.TraceID, rc.SpanID)
	}
	for _, line := range lines[2:] {
		if strings.Contains(line, `"trace"`) {
			t.Errorf("non-start event carries trace fields: %s", line)
		}
	}
}

// obsTestKindNode keeps the test independent of specific event kinds.
const obsTestKindNode = EvNodeExpanded

package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of counters, gauges and histograms. Registration
// takes a lock; the metric handles it returns update through atomics only,
// so queries record into a shared registry without contention. Reading the
// same name (with the same labels and kind) twice returns the same handle.
type Metrics struct {
	mu      sync.Mutex
	byKey   map[string]anyMetric
	ordered []anyMetric // exposition order = registration order
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byKey: make(map[string]anyMetric)}
}

// Label is one constant name/value pair attached to a metric at
// registration. Values are escaped at exposition time and may contain any
// bytes; keys are sanitized like metric names.
type Label struct {
	Key, Value string
}

// desc is the identity shared by every metric kind.
type desc struct {
	name   string
	help   string
	labels []Label
}

// anyMetric is the registry's internal view of one metric.
type anyMetric interface {
	describe() desc
	kind() string // prometheus TYPE: counter, gauge, histogram
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid bytes become '_'; an empty or
// digit-leading name gains a '_' prefix.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizeLabelKey maps an arbitrary string onto the label-name charset
// [a-zA-Z_][a-zA-Z0-9_]* (no colons, unlike metric names).
func sanitizeLabelKey(s string) string {
	out := strings.ReplaceAll(sanitizeName(s), ":", "_")
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// normalize sanitizes a metric identity and fixes its label order.
func normalize(name, help string, labels []Label) desc {
	d := desc{name: sanitizeName(name), help: help}
	d.labels = make([]Label, len(labels))
	for i, l := range labels {
		d.labels[i] = Label{Key: sanitizeLabelKey(l.Key), Value: l.Value}
	}
	sort.SliceStable(d.labels, func(i, j int) bool { return d.labels[i].Key < d.labels[j].Key })
	return d
}

// key is the registry identity: name plus rendered label set.
func (d desc) key() string {
	var b strings.Builder
	b.WriteString(d.name)
	for _, l := range d.labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the existing metric under d's key or adds m. A key
// reused with a different kind panics: it is a programming error that
// would corrupt the exposition.
func (m *Metrics) register(d desc, fresh anyMetric) anyMetric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if got, ok := m.byKey[d.key()]; ok {
		if got.kind() != fresh.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
				d.name, fresh.kind(), got.kind()))
		}
		return got
	}
	m.byKey[d.key()] = fresh
	m.ordered = append(m.ordered, fresh)
	return fresh
}

// snapshot returns the registered metrics in registration order.
func (m *Metrics) snapshot() []anyMetric {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]anyMetric(nil), m.ordered...)
}

// Counter ---------------------------------------------------------------

// Counter is a monotonically increasing integer metric.
type Counter struct {
	d desc
	v atomic.Int64
}

// Counter registers (or finds) a counter.
func (m *Metrics) Counter(name, help string, labels ...Label) *Counter {
	d := normalize(name, help, labels)
	return m.register(d, &Counter{d: d}).(*Counter)
}

func (c *Counter) describe() desc { return c.d }
func (c *Counter) kind() string   { return "counter" }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge -----------------------------------------------------------------

// Gauge is a float metric that can go up and down.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Gauge registers (or finds) a gauge.
func (m *Metrics) Gauge(name, help string, labels ...Label) *Gauge {
	d := normalize(name, help, labels)
	return m.register(d, &Gauge{d: d}).(*Gauge)
}

func (g *Gauge) describe() desc { return g.d }
func (g *Gauge) kind() string   { return "gauge" }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; exact under concurrency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram -------------------------------------------------------------

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; a final +Inf bucket is implicit. All updates
// are atomic: Observe is one bucket increment, one count increment and one
// CAS-add on the sum.
type Histogram struct {
	d      desc
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (sorted and deduplicated; non-finite bounds are dropped — the
// +Inf bucket is always implicit).
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	d := normalize(name, help, labels)
	bounds := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			bounds = append(bounds, b)
		}
	}
	sort.Float64s(bounds)
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != bounds[i-1] {
			uniq = append(uniq, b)
		}
	}
	h := &Histogram{d: d, bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
	return m.register(d, h).(*Histogram)
}

func (h *Histogram) describe() desc { return h.d }
func (h *Histogram) kind() string   { return "histogram" }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket helpers --------------------------------------------------------

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns count upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

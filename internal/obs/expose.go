package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// This file is the exposition side of the registry: the Prometheus text
// format (version 0.0.4), an http.Handler serving it, expvar publication,
// and the optional net/http/pprof mounting — everything cpqbench's
// -metrics-addr/-pprof flags serve.

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format: a # HELP and # TYPE comment per metric, then the
// sample lines. Metric and label names were sanitized at registration;
// label values and help text are escaped here, so any registered identity
// encodes to parseable lines (FuzzMetricsExposition pins this).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, mt := range m.snapshot() {
		d := mt.describe()
		if d.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", d.name, escapeHelp(d.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", d.name, mt.kind())
		switch v := mt.(type) {
		case *Counter:
			writeSample(bw, d.name, d.labels, "", "", float64(v.Value()))
		case *Gauge:
			writeSample(bw, d.name, d.labels, "", "", v.Value())
		case *Histogram:
			cum := int64(0)
			for i, bound := range v.bounds {
				cum += v.counts[i].Load()
				writeSample(bw, d.name+"_bucket", d.labels, "le", formatFloat(bound), float64(cum))
			}
			cum += v.counts[len(v.bounds)].Load()
			writeSample(bw, d.name+"_bucket", d.labels, "le", "+Inf", float64(cum))
			writeSample(bw, d.name+"_sum", d.labels, "", "", v.Sum())
			writeSample(bw, d.name+"_count", d.labels, "", "", float64(v.Count()))
		}
	}
	return bw.Flush()
}

// writeSample writes one sample line: name{labels,extraKey="extraVal"} value.
func writeSample(w *bufio.Writer, name string, labels []Label, extraKey, extraVal string, value float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		w.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l.Key)
			w.WriteString(`="`)
			w.WriteString(escapeLabelValue(l.Value))
			w.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(extraKey)
			w.WriteString(`="`)
			w.WriteString(escapeLabelValue(extraVal))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(value))
	w.WriteByte('\n')
}

// formatFloat renders a sample value ("+Inf", "-Inf" and "NaN" included).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double quote and newline, the three
// characters the text format requires escaped inside label values.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// escapeHelp escapes backslash and newline in help text.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, "\r", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler returns an http.Handler serving the registry in the Prometheus
// text format (mount it on /metrics).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}

// defaultMetrics is the process-wide registry behind Default and Handler.
var (
	defaultOnce    sync.Once
	defaultMetrics *Metrics
)

// Default returns the process-wide registry, creating it on first use.
func Default() *Metrics {
	defaultOnce.Do(func() { defaultMetrics = NewMetrics() })
	return defaultMetrics
}

// Handler serves the Default registry in the Prometheus text format.
func Handler() http.Handler { return Default().Handler() }

// PublishExpvar publishes the registry under the given expvar name as one
// JSON object {metricName: value | {bucket counts...}}. Publishing the
// same name twice (even across registries) keeps the first publication,
// since the expvar namespace is global and re-publishing panics.
func (m *Metrics) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, mt := range m.snapshot() {
			d := mt.describe()
			key := d.name
			for _, l := range d.labels {
				key += ";" + l.Key + "=" + l.Value
			}
			switch v := mt.(type) {
			case *Counter:
				out[key] = v.Value()
			case *Gauge:
				out[key] = v.Value()
			case *Histogram:
				out[key] = map[string]any{"count": v.Count(), "sum": v.Sum()}
			}
		}
		return out
	}))
}

// NewServeMux returns a mux exposing the registry on /metrics and expvar
// on /debug/vars; with withPprof it also mounts the net/http/pprof
// profiling handlers under /debug/pprof/. This is the single switch the
// CLI flags (-metrics-addr, -pprof) toggle — profiling endpoints stay off
// unless explicitly requested.
func NewServeMux(m *Metrics, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// pageFileContract exercises the PageFile contract against any
// implementation.
func pageFileContract(t *testing.T, f PageFile) {
	t.Helper()
	ps := f.PageSize()
	if f.NumPages() != 0 {
		t.Fatalf("fresh file has %d pages", f.NumPages())
	}

	// Allocation yields sequential ids and zeroed contents.
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if id != PageID(i) {
			t.Fatalf("Allocate returned %d, want %d", id, i)
		}
		ids = append(ids, id)
	}
	if f.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", f.NumPages())
	}
	buf := make([]byte, ps)
	if err := f.ReadPage(ids[3], buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, ps)) {
		t.Fatal("fresh page is not zeroed")
	}

	// Round trip.
	want := make([]byte, ps)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := f.WritePage(ids[2], want); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, ps)
	if err := f.ReadPage(ids[2], got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page round trip mismatch")
	}
	// Neighbors untouched.
	if err := f.ReadPage(ids[1], got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, make([]byte, ps)) {
		t.Fatal("write leaked into neighbor page")
	}

	// Errors.
	if err := f.ReadPage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("ReadPage(99) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.ReadPage(-1, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("ReadPage(-1) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.WritePage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("WritePage(99) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.ReadPage(0, make([]byte, ps-1)); !errors.Is(err, ErrBadPageSize) {
		t.Errorf("short buffer err = %v, want ErrBadPageSize", err)
	}
	if err := f.WritePage(0, make([]byte, ps+1)); !errors.Is(err, ErrBadPageSize) {
		t.Errorf("long buffer err = %v, want ErrBadPageSize", err)
	}
}

func TestMemFileContract(t *testing.T) {
	f := NewMemFile(256)
	defer f.Close()
	pageFileContract(t, f)
}

func TestDiskFileContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := CreateDiskFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pageFileContract(t, f)
}

func TestDiskFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 128)
	if err := f.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d", g.NumPages())
	}
	got := make([]byte, 128)
	if err := g.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page lost across reopen")
	}
}

func TestDiskFileOpenBadLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := CreateDiskFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenDiskFile(path, 64); err == nil {
		t.Fatal("OpenDiskFile with mismatched page size must fail")
	}
}

func TestMemFileClosed(t *testing.T) {
	f := NewMemFile(64)
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	buf := make([]byte, 64)
	if err := f.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close err = %v", err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("allocate after close err = %v", err)
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 2, Hits: 5, Evictions: 1}
	b := IOStats{Reads: 3, Writes: 1, Hits: 2, Evictions: 1}
	sum := a.Add(b)
	if sum.Reads != 13 || sum.Writes != 3 || sum.Hits != 7 || sum.Evictions != 2 {
		t.Errorf("Add = %+v", sum)
	}
	diff := a.Sub(b)
	if diff.Reads != 7 || diff.Writes != 1 || diff.Hits != 3 || diff.Evictions != 0 {
		t.Errorf("Sub = %+v", diff)
	}
	if a.Accesses() != 10 {
		t.Errorf("Accesses = %d", a.Accesses())
	}
	if s := a.String(); s == "" {
		t.Error("empty String")
	}
}

package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the failure produced by a FaultFile when a trigger fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultFile wraps a PageFile and injects failures for testing: after
// FailReadAfter / FailWriteAfter successful operations of the respective
// kind, every further operation of that kind fails with ErrInjected until
// the countdown is reset. A zero countdown (the default) never fires.
// It is used by the failure-injection tests of the R-tree and the join
// algorithms, and is exported so downstream users can test their own
// error handling.
type FaultFile struct {
	mu     sync.Mutex
	inner  PageFile
	reads  int64
	writes int64
	// failRead / failWrite are the remaining successful operations before
	// failures start; negative means disarmed.
	failRead  int64
	failWrite int64
}

// NewFaultFile wraps inner with disarmed fault triggers.
func NewFaultFile(inner PageFile) *FaultFile {
	return &FaultFile{inner: inner, failRead: -1, failWrite: -1}
}

// FailReadAfter arms the read trigger: the next n reads succeed, every
// read after that fails. n = 0 fails immediately; pass a negative n to
// disarm.
func (f *FaultFile) FailReadAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRead = n
	f.reads = 0
}

// FailWriteAfter arms the write trigger analogously.
func (f *FaultFile) FailWriteAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrite = n
	f.writes = 0
}

// PageSize implements PageFile.
func (f *FaultFile) PageSize() int { return f.inner.PageSize() }

// NumPages implements PageFile.
func (f *FaultFile) NumPages() int64 { return f.inner.NumPages() }

// Allocate implements PageFile.
func (f *FaultFile) Allocate() (PageID, error) { return f.inner.Allocate() }

// ReadPage implements PageFile, failing once the read trigger fires.
func (f *FaultFile) ReadPage(id PageID, buf []byte) error {
	f.mu.Lock()
	armed := f.failRead >= 0
	fire := armed && f.reads >= f.failRead
	f.reads++
	f.mu.Unlock()
	if fire {
		return ErrInjected
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements PageFile, failing once the write trigger fires.
func (f *FaultFile) WritePage(id PageID, buf []byte) error {
	f.mu.Lock()
	armed := f.failWrite >= 0
	fire := armed && f.writes >= f.failWrite
	f.writes++
	f.mu.Unlock()
	if fire {
		return ErrInjected
	}
	return f.inner.WritePage(id, buf)
}

// Close implements PageFile.
func (f *FaultFile) Close() error { return f.inner.Close() }

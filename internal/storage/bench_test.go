package storage

import "testing"

func BenchmarkBufferGetHit(b *testing.B) {
	f := NewMemFile(1024)
	id, _ := f.Allocate()
	p := NewBufferPool(f, 16)
	if _, err := p.Get(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferGetMiss(b *testing.B) {
	f := NewMemFile(1024)
	for i := 0; i < 1024; i++ {
		f.Allocate()
	}
	p := NewBufferPool(f, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(PageID(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

package storage

import (
	"fmt"
	"sync"
)

// Policy selects the page replacement policy of a BufferPool. The paper
// (following Leutenegger & Lopez, ICDE 1998) uses LRU throughout; FIFO and
// CLOCK are provided for the replacement-policy ablation.
type Policy int

const (
	// LRU evicts the least recently used page (the paper's policy).
	LRU Policy = iota
	// FIFO evicts the page resident longest, regardless of use.
	FIFO
	// Clock is the classic second-chance approximation of LRU.
	Clock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Clock:
		return "CLOCK"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the available replacement policies.
func Policies() []Policy { return []Policy{LRU, FIFO, Clock} }

// BufferPool is a write-through page cache in front of a PageFile, using
// LRU replacement by default (FIFO and CLOCK are available for ablation).
//
// The experimental setup of the paper dedicates an LRU buffer of B pages to
// each query, split as B/2 pages per R-tree; a capacity of zero disables
// caching entirely so every page read is a disk access. BufferPool counts
// hits, misses (reads), writes and evictions; the miss counter is the
// paper's "disk accesses" metric.
//
// BufferPool is safe for concurrent use. Get returns the pooled page slice
// for efficiency; callers must treat it as read-only and must not retain it
// across another pool call (it may be evicted and reused).
type BufferPool struct {
	mu       sync.Mutex
	file     PageFile
	capacity int
	policy   Policy
	stats    IOStats

	entries map[PageID]*bufEntry
	// Intrusive LRU list: head is most recently used, tail least.
	head, tail *bufEntry
	// free keeps evicted entries for reuse to avoid re-allocating page
	// buffers under churn.
	free *bufEntry
}

type bufEntry struct {
	id         PageID
	data       []byte
	prev, next *bufEntry
	referenced bool // CLOCK second-chance bit
}

// NewBufferPool wraps file with an LRU cache of the given capacity
// (in pages). A capacity of 0 turns the pool into a pure pass-through
// counter.
func NewBufferPool(file PageFile, capacity int) *BufferPool {
	return NewBufferPoolWithPolicy(file, capacity, LRU)
}

// NewBufferPoolWithPolicy wraps file with a page cache using the given
// replacement policy.
func NewBufferPoolWithPolicy(file PageFile, capacity int, policy Policy) *BufferPool {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative buffer capacity %d", capacity))
	}
	switch policy {
	case LRU, FIFO, Clock:
	default:
		panic(fmt.Sprintf("storage: unknown replacement policy %d", int(policy)))
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		policy:   policy,
		entries:  make(map[PageID]*bufEntry, capacity),
	}
}

// Policy returns the pool's replacement policy.
func (b *BufferPool) Policy() Policy { return b.policy }

// File returns the underlying page file.
func (b *BufferPool) File() PageFile { return b.file }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// PageSize returns the page size of the underlying file.
func (b *BufferPool) PageSize() int { return b.file.PageSize() }

// Allocate appends a fresh page to the underlying file.
func (b *BufferPool) Allocate() (PageID, error) {
	return b.file.Allocate()
}

// Get returns the contents of page id, reading it from the file on a miss.
// The returned slice is owned by the pool: read-only, valid until the next
// pool call.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[id]; ok {
		b.stats.Hits++
		b.touch(e)
		return e.data, nil
	}
	b.stats.Reads++
	if b.capacity == 0 {
		// Pass-through: use a single scratch entry kept on the free list.
		e := b.takeFree()
		if err := b.file.ReadPage(id, e.data); err != nil {
			b.putFree(e)
			return nil, err
		}
		data := e.data
		b.putFree(e)
		return data, nil
	}
	e := b.takeFree()
	if err := b.file.ReadPage(id, e.data); err != nil {
		b.putFree(e)
		return nil, err
	}
	e.id = id
	b.insertFront(e)
	b.entries[id] = e
	b.evictOverflow()
	return e.data, nil
}

// Write stores buf as the contents of page id, write-through to the file,
// and refreshes the cached copy if present (or caches it when capacity
// allows).
func (b *BufferPool) Write(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.file.WritePage(id, buf); err != nil {
		return err
	}
	b.stats.Writes++
	if b.capacity == 0 {
		return nil
	}
	if e, ok := b.entries[id]; ok {
		copy(e.data, buf)
		b.touch(e)
		return nil
	}
	e := b.takeFree()
	copy(e.data, buf)
	e.id = id
	b.insertFront(e)
	b.entries[id] = e
	b.evictOverflow()
	return nil
}

// Invalidate drops page id from the cache (used when a page is freed).
func (b *BufferPool) Invalidate(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[id]; ok {
		b.unlink(e)
		delete(b.entries, id)
		b.putFree(e)
	}
}

// Clear empties the cache without touching the statistics.
func (b *BufferPool) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, e := range b.entries {
		b.unlink(e)
		delete(b.entries, id)
		b.putFree(e)
	}
}

// Resize changes the capacity, evicting LRU pages if shrinking.
func (b *BufferPool) Resize(capacity int) {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative buffer capacity %d", capacity))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = capacity
	b.evictOverflow()
}

// Len returns the number of cached pages.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Stats returns a snapshot of the counters.
func (b *BufferPool) Stats() IOStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the counters (cache contents are preserved).
func (b *BufferPool) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = IOStats{}
}

// locked helpers ------------------------------------------------------------

func (b *BufferPool) takeFree() *bufEntry {
	if e := b.free; e != nil {
		b.free = e.next
		e.next = nil
		return e
	}
	return &bufEntry{data: make([]byte, b.file.PageSize())}
}

func (b *BufferPool) putFree(e *bufEntry) {
	e.prev = nil
	e.id = InvalidPageID
	e.referenced = false
	e.next = b.free
	b.free = e
}

func (b *BufferPool) insertFront(e *bufEntry) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *BufferPool) unlink(e *bufEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *BufferPool) moveToFront(e *bufEntry) {
	if b.head == e {
		return
	}
	b.unlink(e)
	b.insertFront(e)
}

// touch records a page use according to the replacement policy.
func (b *BufferPool) touch(e *bufEntry) {
	switch b.policy {
	case LRU:
		b.moveToFront(e)
	case FIFO:
		// Residency order only; uses are ignored.
	case Clock:
		e.referenced = true
	}
}

func (b *BufferPool) evictOverflow() {
	for len(b.entries) > b.capacity {
		victim := b.tail
		if victim == nil {
			return
		}
		if b.policy == Clock {
			// Second chance: rotate referenced pages to the front with
			// their bit cleared until an unreferenced victim surfaces.
			for victim.referenced {
				victim.referenced = false
				b.moveToFront(victim)
				victim = b.tail
			}
		}
		b.unlink(victim)
		delete(b.entries, victim.id)
		b.stats.Evictions++
		b.putFree(victim)
	}
}

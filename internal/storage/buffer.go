package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Policy selects the page replacement policy of a BufferPool. The paper
// (following Leutenegger & Lopez, ICDE 1998) uses LRU throughout; FIFO and
// CLOCK are provided for the replacement-policy ablation.
type Policy int

const (
	// LRU evicts the least recently used page (the paper's policy).
	LRU Policy = iota
	// FIFO evicts the page resident longest, regardless of use.
	FIFO
	// Clock is the classic second-chance approximation of LRU.
	Clock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Clock:
		return "CLOCK"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the available replacement policies.
func Policies() []Policy { return []Policy{LRU, FIFO, Clock} }

// BufferPool is a write-through page cache in front of a PageFile, using
// LRU replacement by default (FIFO and CLOCK are available for ablation).
//
// The experimental setup of the paper dedicates an LRU buffer of B pages to
// each query, split as B/2 pages per R-tree; a capacity of zero disables
// caching entirely so every page read is a disk access. BufferPool counts
// hits, misses (reads), writes and evictions; the miss counter is the
// paper's "disk accesses" metric. The counters are atomic, so they stay
// exact when many goroutines hammer the pool concurrently.
//
// The pool is split into one or more lock-striped shards (pages map to
// shards by page id). The default single shard is an exact global LRU and
// reproduces the paper's replacement behaviour byte for byte; sharded
// pools (NewShardedBufferPool) trade exact global LRU for per-shard LRU so
// that concurrent readers do not serialize on one mutex.
//
// BufferPool is safe for concurrent use, with one caveat: Get returns the
// pooled page slice for efficiency, and that slice may be evicted and
// reused by a concurrent pool call. Single-goroutine callers may treat the
// slice as read-only until their next pool call (the historical contract);
// concurrent readers must use View, which runs the callback while the
// shard lock pins the page.
type BufferPool struct {
	file   PageFile
	policy Policy
	shards []*bufShard

	// capMu serializes capacity changes (Resize) so the per-shard split
	// stays consistent; capacity is the total across shards.
	capMu    sync.Mutex
	capacity int

	hits, reads, writes, evictions atomic.Int64

	// tracer, when non-nil, receives a pool_evict event per page eviction.
	// Set it before concurrent use; nil (the default) costs one pointer
	// comparison per eviction and nothing on hits or misses.
	tracer obs.Tracer
}

// bufShard is one lock stripe: an independent replacement domain over the
// pages that hash to it.
type bufShard struct {
	pool     *BufferPool
	mu       sync.Mutex
	capacity int
	entries  map[PageID]*bufEntry
	// Intrusive LRU list: head is most recently used, tail least.
	head, tail *bufEntry
	// free keeps evicted entries for reuse to avoid re-allocating page
	// buffers under churn.
	free *bufEntry
}

type bufEntry struct {
	id         PageID
	data       []byte
	prev, next *bufEntry
	referenced bool // CLOCK second-chance bit
}

// NewBufferPool wraps file with an LRU cache of the given capacity
// (in pages). A capacity of 0 turns the pool into a pure pass-through
// counter.
func NewBufferPool(file PageFile, capacity int) *BufferPool {
	return NewBufferPoolWithPolicy(file, capacity, LRU)
}

// NewBufferPoolWithPolicy wraps file with a page cache using the given
// replacement policy.
func NewBufferPoolWithPolicy(file PageFile, capacity int, policy Policy) *BufferPool {
	return NewShardedBufferPool(file, capacity, 1, policy)
}

// NewShardedBufferPool wraps file with a page cache striped over the given
// number of shards. Pages map to shards by page id; the total capacity is
// distributed as evenly as possible across shards, each an independent
// replacement domain. One shard is the exact global policy of the paper's
// setup; more shards reduce lock contention for parallel queries at the
// cost of an approximate global LRU (per-shard miss counts can deviate
// slightly from the single-shard pool on the same access sequence).
func NewShardedBufferPool(file PageFile, capacity, shards int, policy Policy) *BufferPool {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative buffer capacity %d", capacity))
	}
	if shards < 1 {
		panic(fmt.Sprintf("storage: buffer pool needs at least one shard, got %d", shards))
	}
	switch policy {
	case LRU, FIFO, Clock:
	default:
		panic(fmt.Sprintf("storage: unknown replacement policy %d", int(policy)))
	}
	b := &BufferPool{
		file:     file,
		policy:   policy,
		capacity: capacity,
		shards:   make([]*bufShard, shards),
	}
	for i := range b.shards {
		b.shards[i] = &bufShard{pool: b, entries: make(map[PageID]*bufEntry)}
	}
	b.splitCapacity(capacity)
	return b
}

// splitCapacity distributes the total capacity over the shards: the first
// capacity%shards shards get one extra page. Callers hold capMu (or are
// the constructor).
func (b *BufferPool) splitCapacity(capacity int) {
	n := len(b.shards)
	base, extra := capacity/n, capacity%n
	for i, s := range b.shards {
		c := base
		if i < extra {
			c++
		}
		s.mu.Lock()
		s.capacity = c
		s.evictOverflow()
		s.mu.Unlock()
	}
}

// shardFor maps a page id to its lock stripe.
func (b *BufferPool) shardFor(id PageID) *bufShard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	return b.shards[uint64(id)%uint64(len(b.shards))]
}

// Policy returns the pool's replacement policy.
func (b *BufferPool) Policy() Policy { return b.policy }

// Shards returns the number of lock stripes.
func (b *BufferPool) Shards() int { return len(b.shards) }

// File returns the underlying page file.
func (b *BufferPool) File() PageFile { return b.file }

// Capacity returns the pool capacity in pages (total across shards).
func (b *BufferPool) Capacity() int {
	b.capMu.Lock()
	defer b.capMu.Unlock()
	return b.capacity
}

// PageSize returns the page size of the underlying file.
func (b *BufferPool) PageSize() int { return b.file.PageSize() }

// Allocate appends a fresh page to the underlying file.
func (b *BufferPool) Allocate() (PageID, error) {
	return b.file.Allocate()
}

// Get returns the contents of page id, reading it from the file on a miss.
// The returned slice is owned by the pool: read-only, valid until the next
// pool call from any goroutine. Concurrent readers must use View instead,
// which keeps the page pinned while the callback runs.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	var out []byte
	err := b.shardFor(id).view(id, func(data []byte) error {
		out = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// View calls fn with the contents of page id while the page is pinned by
// its shard lock, reading it from the file on a miss. The slice is only
// valid for the duration of fn; fn must treat it as read-only and must not
// call back into the pool (self-deadlock). This is the concurrency-safe
// read path: unlike Get, the data cannot be evicted and reused by another
// goroutine while fn runs.
func (b *BufferPool) View(id PageID, fn func(data []byte) error) error {
	return b.shardFor(id).view(id, fn)
}

func (s *bufShard) view(id PageID, fn func(data []byte) error) error {
	b := s.pool
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		b.hits.Add(1)
		s.touch(e)
		return fn(e.data)
	}
	b.reads.Add(1)
	e := s.takeFree()
	if err := b.file.ReadPage(id, e.data); err != nil {
		s.putFree(e)
		return err
	}
	if s.capacity == 0 {
		// Pass-through: use a scratch entry kept on the free list.
		err := fn(e.data)
		s.putFree(e)
		return err
	}
	e.id = id
	s.insertFront(e)
	s.entries[id] = e
	s.evictOverflow()
	return fn(e.data)
}

// Write stores buf as the contents of page id, write-through to the file,
// and refreshes the cached copy if present (or caches it when capacity
// allows).
func (b *BufferPool) Write(id PageID, buf []byte) error {
	s := b.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := b.file.WritePage(id, buf); err != nil {
		return err
	}
	b.writes.Add(1)
	if s.capacity == 0 {
		return nil
	}
	if e, ok := s.entries[id]; ok {
		copy(e.data, buf)
		s.touch(e)
		return nil
	}
	e := s.takeFree()
	copy(e.data, buf)
	e.id = id
	s.insertFront(e)
	s.entries[id] = e
	s.evictOverflow()
	return nil
}

// Invalidate drops page id from the cache (used when a page is freed).
func (b *BufferPool) Invalidate(id PageID) {
	s := b.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		s.unlink(e)
		delete(s.entries, id)
		s.putFree(e)
	}
}

// Clear empties the cache without touching the statistics.
func (b *BufferPool) Clear() {
	for _, s := range b.shards {
		s.mu.Lock()
		for id, e := range s.entries {
			s.unlink(e)
			delete(s.entries, id)
			s.putFree(e)
		}
		s.mu.Unlock()
	}
}

// Resize changes the total capacity, evicting LRU pages if shrinking.
func (b *BufferPool) Resize(capacity int) {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative buffer capacity %d", capacity))
	}
	b.capMu.Lock()
	defer b.capMu.Unlock()
	b.capacity = capacity
	b.splitCapacity(capacity)
}

// Len returns the number of cached pages.
func (b *BufferPool) Len() int {
	n := 0
	for _, s := range b.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters. Each counter is individually
// exact under concurrency; the snapshot as a whole is not a point-in-time
// cut while other goroutines are mid-operation.
func (b *BufferPool) Stats() IOStats {
	return IOStats{
		Reads:     b.reads.Load(),
		Writes:    b.writes.Load(),
		Hits:      b.hits.Load(),
		Evictions: b.evictions.Load(),
	}
}

// SetTracer attaches (or, with nil, detaches) a tracer receiving eviction
// events. Set it before concurrent pool use.
func (b *BufferPool) SetTracer(tr obs.Tracer) { b.tracer = tr }

// traceEvict emits one page eviction. Called under the shard lock; the
// tracer must not call back into the pool.
func (b *BufferPool) traceEvict(id PageID) {
	if b.tracer == nil {
		return
	}
	b.tracer.Event(obs.Event{Kind: obs.EvPoolEvict, N: int64(id)})
}

// ResetStats zeroes the counters (cache contents are preserved).
func (b *BufferPool) ResetStats() {
	b.reads.Store(0)
	b.writes.Store(0)
	b.hits.Store(0)
	b.evictions.Store(0)
}

// locked shard helpers ------------------------------------------------------

func (s *bufShard) takeFree() *bufEntry {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &bufEntry{data: make([]byte, s.pool.file.PageSize())}
}

func (s *bufShard) putFree(e *bufEntry) {
	e.prev = nil
	e.id = InvalidPageID
	e.referenced = false
	e.next = s.free
	s.free = e
}

func (s *bufShard) insertFront(e *bufEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *bufShard) unlink(e *bufEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *bufShard) moveToFront(e *bufEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.insertFront(e)
}

// touch records a page use according to the replacement policy.
func (s *bufShard) touch(e *bufEntry) {
	switch s.pool.policy {
	case LRU:
		s.moveToFront(e)
	case FIFO:
		// Residency order only; uses are ignored.
	case Clock:
		e.referenced = true
	}
}

func (s *bufShard) evictOverflow() {
	for len(s.entries) > s.capacity {
		victim := s.tail
		if victim == nil {
			return
		}
		if s.pool.policy == Clock {
			// Second chance: rotate referenced pages to the front with
			// their bit cleared until an unreferenced victim surfaces.
			for victim.referenced {
				victim.referenced = false
				s.moveToFront(victim)
				victim = s.tail
			}
		}
		s.unlink(victim)
		delete(s.entries, victim.id)
		s.pool.evictions.Add(1)
		s.pool.traceEvict(victim.id)
		s.putFree(victim)
	}
}

package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

// newTestPool creates a pool over a MemFile pre-filled with n pages whose
// first byte equals their page id.
func newTestPool(t *testing.T, n, capacity, pageSize int) *BufferPool {
	t.Helper()
	f := NewMemFile(pageSize)
	for i := 0; i < n; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, pageSize)
		buf[0] = byte(id)
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return NewBufferPool(f, capacity)
}

func TestBufferPoolHitMiss(t *testing.T) {
	p := newTestPool(t, 4, 2, 64)

	// First read of page 0: miss.
	d, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 {
		t.Fatalf("page 0 content = %d", d[0])
	}
	// Second read: hit.
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Reads != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 read 1 hit", st)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	p := newTestPool(t, 3, 2, 64)
	mustGet := func(id PageID) {
		t.Helper()
		d, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if d[0] != byte(id) {
			t.Fatalf("page %d content = %d", id, d[0])
		}
	}
	mustGet(0) // miss, cache {0}
	mustGet(1) // miss, cache {1,0}
	mustGet(0) // hit, cache {0,1}
	mustGet(2) // miss, evicts 1 (LRU), cache {2,0}
	mustGet(0) // hit
	mustGet(1) // miss again (was evicted)
	st := p.Stats()
	if st.Reads != 4 {
		t.Errorf("Reads = %d, want 4", st.Reads)
	}
	if st.Hits != 2 {
		t.Errorf("Hits = %d, want 2", st.Hits)
	}
	if st.Evictions < 1 {
		t.Errorf("Evictions = %d, want >= 1", st.Evictions)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	p := newTestPool(t, 2, 0, 64)
	for i := 0; i < 5; i++ {
		if _, err := p.Get(0); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Reads != 5 || st.Hits != 0 {
		t.Fatalf("zero-capacity stats = %+v, want 5 reads 0 hits", st)
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d, want 0", p.Len())
	}
}

func TestBufferPoolWriteThrough(t *testing.T) {
	p := newTestPool(t, 2, 2, 64)
	buf := make([]byte, 64)
	buf[0] = 0xEE
	if err := p.Write(1, buf); err != nil {
		t.Fatal(err)
	}
	// The write must be visible through the pool...
	d, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0xEE {
		t.Fatal("write not visible via pool")
	}
	// ...and on the backing file (write-through).
	raw := make([]byte, 64)
	if err := p.File().ReadPage(1, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xEE {
		t.Fatal("write did not reach backing file")
	}
	st := p.Stats()
	if st.Writes != 1 {
		t.Errorf("Writes = %d, want 1", st.Writes)
	}
	// Cached by the write, so the Get above was a hit.
	if st.Hits != 1 || st.Reads != 0 {
		t.Errorf("stats = %+v, want cached write (1 hit, 0 reads)", st)
	}
}

func TestBufferPoolWriteUpdatesCachedCopy(t *testing.T) {
	p := newTestPool(t, 2, 2, 64)
	if _, err := p.Get(0); err != nil { // cache page 0
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	buf[0] = 0x55
	if err := p.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	d, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0x55 {
		t.Fatal("stale cached copy after write")
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	p := newTestPool(t, 2, 2, 64)
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	p.Invalidate(0)
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Reads != 2 {
		t.Errorf("Reads = %d, want 2 (invalidate must force re-read)", st.Reads)
	}
	p.Invalidate(12345) // absent id: no-op
}

func TestBufferPoolClearAndReset(t *testing.T) {
	p := newTestPool(t, 3, 3, 64)
	for id := PageID(0); id < 3; id++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	p.Clear()
	if p.Len() != 0 {
		t.Errorf("Len after Clear = %d", p.Len())
	}
	p.ResetStats()
	if st := p.Stats(); st != (IOStats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestBufferPoolResize(t *testing.T) {
	p := newTestPool(t, 4, 4, 64)
	for id := PageID(0); id < 4; id++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	p.Resize(1)
	if p.Len() != 1 {
		t.Errorf("Len after shrink = %d, want 1", p.Len())
	}
	if p.Capacity() != 1 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	// The survivor must be the most recently used page (3).
	if _, err := p.Get(3); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Errorf("expected MRU page to survive shrink; stats = %+v", st)
	}
}

func TestBufferPoolRandomizedAgainstDirectFile(t *testing.T) {
	// Model check: pool reads must always return exactly what an uncached
	// reader sees, across interleaved reads/writes and any capacity.
	const pages, pageSize = 16, 32
	rng := rand.New(rand.NewSource(99))
	for _, capacity := range []int{0, 1, 3, 16, 64} {
		f := NewMemFile(pageSize)
		shadow := make([][]byte, pages)
		for i := 0; i < pages; i++ {
			if _, err := f.Allocate(); err != nil {
				t.Fatal(err)
			}
			shadow[i] = make([]byte, pageSize)
		}
		p := NewBufferPool(f, capacity)
		for op := 0; op < 3000; op++ {
			id := PageID(rng.Intn(pages))
			if rng.Intn(3) == 0 { // write
				buf := make([]byte, pageSize)
				rng.Read(buf)
				if err := p.Write(id, buf); err != nil {
					t.Fatal(err)
				}
				copy(shadow[id], buf)
			} else { // read
				d, err := p.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(d, shadow[id]) {
					t.Fatalf("capacity=%d op=%d page=%d: pool content diverged",
						capacity, op, id)
				}
			}
			if capacity > 0 && p.Len() > capacity {
				t.Fatalf("capacity=%d exceeded: len=%d", capacity, p.Len())
			}
		}
		st := p.Stats()
		if st.Reads+st.Hits == 0 {
			t.Fatal("no reads recorded")
		}
	}
}

// Package storage implements the paged storage substrate the R*-trees live
// on: fixed-size page files (in memory or on disk) and an LRU buffer pool
// that counts page misses. The paper's sole cost metric is the number of
// disk accesses, i.e. page reads that cannot be served from the buffer, so
// the counters in this package are the measurement instrument for every
// experiment.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageID identifies a page within a PageFile. InvalidPageID is never a
// valid page.
type PageID int64

// InvalidPageID is the zero-like sentinel for "no page".
const InvalidPageID PageID = -1

// Common storage errors.
var (
	ErrPageOutOfRange = errors.New("storage: page id out of range")
	ErrBadPageSize    = errors.New("storage: buffer length does not match page size")
	ErrClosed         = errors.New("storage: file is closed")
)

// PageFile is a random-access collection of fixed-size pages. It is the
// lowest layer of the storage stack; the BufferPool sits on top of it and
// all higher layers (the R-trees) go through the pool.
type PageFile interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int64
	// Allocate appends a zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage fills buf (which must be PageSize bytes) with page id's data.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (which must be PageSize bytes) as page id's data.
	WritePage(id PageID, buf []byte) error
	// Close releases underlying resources.
	Close() error
}

// MemFile is an in-memory PageFile. It is the default backend for
// experiments: the paper measures accesses, not device latency, so an
// in-memory "disk" with exact miss counting reproduces the metric while
// keeping experiment turnaround short. MemFile is safe for concurrent use.
type MemFile struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	closed   bool
}

// NewMemFile creates an empty in-memory page file with the given page size.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: invalid page size %d", pageSize))
	}
	return &MemFile{pageSize: pageSize}
}

// PageSize implements PageFile.
func (f *MemFile) PageSize() int { return f.pageSize }

// NumPages implements PageFile.
func (f *MemFile) NumPages() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.pages))
}

// Allocate implements PageFile.
func (f *MemFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return InvalidPageID, ErrClosed
	}
	f.pages = append(f.pages, make([]byte, f.pageSize))
	return PageID(len(f.pages) - 1), nil
}

// ReadPage implements PageFile.
func (f *MemFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) != f.pageSize {
		return ErrBadPageSize
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if id < 0 || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(buf, f.pages[id])
	return nil
}

// WritePage implements PageFile.
func (f *MemFile) WritePage(id PageID, buf []byte) error {
	if len(buf) != f.pageSize {
		return ErrBadPageSize
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if id < 0 || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(f.pages[id], buf)
	return nil
}

// Close implements PageFile.
func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.pages = nil
	return nil
}

// DiskFile is a PageFile backed by an operating-system file. Pages are laid
// out contiguously: page i occupies bytes [i*pageSize, (i+1)*pageSize).
// DiskFile is safe for concurrent use.
type DiskFile struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int64
	closed   bool
}

// CreateDiskFile creates (truncating) a disk-backed page file at path.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &DiskFile{f: f, pageSize: pageSize}, nil
}

// OpenDiskFile opens an existing disk-backed page file at path. The file
// length must be a multiple of pageSize.
func OpenDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("storage: stat %s: %w", path, err), f.Close())
	}
	if st.Size()%int64(pageSize) != 0 {
		return nil, errors.Join(fmt.Errorf("storage: %s length %d is not a multiple of page size %d",
			path, st.Size(), pageSize), f.Close())
	}
	return &DiskFile{f: f, pageSize: pageSize, numPages: st.Size() / int64(pageSize)}, nil
}

// PageSize implements PageFile.
func (d *DiskFile) PageSize() int { return d.pageSize }

// NumPages implements PageFile.
func (d *DiskFile) NumPages() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// Allocate implements PageFile.
func (d *DiskFile) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPageID, ErrClosed
	}
	id := PageID(d.numPages)
	zero := make([]byte, d.pageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*int64(d.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	d.numPages++
	return id, nil
}

// ReadPage implements PageFile.
func (d *DiskFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return ErrBadPageSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if id < 0 || int64(id) >= d.numPages {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	if _, err := d.f.ReadAt(buf, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements PageFile.
func (d *DiskFile) WritePage(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return ErrBadPageSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if id < 0 || int64(id) >= d.numPages {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	if _, err := d.f.WriteAt(buf, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes file contents to stable storage.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close implements PageFile.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

func newPolicyPool(t *testing.T, n, capacity int, p Policy) *BufferPool {
	t.Helper()
	f := NewMemFile(64)
	for i := 0; i < n; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		buf[0] = byte(id)
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return NewBufferPoolWithPolicy(f, capacity, p)
}

func mustGetPage(t *testing.T, p *BufferPool, id PageID) {
	t.Helper()
	d, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != byte(id) {
		t.Fatalf("page %d content = %d", id, d[0])
	}
}

func TestPolicyStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Policies() {
		if n := p.String(); n == "" || seen[n] {
			t.Fatalf("bad policy name %q", n)
		} else {
			seen[n] = true
		}
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy String")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBufferPoolWithPolicy(NewMemFile(64), 4, Policy(9))
}

func TestFIFODiffersFromLRU(t *testing.T) {
	// Access pattern: 0, 1, 0, 2 with capacity 2.
	// LRU evicts 1 (0 was refreshed); FIFO evicts 0 (resident longest).
	run := func(p Policy) (missOn0 bool) {
		pool := newPolicyPool(t, 3, 2, p)
		mustGetPage(t, pool, 0)
		mustGetPage(t, pool, 1)
		mustGetPage(t, pool, 0)
		mustGetPage(t, pool, 2)
		before := pool.Stats().Reads
		mustGetPage(t, pool, 0)
		return pool.Stats().Reads > before
	}
	if run(LRU) {
		t.Error("LRU must keep page 0 after refresh")
	}
	if !run(FIFO) {
		t.Error("FIFO must evict page 0 (longest resident)")
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	// Capacity 2: load 0, 1; reference 0; insert 2.
	// CLOCK clears 0's bit and evicts 1 instead.
	pool := newPolicyPool(t, 3, 2, Clock)
	mustGetPage(t, pool, 0)
	mustGetPage(t, pool, 1)
	mustGetPage(t, pool, 0) // sets 0's reference bit
	mustGetPage(t, pool, 2) // evicts 1 (0 had a second chance)
	before := pool.Stats().Reads
	mustGetPage(t, pool, 0)
	if pool.Stats().Reads != before {
		t.Error("CLOCK must keep the referenced page 0")
	}
	mustGetPage(t, pool, 1)
	if pool.Stats().Reads != before+1 {
		t.Error("CLOCK must have evicted page 1")
	}
}

func TestAllPoliciesServeCorrectData(t *testing.T) {
	// Content correctness is policy independent: randomized model check.
	const pages = 12
	for _, policy := range Policies() {
		for _, capacity := range []int{0, 1, 3, 12} {
			f := NewMemFile(32)
			shadow := make([][]byte, pages)
			for i := 0; i < pages; i++ {
				if _, err := f.Allocate(); err != nil {
					t.Fatal(err)
				}
				shadow[i] = make([]byte, 32)
			}
			pool := NewBufferPoolWithPolicy(f, capacity, policy)
			rng := rand.New(rand.NewSource(int64(capacity) + int64(policy)*100))
			for op := 0; op < 2000; op++ {
				id := PageID(rng.Intn(pages))
				if rng.Intn(3) == 0 {
					buf := make([]byte, 32)
					rng.Read(buf)
					if err := pool.Write(id, buf); err != nil {
						t.Fatal(err)
					}
					copy(shadow[id], buf)
				} else {
					d, err := pool.Get(id)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(d, shadow[id]) {
						t.Fatalf("%v capacity=%d: content diverged", policy, capacity)
					}
				}
				if capacity > 0 && pool.Len() > capacity {
					t.Fatalf("%v: capacity exceeded", policy)
				}
			}
		}
	}
}

func TestScanResistanceComparison(t *testing.T) {
	// A looping scan over capacity+1 pages: LRU misses every access
	// (the classic sequential-flood pathology), FIFO too; this documents
	// the behavior rather than ranking the policies.
	for _, policy := range Policies() {
		pool := newPolicyPool(t, 5, 4, policy)
		for round := 0; round < 4; round++ {
			for id := PageID(0); id < 5; id++ {
				mustGetPage(t, pool, id)
			}
		}
		st := pool.Stats()
		if st.Reads+st.Hits != 20 {
			t.Fatalf("%v: accounted %d accesses, want 20", policy, st.Reads+st.Hits)
		}
		if st.Reads < 5 {
			t.Fatalf("%v: impossible miss count %d", policy, st.Reads)
		}
	}
}

package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// fillPages allocates n pages stamped with their own id so readers can
// verify they got the right, untorn page.
func fillPages(t testing.TB, f PageFile, n int) {
	t.Helper()
	buf := make([]byte, f.PageSize())
	for i := 0; i < n; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off+8 <= len(buf); off += 8 {
			binary.LittleEndian.PutUint64(buf[off:], uint64(id))
		}
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// checkPage verifies every word of a page carries the page's id.
func checkPage(id PageID, data []byte) error {
	for off := 0; off+8 <= len(data); off += 8 {
		if got := binary.LittleEndian.Uint64(data[off:]); got != uint64(id) {
			return fmt.Errorf("page %d word %d = %d (torn or wrong page)", id, off/8, got)
		}
	}
	return nil
}

func TestShardedPoolBasics(t *testing.T) {
	f := NewMemFile(128)
	fillPages(t, f, 64)
	b := NewShardedBufferPool(f, 16, 4, LRU)
	if b.Shards() != 4 {
		t.Fatalf("Shards = %d", b.Shards())
	}
	if b.Capacity() != 16 {
		t.Fatalf("Capacity = %d", b.Capacity())
	}
	for i := 0; i < 64; i++ {
		data, err := b.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := checkPage(PageID(i), data); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Len(); got != 16 {
		t.Fatalf("Len = %d, want capacity 16", got)
	}
	s := b.Stats()
	if s.Reads != 64 || s.Hits != 0 || s.Evictions != 48 {
		t.Fatalf("stats = %v", s)
	}
	// All cached pages hit now.
	b.ResetStats()
	for _, sh := range b.shards {
		for id := range sh.entries {
			if _, err := b.Get(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s := b.Stats(); s.Hits != 16 || s.Reads != 0 {
		t.Fatalf("stats after warm reads = %v", s)
	}
}

func TestShardedPoolResizeRedistributes(t *testing.T) {
	f := NewMemFile(64)
	fillPages(t, f, 40)
	b := NewShardedBufferPool(f, 32, 8, LRU)
	for i := 0; i < 40; i++ {
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Resize(8)
	if got := b.Len(); got > 8 {
		t.Fatalf("Len after shrink = %d, want <= 8", got)
	}
	if b.Capacity() != 8 {
		t.Fatalf("Capacity = %d", b.Capacity())
	}
	b.Resize(0)
	if got := b.Len(); got != 0 {
		t.Fatalf("Len after resize to 0 = %d", got)
	}
	// Pass-through still works.
	data, err := b.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPage(3, data); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoolConcurrentStress is the concurrency stress test of the
// sharded pool: many goroutines issue Get/View over a page population
// larger than the pool, under every replacement policy. Afterwards the
// atomic counters must balance exactly: hits + misses == total requests,
// and misses - evictions - invalidations == resident pages. Run with
// -race to verify the locking discipline (ci.sh does).
func TestShardedPoolConcurrentStress(t *testing.T) {
	const (
		pages      = 512
		workers    = 16
		opsEach    = 4000
		capacity   = 96
		shardCount = 8
	)
	for _, policy := range Policies() {
		t.Run(policy.String(), func(t *testing.T) {
			f := NewMemFile(128)
			fillPages(t, f, pages)
			b := NewShardedBufferPool(f, capacity, shardCount, policy)

			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsEach; i++ {
						// Skewed access pattern so shards see both hot
						// (cached) and cold (evicting) pages.
						id := PageID(rng.Intn(pages / 4))
						if i%3 == 0 {
							id = PageID(rng.Intn(pages))
						}
						err := b.View(id, func(data []byte) error {
							return checkPage(id, data)
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			s := b.Stats()
			total := int64(workers * opsEach)
			if s.Hits+s.Reads != total {
				t.Fatalf("hits %d + misses %d != requests %d", s.Hits, s.Reads, total)
			}
			// Every miss inserts a page; every eviction removes one; no
			// invalidations happened. What remains must be resident.
			if resident := int64(b.Len()); s.Reads-s.Evictions != resident {
				t.Fatalf("misses %d - evictions %d != resident %d (stats %v)",
					s.Reads, s.Evictions, resident, s)
			}
			if got := b.Len(); got > capacity {
				t.Fatalf("resident %d exceeds capacity %d", got, capacity)
			}
		})
	}
}

// TestShardedPoolConcurrentGetUnderView: Get's returned slice is only
// stable for single-goroutine use, but issuing concurrent Gets must at
// least be memory-safe and keep the counters exact; concurrent View must
// never observe torn data even while the same pages are evicted and
// re-read through Get.
func TestShardedPoolConcurrentGetAndView(t *testing.T) {
	const pages = 128
	f := NewMemFile(64)
	fillPages(t, f, pages)
	b := NewShardedBufferPool(f, 16, 4, LRU)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				id := PageID(rng.Intn(pages))
				if err := b.View(id, func(data []byte) error {
					return checkPage(id, data)
				}); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w + 100))
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				if _, err := b.Get(PageID(rng.Intn(pages))); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w + 200))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Hits+s.Reads != 8*2000 {
		t.Fatalf("hits %d + misses %d != %d", s.Hits, s.Reads, 8*2000)
	}
}

package storage

import (
	"sync"
	"testing"
)

// TestBufferPoolConcurrentAccess exercises the pool's concurrency claim
// under the race detector: readers and writers on overlapping pages.
func TestBufferPoolConcurrentAccess(t *testing.T) {
	f := NewMemFile(64)
	for i := 0; i < 16; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	p := NewBufferPool(f, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 500; i++ {
				id := PageID((g + i) % 16)
				if g%2 == 0 {
					if _, err := p.Get(id); err != nil {
						t.Error(err)
						return
					}
				} else {
					buf[0] = byte(i)
					if err := p.Write(id, buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Reads+st.Hits+st.Writes == 0 {
		t.Fatal("no operations recorded")
	}
}

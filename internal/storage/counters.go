package storage

import "fmt"

// IOStats accumulates the storage-level cost counters used by every
// experiment in the paper. Reads is the number of page reads issued to the
// underlying PageFile, i.e. buffer misses — the paper's "disk accesses".
type IOStats struct {
	// Reads counts page reads served by the page file (buffer misses).
	Reads int64
	// Writes counts page writes issued to the page file.
	Writes int64
	// Hits counts page reads served from the buffer pool.
	Hits int64
	// Evictions counts pages evicted from the buffer pool.
	Evictions int64
}

// Accesses returns the paper's cost metric: disk reads (buffer misses).
func (s IOStats) Accesses() int64 { return s.Reads }

// Add returns the element-wise sum of s and t. It is used to combine the
// per-tree statistics of the two R-trees participating in a join.
func (s IOStats) Add(t IOStats) IOStats {
	return IOStats{
		Reads:     s.Reads + t.Reads,
		Writes:    s.Writes + t.Writes,
		Hits:      s.Hits + t.Hits,
		Evictions: s.Evictions + t.Evictions,
	}
}

// Sub returns the element-wise difference s - t; useful for measuring the
// cost of a single operation by differencing before/after snapshots.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{
		Reads:     s.Reads - t.Reads,
		Writes:    s.Writes - t.Writes,
		Hits:      s.Hits - t.Hits,
		Evictions: s.Evictions - t.Evictions,
	}
}

// String implements fmt.Stringer.
func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d evictions=%d",
		s.Reads, s.Writes, s.Hits, s.Evictions)
}

// Package sortx provides the six comparison sorts the authors evaluated for
// the sorting phase of the Sorted Distances algorithm (paper footnote 2:
// Bubble-, Selection-, Insertion-, Heap-, Quick- and MergeSort; MergeSort
// was chosen for the best I/O and CPU cost and is the default here).
// Keeping the menu of sorts makes the choice reproducible as an ablation.
package sortx

import "fmt"

// Method selects a sorting algorithm.
type Method int

// The six candidate sorting methods.
const (
	Merge Method = iota
	Quick
	Heap
	Insertion
	Selection
	Bubble
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Merge:
		return "merge"
	case Quick:
		return "quick"
	case Heap:
		return "heap"
	case Insertion:
		return "insertion"
	case Selection:
		return "selection"
	case Bubble:
		return "bubble"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all available methods, default first.
func Methods() []Method {
	return []Method{Merge, Quick, Heap, Insertion, Selection, Bubble}
}

// Sort sorts s in place into ascending order according to less, using the
// requested method. All methods produce a fully sorted slice; only their
// cost profiles differ. MergeSort (the default) is additionally stable.
func Sort[T any](s []T, less func(a, b T) bool, method Method) {
	switch method {
	case Merge:
		mergeSort(s, less)
	case Quick:
		quickSort(s, less, 0, len(s)-1)
	case Heap:
		heapSort(s, less)
	case Insertion:
		insertionSort(s, less)
	case Selection:
		selectionSort(s, less)
	case Bubble:
		bubbleSort(s, less)
	default:
		panic(fmt.Sprintf("sortx: unknown method %d", int(method)))
	}
}

func mergeSort[T any](s []T, less func(a, b T) bool) {
	if len(s) < 2 {
		return
	}
	buf := make([]T, len(s))
	mergeSortRec(s, buf, less)
}

func mergeSortRec[T any](s, buf []T, less func(a, b T) bool) {
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	mergeSortRec(s[:mid], buf[:mid], less)
	mergeSortRec(s[mid:], buf[mid:], less)
	copy(buf, s)
	i, j := 0, mid
	for k := 0; k < len(s); k++ {
		switch {
		case i >= mid:
			s[k] = buf[j]
			j++
		case j >= len(s):
			s[k] = buf[i]
			i++
		case less(buf[j], buf[i]): // strict: keeps the sort stable
			s[k] = buf[j]
			j++
		default:
			s[k] = buf[i]
			i++
		}
	}
}

func quickSort[T any](s []T, less func(a, b T) bool, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			insertionSort(s[lo:hi+1], less)
			return
		}
		// Median-of-three pivot to dodge the sorted-input worst case,
		// which matters because STD often sorts nearly-sorted pair lists.
		mid := lo + (hi-lo)/2
		if less(s[mid], s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if less(s[hi], s[lo]) {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if less(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for less(s[i], pivot) {
				i++
			}
			for less(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, iterate on the larger.
		if j-lo < hi-i {
			quickSort(s, less, lo, j)
			lo = i
		} else {
			quickSort(s, less, i, hi)
			hi = j
		}
	}
}

func heapSort[T any](s []T, less func(a, b T) bool) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, less, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDown(s, less, 0, end)
	}
}

func siftDown[T any](s []T, less func(a, b T) bool, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(s[child], s[child+1]) {
			child++
		}
		if !less(s[root], s[child]) {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

func insertionSort[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && less(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func selectionSort[T any](s []T, less func(a, b T) bool) {
	for i := 0; i < len(s)-1; i++ {
		min := i
		for j := i + 1; j < len(s); j++ {
			if less(s[j], s[min]) {
				min = j
			}
		}
		s[i], s[min] = s[min], s[i]
	}
}

func bubbleSort[T any](s []T, less func(a, b T) bool) {
	for n := len(s); n > 1; {
		last := 0
		for i := 1; i < n; i++ {
			if less(s[i], s[i-1]) {
				s[i-1], s[i] = s[i], s[i-1]
				last = i
			}
		}
		n = last
	}
}

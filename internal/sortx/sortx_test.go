package sortx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestAllMethodsSortCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range Methods() {
		for _, n := range []int{0, 1, 2, 3, 10, 100, 1000} {
			s := make([]int, n)
			for i := range s {
				s[i] = rng.Intn(100)
			}
			want := append([]int(nil), s...)
			sort.Ints(want)
			Sort(s, intLess, m)
			for i := range s {
				if s[i] != want[i] {
					t.Fatalf("%v n=%d: position %d = %d, want %d", m, n, i, s[i], want[i])
				}
			}
		}
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	inputs := [][]int{
		{5, 4, 3, 2, 1},          // reverse sorted
		{1, 2, 3, 4, 5},          // already sorted
		{7, 7, 7, 7, 7, 7},       // all equal
		{1, 3, 1, 3, 1, 3, 1, 3}, // alternating
		{2, 1},                   // minimal swap
		{-5, 0, 5, -5, 0, 5},     // negatives and duplicates
		make([]int, 500),         // all zero, large
		func() []int { // sorted large (quicksort trap)
			s := make([]int, 2000)
			for i := range s {
				s[i] = i
			}
			return s
		}(),
	}
	for _, m := range Methods() {
		for ci, in := range inputs {
			s := append([]int(nil), in...)
			want := append([]int(nil), in...)
			sort.Ints(want)
			Sort(s, intLess, m)
			for i := range s {
				if s[i] != want[i] {
					t.Fatalf("%v case %d: mismatch at %d", m, ci, i)
				}
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	for _, m := range Methods() {
		m := m
		f := func(s []float64) bool {
			Sort(s, func(a, b float64) bool { return a < b }, m)
			return sort.Float64sAreSorted(s)
		}
		cfg := &quick.Config{MaxCount: 50}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestMergeSortIsStable(t *testing.T) {
	type kv struct{ k, seq int }
	rng := rand.New(rand.NewSource(2))
	s := make([]kv, 500)
	for i := range s {
		s[i] = kv{k: rng.Intn(10), seq: i}
	}
	Sort(s, func(a, b kv) bool { return a.k < b.k }, Merge)
	for i := 1; i < len(s); i++ {
		if s[i].k == s[i-1].k && s[i].seq < s[i-1].seq {
			t.Fatalf("merge sort not stable at %d", i)
		}
	}
}

func TestMethodString(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Methods() {
		name := m.String()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
	if Method(99).String() != "Method(99)" {
		t.Error("unknown method String")
	}
}

func TestSortPanicsOnUnknownMethod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sort([]int{3, 1}, intLess, Method(99))
}

func BenchmarkSortMethods(b *testing.B) {
	// The sorting-method ablation behind paper footnote 2: sort the kind of
	// slice STD sorts (a few hundred float keys, partially ordered).
	for _, m := range Methods() {
		b.Run(m.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			base := make([]float64, 441) // M+1 squared candidate pairs
			for i := range base {
				base[i] = rng.Float64()
			}
			s := make([]float64, len(base))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(s, base)
				Sort(s, func(a, b float64) bool { return a < b }, m)
			}
		})
	}
}

// Package incremental implements the incremental distance-join algorithms
// of Hjaltason & Samet (SIGMOD 1998), the prior work the paper compares
// against (Sections 3.9 and 5.2). An Iterator produces closest pairs in
// ascending distance order from a priority queue holding four kinds of
// items — node/node, object/node, node/object and object/object — under
// one of three traversal policies (basic, even, simultaneous) and one of
// two tie policies (depth-first, breadth-first). Setting MaxK enables the
// K-bounded queue pruning of the modified algorithm in [11].
package incremental

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Traversal selects how node/node pairs are expanded.
type Traversal int

const (
	// Basic (BAS) always expands the node of the first tree.
	Basic Traversal = iota
	// Even (EVN) expands the node at the shallower depth (higher level),
	// keeping the two trees' frontiers aligned.
	Even
	// Simultaneous (SML) expands both nodes at once, enqueueing all child
	// combinations.
	Simultaneous
)

// Traversals lists the three policies.
func Traversals() []Traversal { return []Traversal{Basic, Even, Simultaneous} }

// String implements fmt.Stringer, using the paper's abbreviations.
func (t Traversal) String() string {
	switch t {
	case Basic:
		return "BAS"
	case Even:
		return "EVN"
	case Simultaneous:
		return "SML"
	default:
		return fmt.Sprintf("Traversal(%d)", int(t))
	}
}

// TiePolicy orders queue items whose distance keys are equal.
type TiePolicy int

const (
	// DepthFirst gives priority to the pair containing a node at a deeper
	// level (closer to the leaves).
	DepthFirst TiePolicy = iota
	// BreadthFirst gives priority to the pair at the shallower level.
	BreadthFirst
)

// String implements fmt.Stringer.
func (t TiePolicy) String() string {
	switch t {
	case DepthFirst:
		return "depth-first"
	case BreadthFirst:
		return "breadth-first"
	default:
		return fmt.Sprintf("TiePolicy(%d)", int(t))
	}
}

// Options configures an incremental distance join.
type Options struct {
	// Traversal is the node-pair expansion policy (default Basic).
	Traversal Traversal
	// Tie is the equal-distance ordering policy (default DepthFirst).
	Tie TiePolicy
	// MaxK, when positive, bounds the number of pairs the join will ever
	// produce and enables the queue pruning of the modified algorithm:
	// items that cannot beat the current K-th best candidate distance are
	// not enqueued.
	MaxK int
	// Metric is the Minkowski distance metric (default Euclidean).
	Metric geom.Metric
}

// Stats reports the cost of an incremental join so far.
type Stats struct {
	// IOP and IOQ are the buffer-pool deltas of the two trees.
	IOP, IOQ storage.IOStats
	// MaxQueueSize is the high-water mark of the priority queue — the
	// structural cost the paper's Section 3.9 comparison centers on.
	MaxQueueSize int
	// Inserted counts queue insertions; Popped counts removals.
	Inserted, Popped int64
	// Reported counts pairs delivered to the caller.
	Reported int64
}

// Accesses returns total disk accesses on both trees.
func (s Stats) Accesses() int64 { return s.IOP.Reads + s.IOQ.Reads }

type itemKind uint8

const (
	nodeNode itemKind = iota
	objNode
	nodeObj
	objObj
)

// item is one priority-queue element. Object sides use a degenerate
// rectangle and carry the record id.
type item struct {
	keySq float64
	// depth is the minimum node level in the pair; objects count as -1.
	depth int
	seq   int64 // insertion sequence for deterministic final ordering
	kind  itemKind

	ra, rb     geom.Rect
	aPage      storage.PageID
	bPage      storage.PageID
	la, lb     int
	aRef, bRef int64
}

// Iterator produces closest pairs in ascending distance order.
type Iterator struct {
	ta, tb *rtree.Tree
	opts   Options
	queue  pq
	seq    int64
	stats  Stats
	startA storage.IOStats
	startB storage.IOStats
	// kbest implements the MaxK pruning: a bounded max-heap over candidate
	// object/object distances; once it holds MaxK entries its top bounds
	// every distance the join still needs to consider.
	kbest    []float64
	finished bool
}

// New creates an iterator over the closest pairs of the two trees. Both
// trees must be non-empty.
func New(ta, tb *rtree.Tree, opts Options) (*Iterator, error) {
	switch opts.Traversal {
	case Basic, Even, Simultaneous:
	default:
		return nil, fmt.Errorf("incremental: unknown traversal %d", int(opts.Traversal))
	}
	switch opts.Tie {
	case DepthFirst, BreadthFirst:
	default:
		return nil, fmt.Errorf("incremental: unknown tie policy %d", int(opts.Tie))
	}
	if opts.MaxK < 0 {
		return nil, fmt.Errorf("incremental: negative MaxK %d", opts.MaxK)
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return nil, errors.New("incremental: join over an empty data set")
	}
	it := &Iterator{
		ta: ta, tb: tb, opts: opts,
		startA: ta.Pool().Stats(),
		startB: tb.Pool().Stats(),
	}
	it.queue.tie = opts.Tie
	ra, err := ta.Bounds()
	if err != nil {
		return nil, err
	}
	rb, err := tb.Bounds()
	if err != nil {
		return nil, err
	}
	it.push(item{
		kind: nodeNode,
		ra:   ra, rb: rb,
		aPage: ta.RootID(), bPage: tb.RootID(),
		la: ta.Height() - 1, lb: tb.Height() - 1,
		keySq: opts.Metric.MinMinKey(ra, rb),
		depth: minInt(ta.Height()-1, tb.Height()-1),
	})
	return it, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Stats returns a snapshot of the join's cost counters.
func (it *Iterator) Stats() Stats {
	s := it.stats
	if it.ta.Pool() == it.tb.Pool() {
		s.IOP = it.ta.Pool().Stats().Sub(it.startA)
	} else {
		s.IOP = it.ta.Pool().Stats().Sub(it.startA)
		s.IOQ = it.tb.Pool().Stats().Sub(it.startB)
	}
	return s
}

// Next returns the next closest pair in ascending distance order. ok is
// false when the join is exhausted (all pairs reported, or MaxK reached).
func (it *Iterator) Next() (pair core.Pair, ok bool, err error) {
	if it.finished {
		return core.Pair{}, false, nil
	}
	if it.opts.MaxK > 0 && it.stats.Reported >= int64(it.opts.MaxK) {
		it.finished = true
		return core.Pair{}, false, nil
	}
	for it.queue.len() > 0 {
		if n := it.queue.len(); n > it.stats.MaxQueueSize {
			it.stats.MaxQueueSize = n
		}
		cur := it.queue.pop()
		it.stats.Popped++
		if cur.kind != objObj && cur.keySq > it.threshold() {
			// Inserted before the MaxK bound tightened past it; the pairs
			// it could produce can no longer be among the first MaxK.
			continue
		}
		if cur.kind == objObj {
			it.stats.Reported++
			p := core.Pair{
				P:    cur.ra.Min,
				Q:    cur.rb.Min,
				RefP: cur.aRef,
				RefQ: cur.bRef,
				Dist: it.opts.Metric.KeyToDist(cur.keySq),
			}
			if it.opts.MaxK > 0 && it.stats.Reported >= int64(it.opts.MaxK) {
				it.finished = true
			}
			return p, true, nil
		}
		if err := it.expand(cur); err != nil {
			return core.Pair{}, false, err
		}
	}
	it.finished = true
	return core.Pair{}, false, nil
}

// threshold returns the current pruning distance (squared): +Inf until the
// join has seen MaxK candidate object pairs, then the MaxK-th smallest
// candidate distance seen so far.
func (it *Iterator) threshold() float64 {
	if it.opts.MaxK == 0 || len(it.kbest) < it.opts.MaxK {
		return math.Inf(1)
	}
	return it.kbest[0]
}

// observeCandidate feeds an object/object distance into the MaxK bound.
func (it *Iterator) observeCandidate(dSq float64) {
	if it.opts.MaxK == 0 {
		return
	}
	if len(it.kbest) < it.opts.MaxK {
		it.kbest = append(it.kbest, dSq)
		i := len(it.kbest) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if it.kbest[parent] >= it.kbest[i] {
				break
			}
			it.kbest[parent], it.kbest[i] = it.kbest[i], it.kbest[parent]
			i = parent
		}
		return
	}
	if dSq >= it.kbest[0] {
		return
	}
	it.kbest[0] = dSq
	i, n := 0, len(it.kbest)
	for {
		largest := i
		if l := 2*i + 1; l < n && it.kbest[l] > it.kbest[largest] {
			largest = l
		}
		if r := 2*i + 2; r < n && it.kbest[r] > it.kbest[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		it.kbest[i], it.kbest[largest] = it.kbest[largest], it.kbest[i]
		i = largest
	}
}

// push enqueues an item unless the MaxK bound proves it useless.
func (it *Iterator) push(x item) {
	if x.kind == objObj {
		it.observeCandidate(x.keySq)
	}
	if x.keySq > it.threshold() {
		return
	}
	it.seq++
	x.seq = it.seq
	it.queue.push(x)
	it.stats.Inserted++
}

// expand opens one or both nodes of a non-result item and enqueues the
// generated children.
func (it *Iterator) expand(cur item) error {
	switch cur.kind {
	case objNode:
		nb, err := it.tb.ReadNode(cur.bPage)
		if err != nil {
			return err
		}
		it.pairObjectWithChildren(cur.ra.Min, cur.aRef, nb, true)
		return nil
	case nodeObj:
		na, err := it.ta.ReadNode(cur.aPage)
		if err != nil {
			return err
		}
		it.pairObjectWithChildren(cur.rb.Min, cur.bRef, na, false)
		return nil
	}

	// nodeNode: pick sides per traversal policy.
	expandA, expandB := true, true
	switch it.opts.Traversal {
	case Basic:
		expandB = false
	case Even:
		// Expand the node at the shallower depth (higher level); on equal
		// levels expand the first tree.
		if cur.la >= cur.lb {
			expandB = false
		} else {
			expandA = false
		}
	case Simultaneous:
		// both
	}

	switch {
	case expandA && expandB:
		na, err := it.ta.ReadNode(cur.aPage)
		if err != nil {
			return err
		}
		nb, err := it.tb.ReadNode(cur.bPage)
		if err != nil {
			return err
		}
		for i := range na.Entries {
			for j := range nb.Entries {
				it.pushChildPair(&na.Entries[i], na.IsLeaf(), &nb.Entries[j], nb.IsLeaf(),
					na.Level-1, nb.Level-1)
			}
		}
	case expandA:
		na, err := it.ta.ReadNode(cur.aPage)
		if err != nil {
			return err
		}
		for i := range na.Entries {
			ea := &na.Entries[i]
			if na.IsLeaf() {
				it.push(item{
					kind: objNode,
					ra:   ea.Rect, rb: cur.rb,
					aRef: ea.Ref, bPage: cur.bPage, lb: cur.lb,
					keySq: it.opts.Metric.MinMinKey(ea.Rect, cur.rb),
					depth: minInt(-1, cur.lb),
				})
			} else {
				it.push(item{
					kind: nodeNode,
					ra:   ea.Rect, rb: cur.rb,
					aPage: ea.Child(), bPage: cur.bPage,
					la: na.Level - 1, lb: cur.lb,
					keySq: it.opts.Metric.MinMinKey(ea.Rect, cur.rb),
					depth: minInt(na.Level-1, cur.lb),
				})
			}
		}
	default: // expandB
		nb, err := it.tb.ReadNode(cur.bPage)
		if err != nil {
			return err
		}
		for j := range nb.Entries {
			eb := &nb.Entries[j]
			if nb.IsLeaf() {
				it.push(item{
					kind: nodeObj,
					ra:   cur.ra, rb: eb.Rect,
					aPage: cur.aPage, la: cur.la, bRef: eb.Ref,
					keySq: it.opts.Metric.MinMinKey(cur.ra, eb.Rect),
					depth: minInt(cur.la, -1),
				})
			} else {
				it.push(item{
					kind: nodeNode,
					ra:   cur.ra, rb: eb.Rect,
					aPage: cur.aPage, bPage: eb.Child(),
					la: cur.la, lb: nb.Level - 1,
					keySq: it.opts.Metric.MinMinKey(cur.ra, eb.Rect),
					depth: minInt(cur.la, nb.Level-1),
				})
			}
		}
	}
	return nil
}

// pushChildPair enqueues the pair of two child entries (simultaneous
// expansion): object/object for two leaf entries, node/node for two
// internal entries, and the mixed kinds otherwise.
func (it *Iterator) pushChildPair(ea *rtree.Entry, aLeaf bool, eb *rtree.Entry, bLeaf bool, la, lb int) {
	keySq := it.opts.Metric.MinMinKey(ea.Rect, eb.Rect)
	switch {
	case aLeaf && bLeaf:
		it.push(item{
			kind: objObj, ra: ea.Rect, rb: eb.Rect,
			aRef: ea.Ref, bRef: eb.Ref, keySq: keySq, depth: -1,
		})
	case aLeaf:
		it.push(item{
			kind: objNode, ra: ea.Rect, rb: eb.Rect,
			aRef: ea.Ref, bPage: eb.Child(), lb: lb,
			keySq: keySq, depth: -1,
		})
	case bLeaf:
		it.push(item{
			kind: nodeObj, ra: ea.Rect, rb: eb.Rect,
			aPage: ea.Child(), la: la, bRef: eb.Ref,
			keySq: keySq, depth: -1,
		})
	default:
		it.push(item{
			kind: nodeNode, ra: ea.Rect, rb: eb.Rect,
			aPage: ea.Child(), bPage: eb.Child(), la: la, lb: lb,
			keySq: keySq, depth: minInt(la, lb),
		})
	}
}

// pairObjectWithChildren pairs a fixed object with every entry of a node.
// objFirst records whether the object came from the first tree.
func (it *Iterator) pairObjectWithChildren(obj geom.Point, objRef int64, n *rtree.Node, objFirst bool) {
	for i := range n.Entries {
		e := &n.Entries[i]
		keySq := it.opts.Metric.PointRectMinKey(obj, e.Rect)
		switch {
		case n.IsLeaf() && objFirst:
			it.push(item{
				kind: objObj, ra: obj.Rect(), rb: e.Rect,
				aRef: objRef, bRef: e.Ref, keySq: keySq, depth: -1,
			})
		case n.IsLeaf():
			it.push(item{
				kind: objObj, ra: e.Rect, rb: obj.Rect(),
				aRef: e.Ref, bRef: objRef, keySq: keySq, depth: -1,
			})
		case objFirst:
			it.push(item{
				kind: objNode, ra: obj.Rect(), rb: e.Rect,
				aRef: objRef, bPage: e.Child(), lb: n.Level - 1,
				keySq: keySq, depth: -1,
			})
		default:
			it.push(item{
				kind: nodeObj, ra: e.Rect, rb: obj.Rect(),
				aPage: e.Child(), la: n.Level - 1, bRef: objRef,
				keySq: keySq, depth: -1,
			})
		}
	}
}

// GetK runs the incremental join until k pairs are produced (or the join
// exhausts) and returns them with the final statistics. It enables the
// MaxK queue pruning with bound k unless opts.MaxK is already set.
func GetK(ta, tb *rtree.Tree, k int, opts Options) ([]core.Pair, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("incremental: k must be positive, got %d", k)
	}
	if opts.MaxK == 0 {
		opts.MaxK = k
	}
	it, err := New(ta, tb, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]core.Pair, 0, min(k, 1024))
	for len(out) < k {
		p, ok, err := it.Next()
		if err != nil {
			return nil, Stats{}, err
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, it.Stats(), nil
}

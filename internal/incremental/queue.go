package incremental

// pq is a binary min-heap of queue items ordered by ascending distance
// key, with equal keys resolved by the configured tie policy and finally
// by insertion order (making runs deterministic).
type pq struct {
	items []item
	tie   TiePolicy
}

func (q *pq) len() int { return len(q.items) }

// less implements the queue order.
func (q *pq) less(a, b *item) bool {
	if a.keySq != b.keySq {
		return a.keySq < b.keySq
	}
	if a.depth != b.depth {
		if q.tie == DepthFirst {
			// Deeper pairs (smaller level; objects are -1) first.
			return a.depth < b.depth
		}
		return a.depth > b.depth
	}
	return a.seq < b.seq
}

func (q *pq) push(x item) {
	q.items = append(q.items, x)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(&q.items[i], &q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *pq) pop() item {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && q.less(&q.items[l], &q.items[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && q.less(&q.items[r], &q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

package incremental

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func buildTree(t testing.TB, pts []geom.Point, pageSize int) *rtree.Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemFile(pageSize), 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func uniformPoints(seed int64, n int, x0 float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestAllPoliciesMatchBruteForce(t *testing.T) {
	ps := uniformPoints(1, 300, 0)
	qs := uniformPoints(2, 250, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	want := core.BruteForceKCP(ps, qs, 50)
	for _, tr := range Traversals() {
		for _, tie := range []TiePolicy{DepthFirst, BreadthFirst} {
			got, stats, err := GetK(ta, tb, 50, Options{Traversal: tr, Tie: tie})
			if err != nil {
				t.Fatalf("%v/%v: %v", tr, tie, err)
			}
			if len(got) != 50 {
				t.Fatalf("%v/%v: got %d pairs", tr, tie, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%v/%v pair %d: dist %.12g, want %.12g",
						tr, tie, i, got[i].Dist, want[i].Dist)
				}
			}
			if stats.Accesses() <= 0 || stats.MaxQueueSize <= 0 {
				t.Errorf("%v/%v: stats not recorded: %+v", tr, tie, stats)
			}
		}
	}
}

func TestIncrementalOrderIsAscending(t *testing.T) {
	ps := uniformPoints(3, 200, 0)
	qs := uniformPoints(4, 200, 0.8)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	it, err := New(ta, tb, Options{Traversal: Simultaneous})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 500; i++ {
		p, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("exhausted after %d pairs", i)
		}
		if p.Dist < prev-1e-12 {
			t.Fatalf("pair %d: distance %g < previous %g", i, p.Dist, prev)
		}
		prev = p.Dist
	}
}

func TestIncrementalExhaustsAllPairs(t *testing.T) {
	ps := uniformPoints(5, 18, 0)
	qs := uniformPoints(6, 13, 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, tr := range Traversals() {
		it, err := New(ta, tb, Options{Traversal: tr})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int64]bool{}
		count := 0
		for {
			p, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			key := [2]int64{p.RefP, p.RefQ}
			if seen[key] {
				t.Fatalf("%v: pair %v reported twice", tr, key)
			}
			seen[key] = true
			count++
		}
		if count != 18*13 {
			t.Fatalf("%v: reported %d pairs, want %d", tr, count, 18*13)
		}
		// Further calls stay exhausted.
		if _, ok, _ := it.Next(); ok {
			t.Fatalf("%v: Next after exhaustion returned a pair", tr)
		}
	}
}

func TestMaxKStopsAndPrunes(t *testing.T) {
	ps := uniformPoints(7, 400, 0)
	qs := uniformPoints(8, 400, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)

	bounded, bStats, err := GetK(ta, tb, 10, Options{Traversal: Simultaneous})
	if err != nil {
		t.Fatal(err)
	}
	unboundedIt, err := New(ta, tb, Options{Traversal: Simultaneous})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, ok, err := unboundedIt.Next()
		if err != nil || !ok {
			t.Fatalf("unbounded next %d: ok=%v err=%v", i, ok, err)
		}
		if math.Abs(p.Dist-bounded[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: bounded %g vs unbounded %g", i, bounded[i].Dist, p.Dist)
		}
	}
	uStats := unboundedIt.Stats()
	if bStats.MaxQueueSize > uStats.MaxQueueSize {
		t.Errorf("MaxK pruning grew the queue: %d > %d",
			bStats.MaxQueueSize, uStats.MaxQueueSize)
	}
	// After k pairs the bounded iterator refuses more.
	it2, err := New(ta, tb, Options{Traversal: Simultaneous, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("MaxK=3 reported %d pairs", n)
	}
}

func TestDifferentHeightsIncremental(t *testing.T) {
	ps := uniformPoints(9, 30, 0)
	qs := uniformPoints(10, 3000, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	if ta.Height() == tb.Height() {
		t.Fatal("test requires different heights")
	}
	want := core.BruteForceKCP(ps, qs, 25)
	for _, tr := range Traversals() {
		got, _, err := GetK(ta, tb, 25, Options{Traversal: tr})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%v pair %d: dist %.12g, want %.12g", tr, i, got[i].Dist, want[i].Dist)
			}
		}
		// Swapped orientation.
		got2, _, err := GetK(tb, ta, 25, Options{Traversal: tr})
		if err != nil {
			t.Fatalf("%v swapped: %v", tr, err)
		}
		for i := range got2 {
			if math.Abs(got2[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%v swapped pair %d: dist %.12g, want %.12g",
					tr, i, got2[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestIncrementalErrors(t *testing.T) {
	ps := uniformPoints(11, 10, 0)
	ta := buildTree(t, ps, 256)
	empty := buildTree(t, nil, 256)
	if _, err := New(ta, empty, Options{}); err == nil {
		t.Error("empty Q must fail")
	}
	if _, err := New(empty, ta, Options{}); err == nil {
		t.Error("empty P must fail")
	}
	if _, err := New(ta, ta, Options{Traversal: Traversal(9)}); err == nil {
		t.Error("bad traversal must fail")
	}
	if _, err := New(ta, ta, Options{Tie: TiePolicy(9)}); err == nil {
		t.Error("bad tie policy must fail")
	}
	if _, err := New(ta, ta, Options{MaxK: -1}); err == nil {
		t.Error("negative MaxK must fail")
	}
	if _, _, err := GetK(ta, ta, 0, Options{}); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestHeapAlgQueueIsSmallerThanIncremental(t *testing.T) {
	// Section 3.9: the paper's HEAP stores only node/node pairs, so its
	// queue must stay far smaller than the incremental algorithms'.
	ps := uniformPoints(12, 1500, 0)
	qs := uniformPoints(13, 1500, 0.9)
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)

	_, hStats, err := core.KClosestPairs(ta, tb, 100, core.DefaultOptions(core.Heap))
	if err != nil {
		t.Fatal(err)
	}
	_, iStats, err := GetK(ta, tb, 100, Options{Traversal: Simultaneous})
	if err != nil {
		t.Fatal(err)
	}
	if hStats.MaxQueueSize >= iStats.MaxQueueSize {
		t.Errorf("HEAP queue %d not smaller than incremental queue %d",
			hStats.MaxQueueSize, iStats.MaxQueueSize)
	}
}

func TestRandomizedIncrementalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		np := 2 + rng.Intn(150)
		nq := 2 + rng.Intn(150)
		ps := uniformPoints(rng.Int63(), np, 0)
		qs := uniformPoints(rng.Int63(), nq, rng.Float64()*1.5)
		ta := buildTree(t, ps, 256)
		tb := buildTree(t, qs, 256)
		k := 1 + rng.Intn(np*nq)
		opts := Options{
			Traversal: Traversals()[rng.Intn(3)],
			Tie:       TiePolicy(rng.Intn(2)),
		}
		got, _, err := GetK(ta, tb, k, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForceKCP(ps, qs, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v k=%d): got %d pairs, want %d",
				trial, opts, k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d (%v k=%d) pair %d: %.12g vs %.12g",
					trial, opts, k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestIncrementalUnderMetrics(t *testing.T) {
	ps := uniformPoints(20, 200, 0)
	qs := uniformPoints(21, 200, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, m := range []geom.Metric{geom.L1(), geom.LInf()} {
		want := core.BruteForceKCPMetric(ps, qs, 30, m)
		got, _, err := GetK(ta, tb, 30, Options{Traversal: Simultaneous, Metric: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%v pair %d: dist %.12g, want %.12g", m, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestPolicyStringers(t *testing.T) {
	for _, tr := range Traversals() {
		if tr.String() == "" {
			t.Error("empty traversal name")
		}
	}
	if Traversal(9).String() != "Traversal(9)" {
		t.Error("unknown traversal String")
	}
	for _, tp := range []TiePolicy{DepthFirst, BreadthFirst} {
		if tp.String() == "" {
			t.Error("empty tie policy name")
		}
	}
	if TiePolicy(9).String() != "TiePolicy(9)" {
		t.Error("unknown tie policy String")
	}
}

package kdim

import (
	"fmt"
	"math"
	"sort"
)

// Tree is an in-memory k-dimensional R*-tree: the same ChooseSubtree and
// split criteria as internal/rtree (least overlap/volume enlargement,
// margin-driven split axis, minimal-overlap distribution), generalized to
// k dimensions. Forced reinsertion is omitted — the package demonstrates
// dimensional generality of the query algorithms, not build tuning.
type Tree struct {
	dims       int
	maxEntries int
	minEntries int
	root       *node
	height     int
	size       int64
}

type entry struct {
	rect  Rect
	child *node // nil at leaves
	ref   int64
}

type node struct {
	level   int // 0 = leaf
	entries []entry
}

func (n *node) mbr() Rect {
	var r Rect
	for i := range n.entries {
		r = r.Union(n.entries[i].rect)
	}
	return r
}

// NewTree creates an empty k-dimensional tree with fan-out M and minimum
// occupancy m (defaults 21 and 7 when zero, matching the paper's planar
// setup).
func NewTree(dims, maxEntries, minEntries int) (*Tree, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("kdim: dims must be positive, got %d", dims)
	}
	if maxEntries == 0 {
		maxEntries = 21
	}
	if minEntries == 0 {
		minEntries = maxEntries / 3
	}
	if maxEntries < 4 || minEntries < 2 || minEntries > maxEntries/2 {
		return nil, fmt.Errorf("kdim: invalid fan-out M=%d m=%d", maxEntries, minEntries)
	}
	return &Tree{dims: dims, maxEntries: maxEntries, minEntries: minEntries}, nil
}

// BuildTree indexes pts (refs = indices) into a fresh tree.
func BuildTree(pts []Point, maxEntries, minEntries int) (*Tree, error) {
	dims, err := checkDims(pts)
	if err != nil {
		return nil, err
	}
	t, err := NewTree(dims, maxEntries, minEntries)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if err := t.Insert(p, int64(i)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int64 { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Insert adds one point.
func (t *Tree) Insert(p Point, ref int64) error {
	if len(p) != t.dims {
		return fmt.Errorf("kdim: point has %d dims, tree has %d", len(p), t.dims)
	}
	e := entry{rect: PointRect(p), ref: ref}
	if !e.rect.Valid() {
		return fmt.Errorf("kdim: invalid point %v", p)
	}
	if t.root == nil {
		t.root = &node{level: 0, entries: []entry{e}}
		t.height = 1
		t.size = 1
		return nil
	}
	split := t.insertAt(t.root, e)
	if split != nil {
		t.root = &node{
			level: t.height,
			entries: []entry{
				{rect: t.root.mbr(), child: t.root},
				{rect: split.mbr(), child: split},
			},
		}
		t.height++
	}
	t.size++
	return nil
}

// insertAt descends to the leaf level; it returns the new sibling if n
// split.
func (t *Tree) insertAt(n *node, e entry) *node {
	if n.level == 0 {
		n.entries = append(n.entries, e)
	} else {
		i := t.chooseSubtree(n, e.rect)
		child := n.entries[i].child
		split := t.insertAt(child, e)
		n.entries[i].rect = child.mbr()
		if split != nil {
			n.entries = append(n.entries, entry{rect: split.mbr(), child: split})
		}
	}
	if len(n.entries) <= t.maxEntries {
		return nil
	}
	return t.splitNode(n)
}

func (t *Tree) chooseSubtree(n *node, r Rect) int {
	if n.level == 1 {
		// Children are leaves: least overlap enlargement (R* rule).
		best, bestOv, bestEnl := 0, math.Inf(1), math.Inf(1)
		for i := range n.entries {
			enlarged := n.entries[i].rect.Union(r)
			var ov float64
			for j := range n.entries {
				if j == i {
					continue
				}
				ov += enlarged.OverlapVolume(n.entries[j].rect) -
					n.entries[i].rect.OverlapVolume(n.entries[j].rect)
			}
			enl := n.entries[i].rect.Enlargement(r)
			if ov < bestOv || (ov == bestOv && enl < bestEnl) {
				best, bestOv, bestEnl = i, ov, enl
			}
		}
		return best
	}
	best, bestEnl, bestVol := 0, math.Inf(1), math.Inf(1)
	for i := range n.entries {
		enl := n.entries[i].rect.Enlargement(r)
		vol := n.entries[i].rect.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// splitNode applies the R* split generalized over all k axes.
func (t *Tree) splitNode(n *node) *node {
	m := t.minEntries
	bestAxisSorted := []entry(nil)
	bestS := math.Inf(1)
	for axis := 0; axis < t.dims; axis++ {
		for _, byMax := range []bool{false, true} {
			sorted := append([]entry(nil), n.entries...)
			sort.SliceStable(sorted, func(i, j int) bool {
				if byMax {
					return sorted[i].rect.Max[axis] < sorted[j].rect.Max[axis]
				}
				return sorted[i].rect.Min[axis] < sorted[j].rect.Min[axis]
			})
			s := marginSumK(sorted, m)
			if s < bestS {
				bestS = s
				bestAxisSorted = sorted
			}
		}
	}
	split := bestDistributionK(bestAxisSorted, m)
	g2 := append([]entry(nil), bestAxisSorted[split:]...)
	n.entries = append(n.entries[:0], bestAxisSorted[:split]...)
	return &node{level: n.level, entries: g2}
}

func marginSumK(sorted []entry, m int) float64 {
	prefix, suffix := prefixSuffixMBRs(sorted)
	var s float64
	for k := 1; k <= len(sorted)-2*m+1; k++ {
		cut := m - 1 + k
		s += prefix[cut-1].Margin() + suffix[cut].Margin()
	}
	return s
}

func bestDistributionK(sorted []entry, m int) int {
	prefix, suffix := prefixSuffixMBRs(sorted)
	bestCut, bestOv, bestVol := m, math.Inf(1), math.Inf(1)
	for k := 1; k <= len(sorted)-2*m+1; k++ {
		cut := m - 1 + k
		ov := prefix[cut-1].OverlapVolume(suffix[cut])
		vol := prefix[cut-1].Volume() + suffix[cut].Volume()
		if ov < bestOv || (ov == bestOv && vol < bestVol) {
			bestCut, bestOv, bestVol = cut, ov, vol
		}
	}
	return bestCut
}

func prefixSuffixMBRs(sorted []entry) (prefix, suffix []Rect) {
	prefix = make([]Rect, len(sorted))
	suffix = make([]Rect, len(sorted))
	var acc Rect
	for i := range sorted {
		acc = acc.Union(sorted[i].rect)
		prefix[i] = acc
	}
	acc = Rect{}
	for i := len(sorted) - 1; i >= 0; i-- {
		acc = acc.Union(sorted[i].rect)
		suffix[i] = acc
	}
	return prefix, suffix
}

// CheckInvariants validates the tree structure (used by tests).
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 || t.height != 0 {
			return fmt.Errorf("kdim: empty root with size %d height %d", t.size, t.height)
		}
		return nil
	}
	var count int64
	if err := t.check(t.root, t.height-1, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("kdim: size %d but %d entries found", t.size, count)
	}
	return nil
}

func (t *Tree) check(n *node, level int, count *int64) error {
	if n.level != level {
		return fmt.Errorf("kdim: node level %d, want %d", n.level, level)
	}
	if n != t.root && len(n.entries) < t.minEntries {
		return fmt.Errorf("kdim: underfull node: %d < %d", len(n.entries), t.minEntries)
	}
	if len(n.entries) > t.maxEntries {
		return fmt.Errorf("kdim: overfull node: %d > %d", len(n.entries), t.maxEntries)
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Valid() {
			return fmt.Errorf("kdim: invalid rect %v", e.rect)
		}
		if n.level == 0 {
			*count++
			continue
		}
		childMBR := e.child.mbr()
		for d := range childMBR.Min {
			if childMBR.Min[d] != e.rect.Min[d] || childMBR.Max[d] != e.rect.Max[d] {
				return fmt.Errorf("kdim: stale parent rect")
			}
		}
		if err := t.check(e.child, level-1, count); err != nil {
			return err
		}
	}
	return nil
}

package kdim

import (
	"math"
	"math/rand"
	"testing"
)

func randKPoints(seed int64, n, dims int) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestGeomBasics(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{1, 2, 2}
	if got := Dist(a, b); math.Abs(got-3) > 1e-12 {
		t.Errorf("Dist = %g, want 3", got)
	}
	r := Rect{Min: Point{0, 0, 0}, Max: Point{2, 3, 4}}
	if got := r.Volume(); got != 24 {
		t.Errorf("Volume = %g", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %g", got)
	}
	c := r.Center()
	for i, want := range []float64{1, 1.5, 2} {
		if c[i] != want {
			t.Errorf("Center[%d] = %g", i, c[i])
		}
	}
	if !r.Valid() {
		t.Error("r must be valid")
	}
	bad := Rect{Min: Point{1, 0}, Max: Point{0, 1}}
	if bad.Valid() {
		t.Error("inverted rect must be invalid")
	}
}

func TestMinMaxDistKDim(t *testing.T) {
	a := Rect{Min: Point{0, 0, 0}, Max: Point{1, 1, 1}}
	b := Rect{Min: Point{2, 0, 0}, Max: Point{3, 1, 1}}
	if got := MinMinDistSq(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("MinMinDistSq = %g, want 1", got)
	}
	// Farthest corners: dx=3, dy=1, dz=1 -> 11.
	if got := MaxMaxDistSq(a, b); math.Abs(got-11) > 1e-12 {
		t.Errorf("MaxMaxDistSq = %g, want 11", got)
	}
	// Intersecting boxes.
	if got := MinMinDistSq(a, a); got != 0 {
		t.Errorf("self MinMinDistSq = %g", got)
	}
}

func TestInequalityOneKDim(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{3, 4, 5} {
		for trial := 0; trial < 200; trial++ {
			mk := func() (Rect, []Point) {
				pts := make([]Point, 5)
				var r Rect
				for i := range pts {
					p := make(Point, dims)
					for d := range p {
						p[d] = rng.Float64() * 10
					}
					pts[i] = p
					r = r.Union(PointRect(p))
				}
				return r, pts
			}
			ra, pa := mk()
			rb, pb := mk()
			mn, mx := MinMinDistSq(ra, rb), MaxMaxDistSq(ra, rb)
			for _, p := range pa {
				for _, q := range pb {
					d := DistSq(p, q)
					if d < mn-1e-9 || d > mx+1e-9 {
						t.Fatalf("dims=%d: inequality 1 violated: %g not in [%g, %g]",
							dims, d, mn, mx)
					}
				}
			}
		}
	}
}

func TestTreeInvariantsAcrossDims(t *testing.T) {
	for _, dims := range []int{2, 3, 4, 6} {
		tr, err := BuildTree(randKPoints(int64(dims), 2000, dims), 0, 0)
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		if tr.Len() != 2000 {
			t.Fatalf("dims=%d: Len = %d", dims, tr.Len())
		}
		if tr.Height() < 2 {
			t.Fatalf("dims=%d: Height = %d", dims, tr.Height())
		}
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := NewTree(0, 0, 0); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewTree(2, 10, 8); err == nil {
		t.Error("m > M/2 must fail")
	}
	tr, err := NewTree(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Point{1, 2}, 0); err == nil {
		t.Error("dimensionality mismatch must fail")
	}
	if err := tr.Insert(Point{1, 2, math.NaN()}, 0); err == nil {
		t.Error("NaN point must fail")
	}
	if _, err := BuildTree([]Point{{1, 2}, {1, 2, 3}}, 0, 0); err == nil {
		t.Error("mixed dims must fail")
	}
	if _, err := BuildTree(nil, 0, 0); err == nil {
		t.Error("empty build must fail")
	}
}

func TestKCPMatchesBruteForceAcrossDims(t *testing.T) {
	for _, dims := range []int{2, 3, 4, 5} {
		ps := randKPoints(int64(100+dims), 300, dims)
		qs := randKPoints(int64(200+dims), 250, dims)
		ta, err := BuildTree(ps, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := BuildTree(qs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 10, 50} {
			got, stats, err := KClosestPairs(ta, tb, k)
			if err != nil {
				t.Fatalf("dims=%d k=%d: %v", dims, k, err)
			}
			want := BruteForceKCP(ps, qs, k)
			if len(got) != len(want) {
				t.Fatalf("dims=%d k=%d: got %d pairs, want %d", dims, k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("dims=%d k=%d pair %d: dist %.12g, want %.12g",
						dims, k, i, got[i].Dist, want[i].Dist)
				}
			}
			if stats.NodePairsProcessed <= 0 {
				t.Errorf("dims=%d: no work recorded", dims)
			}
		}
	}
}

func TestKCPDifferentHeightsKDim(t *testing.T) {
	ps := randKPoints(1, 20, 3)
	qs := randKPoints(2, 3000, 3)
	ta, err := BuildTree(ps, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildTree(qs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Height() == tb.Height() {
		t.Fatal("test requires different heights")
	}
	got, _, err := KClosestPairs(ta, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForceKCP(ps, qs, 10)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestKCPPrunesInHighDims(t *testing.T) {
	// Well-separated 4-D clouds: almost everything must be pruned.
	ps := randKPoints(3, 2000, 4)
	qs := randKPoints(4, 2000, 4)
	for i := range qs {
		qs[i][0] += 10
	}
	ta, _ := BuildTree(ps, 0, 0)
	tb, _ := BuildTree(qs, 0, 0)
	_, stats, err := KClosestPairs(ta, tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PointPairsCompared > 2000*2000/10 {
		t.Errorf("compared %d point pairs; pruning ineffective", stats.PointPairsCompared)
	}
}

func TestKCPErrors(t *testing.T) {
	ta, _ := BuildTree(randKPoints(5, 10, 3), 0, 0)
	tb, _ := BuildTree(randKPoints(6, 10, 4), 0, 0)
	if _, _, err := KClosestPairs(ta, tb, 1); err == nil {
		t.Error("dims mismatch must fail")
	}
	if _, _, err := KClosestPairs(ta, ta, 0); err == nil {
		t.Error("k=0 must fail")
	}
	empty, _ := NewTree(3, 0, 0)
	if _, _, err := KClosestPairs(ta, empty, 1); err == nil {
		t.Error("empty tree must fail")
	}
}

// Package kdim validates the paper's claim that "the extension to
// k-dimensional space is straightforward" (Section 2.1): it provides
// k-dimensional points and MBRs, the MINMINDIST / MAXMAXDIST bounds, an
// in-memory k-dimensional R*-tree, and the HEAP K-CPQ algorithm on top.
//
// Scope notes. The package is a dimensional validation prototype, not a
// second storage engine: nodes live on the heap and cost is counted in
// node pairs processed rather than page accesses. Pruning uses
// MINMINDIST and the K-heap bound only — the 2-D MINMAXDIST shortcut of
// Inequality 2 rests on an edge-pair enumeration whose k-dimensional
// generalization (face pairs) is easy to get subtly wrong, and the
// algorithms remain correct (Section 3.8's simple variant) without it.
package kdim

import (
	"fmt"
	"math"
)

// Point is a point in k-dimensional space.
type Point []float64

// DistSq returns the squared Euclidean distance between two points of the
// same dimensionality.
func DistSq(a, b Point) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dist returns the Euclidean distance.
func Dist(a, b Point) float64 { return math.Sqrt(DistSq(a, b)) }

// Rect is an axis-aligned box in k dimensions.
type Rect struct {
	Min, Max Point
}

// PointRect returns the degenerate box covering exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: append(Point(nil), p...), Max: append(Point(nil), p...)}
}

// Dims returns the dimensionality.
func (r Rect) Dims() int { return len(r.Min) }

// Valid reports whether r is well-formed: equal dimensionalities, finite
// coordinates, Min <= Max on every axis.
func (r Rect) Valid() bool {
	if len(r.Min) == 0 || len(r.Min) != len(r.Max) {
		return false
	}
	for i := range r.Min {
		if math.IsNaN(r.Min[i]) || math.IsInf(r.Min[i], 0) ||
			math.IsNaN(r.Max[i]) || math.IsInf(r.Max[i], 0) ||
			r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest box covering r and s (r may be zero-valued
// to act as the identity).
func (r Rect) Union(s Rect) Rect {
	if len(r.Min) == 0 {
		return s.clone()
	}
	out := r.clone()
	for i := range out.Min {
		if s.Min[i] < out.Min[i] {
			out.Min[i] = s.Min[i]
		}
		if s.Max[i] > out.Max[i] {
			out.Max[i] = s.Max[i]
		}
	}
	return out
}

func (r Rect) clone() Rect {
	return Rect{
		Min: append(Point(nil), r.Min...),
		Max: append(Point(nil), r.Max...),
	}
}

// Volume returns the k-dimensional volume (the "area" of the R* criteria).
func (r Rect) Volume() float64 {
	if len(r.Min) == 0 {
		return 0
	}
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Margin returns the sum of the box's extents (the R* margin value up to
// a constant factor).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Center returns the centroid.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Contains reports whether s lies entirely within r.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Enlargement returns the volume increase needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Volume() - r.Volume()
}

// OverlapVolume returns the volume of the intersection of r and s.
func (r Rect) OverlapVolume(s Rect) float64 {
	v := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// MinMinDistSq returns the squared MINMINDIST between two boxes: per-axis
// separations combined by the Euclidean norm (0 on intersection), exactly
// as in two dimensions.
func MinMinDistSq(a, b Rect) float64 {
	var sum float64
	for i := range a.Min {
		var d float64
		switch {
		case b.Min[i] > a.Max[i]:
			d = b.Min[i] - a.Max[i]
		case a.Min[i] > b.Max[i]:
			d = a.Min[i] - b.Max[i]
		}
		sum += d * d
	}
	return sum
}

// MaxMaxDistSq returns the squared MAXMAXDIST: per-axis maximal
// separations, attained simultaneously at a corner pair in any dimension.
func MaxMaxDistSq(a, b Rect) float64 {
	var sum float64
	for i := range a.Min {
		d := math.Max(math.Abs(b.Max[i]-a.Min[i]), math.Abs(a.Max[i]-b.Min[i]))
		sum += d * d
	}
	return sum
}

// checkDims verifies that all points share a positive dimensionality.
func checkDims(pts []Point) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("kdim: no points")
	}
	dims := len(pts[0])
	if dims == 0 {
		return 0, fmt.Errorf("kdim: zero-dimensional point")
	}
	for i, p := range pts {
		if len(p) != dims {
			return 0, fmt.Errorf("kdim: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	return dims, nil
}

package kdim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Pair is one k-dimensional closest-pair result.
type Pair struct {
	P, Q       Point
	RefP, RefQ int64
	Dist       float64
}

// Stats reports the cost of a k-dimensional query. The trees are
// in-memory, so cost is counted in node pairs processed (each of which
// would be two page reads on a paged tree).
type Stats struct {
	NodePairsProcessed int64
	SubPairsPruned     int64
	PointPairsCompared int64
	MaxQueueSize       int
}

// kdPair is a heap element of the HEAP algorithm in k dimensions.
type kdPair struct {
	minminSq float64
	a, b     *node
}

type kdPairHeap []kdPair

func (h kdPairHeap) less(i, j int) bool { return h[i].minminSq < h[j].minminSq }

func (h *kdPairHeap) push(p kdPair) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *kdPairHeap) pop() kdPair {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = kdPair{}
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// resultHeap is the K-heap in k dimensions.
type resultHeap struct {
	k     int
	pairs []Pair // max-heap on Dist
}

func (r *resultHeap) threshold() float64 {
	if len(r.pairs) < r.k {
		return math.Inf(1)
	}
	return r.pairs[0].Dist * r.pairs[0].Dist
}

func (r *resultHeap) offer(distSq float64, p, q Point, refP, refQ int64) {
	d := math.Sqrt(distSq)
	if len(r.pairs) >= r.k && d >= r.pairs[0].Dist {
		return
	}
	pair := Pair{
		P: append(Point(nil), p...), Q: append(Point(nil), q...),
		RefP: refP, RefQ: refQ, Dist: d,
	}
	if len(r.pairs) < r.k {
		r.pairs = append(r.pairs, pair)
		i := len(r.pairs) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if r.pairs[parent].Dist >= r.pairs[i].Dist {
				break
			}
			r.pairs[parent], r.pairs[i] = r.pairs[i], r.pairs[parent]
			i = parent
		}
		return
	}
	r.pairs[0] = pair
	n := len(r.pairs)
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < n && r.pairs[l].Dist > r.pairs[largest].Dist {
			largest = l
		}
		if rr := 2*i + 2; rr < n && r.pairs[rr].Dist > r.pairs[largest].Dist {
			largest = rr
		}
		if largest == i {
			return
		}
		r.pairs[i], r.pairs[largest] = r.pairs[largest], r.pairs[i]
		i = largest
	}
}

// KClosestPairs finds the K closest pairs between two k-dimensional trees
// with the iterative HEAP algorithm: a min-heap of node pairs keyed by
// MINMINDIST, pruned against the K-heap threshold. The different-heights
// treatment is fix-at-root, the paper's recommendation.
func KClosestPairs(ta, tb *Tree, k int) ([]Pair, Stats, error) {
	if ta.dims != tb.dims {
		return nil, Stats{}, fmt.Errorf("kdim: dimensionality mismatch %d vs %d", ta.dims, tb.dims)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("kdim: k must be positive, got %d", k)
	}
	if ta.size == 0 || tb.size == 0 {
		return nil, Stats{}, errors.New("kdim: query over an empty tree")
	}
	var stats Stats
	results := &resultHeap{k: k}
	h := &kdPairHeap{}
	h.push(kdPair{minminSq: MinMinDistSq(ta.root.mbr(), tb.root.mbr()), a: ta.root, b: tb.root})

	for len(*h) > 0 {
		if len(*h) > stats.MaxQueueSize {
			stats.MaxQueueSize = len(*h)
		}
		p := h.pop()
		if p.minminSq > results.threshold() {
			break
		}
		stats.NodePairsProcessed++
		na, nb := p.a, p.b

		if na.level == 0 && nb.level == 0 {
			for i := range na.entries {
				for j := range nb.entries {
					stats.PointPairsCompared++
					d := MinMinDistSq(na.entries[i].rect, nb.entries[j].rect)
					results.offer(d, na.entries[i].rect.Min, nb.entries[j].rect.Min,
						na.entries[i].ref, nb.entries[j].ref)
				}
			}
			continue
		}

		// Fix-at-root: open only the higher-level node while levels differ.
		expandA := na.level >= nb.level && na.level > 0
		expandB := nb.level >= na.level && nb.level > 0
		T := results.threshold()
		switch {
		case expandA && expandB:
			for i := range na.entries {
				for j := range nb.entries {
					mm := MinMinDistSq(na.entries[i].rect, nb.entries[j].rect)
					if mm > T {
						stats.SubPairsPruned++
						continue
					}
					h.push(kdPair{minminSq: mm, a: na.entries[i].child, b: nb.entries[j].child})
				}
			}
		case expandA:
			for i := range na.entries {
				mm := MinMinDistSq(na.entries[i].rect, nb.mbr())
				if mm > T {
					stats.SubPairsPruned++
					continue
				}
				h.push(kdPair{minminSq: mm, a: na.entries[i].child, b: nb})
			}
		default:
			for j := range nb.entries {
				mm := MinMinDistSq(na.mbr(), nb.entries[j].rect)
				if mm > T {
					stats.SubPairsPruned++
					continue
				}
				h.push(kdPair{minminSq: mm, a: na, b: nb.entries[j].child})
			}
		}
	}

	out := append([]Pair(nil), results.pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].RefP != out[j].RefP {
			return out[i].RefP < out[j].RefP
		}
		return out[i].RefQ < out[j].RefQ
	})
	return out, stats, nil
}

// BruteForceKCP is the oracle: full pairwise scan.
func BruteForceKCP(ps, qs []Point, k int) []Pair {
	if k <= 0 || len(ps) == 0 || len(qs) == 0 {
		return nil
	}
	r := &resultHeap{k: k}
	for i, p := range ps {
		for j, q := range qs {
			r.offer(DistSq(p, q), p, q, int64(i), int64(j))
		}
	}
	out := append([]Pair(nil), r.pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].RefP != out[j].RefP {
			return out[i].RefP < out[j].RefP
		}
		return out[i].RefQ < out[j].RefQ
	})
	return out
}

package shard

import (
	"fmt"

	"repro/internal/obs"
)

// The emit helpers follow the engine's obshooks discipline (the cpqlint
// check now covers this package): every tracer touch sits behind a
// nil-guarded helper so a disabled tracer costs one branch per event and
// zero allocations.

// startExecSpan opens the executor's query span as a child of the
// caller's trace context (nil tracer → nil span, on which every emit
// no-ops). With a zero parent the span opens a fresh root trace.
func startExecSpan(tr obs.Tracer, parent obs.TraceContext, tiles, k int, t Transport) *obs.Span {
	if tr == nil {
		return nil
	}
	return obs.StartSpanFrom(tr, parent, fmt.Sprintf("shard-exec tiles=%d k=%d transport=%s", tiles, k, t.String()))
}

func traceShardPlan(sp *obs.Span, planned int) {
	if sp == nil {
		return
	}
	sp.Emit(obs.Event{Kind: obs.EvShardPlan, N: int64(planned)})
}

func traceShardPruned(sp *obs.Span, a, b, tiles int, minmin float64) {
	if sp == nil {
		return
	}
	sp.Emit(obs.Event{Kind: obs.EvShardPruned, N: int64(a*tiles + b), New: minmin})
}

func traceShardJoin(sp *obs.Span, a, b, tiles int, bound float64, worker int32) {
	if sp == nil {
		return
	}
	sp.Emit(obs.Event{Kind: obs.EvShardJoin, N: int64(a*tiles + b), New: bound, Worker: worker})
}

// traceExecEnd closes the executor span.
func traceExecEnd(sp *obs.Span, finalBound float64, results int, errText string) {
	if sp == nil {
		return
	}
	sp.End(finalBound, results, errText)
}

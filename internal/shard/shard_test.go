package shard

import (
	"context"
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func items(pts []geom.Point) []rtree.Item {
	out := make([]rtree.Item, len(pts))
	for i, p := range pts {
		out[i] = rtree.Item{Rect: p.Rect(), Ref: int64(i)}
	}
	return out
}

// monoTree bulk loads one monolithic tree for the unsharded reference
// run, on a sharded pool so parallel configurations can read it.
func monoTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	pool := storage.NewShardedBufferPool(storage.NewMemFile(1024), 256, 8, storage.LRU)
	tr, err := rtree.New(pool, rtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(items(pts), 0.7); err != nil {
		t.Fatal(err)
	}
	return tr
}

func runUnsharded(t testing.TB, ptsA, ptsB []geom.Point, k int, opts core.Options) []core.Pair {
	t.Helper()
	ta, tb := monoTree(t, ptsA), monoTree(t, ptsB)
	pairs, _, err := core.KClosestPairs(ta, tb, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func runSharded(t testing.TB, ptsA, ptsB []geom.Point, k int, opts core.Options, tiles, workers int) Result {
	t.Helper()
	set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: tiles})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ex := Executor{Set: set, Workers: workers}
	res, err := ex.Run(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// comparePairs demands bit-identical distances and identical tie order.
func comparePairs(t *testing.T, want, got []core.Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result length: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if math.Float64bits(w.Dist) != math.Float64bits(g.Dist) {
			t.Fatalf("pair %d: distance bits differ: want %v (%x), got %v (%x)",
				i, w.Dist, math.Float64bits(w.Dist), g.Dist, math.Float64bits(g.Dist))
		}
		if w.RefP != g.RefP || w.RefQ != g.RefQ {
			t.Fatalf("pair %d: tie order differs: want refs (%d,%d), got (%d,%d)",
				i, w.RefP, w.RefQ, g.RefP, g.RefQ)
		}
		if w.P != g.P || w.Q != g.Q {
			t.Fatalf("pair %d: points differ: want %v-%v, got %v-%v", i, w.P, w.Q, g.P, g.Q)
		}
	}
}

var tileCounts = []int{1, 2, 7, 16}

// TestShardedMatchesUnshardedAlgorithms is the core equivalence
// property: for every algorithm and shard count, the scatter-gather
// answer is bit-identical (distances and tie order) to the monolithic
// join's.
func TestShardedMatchesUnshardedAlgorithms(t *testing.T) {
	ptsA := dataset.Uniform(901, 1200)
	ptsB := dataset.Uniform(902, 1200)
	algos := map[string]core.Algorithm{
		"naive": core.Naive, "exh": core.Exhaustive, "sim": core.Simple,
		"std": core.SortedDistances, "heap": core.Heap,
	}
	for name, algo := range algos {
		opts := core.Options{Algorithm: algo}
		want := runUnsharded(t, ptsA, ptsB, 10, opts)
		for _, tiles := range tileCounts {
			t.Run(name+"/tiles="+strconv.Itoa(tiles), func(t *testing.T) {
				res := runSharded(t, ptsA, ptsB, 10, opts, tiles, 4)
				comparePairs(t, want, res.Pairs)
			})
		}
	}
}

func TestShardedMatchesUnshardedMetrics(t *testing.T) {
	ptsA := dataset.Uniform(903, 1500)
	ptsB := dataset.Uniform(904, 1500)
	metrics := map[string]geom.Metric{"l2": geom.L2(), "l1": geom.L1(), "linf": geom.LInf()}
	for name, m := range metrics {
		t.Run(name, func(t *testing.T) {
			opts := core.Options{Algorithm: core.Heap, Metric: m}
			want := runUnsharded(t, ptsA, ptsB, 10, opts)
			res := runSharded(t, ptsA, ptsB, 10, opts, 7, 4)
			comparePairs(t, want, res.Pairs)
		})
	}
}

func TestShardedMatchesUnshardedK(t *testing.T) {
	ptsA := dataset.Uniform(905, 1500)
	ptsB := dataset.Uniform(906, 1500)
	for _, k := range []int{1, 10, 100} {
		t.Run("k="+strconv.Itoa(k), func(t *testing.T) {
			opts := core.Options{Algorithm: core.Heap}
			want := runUnsharded(t, ptsA, ptsB, k, opts)
			res := runSharded(t, ptsA, ptsB, k, opts, 7, 4)
			comparePairs(t, want, res.Pairs)
		})
	}
}

func TestShardedMatchesUnshardedParallelism(t *testing.T) {
	ptsA := dataset.Uniform(907, 1500)
	ptsB := dataset.Uniform(908, 1500)
	for _, par := range []int{1, 4} {
		t.Run("par="+strconv.Itoa(par), func(t *testing.T) {
			opts := core.Options{Algorithm: core.Heap, Parallelism: par}
			want := runUnsharded(t, ptsA, ptsB, 10, opts)
			res := runSharded(t, ptsA, ptsB, 10, opts, 7, 4)
			comparePairs(t, want, res.Pairs)
		})
	}
}

// TestShardedClusteredAndSkewed covers skewed tiles (clustered data)
// and empty shard sides (spatially disjoint sets: every tile holding A
// points on the left holds no B points, and vice versa).
func TestShardedClusteredAndSkewed(t *testing.T) {
	t.Run("clustered", func(t *testing.T) {
		ptsA := dataset.Clustered(909, 1500)
		ptsB := dataset.Clustered(910, 1500)
		opts := core.Options{Algorithm: core.Heap}
		want := runUnsharded(t, ptsA, ptsB, 10, opts)
		for _, tiles := range tileCounts {
			res := runSharded(t, ptsA, ptsB, 10, opts, tiles, 4)
			comparePairs(t, want, res.Pairs)
		}
	})
	t.Run("disjoint", func(t *testing.T) {
		ptsA := squeeze(dataset.Uniform(911, 1000), 0, 0.35)
		ptsB := squeeze(dataset.Uniform(912, 1000), 0.65, 1)
		opts := core.Options{Algorithm: core.Heap}
		want := runUnsharded(t, ptsA, ptsB, 10, opts)
		for _, tiles := range tileCounts {
			res := runSharded(t, ptsA, ptsB, 10, opts, tiles, 4)
			comparePairs(t, want, res.Pairs)
			if tiles > 1 {
				empty := false
				for _, row := range res.Shards {
					if row.NA == 0 || row.NB == 0 {
						empty = true
					}
				}
				if !empty {
					t.Fatalf("disjoint sets over %d tiles produced no one-sided shard", tiles)
				}
			}
		}
	})
}

// squeeze maps points' X into [lo, hi], keeping Y, to build spatially
// disjoint sets.
func squeeze(pts []geom.Point, lo, hi float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: lo + p.X*(hi-lo), Y: p.Y}
	}
	return out
}

// TestPartitionInvariants checks the partitioner preserves every item
// exactly once and produces the requested tile count.
func TestPartitionInvariants(t *testing.T) {
	ptsA := dataset.Clustered(913, 2000)
	ptsB := dataset.Uniform(914, 1000)
	for _, tiles := range tileCounts {
		set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: tiles})
		if err != nil {
			t.Fatal(err)
		}
		if set.Tiles() != tiles {
			t.Fatalf("tiles: want %d, got %d", tiles, set.Tiles())
		}
		var na, nb int64
		for _, sh := range set.Shards() {
			na += sh.A.Len()
			nb += sh.B.Len()
			if sh.A.Len() > 0 || sh.B.Len() > 0 {
				if !sh.Tile.Valid() {
					t.Fatalf("shard %d holds points but has tile %v", sh.ID, sh.Tile)
				}
			}
		}
		if na != int64(len(ptsA)) || nb != int64(len(ptsB)) {
			t.Fatalf("partition lost items: A %d/%d, B %d/%d", na, len(ptsA), nb, len(ptsB))
		}
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecutorPruning pins the deterministic pruning case: two tight
// clusters far apart, one worker, ascending MINMINDIST dispatch. The
// left cluster's join runs first (smallest tile-level MINMINDIST) and
// broadcasts its tiny best distance; the right cluster's internal gap
// is three times wider, so its shard pair — and both cross-cluster
// pairs — are pruned without dispatch.
func TestExecutorPruning(t *testing.T) {
	var ptsA, ptsB []geom.Point
	for i := 0; i < 50; i++ {
		d := float64(i) * 1e-4
		ptsA = append(ptsA, geom.Point{X: 0.1 + d, Y: 0.1}, geom.Point{X: 0.9 + d, Y: 0.9})
		ptsB = append(ptsB, geom.Point{X: 0.1 + d, Y: 0.1 + 1e-5}, geom.Point{X: 0.9 + d, Y: 0.9 + 3e-5})
	}
	set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ex := Executor{Set: set, Workers: 1}
	res, err := ex.Run(1, core.Options{Algorithm: core.Heap})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlannedPairs != 4 {
		t.Fatalf("planned pairs: want 4, got %d", res.PlannedPairs)
	}
	if res.PrunedPairs != 3 {
		t.Fatalf("pruned pairs: want 3 (right cluster and both cross-cluster), got %d", res.PrunedPairs)
	}
	want := runUnsharded(t, ptsA, ptsB, 1, core.Options{Algorithm: core.Heap})
	comparePairs(t, want, res.Pairs)
}

func TestExecutorEmptyInput(t *testing.T) {
	set, err := Partition(nil, nil, Config{Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ex := Executor{Set: set}
	if _, err := ex.Run(3, core.Options{}); err != core.ErrEmptyInput {
		t.Fatalf("want ErrEmptyInput, got %v", err)
	}
}

func TestPartitionCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := dataset.Uniform(915, 500)
	if _, err := PartitionContext(ctx, items(pts), items(pts), Config{Tiles: 4}); err == nil {
		t.Fatal("want context error, got nil")
	}
}

func TestExecutorCancelled(t *testing.T) {
	pts := dataset.Uniform(916, 500)
	set, err := Partition(items(pts), items(pts), Config{Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := Executor{Set: set}
	if _, err := ex.RunContext(ctx, 5, core.Options{}); err == nil {
		t.Fatal("want context error, got nil")
	}
}

package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Executor runs one K-CPQ as scatter-gather over a shard set: it plans
// the shard-pair joins from the MINMINDIST between tile MBRs, dispatches
// them closest-first to a worker pool through the Transport, couples all
// in-flight joins with a BoundBroadcaster, and K-merges the partial
// results into the exact global answer.
type Executor struct {
	// Set is the partitioned data (required).
	Set *Set
	// Transport runs the shard-pair joins; nil means InProc.
	Transport Transport
	// Workers bounds concurrent shard-pair joins; 0 means GOMAXPROCS.
	// The count is additionally capped by the planned pair count.
	Workers int
	// Capture, when non-nil, receives the execution's EXPLAIN/ANALYZE
	// rows: phase timings, one row per planned shard pair (joined or
	// pruned, with MINMINDIST vs. the bound at decision time), per-shard
	// work attribution, and remote span forests returned by wire
	// transports. nil — the default — skips all capture work; every
	// capture point costs one pointer comparison.
	Capture *explain.Capture
}

// ShardReport is one shard's row in the execution report.
type ShardReport struct {
	// ID is the shard index in tile order.
	ID int `json:"id"`
	// Tile is the shard's data MBR (union over both sets).
	Tile geom.Rect `json:"tile"`
	// NA and NB are the shard's point counts per set.
	NA int64 `json:"n_a"`
	NB int64 `json:"n_b"`
	// PlannedPairs counts shard pairs this shard participates in (on
	// either side) that survived planning; PrunedPairs counts how many
	// of those the broadcast bound eliminated before dispatch.
	PlannedPairs int `json:"planned_pairs"`
	PrunedPairs  int `json:"pruned_pairs"`
	// BoundTrajectory samples the global bound (as a distance) after
	// each of the shard's joins completed, in completion order — the
	// local view of how fast the broadcast bound tightened.
	BoundTrajectory []float64 `json:"bound_trajectory,omitempty"`
}

// Result is one scatter-gather execution's outcome.
type Result struct {
	// Pairs is the global top K, ascending, bit-identical in distances
	// and tie order to the monolithic join's answer.
	Pairs []core.Pair
	// Stats aggregates the shard joins' counters. Node-pair, sub-pair
	// and point-pair counts are summed across joins; I/O and node-cache
	// counters are measured at the executor level (pool deltas around
	// the whole execution), because concurrent joins share each shard's
	// pools and per-join deltas would double-count.
	Stats core.Stats
	// PlannedPairs is the number of shard pairs with work after
	// planning; PrunedPairs of those, how many the broadcast bound
	// eliminated at dispatch time.
	PlannedPairs int
	PrunedPairs  int
	// FinalBound is the broadcast bound at the end, as a distance.
	FinalBound float64
	// Transport names the transport that ran the joins.
	Transport string
	// Shards holds one report row per shard, in tile order.
	Shards []ShardReport
}

// planPair is one shard-pair join: A-side shard a against B-side shard
// b, with the MINMINDIST key between the two tile MBRs.
type planPair struct {
	a, b   int
	minmin float64
}

// runState is the executor's shared mutable state. Every field is
// guarded by mu; workers touch nothing else concurrently.
type runState struct {
	mu      sync.Mutex
	next    int
	pruned  int
	err     error
	results [][]core.Pair
	// statsParts holds each dispatched join's counters in its plan
	// slot; the executor folds them after the workers join, so the
	// aggregation runs on the gather goroutine with exclusive access.
	statsParts []core.Stats
	rows       []ShardReport
}

// fail records the first error; later joins drain without dispatching.
func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// Run executes the K closest pairs query over the shard set. It is the
// context-free convenience wrapper; see RunContext.
func (e *Executor) Run(k int, opts core.Options) (Result, error) {
	return e.RunContext(context.Background(), k, opts)
}

// RunContext executes the K closest pairs query over the shard set.
//
// Planning enumerates every (A-shard, B-shard) pair with points on both
// sides and sorts by tile-level MINMINDIST, so the spatially closest
// shard products run first and seed the broadcast bound while it still
// prunes the most. At dispatch each queued pair is re-checked against
// the bound: tile-level MINMINDIST is a lower bound on every point pair
// of the product, so a pair whose MINMINDIST exceeds the bound cannot
// contribute to the global top K and is skipped whole — the tile-level
// analogue of the engine's node-pair pruning.
//
// The executor's span opens as a child of opts.Trace, and its own
// context travels to every shard join through Transport.Join, so the
// joins' spans — local or remote — correlate under one trace id.
func (e *Executor) RunContext(ctx context.Context, k int, opts core.Options) (Result, error) {
	if e.Set == nil || len(e.Set.shards) == 0 {
		return Result{}, fmt.Errorf("shard: executor has no shard set")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("shard: k must be >= 1, got %d", k)
	}
	shards := e.Set.shards
	tiles := len(shards)
	metric := opts.Metric
	capOn := e.Capture.Enabled()
	var tDispatch time.Time
	if capOn {
		tDispatch = time.Now()
	}

	rows := make([]ShardReport, tiles)
	var plan []planPair
	for i, sa := range shards {
		rows[i] = ShardReport{ID: i, Tile: sa.Tile, NA: sa.A.Len(), NB: sa.B.Len()}
		if sa.A.Len() == 0 {
			continue
		}
		for j, sb := range shards {
			if sb.B.Len() == 0 {
				continue
			}
			plan = append(plan, planPair{a: i, b: j, minmin: metric.MinMinKey(sa.boundsA, sb.boundsB)})
		}
	}
	if len(plan) == 0 {
		return Result{}, core.ErrEmptyInput
	}
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].minmin != plan[j].minmin {
			return plan[i].minmin < plan[j].minmin
		}
		if plan[i].a != plan[j].a {
			return plan[i].a < plan[j].a
		}
		return plan[i].b < plan[j].b
	})
	for _, p := range plan {
		rows[p.a].PlannedPairs++
		if p.b != p.a {
			rows[p.b].PlannedPairs++
		}
	}

	tr := e.Transport
	if tr == nil {
		tr = InProc{}
	}
	span := startExecSpan(opts.Tracer, opts.Trace, tiles, k, tr)
	traceShardPlan(span, len(plan))
	// tc is the context every shard join starts its span under — through
	// the transport, possibly across a process boundary.
	tc := span.Context()

	br := NewBoundBroadcaster()
	jopts := opts
	jopts.SharedBound = br.Bound()

	// I/O and cache accounting happens here, not per join: concurrent
	// joins share each shard's pools, so per-join deltas double-count.
	snaps := make([]poolSnap, tiles)
	for i, sh := range shards {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		snaps[i] = snapshotShard(sh)
	}

	st := &runState{results: make([][]core.Pair, len(plan)), statsParts: make([]core.Stats, len(plan)), rows: rows}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	var tJoin time.Time
	if capOn {
		tJoin = time.Now()
		e.Capture.Phase("dispatch", tJoin.Sub(tDispatch).Nanoseconds())
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int32) {
			defer wg.Done()
			e.work(ctx, worker, st, plan, tr, br, jopts, k, span, tc)
		}(int32(w))
	}
	wg.Wait()

	if st.err != nil {
		traceExecEnd(span, br.Load(), 0, st.err.Error())
		return Result{}, st.err
	}
	var tMerge time.Time
	if capOn {
		tMerge = time.Now()
		e.Capture.Phase("join", tMerge.Sub(tJoin).Nanoseconds())
	}

	res := Result{
		PlannedPairs: len(plan),
		PrunedPairs:  st.pruned,
		FinalBound:   metric.KeyToDist(br.Load()),
		Transport:    tr.String(),
		Shards:       st.rows,
	}
	for i := range st.statsParts {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// Zero the joins' shared-pool counters before folding: the
		// executor measures I/O and cache traffic once, at its own level
		// (see Result.Stats).
		part := st.statsParts[i]
		part.IOP, part.IOQ = storage.IOStats{}, storage.IOStats{}
		part.NodeCacheHits, part.NodeCacheMisses = 0, 0
		res.Stats.Merge(part)
	}
	shardDiffs := make([]core.Stats, tiles)
	for i, sh := range shards {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		shardDiffs[i] = diffShard(sh, snaps[i])
		res.Stats.Merge(shardDiffs[i])
	}
	res.Pairs = core.MergeTopK(metric, k, st.results...)
	traceExecEnd(span, br.Load(), len(res.Pairs), "")

	// Per-shard attribution: one row per shard feeds both the labeled
	// metrics registry and the explain snapshot. Runs once per query on
	// the gather goroutine, after the workers joined.
	recordShards(e.Capture, opts.Metrics, st.rows, shardDiffs)
	if capOn {
		e.Capture.Phase("merge", time.Since(tMerge).Nanoseconds())
		kth := 0.0
		if len(res.Pairs) > 0 {
			kth = res.Pairs[len(res.Pairs)-1].Dist
		}
		e.Capture.SetResult(time.Since(tDispatch).Nanoseconds(), res.Stats.ExplainStats(), len(res.Pairs), kth)
	}
	return res, nil
}

// recordShards folds the executor's per-shard rows into metric records
// (cpq_shard_* series labeled by shard id) and the explain snapshot.
// Nil-safe on both sinks.
func recordShards(ec *explain.Capture, em *obs.EngineMetrics, rows []ShardReport, diffs []core.Stats) {
	if ec == nil && em == nil {
		return
	}
	recs := make([]obs.ShardRecord, len(rows))
	stats := make([]explain.ShardStat, len(rows))
	for i, r := range rows {
		joined := int64(r.PlannedPairs - r.PrunedPairs)
		recs[i] = obs.ShardRecord{
			Shard:       i,
			Planned:     int64(r.PlannedPairs),
			Pruned:      int64(r.PrunedPairs),
			Joined:      joined,
			Accesses:    diffs[i].Accesses(),
			CacheHits:   diffs[i].NodeCacheHits,
			CacheMisses: diffs[i].NodeCacheMisses,
		}
		stats[i] = explain.ShardStat{
			Shard:       i,
			Planned:     int64(r.PlannedPairs),
			Pruned:      int64(r.PrunedPairs),
			Joined:      joined,
			Accesses:    diffs[i].Accesses(),
			CacheHits:   diffs[i].NodeCacheHits,
			CacheMisses: diffs[i].NodeCacheMisses,
		}
	}
	em.RecordShards(recs)
	ec.SetShards(stats)
}

// work is one executor worker: claim the next planned pair, re-check it
// against the broadcast bound, and run it through the transport.
func (e *Executor) work(ctx context.Context, worker int32, st *runState, plan []planPair, tr Transport, br *BoundBroadcaster, jopts core.Options, k int, span *obs.Span, tc obs.TraceContext) {
	shards := e.Set.shards
	tiles := len(shards)
	capOn := e.Capture.Enabled()
	for {
		if err := ctx.Err(); err != nil {
			st.fail(err)
			return
		}
		st.mu.Lock()
		if st.err != nil || st.next >= len(plan) {
			st.mu.Unlock()
			return
		}
		idx := st.next
		st.next++
		st.mu.Unlock()

		p := plan[idx]
		bound := br.Load()
		if p.minmin > bound {
			traceShardPruned(span, p.a, p.b, tiles, p.minmin)
			e.Capture.AddShardPair(explain.ShardPair{
				A: p.a, B: p.b, Status: explain.StatusPruned,
				MinMinDist: explain.Key(p.minmin), Bound: explain.Key(bound),
			})
			st.mu.Lock()
			st.pruned++
			st.rows[p.a].PrunedPairs++
			if p.b != p.a {
				st.rows[p.b].PrunedPairs++
			}
			st.mu.Unlock()
			continue
		}

		traceShardJoin(span, p.a, p.b, tiles, bound, worker)
		var tJoin time.Time
		if capOn {
			tJoin = time.Now()
		}
		jr, err := tr.Join(ctx, tc, shards[p.a].A, shards[p.b].B, k, jopts)
		if err != nil {
			st.fail(err)
			return
		}
		if capOn {
			e.Capture.AddShardPair(explain.ShardPair{
				A: p.a, B: p.b, Status: explain.StatusJoined,
				MinMinDist: explain.Key(p.minmin), Bound: explain.Key(bound),
				Worker:     int(worker),
				DurationNS: time.Since(tJoin).Nanoseconds(),
				Results:    len(jr.Pairs),
				Accesses:   jr.Stats.Accesses(),
				NodePairs:  jr.Stats.NodePairsProcessed,
				PointPairs: jr.Stats.PointPairsCompared,
			})
			e.Capture.MergeSpans(jr.Spans)
		}
		sample := jopts.Metric.KeyToDist(br.Load())

		st.mu.Lock()
		st.results[idx] = jr.Pairs
		st.statsParts[idx] = jr.Stats
		st.rows[p.a].BoundTrajectory = append(st.rows[p.a].BoundTrajectory, sample)
		if p.b != p.a {
			st.rows[p.b].BoundTrajectory = append(st.rows[p.b].BoundTrajectory, sample)
		}
		st.mu.Unlock()
	}
}

// poolSnap captures one shard's I/O and cache counters.
type poolSnap struct {
	a, b   storage.IOStats
	ca, cb rtree.CacheStats
}

func snapshotShard(sh *Shard) poolSnap {
	return poolSnap{
		a:  sh.A.Pool().Stats(),
		b:  sh.B.Pool().Stats(),
		ca: sh.A.NodeCacheStats(),
		cb: sh.B.NodeCacheStats(),
	}
}

// diffShard folds a shard's counter deltas since snap into Stats form:
// A-side pools feed IOP, B-side pools feed IOQ, both caches feed the
// node-cache counters.
func diffShard(sh *Shard, snap poolSnap) core.Stats {
	ca := sh.A.NodeCacheStats().Sub(snap.ca)
	cb := sh.B.NodeCacheStats().Sub(snap.cb)
	return core.Stats{
		IOP:             sh.A.Pool().Stats().Sub(snap.a),
		IOQ:             sh.B.Pool().Stats().Sub(snap.b),
		NodeCacheHits:   ca.Hits + cb.Hits,
		NodeCacheMisses: ca.Misses + cb.Misses,
	}
}

// Package shard runs K-CPQ as scatter-gather over spatial tiles: an
// STR-order range partitioner splits both data sets into T tiles with
// shared quantile boundaries, each tile getting one R-tree pair with a
// dedicated buffer pool (and optional decoded-node cache), and a
// scatter-gather executor joins the shard pairs concurrently, pruned by
// MINMINDIST between tile MBRs and coupled through a broadcast
// tighten-only bound (core.SharedBound) — the distributed analogue of
// the parallel engine's per-query atomic bound (DESIGN.md §13).
//
// The executor reaches shard joins only through the Transport
// interface. That boundary is the package's RPC seam — the in-process
// transport runs core.KClosestPairsContext directly, a wire transport
// would marshal the same call to another node — and it is also the
// static isolation boundary: each dispatched join owns its per-join
// state exclusively (the sequential-engine contract), and the dynamic
// dispatch keeps the analyzer's goroutine-reachability out of the
// engine's sequential hot path.
package shard

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Config fixes the physical layout of a shard set.
type Config struct {
	// Tiles is the number of spatial tiles T (>= 1).
	Tiles int
	// Tree is the per-shard R-tree configuration; the zero value means
	// rtree.DefaultConfig (the paper's 1 KB pages, M=21, m=7).
	Tree rtree.Config
	// BufferPages is the buffer-pool capacity (pages) of each shard tree;
	// 0 means 256.
	BufferPages int
	// PoolShards is the lock-stripe count of each buffer pool; 0 means 8.
	// Shard joins run concurrently and two joins may share one side's
	// pool, so the pools must be sharded for the View read path.
	PoolShards int
	// NodeCache is the decoded-node cache capacity (nodes) attached to
	// each shard tree; 0 — the default — attaches none, keeping the
	// paper's disk accounting exact.
	NodeCache int
	// Fill is the STR bulk-load fill factor in (0, 1]; 0 means 0.7.
	Fill float64
	// Capture, when non-nil, receives the partitioner's phase timings
	// (partition, build) for EXPLAIN output. nil — the default — skips
	// all timing work.
	Capture *explain.Capture
}

func (c *Config) fillDefaults() {
	if c.Tiles == 0 {
		c.Tiles = 1
	}
	if c.BufferPages == 0 {
		c.BufferPages = 256
	}
	if c.PoolShards == 0 {
		c.PoolShards = 8
	}
	if c.Fill == 0 {
		c.Fill = 0.7
	}
}

func (c Config) validate() error {
	if c.Tiles < 1 {
		return fmt.Errorf("shard: tile count %d < 1", c.Tiles)
	}
	if c.BufferPages < 0 {
		return fmt.Errorf("shard: negative buffer capacity %d", c.BufferPages)
	}
	if c.Fill <= 0 || c.Fill > 1 {
		return fmt.Errorf("shard: fill factor %g out of (0, 1]", c.Fill)
	}
	return nil
}

// Shard is one spatial tile: an R-tree over each data set's points that
// fall inside the tile, each on its own page file and buffer pool.
type Shard struct {
	// ID is the shard's index in STR tile order (column-major X, then Y).
	ID int
	// Tile is the union MBR of the shard's data from both sets (empty
	// when the tile holds no points at all) — the per-shard row the
	// bench JSON reports.
	Tile geom.Rect
	// A and B are the shard's trees over the two data sets. A tree is
	// empty (Len() == 0) when no points of its set fall in the tile.
	A, B *rtree.Tree

	// boundsA/boundsB are the root MBRs, cached at build time for
	// planning (MINMINDIST between tile MBRs).
	boundsA, boundsB geom.Rect

	fileA, fileB *storage.MemFile
}

// Set is a complete partitioning: Config.Tiles shards covering both
// data sets. The shard products tile the full cross product A×B, so
// joining every shard pair and merging top-Ks reproduces the monolithic
// join.
type Set struct {
	cfg    Config
	shards []*Shard
}

// Shards returns the shard list in tile order.
func (s *Set) Shards() []*Shard { return s.shards }

// Tiles returns the tile count T.
func (s *Set) Tiles() int { return len(s.shards) }

// Config returns the configuration the set was built with.
func (s *Set) Config() Config { return s.cfg }

// TileBounds renders the shards' tile MBRs in the explain snapshot's
// form: one entry per shard, empty tiles flagged (their ±Inf sentinel
// rectangle cannot travel as JSON).
func (s *Set) TileBounds() []explain.Tile {
	out := make([]explain.Tile, len(s.shards))
	for i, sh := range s.shards {
		t := explain.Tile{Index: i}
		if sh.Tile.IsEmpty() {
			t.Empty = true
		} else {
			t.MinX, t.MinY = sh.Tile.Min.X, sh.Tile.Min.Y
			t.MaxX, t.MaxY = sh.Tile.Max.X, sh.Tile.Max.Y
		}
		out[i] = t
	}
	return out
}

// Close releases every shard's page files. The set is unusable
// afterwards.
func (s *Set) Close() error {
	var errs []error
	//lint:ignore cancelpoll teardown loop bounded by the tile count, no context at Close time
	for _, sh := range s.shards {
		if sh.fileA != nil {
			errs = append(errs, sh.fileA.Close())
		}
		if sh.fileB != nil {
			errs = append(errs, sh.fileB.Close())
		}
	}
	return errors.Join(errs...)
}

package shard

import (
	"context"

	"repro/internal/core"
	"repro/internal/rtree"
)

// Transport runs one shard-pair K-CPQ join. It is the executor's RPC
// seam: InProc calls the engine directly, a wire transport would ship
// the same request (shard ids, K, options minus process-local pointers)
// to the node owning the trees and stream the result back. The
// broadcast bound crosses this boundary too — in process as the shared
// pointer in opts.SharedBound, on a wire as min-messages (see
// BoundBroadcaster).
//
// Implementations must be safe for concurrent use: the executor calls
// Join from several worker goroutines at once, possibly with the same
// tree on one side of two calls (the trees' read path is sharded and
// lock-protected for exactly this).
type Transport interface {
	// Join answers the K closest pairs of a×b under opts, with the
	// engine's per-join statistics.
	Join(ctx context.Context, a, b *rtree.Tree, k int, opts core.Options) ([]core.Pair, core.Stats, error)
	// String names the transport for reports ("inproc", "grpc", ...).
	String() string
}

// InProc is the in-process Transport: it runs the join on the calling
// goroutine via core.KClosestPairsContext.
type InProc struct{}

// Join implements Transport.
func (InProc) Join(ctx context.Context, a, b *rtree.Tree, k int, opts core.Options) ([]core.Pair, core.Stats, error) {
	return core.KClosestPairsContext(ctx, a, b, k, opts)
}

// String implements Transport.
func (InProc) String() string { return "inproc" }

package shard

import (
	"context"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
)

// JoinResult is one shard-pair join's answer.
type JoinResult struct {
	// Pairs is the join's top K, ascending.
	Pairs []core.Pair
	// Stats is the engine's per-join counters.
	Stats core.Stats
	// Spans is the span forest captured on the remote side, nil for
	// in-process transports (their events reach the gather-side tracer
	// directly). The executor grafts it into the query's explain capture
	// via Capture.MergeSpans, reuniting the distributed trace.
	Spans []explain.SpanNode
}

// Transport runs one shard-pair K-CPQ join. It is the executor's RPC
// seam: InProc calls the engine directly, a wire transport would ship
// the same request to the node owning the trees and stream the result
// back. The broadcast bound crosses this boundary too — in process as
// the shared pointer in opts.SharedBound, on a wire as min-messages (see
// BoundBroadcaster).
//
// Wire contract for trace propagation: tc is the gather-side query
// span's context — two uint64s (trace id, span id) serialized with the
// request. The remote node must set opts.Trace = tc before running the
// join, so the join's span opens as a child of the gather-side span
// under the same trace id, and should attach an explain.Capture as the
// join's tracer, returning capture.Snapshot().Exec.Spans in
// JoinResult.Spans. The gather side merges those forests under its own
// span, so `cpqquery -explain` shows one correlated tree no matter
// where the joins ran. A zero tc means no trace is active; the remote
// side may skip capture entirely and return nil Spans.
//
// Implementations must be safe for concurrent use: the executor calls
// Join from several worker goroutines at once, possibly with the same
// tree on one side of two calls (the trees' read path is sharded and
// lock-protected for exactly this).
type Transport interface {
	// Join answers the K closest pairs of a×b under opts, with the
	// engine's per-join statistics and any remotely captured spans.
	Join(ctx context.Context, tc obs.TraceContext, a, b *rtree.Tree, k int, opts core.Options) (JoinResult, error)
	// String names the transport for reports ("inproc", "grpc", ...).
	String() string
}

// InProc is the in-process Transport: it runs the join on the calling
// goroutine via core.KClosestPairsContext. The trace context is passed
// in process through opts.Trace, and Spans stays nil — the join's
// events reach the gather-side tracer directly.
type InProc struct{}

// Join implements Transport.
func (InProc) Join(ctx context.Context, tc obs.TraceContext, a, b *rtree.Tree, k int, opts core.Options) (JoinResult, error) {
	opts.Trace = tc
	pairs, stats, err := core.KClosestPairsContext(ctx, a, b, k, opts)
	return JoinResult{Pairs: pairs, Stats: stats}, err
}

// String implements Transport.
func (InProc) String() string { return "inproc" }

package shard

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
)

// TestExecutorExplainCapture runs a sharded query with an explain capture
// attached as both tracer and capture, and checks the acceptance
// property: the per-shard-pair rows sum exactly to the executor's
// planned/pruned counts, the per-shard attribution matches, the phase
// breakdown covers dispatch/join/merge, and every shard-join span
// carries the executor span's trace id.
func TestExecutorExplainCapture(t *testing.T) {
	ptsA := dataset.Uniform(921, 1200)
	ptsB := dataset.Uniform(922, 1200)
	c := explain.New(nil)
	set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: 4, Capture: c})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ex := Executor{Set: set, Workers: 4, Capture: c}
	res, err := ex.Run(10, core.Options{Algorithm: core.Heap, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()

	// Every planned pair must appear exactly once, as joined or pruned.
	if len(snap.Exec.ShardPairs) != res.PlannedPairs {
		t.Fatalf("shard-pair rows: want %d (planned), got %d", res.PlannedPairs, len(snap.Exec.ShardPairs))
	}
	var joined, pruned int
	for _, p := range snap.Exec.ShardPairs {
		switch p.Status {
		case explain.StatusJoined:
			joined++
			if p.DurationNS <= 0 {
				t.Errorf("joined pair [%d,%d] has no duration", p.A, p.B)
			}
		case explain.StatusPruned:
			pruned++
			if p.MinMinDist <= p.Bound && p.Bound != explain.Unbounded {
				t.Errorf("pruned pair [%d,%d] with minmin %g <= bound %g", p.A, p.B, p.MinMinDist, p.Bound)
			}
		default:
			t.Fatalf("pair [%d,%d] has status %q", p.A, p.B, p.Status)
		}
	}
	if pruned != res.PrunedPairs || joined != res.PlannedPairs-res.PrunedPairs {
		t.Fatalf("rows: %d joined + %d pruned, executor reported %d planned %d pruned",
			joined, pruned, res.PlannedPairs, res.PrunedPairs)
	}

	// Per-shard attribution mirrors the executor's report rows.
	if len(snap.Exec.Shards) != set.Tiles() {
		t.Fatalf("shard stats: want %d rows, got %d", set.Tiles(), len(snap.Exec.Shards))
	}
	for i, s := range snap.Exec.Shards {
		row := res.Shards[i]
		if s.Planned != int64(row.PlannedPairs) || s.Pruned != int64(row.PrunedPairs) {
			t.Errorf("shard %d: stats %+v vs report %+v", i, s, row)
		}
		if s.Joined != s.Planned-s.Pruned {
			t.Errorf("shard %d: joined %d != planned %d - pruned %d", i, s.Joined, s.Planned, s.Pruned)
		}
	}

	// Phase breakdown: partition and build come from the partitioner,
	// dispatch/join/merge from the executor, in order.
	var names []string
	for _, p := range snap.Exec.Phases {
		names = append(names, p.Name)
	}
	want := []string{"partition", "build", "dispatch", "join", "merge"}
	if len(names) != len(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", names, want)
		}
	}

	// Span tree: one root (the executor span), every child a shard join
	// under the same trace id.
	if len(snap.Exec.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1: %+v", len(snap.Exec.Spans), snap.Exec.Spans)
	}
	root := snap.Exec.Spans[0]
	if root.Trace != root.Span {
		t.Fatalf("executor span is not the trace root: %+v", root)
	}
	if len(root.Children) != joined {
		t.Fatalf("span children: want %d (one per dispatched join), got %d", joined, len(root.Children))
	}
	for _, child := range root.Children {
		if child.Trace != root.Trace {
			t.Errorf("join span %d carries trace %d, want %d", child.Span, child.Trace, root.Trace)
		}
		if child.Parent != root.Span {
			t.Errorf("join span %d has parent %d, want %d", child.Span, child.Parent, root.Span)
		}
	}

	// Totals.
	if snap.Exec.Results != len(res.Pairs) || snap.Exec.Stats.NodePairsProcessed != res.Stats.NodePairsProcessed {
		t.Fatalf("totals: snapshot %d results / %d node pairs, executor %d / %d",
			snap.Exec.Results, snap.Exec.Stats.NodePairsProcessed, len(res.Pairs), res.Stats.NodePairsProcessed)
	}

	// The snapshot must survive its canonical round trip.
	if _, err := snap.JSON(); err != nil {
		t.Fatalf("canonical JSON: %v", err)
	}
}

// loopback is a test Transport that simulates a wire hop: it strips every
// process-local pointer from the options (tracer, metrics, slow log —
// exactly what cannot be marshaled), runs the join with a fresh remote
// explain capture, and returns the remote span forest, as the Transport
// wire contract specifies. The shared bound pointer is kept: a real wire
// transport proxies it with min-messages, which the in-process pointer
// models faithfully for correctness purposes.
type loopback struct{}

func (loopback) Join(ctx context.Context, tc obs.TraceContext, a, b *rtree.Tree, k int, opts core.Options) (JoinResult, error) {
	remote := explain.New(nil)
	opts.Tracer = remote
	opts.Metrics = nil
	opts.SlowLog = nil
	opts.Trace = tc
	pairs, stats, err := core.KClosestPairsContext(ctx, a, b, k, opts)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: pairs, Stats: stats, Spans: remote.Snapshot().Exec.Spans}, nil
}

func (loopback) String() string { return "loopback" }

// TestTransportTraceCorrelation is the cross-process acceptance check:
// joins run behind a wire-style transport whose spans are captured on
// the "remote" side and merged back, and the merged tree still carries
// the gather-side query span's trace id end to end.
func TestTransportTraceCorrelation(t *testing.T) {
	ptsA := dataset.Uniform(923, 800)
	ptsB := dataset.Uniform(924, 800)
	c := explain.New(nil)
	set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ex := Executor{Set: set, Workers: 2, Transport: loopback{}, Capture: c}
	res, err := ex.Run(5, core.Options{Algorithm: core.Heap, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	want := runUnsharded(t, ptsA, ptsB, 5, core.Options{Algorithm: core.Heap})
	comparePairs(t, want, res.Pairs)

	snap := c.Snapshot()
	if len(snap.Exec.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(snap.Exec.Spans))
	}
	root := snap.Exec.Spans[0]
	joined := res.PlannedPairs - res.PrunedPairs
	if len(root.Children) != joined {
		t.Fatalf("merged children: want %d, got %d", joined, len(root.Children))
	}
	for _, child := range root.Children {
		if !child.Remote {
			t.Errorf("span %d not marked remote", child.Span)
		}
		if child.Trace != root.Trace {
			t.Errorf("remote span %d carries trace %d, want the query trace %d", child.Span, child.Trace, root.Trace)
		}
		if child.Parent != root.Span {
			t.Errorf("remote span %d has parent %d, want the query span %d", child.Span, child.Parent, root.Span)
		}
	}
}

// TestShardDisabledHooksZeroAlloc pins the disabled-hook discipline for
// this package's capture points: with a nil span and a nil capture, the
// executor's emit helpers and capture calls allocate nothing.
func TestShardDisabledHooksZeroAlloc(t *testing.T) {
	var sp *obs.Span
	var c *explain.Capture
	allocs := testing.AllocsPerRun(100, func() {
		traceShardPlan(sp, 7)
		traceShardPruned(sp, 1, 2, 4, 0.5)
		traceShardJoin(sp, 1, 2, 4, 0.25, 3)
		traceExecEnd(sp, 0.25, 10, "")
		c.Phase("join", 123)
		c.AddShardPair(explain.ShardPair{A: 1, B: 2, Status: explain.StatusPruned})
		c.SetShards(nil)
		c.MergeSpans(nil)
		_ = c.Enabled()
		_ = sp.Context()
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocated %.1f/op, want 0", allocs)
	}
}

// TestExecutorMetricsShards checks the per-shard labeled counters reach
// the registry with one shard label per tile.
func TestExecutorMetricsShards(t *testing.T) {
	ptsA := dataset.Uniform(925, 600)
	ptsB := dataset.Uniform(926, 600)
	set, err := Partition(items(ptsA), items(ptsB), Config{Tiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	reg := obs.NewMetrics()
	em := obs.NewEngineMetrics(reg)
	ex := Executor{Set: set, Workers: 2}
	res, err := ex.Run(5, core.Options{Algorithm: core.Heap, Metrics: em})
	if err != nil {
		t.Fatal(err)
	}
	var planned int64
	for shardID := 0; shardID < set.Tiles(); shardID++ {
		l := obs.Label{Key: "shard", Value: string(rune('0' + shardID))}
		planned += reg.Counter("cpq_shard_pairs_planned_total", "", l).Value()
	}
	var wantPlanned int64
	for _, row := range res.Shards {
		wantPlanned += int64(row.PlannedPairs)
	}
	if planned != wantPlanned {
		t.Fatalf("labeled planned counters sum to %d, report rows to %d", planned, wantPlanned)
	}
}

package shard

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Partition splits both item sets into cfg.Tiles spatial tiles and bulk
// loads one R-tree pair per tile. It is the context-free convenience
// wrapper; see PartitionContext.
func Partition(itemsA, itemsB []rtree.Item, cfg Config) (*Set, error) {
	return PartitionContext(context.Background(), itemsA, itemsB, cfg)
}

// PartitionContext splits both item sets into cfg.Tiles spatial tiles
// and bulk loads one R-tree pair (with a dedicated page file and buffer
// pool) per tile.
//
// The tile grid follows the STR recipe that the bulk loader itself
// uses, applied once to the union of both sets: ceil(sqrt(T)) columns
// are cut at X-quantiles of the combined centers, then each column is
// cut at Y-quantiles of the centers that fell in it. Cutting both sets
// with the same quantile boundaries keeps every A-tile spatially
// aligned with its B-tile, so the MINMINDIST between two tile MBRs is
// a faithful lower bound for every point pair in the shard product —
// the quantity the executor's plan pruning relies on. Quantiles of the
// union (rather than a fixed grid) keep shard populations balanced
// under skew; tiles that still end up without points of one set simply
// hold an empty tree on that side, and the executor plans no work for
// them.
//
// The O(n log n) STR sorts of every tile run in parallel goroutines
// (rtree.SortSTR touches only its slice); the page-writing bulk loads
// run sequentially afterwards, one tile at a time, checking ctx
// between builds.
func PartitionContext(ctx context.Context, itemsA, itemsB []rtree.Item, cfg Config) (*Set, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// Phase timestamps are taken only when an explain capture is
	// attached, so the default path does no clock reads.
	var tPartition time.Time
	if cfg.Capture.Enabled() {
		tPartition = time.Now()
	}

	bucketsA, bucketsB := bucketize(itemsA, itemsB, cfg.Tiles)

	// Phase 1 (parallel, CPU only): STR-sort every tile's items. One
	// goroutine per tile sorts both sides; SortSTR never touches shared
	// state, so the only synchronization needed is the join below.
	var wg sync.WaitGroup
	for i := range bucketsA {
		wg.Add(1)
		go func(a, b []rtree.Item) {
			defer wg.Done()
			rtree.SortSTR(a)
			rtree.SortSTR(b)
		}(bucketsA[i], bucketsB[i])
	}
	wg.Wait()

	var tBuild time.Time
	if cfg.Capture.Enabled() {
		tBuild = time.Now()
		cfg.Capture.Phase("partition", tBuild.Sub(tPartition).Nanoseconds())
	}

	// Phase 2 (sequential, page writes): build each shard's tree pair.
	set := &Set{cfg: cfg}
	for i := range bucketsA {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(err, set.Close())
		}
		sh := &Shard{ID: i}
		var err error
		if sh.A, sh.fileA, err = buildTree(bucketsA[i], cfg); err != nil {
			return nil, errors.Join(err, set.Close())
		}
		if sh.B, sh.fileB, err = buildTree(bucketsB[i], cfg); err != nil {
			err = errors.Join(err, sh.fileA.Close())
			return nil, errors.Join(err, set.Close())
		}
		if sh.boundsA, err = sh.A.Bounds(); err == nil {
			sh.boundsB, err = sh.B.Bounds()
		}
		if err != nil {
			set.shards = append(set.shards, sh)
			return nil, errors.Join(err, set.Close())
		}
		sh.Tile = sh.boundsA.Union(sh.boundsB)
		set.shards = append(set.shards, sh)
	}
	if cfg.Capture.Enabled() {
		cfg.Capture.Phase("build", time.Since(tBuild).Nanoseconds())
	}
	return set, nil
}

// buildTree bulk loads one shard-side tree over its own in-memory page
// file and sharded buffer pool. items must already be in SortSTR order.
func buildTree(items []rtree.Item, cfg Config) (*rtree.Tree, *storage.MemFile, error) {
	pageSize := cfg.Tree.PageSize
	if pageSize == 0 {
		pageSize = rtree.DefaultConfig().PageSize
	}
	file := storage.NewMemFile(pageSize)
	pool := storage.NewShardedBufferPool(file, cfg.BufferPages, cfg.PoolShards, storage.LRU)
	t, err := rtree.New(pool, cfg.Tree)
	if err == nil {
		err = t.BulkLoadSorted(items, cfg.Fill)
	}
	if err != nil {
		return nil, nil, errors.Join(err, file.Close())
	}
	if cfg.NodeCache > 0 {
		t.SetNodeCache(rtree.NewNodeCache(cfg.NodeCache, cfg.PoolShards))
	}
	return t, file, nil
}

// bucketize assigns every item of both sets to one of tiles STR tiles:
// ceil(sqrt(tiles)) columns at X-quantiles of the combined centers,
// rows at per-column Y-quantiles, extra rows going to the leftmost
// columns. Both sets share the same boundaries.
func bucketize(itemsA, itemsB []rtree.Item, tiles int) ([][]rtree.Item, [][]rtree.Item) {
	if tiles == 1 {
		return [][]rtree.Item{append([]rtree.Item(nil), itemsA...)},
			[][]rtree.Item{append([]rtree.Item(nil), itemsB...)}
	}
	cols := 1
	for cols*cols < tiles {
		cols++
	}
	rowsPerCol := make([]int, cols)
	base, extra := tiles/cols, tiles%cols
	colStart := make([]int, cols+1)
	for c := range rowsPerCol {
		rowsPerCol[c] = base
		if c < extra {
			rowsPerCol[c]++
		}
		colStart[c+1] = colStart[c] + rowsPerCol[c]
	}

	centers := make([]geom.Point, 0, len(itemsA)+len(itemsB))
	for i := range itemsA {
		centers = append(centers, itemsA[i].Rect.Center())
	}
	for i := range itemsB {
		centers = append(centers, itemsB[i].Rect.Center())
	}

	xs := make([]float64, len(centers))
	for i, c := range centers {
		xs[i] = c.X
	}
	sort.Float64s(xs)
	xCuts := quantileCuts(xs, cols)

	// Column assignment, then per-column Y-quantiles over the combined
	// centers that landed there.
	colCenters := make([][]float64, cols)
	for _, c := range centers {
		colCenters[cutIndex(xCuts, c.X)] = append(colCenters[cutIndex(xCuts, c.X)], c.Y)
	}
	yCuts := make([][]float64, cols)
	for c, ys := range colCenters {
		sort.Float64s(ys)
		yCuts[c] = quantileCuts(ys, rowsPerCol[c])
	}

	tileOf := func(r geom.Rect) int {
		ctr := r.Center()
		c := cutIndex(xCuts, ctr.X)
		return colStart[c] + cutIndex(yCuts[c], ctr.Y)
	}
	bucketsA := make([][]rtree.Item, tiles)
	bucketsB := make([][]rtree.Item, tiles)
	for i := range itemsA {
		t := tileOf(itemsA[i].Rect)
		bucketsA[t] = append(bucketsA[t], itemsA[i])
	}
	for i := range itemsB {
		t := tileOf(itemsB[i].Rect)
		bucketsB[t] = append(bucketsB[t], itemsB[i])
	}
	return bucketsA, bucketsB
}

// quantileCuts returns parts-1 ascending cut values splitting the sorted
// values into parts roughly equal groups; group g is the half-open range
// cuts[g-1] <= v < cuts[g].
func quantileCuts(sorted []float64, parts int) []float64 {
	cuts := make([]float64, 0, parts-1)
	n := len(sorted)
	for g := 1; g < parts; g++ {
		idx := g * n / parts
		if idx >= n {
			idx = n - 1
		}
		if n == 0 {
			cuts = append(cuts, 0)
			continue
		}
		cuts = append(cuts, sorted[idx])
	}
	return cuts
}

// cutIndex returns the group of v under cuts — the number of cuts <= v
// — so a value equal to a cut lands in the right-hand group, matching
// quantileCuts's half-open ranges.
func cutIndex(cuts []float64, v float64) int {
	i := sort.SearchFloat64s(cuts, v)
	for i < len(cuts) && cuts[i] == v {
		i++
	}
	return i
}

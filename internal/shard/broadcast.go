package shard

import "repro/internal/core"

// BoundBroadcaster shares one tighten-only global pruning bound across
// all in-flight shard-pair joins. A tight pair found in one tile
// immediately prunes node pairs — and whole shard pairs still waiting
// for dispatch — in every other tile.
//
// The broadcast protocol (DESIGN.md §13) has two verbs:
//
//   - publish: a shard join that tightened its local bound (a full
//     K-heap threshold or a MINMAXDIST/MAXMAXDIST aux bound) offers the
//     new value; the broadcaster keeps the minimum. Both are sound
//     global upper bounds — every point pair a shard join certifies is
//     a point pair of the global product — so sharing them never
//     excludes a true top-K pair.
//   - observe: joins fold the broadcast value into their effective
//     bound T on every pruning decision, and the executor compares each
//     still-queued shard pair's tile-level MINMINDIST against it at
//     dispatch time.
//
// In process, both verbs are one atomic CAS-min (core.SharedBound); a
// wire transport replicates them as idempotent, commutative
// min-messages — late or re-ordered delivery only delays pruning, never
// breaks correctness.
type BoundBroadcaster struct {
	bound *core.SharedBound
}

// NewBoundBroadcaster returns a broadcaster with the bound at +Inf
// (nothing known yet).
func NewBoundBroadcaster() *BoundBroadcaster {
	return &BoundBroadcaster{bound: core.NewSharedBound()}
}

// Bound exposes the shared bound for injection into a shard join's
// core.Options.SharedBound; the join then publishes and observes it on
// the engine's existing bound-maintenance sites.
func (b *BoundBroadcaster) Bound() *core.SharedBound { return b.bound }

// Load returns the current global bound as a metric key (squared
// distance under L2), +Inf while nothing has been published.
func (b *BoundBroadcaster) Load() float64 { return b.bound.Load() }

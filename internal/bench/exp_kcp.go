package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/incremental"
)

// runFig7 reproduces Figure 7: the four K-CP algorithms with K from 1 to
// 100,000, real vs the 62,536-point uniform set, zero buffer, disjoint (a)
// and fully overlapping (b) workspaces.
func runFig7(l *Lab, w io.Writer) error {
	for _, overlap := range []float64{0, 1.0} {
		sub := "a"
		if overlap == 1.0 {
			sub = "b"
		}
		t := newTable(
			fmt.Sprintf("Figure 7.%s: K-CPQ disk accesses vs K (R/62536 uniform, overlap %s, B=0)", sub, overlapLabel(overlap)),
			"K", "EXH", "SIM", "STD", "HEAP")
		ta, tb, err := l.Pair(realSpec(), uniformControl(), overlap)
		if err != nil {
			return err
		}
		for _, k := range kSchedule {
			cells := []string{fmt.Sprintf("%d", k)}
			for _, alg := range fourAlgorithms {
				stats, err := RunCore(ta, tb, k, core.DefaultOptions(alg), 0)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig8 reproduces Figure 8: the relative cost of STD (a) and HEAP (b)
// with respect to EXH across the (overlap, K) plane; real vs uniform data,
// zero buffer.
func runFig8(l *Lab, w io.Writer) error {
	type key struct {
		overlap float64
		k       int
	}
	costs := map[core.Algorithm]map[key]int64{
		core.Exhaustive:      {},
		core.SortedDistances: {},
		core.Heap:            {},
	}
	for _, overlap := range dataset.OverlapSweep() {
		ta, tb, err := l.Pair(realSpec(), uniformControl(), overlap)
		if err != nil {
			return err
		}
		for _, k := range kSchedule {
			for alg := range costs {
				stats, err := RunCore(ta, tb, k, core.DefaultOptions(alg), 0)
				if err != nil {
					return err
				}
				costs[alg][key{overlap, k}] = stats.Accesses()
			}
		}
	}
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		sub := "a"
		if alg == core.Heap {
			sub = "b"
		}
		header := []string{"overlap"}
		for _, k := range kSchedule {
			header = append(header, fmt.Sprintf("K=%d", k))
		}
		t := newTable(
			fmt.Sprintf("Figure 8.%s: %s cost relative to EXH vs overlap and K (R/uniform, B=0)", sub, alg),
			header...)
		for _, overlap := range dataset.OverlapSweep() {
			cells := []string{overlapLabel(overlap)}
			for _, k := range kSchedule {
				cells = append(cells, pct(costs[alg][key{overlap, k}],
					costs[core.Exhaustive][key{overlap, k}]))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig9 reproduces Figure 9: STD (a) and HEAP (b) disk accesses across
// the (buffer size, K) plane with disjoint workspaces; real vs uniform
// data (the paper plots this log-scale).
func runFig9(l *Lab, w io.Writer) error {
	ta, tb, err := l.Pair(realSpec(), uniformControl(), 0)
	if err != nil {
		return err
	}
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		sub := "a"
		if alg == core.Heap {
			sub = "b"
		}
		header := []string{"B"}
		for _, k := range kSchedule {
			header = append(header, fmt.Sprintf("K=%d", k))
		}
		t := newTable(
			fmt.Sprintf("Figure 9.%s: %s disk accesses vs LRU buffer and K (overlap 0%%)", sub, alg),
			header...)
		for _, b := range bufferSchedule {
			cells := []string{fmt.Sprintf("%d", b)}
			for _, k := range kSchedule {
				stats, err := RunCore(ta, tb, k, core.DefaultOptions(alg), b)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig10 reproduces Figure 10: the paper's STD and HEAP against the
// incremental EVN and SML of Hjaltason & Samet, across K, for the four
// combinations of buffer size (0, 128 pages) and overlap (0%, 100%).
func runFig10(l *Lab, w io.Writer) error {
	configs := []struct {
		sub     string
		buffer  int
		overlap float64
	}{
		{"a", 0, 0},
		{"b", 128, 0},
		{"c", 0, 1.0},
		{"d", 128, 1.0},
	}
	for _, cfg := range configs {
		ta, tb, err := l.Pair(realSpec(), uniformControl(), cfg.overlap)
		if err != nil {
			return err
		}
		t := newTable(
			fmt.Sprintf("Figure 10.%s: disk accesses vs K (buffer %d pages, overlap %s)",
				cfg.sub, cfg.buffer, overlapLabel(cfg.overlap)),
			"K", "STD", "HEAP", "EVN", "SML")
		for _, k := range kSchedule {
			cells := []string{fmt.Sprintf("%d", k)}
			for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
				stats, err := RunCore(ta, tb, k, core.DefaultOptions(alg), cfg.buffer)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
			for _, trav := range []incremental.Traversal{incremental.Even, incremental.Simultaneous} {
				stats, err := RunIncremental(ta, tb, k,
					incremental.Options{Traversal: trav}, cfg.buffer)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rtree"
)

// This file is the leaf-scan / node-cache A/B ablation behind
// BENCH_PR4.json: the paper's standard uniform workload (100,000 points per
// tree at scale 1.0, 100% overlap, K = 100) run under every combination of
// leaf scan strategy (brute vs plane-sweep) and decoded-node cache (off vs
// on), sequentially and with the parallel HEAP engine. It doubles as the
// regression gate for the sweep: the experiment fails if the sweep
// evaluates more point pairs than the brute scan on this workload.

// pr4CacheNodes is the decoded-node cache capacity per tree for the
// cache-on configurations: large enough to hold the whole tree, so the
// measured hit rate reflects how often the traversal re-reads nodes rather
// than the eviction policy.
const pr4CacheNodes = 1 << 15

// PR4Run is one measured configuration of the ablation.
type PR4Run struct {
	Label        string  `json:"label"`
	Algorithm    string  `json:"algorithm"`
	K            int     `json:"k"`
	LeafScan     string  `json:"leaf_scan"`
	NodeCache    bool    `json:"node_cache"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Accesses     int64   `json:"accesses"`
	NodePairs    int64   `json:"node_pairs"`
	PointPairs   int64   `json:"point_pairs"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// PR4Report is the machine-readable record of one leafscan experiment run
// (cpqbench -pr4 writes it to BENCH_PR4.json).
type PR4Report struct {
	N          int      `json:"n"`
	Scale      float64  `json:"scale"`
	BufferB    int      `json:"buffer_pages"`
	CacheNodes int      `json:"cache_nodes"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Runs       []PR4Run `json:"runs"`
	// SweepPointPairReduction is brute/sweep point pairs for the
	// sequential HEAP K=100 run without a cache (the acceptance metric).
	SweepPointPairReduction float64 `json:"sweep_point_pair_reduction"`
	// HeapCacheHitRate is the node-cache hit rate of the sequential HEAP
	// K=100 sweep run with the cache on.
	HeapCacheHitRate float64 `json:"heap_cache_hit_rate"`
	// SeqHeapSpeedup and ParHeapSpeedup compare wall-clock of the fully
	// optimised configuration (sweep + cache) against the baseline (brute,
	// no cache), sequentially and at GOMAXPROCS workers.
	SeqHeapSpeedup float64 `json:"seq_heap_speedup"`
	ParHeapSpeedup float64 `json:"par_heap_speedup"`
}

var pr4Last struct {
	mu     sync.Mutex
	report *PR4Report
}

// LeafScanReport returns the report of the most recent "leafscan"
// experiment run, nil if it has not run.
func LeafScanReport() *PR4Report {
	pr4Last.mu.Lock()
	defer pr4Last.mu.Unlock()
	return pr4Last.report
}

// pr4Config is one cell of the ablation grid.
type pr4Config struct {
	label    string
	alg      core.Algorithm
	k        int
	leafScan core.LeafScan
	cache    bool
	workers  int
}

// runLeafScanConfig measures one configuration: reps cold-start runs, best
// wall time, stats from the last run (stats are deterministic per config
// for the sequential algorithms).
func runLeafScanConfig(ta, tb *rtree.Tree, c pr4Config, buffer, reps int) (PR4Run, error) {
	for _, tr := range []*rtree.Tree{ta, tb} {
		if c.cache {
			tr.SetNodeCache(rtree.NewNodeCache(pr4CacheNodes, 16))
		} else {
			tr.SetNodeCache(nil)
		}
	}
	opts := core.DefaultOptions(c.alg)
	opts.LeafScan = c.leafScan
	opts.Parallelism = c.workers
	var stats core.Stats
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		s, err := RunCore(ta, tb, c.k, opts, buffer)
		if err != nil {
			return PR4Run{}, err
		}
		if wall := time.Since(start); wall < best {
			best = wall
		}
		stats = s
	}
	cache := rtree.CacheStats{Hits: stats.NodeCacheHits, Misses: stats.NodeCacheMisses}
	return PR4Run{
		Label:        c.label,
		Algorithm:    c.alg.String(),
		K:            c.k,
		LeafScan:     c.leafScan.String(),
		NodeCache:    c.cache,
		Workers:      c.workers,
		WallMS:       float64(best) / float64(time.Millisecond),
		Accesses:     stats.Accesses(),
		NodePairs:    stats.NodePairsProcessed,
		PointPairs:   stats.PointPairsCompared,
		CacheHits:    cache.Hits,
		CacheMisses:  cache.Misses,
		CacheHitRate: cache.HitRate(),
	}, nil
}

// runLeafScan is the "leafscan" experiment.
func runLeafScan(l *Lab, w io.Writer) error {
	// The ablation controls the leaf scan per run; neutralise a cpqbench
	// -leafscan override for its duration.
	savedScan := defaultLeafScan.Load()
	savedPar := defaultParallelism.Load()
	defaultLeafScan.Store(0)
	defaultParallelism.Store(0)
	defer func() {
		defaultLeafScan.Store(savedScan)
		defaultParallelism.Store(savedPar)
	}()

	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	const buffer = 512
	ta, err := buildParallelTree(cfg, 91, n, 0)
	if err != nil {
		return err
	}
	tb, err := buildParallelTree(cfg, 92, n, 0)
	if err != nil {
		return err
	}
	// The grid attaches its own caches per configuration.
	ta.SetNodeCache(nil)
	tb.SetNodeCache(nil)
	defer ta.SetNodeCache(nil)
	defer tb.SetNodeCache(nil)

	workers := runtime.GOMAXPROCS(0)
	grid := []pr4Config{
		{"fig4-style 1-CP", core.Heap, 1, core.LeafScanBrute, false, 1},
		{"fig4-style 1-CP", core.Heap, 1, core.LeafScanSweep, false, 1},
		{"fig7-style K-CP", core.SortedDistances, 100, core.LeafScanBrute, false, 1},
		{"fig7-style K-CP", core.SortedDistances, 100, core.LeafScanSweep, false, 1},
		{"fig7-style K-CP", core.Heap, 100, core.LeafScanBrute, false, 1},
		{"fig7-style K-CP", core.Heap, 100, core.LeafScanSweep, false, 1},
		{"fig7-style K-CP", core.Heap, 100, core.LeafScanBrute, true, 1},
		{"fig7-style K-CP", core.Heap, 100, core.LeafScanSweep, true, 1},
		{"parallel K-CP", core.Heap, 100, core.LeafScanBrute, false, workers},
		{"parallel K-CP", core.Heap, 100, core.LeafScanSweep, true, workers},
	}

	rep := &PR4Report{
		N:          n,
		Scale:      l.scale(),
		BufferB:    buffer,
		CacheNodes: pr4CacheNodes,
		GOMAXPROCS: workers,
	}
	t := newTable(
		fmt.Sprintf("Ablation: leaf-scan A/B + decoded-node cache (uniform %d/%d bulk-loaded, 100%% overlap, B=%d)", n, n, buffer),
		"workload", "alg", "K", "scan", "cache", "wkr", "wall", "accesses", "point pairs", "cache hit%")
	for _, c := range grid {
		run, err := runLeafScanConfig(ta, tb, c, buffer, 3)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		hitPct := "-"
		if c.cache {
			hitPct = fmt.Sprintf("%.1f%%", run.CacheHitRate*100)
		}
		cacheLabel := "off"
		if c.cache {
			cacheLabel = "on"
		}
		t.addRow(run.Label, run.Algorithm, fmt.Sprintf("%d", run.K), run.LeafScan,
			cacheLabel, fmt.Sprintf("%d", run.Workers),
			(time.Duration(run.WallMS * float64(time.Millisecond))).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", run.Accesses),
			fmt.Sprintf("%d", run.PointPairs),
			hitPct)
	}
	if err := t.write(w); err != nil {
		return err
	}

	find := func(label string, ls core.LeafScan, cache bool, workers int) *PR4Run {
		for i := range rep.Runs {
			r := &rep.Runs[i]
			if r.Label == label && r.LeafScan == ls.String() && r.NodeCache == cache &&
				r.Workers == workers && r.Algorithm == "HEAP" {
				return r
			}
		}
		return nil
	}
	brute := find("fig7-style K-CP", core.LeafScanBrute, false, 1)
	sweep := find("fig7-style K-CP", core.LeafScanSweep, false, 1)
	sweepCached := find("fig7-style K-CP", core.LeafScanSweep, true, 1)
	parBase := find("parallel K-CP", core.LeafScanBrute, false, workers)
	parOpt := find("parallel K-CP", core.LeafScanSweep, true, workers)

	// The regression gate of `ci.sh bench`: the sweep evaluates a subset
	// of the brute scan's point pairs on the standard uniform workload.
	if sweep.PointPairs > brute.PointPairs {
		return fmt.Errorf("leafscan: sweep evaluated %d point pairs, brute %d — sweep must not exceed brute",
			sweep.PointPairs, brute.PointPairs)
	}
	if sweep.PointPairs > 0 {
		rep.SweepPointPairReduction = float64(brute.PointPairs) / float64(sweep.PointPairs)
	}
	rep.HeapCacheHitRate = sweepCached.CacheHitRate
	if opt := sweepCached.WallMS; opt > 0 {
		rep.SeqHeapSpeedup = brute.WallMS / opt
	}
	if parOpt.WallMS > 0 {
		rep.ParHeapSpeedup = parBase.WallMS / parOpt.WallMS
	}
	pr4Last.mu.Lock()
	pr4Last.report = rep
	pr4Last.mu.Unlock()

	_, err = fmt.Fprintf(w,
		"sweep point-pair reduction (seq HEAP K=100): %.1fx; node-cache hit rate: %.1f%%; wall speedup seq %.2fx, parallel %.2fx.\n\n",
		rep.SweepPointPairReduction, rep.HeapCacheHitRate*100, rep.SeqHeapSpeedup, rep.ParHeapSpeedup)
	return err
}

package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// runFig2 reproduces Figure 2: the cost of tie strategies T1-T5 relative
// to T1 for the STD (a) and HEAP (b) algorithms on 60K/60K random data
// sets with varying overlap, zero buffer.
func runFig2(l *Lab, w io.Writer) error {
	left := uniformSpec(60000, 60001)
	right := uniformSpec(60000, 60002)
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		sub := "a"
		if alg == core.Heap {
			sub = "b"
		}
		t := newTable(
			fmt.Sprintf("Figure 2.%s: tie strategies in %s, 1-CPQ, 60K/60K uniform, B=0 (relative cost, T1=100%%)", sub, alg),
			"overlap", "T1", "T2", "T3", "T4", "T5")
		for _, overlap := range dataset.Overlaps() {
			ta, tb, err := l.Pair(left, right, overlap)
			if err != nil {
				return err
			}
			var base int64
			cells := []string{overlapLabel(overlap)}
			for _, tie := range core.TieStrategies() {
				opts := core.DefaultOptions(alg)
				opts.Tie = tie
				stats, err := RunCore(ta, tb, 1, opts, 0)
				if err != nil {
					return err
				}
				if tie == core.Tie1 {
					base = stats.Accesses()
				}
				cells = append(cells, pct(stats.Accesses(), base))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig3 reproduces Figure 3: fix-at-leaves vs fix-at-root for trees of
// different heights. The taller tree holds 80K random points (height 5 in
// the paper's setup), the shorter one 20K-60K (height 4); overlap 0%, 50%
// and 100%; zero buffer. Disk accesses (the paper plots them log-scale).
func runFig3(l *Lab, w io.Writer) error {
	tall := uniformSpec(80000, 80000)
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		sub := "a"
		if alg == core.Heap {
			sub = "b"
		}
		t := newTable(
			fmt.Sprintf("Figure 3.%s: height treatment in %s, 1-CPQ, B=0 (disk accesses)", sub, alg),
			"data", "leaves-0%", "root-0%", "leaves-50%", "root-50%", "leaves-100%", "root-100%")
		for _, n := range []int{20000, 40000, 60000} {
			short := uniformSpec(n, int64(n))
			cells := []string{fmt.Sprintf("%dK/80K", n/1000)}
			for _, overlap := range []float64{0, 0.5, 1.0} {
				ta, tb, err := l.Pair(short, tall, overlap)
				if err != nil {
					return err
				}
				for _, hs := range []core.HeightStrategy{core.FixAtLeaves, core.FixAtRoot} {
					opts := core.DefaultOptions(alg)
					opts.Height = hs
					stats, err := RunCore(ta, tb, 1, opts, 0)
					if err != nil {
						return err
					}
					cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
				}
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// fourAlgorithms is the EXH/SIM/STD/HEAP comparison set (the Naive
// algorithm is excluded from the experiments, as in the paper).
var fourAlgorithms = []core.Algorithm{
	core.Exhaustive, core.Simple, core.SortedDistances, core.Heap,
}

// runFig4 reproduces Figure 4: disk accesses of the four 1-CP algorithms,
// real data set vs random sets of varying cardinality, for disjoint (a)
// and fully overlapping (b) workspaces; zero buffer.
func runFig4(l *Lab, w io.Writer) error {
	for _, overlap := range []float64{0, 1.0} {
		sub := "a"
		if overlap == 1.0 {
			sub = "b"
		}
		t := newTable(
			fmt.Sprintf("Figure 4.%s: 1-CPQ disk accesses, real vs random, overlap %s, B=0", sub, overlapLabel(overlap)),
			"data", "EXH", "SIM", "STD", "HEAP")
		for _, n := range []int{20000, 40000, 60000, 80000} {
			ta, tb, err := l.Pair(realSpec(), uniformSpec(n, int64(n)), overlap)
			if err != nil {
				return err
			}
			cells := []string{fmt.Sprintf("R/%dK", n/1000)}
			for _, alg := range fourAlgorithms {
				stats, err := RunCore(ta, tb, 1, core.DefaultOptions(alg), 0)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig5 reproduces Figure 5: the relative cost of SIM, STD and HEAP with
// respect to EXH while the portion of overlap grows from 0% to 100%; real
// data vs 40K and 80K random sets, zero buffer.
func runFig5(l *Lab, w io.Writer) error {
	t := newTable(
		"Figure 5: 1-CPQ cost relative to EXH vs portion of overlap (R/40K and R/80K, B=0)",
		"overlap",
		"40K:SIM", "40K:STD", "40K:HEAP",
		"80K:SIM", "80K:STD", "80K:HEAP")
	for _, overlap := range dataset.OverlapSweep() {
		cells := []string{overlapLabel(overlap)}
		for _, n := range []int{40000, 80000} {
			ta, tb, err := l.Pair(realSpec(), uniformSpec(n, int64(n)), overlap)
			if err != nil {
				return err
			}
			exh, err := RunCore(ta, tb, 1, core.DefaultOptions(core.Exhaustive), 0)
			if err != nil {
				return err
			}
			for _, alg := range []core.Algorithm{core.Simple, core.SortedDistances, core.Heap} {
				stats, err := RunCore(ta, tb, 1, core.DefaultOptions(alg), 0)
				if err != nil {
					return err
				}
				cells = append(cells, pct(stats.Accesses(), exh.Accesses()))
			}
		}
		t.addRow(cells...)
	}
	return t.write(w)
}

// runFig6 reproduces Figure 6: the four 1-CP algorithms under an LRU
// buffer of B = 0..256 pages (B/2 per tree), real vs 40K and 80K random
// data, disjoint (a) and fully overlapping (b) workspaces.
func runFig6(l *Lab, w io.Writer) error {
	for _, overlap := range []float64{0, 1.0} {
		sub := "a"
		if overlap == 1.0 {
			sub = "b"
		}
		t := newTable(
			fmt.Sprintf("Figure 6.%s: 1-CPQ disk accesses vs LRU buffer size, overlap %s", sub, overlapLabel(overlap)),
			"B",
			"40K:EXH", "40K:SIM", "40K:STD", "40K:HEAP",
			"80K:EXH", "80K:SIM", "80K:STD", "80K:HEAP")
		for _, b := range bufferSchedule {
			cells := []string{fmt.Sprintf("%d", b)}
			for _, n := range []int{40000, 80000} {
				ta, tb, err := l.Pair(realSpec(), uniformSpec(n, int64(n)), overlap)
				if err != nil {
					return err
				}
				for _, alg := range fourAlgorithms {
					stats, err := RunCore(ta, tb, 1, core.DefaultOptions(alg), b)
					if err != nil {
						return err
					}
					cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
				}
			}
			t.addRow(cells...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

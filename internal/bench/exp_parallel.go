package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// parallelWorkerSchedule is the worker axis of the parallel-engine
// ablation.
var parallelWorkerSchedule = []int{1, 2, 4, 8}

// buildParallelTree bulk-loads a uniform tree behind a lock-striped buffer
// pool so a parallel join's workers do not serialize on one pool mutex.
// Bulk loading (instead of the paper's repeated insertion) keeps the
// full-scale experiment's setup time proportionate to its measurement.
func buildParallelTree(cfg rtree.Config, seed int64, n int, shift float64) (*rtree.Tree, error) {
	pool := storage.NewShardedBufferPool(storage.NewMemFile(cfg.PageSize), 512, 16, storage.LRU)
	tr, err := rtree.New(pool, cfg)
	if err != nil {
		return nil, err
	}
	pts := dataset.Uniform(seed, n)
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Add(shift, 0).Rect(), Ref: int64(i)}
	}
	if err := tr.BulkLoad(items, 0.7); err != nil {
		return nil, err
	}
	attachDefaultNodeCache(tr)
	return tr, nil
}

// runParallel is the parallel-engine ablation: the K-CPQ HEAP algorithm
// run with 1..8 workers over a shared frontier and an atomically tightened
// pruning bound. It reports wall-clock speedup over the sequential
// algorithm and the disk accesses of each run — the latter vary with the
// worker count (and from run to run) because the traversal order, and thus
// the buffer hit pattern and the tightening schedule of the bound T,
// depends on goroutine scheduling. Worker counts above GOMAXPROCS add
// coordination without parallelism; speedup is expected only below it.
func runParallel(l *Lab, w io.Writer) error {
	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	ta, err := buildParallelTree(cfg, 91, n, 0)
	if err != nil {
		return err
	}
	tb, err := buildParallelTree(cfg, 92, n, 0)
	if err != nil {
		return err
	}

	t := newTable(
		fmt.Sprintf("Ablation: parallel HEAP workers (uniform %d/%d bulk-loaded, 100%% overlap, K=100, B=512, 16-shard buffers, GOMAXPROCS=%d)",
			n, n, runtime.GOMAXPROCS(0)),
		"workers", "wall", "speedup", "accesses", "node pairs")
	var base time.Duration
	for _, workers := range parallelWorkerSchedule {
		opts := core.DefaultOptions(core.Heap)
		opts.Parallelism = workers
		start := time.Now()
		stats, err := RunCore(ta, tb, 100, opts, 512)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if workers == 1 {
			base = wall
		}
		speedup := "1.00x"
		if workers > 1 && wall > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(wall))
		}
		t.addRow(fmt.Sprintf("%d", workers),
			wall.Round(time.Microsecond).String(),
			speedup,
			fmt.Sprintf("%d", stats.Accesses()),
			fmt.Sprintf("%d", stats.NodePairsProcessed))
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "workers=1 is the paper's sequential algorithm; accesses for workers>1 depend on scheduling.\n\n")
	return err
}

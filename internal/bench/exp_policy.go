package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// runPolicies is the replacement-policy ablation: the paper follows
// Leutenegger & Lopez in using LRU buffers; this experiment swaps in FIFO
// and CLOCK to measure how much the policy choice matters for the
// depth-first (STD) and best-first (HEAP) access patterns.
func runPolicies(l *Lab, w io.Writer) error {
	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(40000)
	build := func(seed int64, shift float64, policy storage.Policy) (*rtree.Tree, error) {
		pool := storage.NewBufferPoolWithPolicy(storage.NewMemFile(cfg.PageSize), 512, policy)
		tr, err := rtree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		for i, p := range dataset.Uniform(seed, n) {
			if err := tr.InsertPoint(p.Add(shift, 0), int64(i)); err != nil {
				return nil, err
			}
		}
		return tr, nil
	}

	t := newTable(
		fmt.Sprintf("Ablation: buffer replacement policies (uniform %d/%d, overlap 100%%, K=100)", n, n),
		"B", "STD:LRU", "STD:FIFO", "STD:CLOCK", "HEAP:LRU", "HEAP:FIFO", "HEAP:CLOCK")
	type pair struct{ ta, tb *rtree.Tree }
	pairs := map[storage.Policy]pair{}
	for _, policy := range storage.Policies() {
		ta, err := build(81, 0, policy)
		if err != nil {
			return err
		}
		tb, err := build(82, 0, policy)
		if err != nil {
			return err
		}
		pairs[policy] = pair{ta, tb}
	}
	for _, b := range []int{16, 64, 256} {
		cells := []string{fmt.Sprintf("%d", b)}
		for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
			for _, policy := range storage.Policies() {
				pr := pairs[policy]
				stats, err := RunCore(pr.ta, pr.tb, 100, core.DefaultOptions(alg), b)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
		}
		t.addRow(cells...)
	}
	return t.write(w)
}

package bench

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rtree"
)

// parallelBenchTrees builds the 100,000 x 100,000 uniform workload once
// for every sub-benchmark (bulk-loaded, 16-shard buffer pools).
var parallelBenchTrees struct {
	once   sync.Once
	ta, tb *rtree.Tree
	err    error
}

// BenchmarkParallelKCPQ is the speedup benchmark of the parallel HEAP
// engine: a K=100 closest-pair join of two bulk-loaded 100,000-point
// uniform trees at B=0 (every page read is a disk access, the paper's
// hardest buffer setting), per worker count. On a 4-core runner the
// 4-worker case is expected to run >= 2x faster than the sequential one:
//
//	go test -bench BenchmarkParallelKCPQ -run - .../internal/bench
func BenchmarkParallelKCPQ(b *testing.B) {
	parallelBenchTrees.once.Do(func() {
		cfg := rtree.DefaultConfig()
		parallelBenchTrees.ta, parallelBenchTrees.err = buildParallelTree(cfg, 91, 100000, 0)
		if parallelBenchTrees.err != nil {
			return
		}
		parallelBenchTrees.tb, parallelBenchTrees.err = buildParallelTree(cfg, 92, 100000, 0)
	})
	if parallelBenchTrees.err != nil {
		b.Fatal(parallelBenchTrees.err)
	}
	ta, tb := parallelBenchTrees.ta, parallelBenchTrees.tb
	for _, workers := range parallelWorkerSchedule {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions(core.Heap)
			opts.Parallelism = workers
			var accesses int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := RunCore(ta, tb, 100, opts, 0)
				if err != nil {
					b.Fatal(err)
				}
				accesses += stats.Accesses()
			}
			b.ReportMetric(float64(accesses)/float64(b.N), "accesses")
		})
	}
	// Variants of the same workload along the PR 4 axes: leaf scan strategy
	// and the decoded-node cache, at 1 worker and at the full schedule's
	// maximum, so `ci.sh bench` captures the hot-path ablation in one run.
	savedScan := defaultLeafScan.Load()
	defaultLeafScan.Store(0) // the variants control the scan themselves
	defer defaultLeafScan.Store(savedScan)
	maxWorkers := parallelWorkerSchedule[len(parallelWorkerSchedule)-1]
	for _, v := range []struct {
		name    string
		scan    core.LeafScan
		cache   bool
		workers int
	}{
		{"leafscan=brute/cache=off/workers=1", core.LeafScanBrute, false, 1},
		{"leafscan=sweep/cache=off/workers=1", core.LeafScanSweep, false, 1},
		{"leafscan=sweep/cache=on/workers=1", core.LeafScanSweep, true, 1},
		{"leafscan=sweep/cache=on/workers=max", core.LeafScanSweep, true, maxWorkers},
	} {
		b.Run(v.name, func(b *testing.B) {
			for _, tr := range []*rtree.Tree{ta, tb} {
				if v.cache {
					tr.SetNodeCache(rtree.NewNodeCache(1<<15, 16))
				} else {
					tr.SetNodeCache(nil)
				}
			}
			defer func() {
				ta.SetNodeCache(nil)
				tb.SetNodeCache(nil)
			}()
			opts := core.DefaultOptions(core.Heap)
			opts.LeafScan = v.scan
			opts.Parallelism = v.workers
			var pointPairs, hits, lookups int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := RunCore(ta, tb, 100, opts, 0)
				if err != nil {
					b.Fatal(err)
				}
				pointPairs += stats.PointPairsCompared
				hits += stats.NodeCacheHits
				lookups += stats.NodeCacheHits + stats.NodeCacheMisses
			}
			b.ReportMetric(float64(pointPairs)/float64(b.N), "point-pairs")
			if lookups > 0 {
				b.ReportMetric(float64(hits)/float64(lookups), "cache-hit-rate")
			}
		})
	}
}

package bench

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rtree"
)

// parallelBenchTrees builds the 100,000 x 100,000 uniform workload once
// for every sub-benchmark (bulk-loaded, 16-shard buffer pools).
var parallelBenchTrees struct {
	once   sync.Once
	ta, tb *rtree.Tree
	err    error
}

// BenchmarkParallelKCPQ is the speedup benchmark of the parallel HEAP
// engine: a K=100 closest-pair join of two bulk-loaded 100,000-point
// uniform trees at B=0 (every page read is a disk access, the paper's
// hardest buffer setting), per worker count. On a 4-core runner the
// 4-worker case is expected to run >= 2x faster than the sequential one:
//
//	go test -bench BenchmarkParallelKCPQ -run - .../internal/bench
func BenchmarkParallelKCPQ(b *testing.B) {
	parallelBenchTrees.once.Do(func() {
		cfg := rtree.DefaultConfig()
		parallelBenchTrees.ta, parallelBenchTrees.err = buildParallelTree(cfg, 91, 100000, 0)
		if parallelBenchTrees.err != nil {
			return
		}
		parallelBenchTrees.tb, parallelBenchTrees.err = buildParallelTree(cfg, 92, 100000, 0)
	})
	if parallelBenchTrees.err != nil {
		b.Fatal(parallelBenchTrees.err)
	}
	ta, tb := parallelBenchTrees.ta, parallelBenchTrees.tb
	for _, workers := range parallelWorkerSchedule {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions(core.Heap)
			opts.Parallelism = workers
			var accesses int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := RunCore(ta, tb, 100, opts, 0)
				if err != nil {
					b.Fatal(err)
				}
				accesses += stats.Accesses()
			}
			b.ReportMetric(float64(accesses)/float64(b.N), "accesses")
		})
	}
}

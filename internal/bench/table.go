package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table accumulates one figure's rows and renders them aligned, in the
// style of the paper's charts turned into text.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addf(label string, format string, vals ...interface{}) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.title, strings.Repeat("-", len(t.title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	if len(t.header) > 0 {
		if _, err := fmt.Fprintln(tw, strings.Join(t.header, "\t")+"\t"); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")+"\t"); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// pct formats a cost relative to a baseline as a percentage string.
func pct(value, baseline int64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(value)/float64(baseline))
}

package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/rtree"
)

// This file is the cancellation-overhead gate behind `ci.sh bench`: the
// PR6-optimised sequential configuration (grid leaf scan, batched
// kernel, heap-batch dequeues, K=100 over the standard 100,000-point
// uniform workload, B=512) run twice per repetition — once through the
// Background shim (ctx.Done() == nil, the poll gate never touches the
// context) and once under a live cancellable context that is never
// cancelled (every stride-th poll really calls ctx.Err()). The two
// variants must return byte-identical distances and cost counters, and
// the cancellable run's best wall clock must stay within
// ctxflowMaxOverhead of the shim's — the stride-gated poll is designed
// to be free, and this experiment is where that claim is enforced.

// ctxflowMaxOverhead is the accepted fractional wall-clock overhead of
// the cancellable path (0.01 = 1%).
const ctxflowMaxOverhead = 0.01

// ctxflowGateFloor is the minimum baseline wall clock at which the 1%
// gate is meaningful: below it (scaled-down smoke runs, sub-millisecond
// joins) scheduler noise alone exceeds the margin, so only a gross
// regression fails; the strict gate binds on the full-scale 100k×100k
// run `ci.sh bench` performs.
const ctxflowGateFloor = 100 * time.Millisecond

// ctxflowNoiseOverhead is the loose sanity bound applied below the
// floor.
const ctxflowNoiseOverhead = 0.25

// ctxflowReps is the number of interleaved repetitions; the minimum wall
// time per variant is compared, which discards scheduling noise instead
// of averaging it in.
const ctxflowReps = 7

// runCtxFlow is the "ctxflow" experiment.
func runCtxFlow(l *Lab, w io.Writer) error {
	// The gate controls every knob per run; neutralise cpqbench
	// overrides for its duration.
	savedScan := defaultLeafScan.Load()
	savedPar := defaultParallelism.Load()
	savedBatch := defaultBatchExpand.Load()
	defaultLeafScan.Store(0)
	defaultParallelism.Store(0)
	defaultBatchExpand.Store(false)
	defer func() {
		defaultLeafScan.Store(savedScan)
		defaultParallelism.Store(savedPar)
		defaultBatchExpand.Store(savedBatch)
	}()

	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	const buffer = 512
	const k = 100
	ta, err := buildParallelTree(cfg, 91, n, 0)
	if err != nil {
		return err
	}
	tb, err := buildParallelTree(cfg, 92, n, 0)
	if err != nil {
		return err
	}
	ta.SetNodeCache(nil)
	tb.SetNodeCache(nil)

	opts := core.DefaultOptions(core.Heap)
	opts.LeafScan = core.LeafScanGrid
	opts.Expand = core.ExpandBatched
	opts.BatchExpand = true

	// ctx is live (Done() != nil) but never cancelled, so the stride
	// gate's every firing pays the real ctx.Err() call.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type variant struct {
		label string
		run   func() ([]core.Pair, core.Stats, error)
	}
	variants := []variant{
		{"background", func() ([]core.Pair, core.Stats, error) {
			return core.KClosestPairs(ta, tb, k, opts)
		}},
		{"cancellable", func() ([]core.Pair, core.Stats, error) {
			return core.KClosestPairsContext(ctx, ta, tb, k, opts)
		}},
	}

	best := make([]time.Duration, len(variants))
	dists := make([][]float64, len(variants))
	stats := make([]core.Stats, len(variants))
	for i := range best {
		best[i] = time.Duration(1<<62 - 1)
	}
	// Interleave the variants within each repetition so drift (thermal,
	// cache, page layout) hits both sides equally.
	for r := 0; r < ctxflowReps; r++ {
		for i, v := range variants {
			prepare(ta, tb, buffer)
			start := time.Now()
			pairs, s, err := v.run()
			if err != nil {
				return fmt.Errorf("ctxflow: %s: %w", v.label, err)
			}
			if wall := time.Since(start); wall < best[i] {
				best[i] = wall
			}
			stats[i] = s
			dists[i] = dists[i][:0]
			for _, p := range pairs {
				dists[i] = append(dists[i], p.Dist)
			}
		}
	}

	// Identical results and paper counters: the context thread must be
	// invisible when the query is never cancelled.
	if len(dists[0]) != len(dists[1]) {
		return fmt.Errorf("ctxflow: cancellable run returned %d pairs, background %d",
			len(dists[1]), len(dists[0]))
	}
	for i := range dists[0] {
		if dists[0][i] != dists[1][i] {
			return fmt.Errorf("ctxflow: distance[%d] = %g cancellable, %g background",
				i, dists[1][i], dists[0][i])
		}
	}
	if stats[0].Accesses() != stats[1].Accesses() || stats[0].NodePairsProcessed != stats[1].NodePairsProcessed {
		return fmt.Errorf("ctxflow: cancellable counters (accesses %d, node pairs %d) deviate from background (%d, %d)",
			stats[1].Accesses(), stats[1].NodePairsProcessed,
			stats[0].Accesses(), stats[0].NodePairsProcessed)
	}

	t := newTable(
		fmt.Sprintf("Cancellation overhead (uniform %d/%d bulk-loaded, K=%d, B=%d, HEAP grid+batched)", n, n, k, buffer),
		"variant", "wall (best of "+fmt.Sprint(ctxflowReps)+")", "accesses", "node pairs")
	for i, v := range variants {
		t.addRow(v.label, best[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%d", stats[i].Accesses()),
			fmt.Sprintf("%d", stats[i].NodePairsProcessed))
	}
	if err := t.write(w); err != nil {
		return err
	}

	overhead := float64(best[1])/float64(best[0]) - 1
	maxOverhead := ctxflowMaxOverhead
	gateNote := "strict"
	if best[0] < ctxflowGateFloor {
		maxOverhead = ctxflowNoiseOverhead
		gateNote = fmt.Sprintf("noise-tolerant below a %s baseline; run at full scale for the strict gate", ctxflowGateFloor)
	}
	if _, err := fmt.Fprintf(w, "cancellable-context overhead vs Background shim: %+.2f%% (gate: <= %.0f%%, %s).\n\n",
		overhead*100, maxOverhead*100, gateNote); err != nil {
		return err
	}
	// The regression gate of `ci.sh bench`: threading a live context
	// must not slow the never-cancelled hot path.
	if overhead > maxOverhead {
		return fmt.Errorf("ctxflow: cancellable path is %.2f%% slower than the Background shim (max %.0f%%)",
			overhead*100, maxOverhead*100)
	}
	return nil
}

package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// runSemi compares the two semi-CPQ implementations (paper future work,
// Section 6): one best-first NN search per P point versus the batched
// per-leaf traversal.
func runSemi(l *Lab, w io.Writer) error {
	t := newTable(
		"Semi-CPQ: per-point NN vs batched leaf traversal, disk accesses (B=0)",
		"workload", "per-point", "batched", "saving")
	for _, cfg := range []struct {
		label   string
		left    DataSpec
		right   DataSpec
		overlap float64
	}{
		{"U20K/U20K 100%", uniformSpec(20000, 61), uniformSpec(20000, 62), 1.0},
		{"U40K/U40K 100%", uniformSpec(40000, 63), uniformSpec(40000, 64), 1.0},
		{"R/U62536 100%", realSpec(), uniformControl(), 1.0},
	} {
		ta, tb, err := l.Pair(cfg.left, cfg.right, cfg.overlap)
		if err != nil {
			return err
		}
		prepare(ta, tb, 0)
		_, pp, err := core.SemiClosestPairs(ta, tb, core.DefaultOptions(core.Heap))
		if err != nil {
			return err
		}
		prepare(ta, tb, 0)
		_, bt, err := core.SemiClosestPairsBatched(ta, tb, core.DefaultOptions(core.Heap))
		if err != nil {
			return err
		}
		t.addRow(cfg.label,
			fmt.Sprintf("%d", pp.Accesses()),
			fmt.Sprintf("%d", bt.Accesses()),
			fmt.Sprintf("%.1fx", float64(pp.Accesses())/float64(bt.Accesses())))
	}
	return t.write(w)
}

package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
)

// smallLab builds a heavily scaled-down lab for unit tests.
func smallLab() *Lab {
	return NewLab(0.02) // 62,536 -> ~1250 points
}

func TestLabBuildsAndCachesTrees(t *testing.T) {
	l := smallLab()
	spec := uniformSpec(20000, 20000)
	a, err := l.Tree(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Tree(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Tree must cache by spec")
	}
	if a.Len() != int64(l.ScaledN(20000)) {
		t.Fatalf("Len = %d, want %d", a.Len(), l.ScaledN(20000))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPairPlacesOverlap(t *testing.T) {
	l := smallLab()
	ta, tb, err := l.Pair(uniformSpec(20000, 1), uniformSpec(20000, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := ta.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := tb.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	ov := ba.Intersect(bb)
	if ov.IsEmpty() {
		t.Fatal("50% overlap workspaces must intersect")
	}
	w := ov.Max.X - ov.Min.X
	if w < 0.4 || w > 0.6 {
		t.Errorf("overlap width = %g, want ~0.5", w)
	}
}

func TestRunCoreCountsAccesses(t *testing.T) {
	l := smallLab()
	ta, tb, err := l.Pair(realSpec(), uniformControl(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := RunCore(ta, tb, 1, core.DefaultOptions(core.Heap), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Accesses() <= 0 {
		t.Fatal("no accesses at B=0")
	}
	// A very large buffer can only reduce accesses.
	s1, err := RunCore(ta, tb, 1, core.DefaultOptions(core.Heap), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Accesses() > s0.Accesses() {
		t.Errorf("buffered run cost %d > unbuffered %d", s1.Accesses(), s0.Accesses())
	}
	// Runs are repeatable after prepare().
	s2, err := RunCore(ta, tb, 1, core.DefaultOptions(core.Heap), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Accesses() != s0.Accesses() {
		t.Errorf("repeat run cost %d != %d", s2.Accesses(), s0.Accesses())
	}
}

func TestRunIncremental(t *testing.T) {
	l := smallLab()
	ta, tb, err := l.Pair(realSpec(), uniformControl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunIncremental(ta, tb, 10, incremental.Options{Traversal: incremental.Simultaneous}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses() <= 0 || stats.Reported != 10 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 10 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	if _, ok := ByName("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must reject unknown names")
	}
	if len(Names()) != len(Experiments()) {
		t.Fatal("Names/Experiments mismatch")
	}
}

// TestEveryExperimentRunsAtTinyScale smoke-tests each figure end to end.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l := NewLab(0.01)
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(l, &buf); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "Figure") && !strings.Contains(out, "Ablation") &&
			!strings.Contains(out, "Footnote") && !strings.Contains(out, "Tree shapes") &&
			!strings.Contains(out, "Cost model") && !strings.Contains(out, "Semi-CPQ") &&
			!strings.Contains(out, "Cancellation") {
			t.Fatalf("%s produced unexpected output:\n%s", e.Name, out)
		}
		if strings.Count(out, "\n") < 4 {
			t.Fatalf("%s produced too little output:\n%s", e.Name, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("Demo", "a", "b")
	tb.addRow("x", "1")
	tb.addf("y", "%d", 2)
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "a", "b", "x", "1", "y", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPct(t *testing.T) {
	if got := pct(50, 100); got != "50.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(5, 0); got != "n/a" {
		t.Errorf("pct with zero baseline = %q", got)
	}
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rtree"
)

// This file is the hot-path kernel ablation behind BENCH_PR6.json: the
// standard uniform workload (100,000 points per tree, 100% overlap) run
// under the three leaf-scan strategies crossed with the expansion kernels
// (legacy per-pair vs batched SoA) and batched heap dequeues, for the
// sequential and parallel HEAP algorithm. It doubles as the regression
// gate for the grid scan and the batched kernel: the experiment fails if
// the optimised configuration is slower than the legacy sweep baseline, or
// if any sequential configuration changes the paper's cost counters (disk
// accesses, node pairs) or the result distances.

// PR6Run is one measured configuration of the ablation.
type PR6Run struct {
	Label           string  `json:"label"`
	K               int     `json:"k"`
	LeafScan        string  `json:"leaf_scan"`
	BatchedKernel   bool    `json:"batched_kernel"`
	BatchExpand     bool    `json:"batch_expand"`
	Workers         int     `json:"workers"`
	WallMS          float64 `json:"wall_ms"`
	Accesses        int64   `json:"accesses"`
	NodePairs       int64   `json:"node_pairs"`
	PointPairs      int64   `json:"point_pairs"`
	GridCellsProbed int64   `json:"grid_cells_probed"`
	GridRebuckets   int64   `json:"grid_rebuckets"`
	HeapBatches     int64   `json:"heap_batches"`
	HeapBatchPairs  int64   `json:"heap_batch_pairs"`
}

// PR6Report is the machine-readable record of one pr6 experiment run
// (cpqbench -pr6 writes it to BENCH_PR6.json).
type PR6Report struct {
	N          int      `json:"n"`
	Scale      float64  `json:"scale"`
	BufferB    int      `json:"buffer_pages"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Runs       []PR6Run `json:"runs"`
	// GridWallReduction1CP and GridWallReductionK100 are the fractional
	// wall-clock reductions of the grid + batched-kernel configuration
	// versus the legacy sweep baseline (sequential HEAP), e.g. 0.20 for a
	// 20% faster run. The acceptance target for this PR is >= 0.15 on the
	// K=100 suite at full scale.
	GridWallReduction1CP  float64 `json:"grid_wall_reduction_1cp"`
	GridWallReductionK100 float64 `json:"grid_wall_reduction_k100"`
	// ParWallReduction compares the parallel grid configuration against
	// the parallel legacy sweep at GOMAXPROCS workers.
	ParWallReduction float64 `json:"par_wall_reduction"`
}

var pr6Last struct {
	mu     sync.Mutex
	report *PR6Report
}

// PR6LastReport returns the report of the most recent "pr6" experiment
// run, nil if it has not run.
func PR6LastReport() *PR6Report {
	pr6Last.mu.Lock()
	defer pr6Last.mu.Unlock()
	return pr6Last.report
}

// pr6Config is one cell of the ablation grid.
type pr6Config struct {
	label       string
	k           int
	leafScan    core.LeafScan
	expand      core.ExpandStrategy
	batchExpand bool
	workers     int
}

// runPR6Config measures one configuration: reps cold-start runs, best wall
// time, stats and result distances from the last run.
func runPR6Config(ta, tb *rtree.Tree, c pr6Config, buffer, reps int) (PR6Run, []float64, error) {
	opts := core.DefaultOptions(core.Heap)
	opts.LeafScan = c.leafScan
	opts.Expand = c.expand
	opts.BatchExpand = c.batchExpand
	opts.Parallelism = c.workers
	var stats core.Stats
	var dists []float64
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		prepare(ta, tb, buffer)
		start := time.Now()
		pairs, s, err := core.KClosestPairs(ta, tb, c.k, opts)
		if err != nil {
			return PR6Run{}, nil, err
		}
		if wall := time.Since(start); wall < best {
			best = wall
		}
		stats = s
		dists = dists[:0]
		for _, p := range pairs {
			dists = append(dists, p.Dist)
		}
	}
	return PR6Run{
		Label:           c.label,
		K:               c.k,
		LeafScan:        c.leafScan.String(),
		BatchedKernel:   c.expand == core.ExpandBatched,
		BatchExpand:     c.batchExpand,
		Workers:         c.workers,
		WallMS:          float64(best) / float64(time.Millisecond),
		Accesses:        stats.Accesses(),
		NodePairs:       stats.NodePairsProcessed,
		PointPairs:      stats.PointPairsCompared,
		GridCellsProbed: stats.GridCellsProbed,
		GridRebuckets:   stats.GridRebuckets,
		HeapBatches:     stats.HeapBatches,
		HeapBatchPairs:  stats.HeapBatchPairs,
	}, dists, nil
}

// runPR6 is the "pr6" experiment.
func runPR6(l *Lab, w io.Writer) error {
	// The ablation controls every knob per run; neutralise cpqbench
	// overrides for its duration.
	savedScan := defaultLeafScan.Load()
	savedPar := defaultParallelism.Load()
	savedBatch := defaultBatchExpand.Load()
	defaultLeafScan.Store(0)
	defaultParallelism.Store(0)
	defaultBatchExpand.Store(false)
	defer func() {
		defaultLeafScan.Store(savedScan)
		defaultParallelism.Store(savedPar)
		defaultBatchExpand.Store(savedBatch)
	}()

	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	const buffer = 512
	ta, err := buildParallelTree(cfg, 91, n, 0)
	if err != nil {
		return err
	}
	tb, err := buildParallelTree(cfg, 92, n, 0)
	if err != nil {
		return err
	}
	ta.SetNodeCache(nil)
	tb.SetNodeCache(nil)

	workers := runtime.GOMAXPROCS(0)
	grid := []pr6Config{
		{"1-CP", 1, core.LeafScanSweep, core.ExpandLegacy, false, 1},
		{"1-CP", 1, core.LeafScanSweep, core.ExpandBatched, false, 1},
		{"1-CP", 1, core.LeafScanGrid, core.ExpandBatched, false, 1},
		{"1-CP", 1, core.LeafScanGrid, core.ExpandBatched, true, 1},
		{"K=100", 100, core.LeafScanSweep, core.ExpandLegacy, false, 1},
		{"K=100", 100, core.LeafScanSweep, core.ExpandBatched, false, 1},
		{"K=100", 100, core.LeafScanGrid, core.ExpandBatched, false, 1},
		{"K=100", 100, core.LeafScanGrid, core.ExpandBatched, true, 1},
		{"parallel K=100", 100, core.LeafScanSweep, core.ExpandLegacy, false, workers},
		{"parallel K=100", 100, core.LeafScanGrid, core.ExpandBatched, false, workers},
	}

	rep := &PR6Report{
		N:          n,
		Scale:      l.scale(),
		BufferB:    buffer,
		GOMAXPROCS: workers,
	}
	t := newTable(
		fmt.Sprintf("Ablation: grid leaf scan + batched kernel + heap batches (uniform %d/%d bulk-loaded, 100%% overlap, B=%d, HEAP)", n, n, buffer),
		"workload", "K", "scan", "kernel", "hbatch", "wkr", "wall", "accesses", "node pairs", "point pairs", "cells probed")
	dists := map[string][]float64{}
	for _, c := range grid {
		run, d, err := runPR6Config(ta, tb, c, buffer, 3)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		if c.workers == 1 && !c.batchExpand {
			// Strict best-first sequential runs must agree on the result
			// distances; remember the legacy baseline's per workload.
			key := c.label
			if base, ok := dists[key]; ok {
				if len(base) != len(d) {
					return fmt.Errorf("pr6: %s %s returned %d pairs, baseline %d",
						c.label, c.leafScan, len(d), len(base))
				}
				for i := range base {
					if base[i] != d[i] {
						return fmt.Errorf("pr6: %s %s distance[%d] = %g, baseline %g",
							c.label, c.leafScan, i, d[i], base[i])
					}
				}
			} else {
				dists[key] = append([]float64(nil), d...)
			}
		}
		kernel := "legacy"
		if run.BatchedKernel {
			kernel = "batched"
		}
		hbatch := "off"
		if run.BatchExpand {
			hbatch = "on"
		}
		t.addRow(run.Label, fmt.Sprintf("%d", run.K), run.LeafScan, kernel, hbatch,
			fmt.Sprintf("%d", run.Workers),
			(time.Duration(run.WallMS * float64(time.Millisecond))).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", run.Accesses),
			fmt.Sprintf("%d", run.NodePairs),
			fmt.Sprintf("%d", run.PointPairs),
			fmt.Sprintf("%d", run.GridCellsProbed))
	}
	if err := t.write(w); err != nil {
		return err
	}

	find := func(label string, ls core.LeafScan, ex core.ExpandStrategy, hb bool, workers int) *PR6Run {
		for i := range rep.Runs {
			r := &rep.Runs[i]
			if r.Label == label && r.LeafScan == ls.String() &&
				r.BatchedKernel == (ex == core.ExpandBatched) &&
				r.BatchExpand == hb && r.Workers == workers {
				return r
			}
		}
		return nil
	}
	base1 := find("1-CP", core.LeafScanSweep, core.ExpandLegacy, false, 1)
	grid1 := find("1-CP", core.LeafScanGrid, core.ExpandBatched, false, 1)
	baseK := find("K=100", core.LeafScanSweep, core.ExpandLegacy, false, 1)
	gridK := find("K=100", core.LeafScanGrid, core.ExpandBatched, false, 1)
	parBase := find("parallel K=100", core.LeafScanSweep, core.ExpandLegacy, false, workers)
	parGrid := find("parallel K=100", core.LeafScanGrid, core.ExpandBatched, false, workers)

	// Counter parity: at Parallelism 1 without heap batches, the batched
	// kernel and the grid scan must leave the paper's cost counters (disk
	// accesses and node pairs processed) exactly where the legacy path put
	// them — they are pure implementation optimisations.
	for _, pair := range [][2]*PR6Run{{base1, grid1}, {baseK, gridK}} {
		b, g := pair[0], pair[1]
		if g.Accesses != b.Accesses || g.NodePairs != b.NodePairs {
			return fmt.Errorf("pr6: %s grid counters (accesses %d, node pairs %d) deviate from legacy sweep (%d, %d)",
				b.Label, g.Accesses, g.NodePairs, b.Accesses, b.NodePairs)
		}
	}

	reduction := func(base, opt *PR6Run) float64 {
		if base.WallMS <= 0 {
			return 0
		}
		return 1 - opt.WallMS/base.WallMS
	}
	rep.GridWallReduction1CP = reduction(base1, grid1)
	rep.GridWallReductionK100 = reduction(baseK, gridK)
	rep.ParWallReduction = reduction(parBase, parGrid)

	// The regression gate of `ci.sh bench`: the optimised configuration
	// must not be slower than the legacy sweep baseline it replaces.
	if rep.GridWallReductionK100 < 0 {
		return fmt.Errorf("pr6: grid+kernel K=100 run regressed %.1f%% vs legacy sweep",
			-rep.GridWallReductionK100*100)
	}

	pr6Last.mu.Lock()
	pr6Last.report = rep
	pr6Last.mu.Unlock()

	_, err = fmt.Fprintf(w,
		"grid+kernel wall reduction vs legacy sweep (seq HEAP): 1-CP %.1f%%, K=100 %.1f%%; parallel %.1f%%.\n\n",
		rep.GridWallReduction1CP*100, rep.GridWallReductionK100*100, rep.ParWallReduction*100)
	return err
}

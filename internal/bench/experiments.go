package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable figure (or ablation) of the study.
type Experiment struct {
	// Name is the CLI identifier, e.g. "fig4".
	Name string
	// Title describes the experiment.
	Title string
	// Run executes the experiment on the lab and writes its tables.
	Run func(l *Lab, w io.Writer) error
}

var registry = []Experiment{
	{"fig2", "Tie strategies T1-T5 in STD and HEAP (1-CPQ, 60K/60K uniform)", runFig2},
	{"fig3", "fix-at-leaves vs fix-at-root for different tree heights (1-CPQ)", runFig3},
	{"fig4", "The four 1-CP algorithms: real vs random data, 0% and 100% overlap", runFig4},
	{"fig5", "Overlap threshold for 1-CPQ: SIM/STD/HEAP relative to EXH", runFig5},
	{"fig6", "LRU buffer effect on the four 1-CP algorithms", runFig6},
	{"fig7", "The four K-CP algorithms for varying K (real vs uniform)", runFig7},
	{"fig8", "Overlap threshold for varying K: STD and HEAP relative to EXH", runFig8},
	{"fig9", "LRU buffer effect for varying K: STD and HEAP", runFig9},
	{"fig10", "Incremental (EVN, SML) vs non-incremental (STD, HEAP) for varying K", runFig10},
	{"sorts", "Footnote 2 ablation: sorting methods inside STD", runSorts},
	{"kprune", "Ablation: K-CPQ pruning bound (MAXMAXDIST rule vs K-heap top)", runKPrune},
	{"build", "Ablation: insertion-built vs STR bulk-loaded trees", runBuild},
	{"shape", "Tree shapes of the experimental data sets (heights, node counts)", runShape},
	{"costmodel", "Analytical cost model vs measured cost (future work (b))", runCostModel},
	{"policies", "Ablation: LRU vs FIFO vs CLOCK buffer replacement", runPolicies},
	{"semi", "Semi-CPQ: per-point NN vs batched leaf traversal", runSemi},
	{"parallel", "Parallel HEAP engine: wall-clock speedup and accesses vs workers", runParallel},
	{"leafscan", "Ablation: plane-sweep vs brute leaf scan, decoded-node cache on/off", runLeafScan},
	{"pr6", "Ablation: grid leaf scan, batched MINMINDIST kernel, heap-batch expansion", runPR6},
	{"pr9", "Gate: sharded scatter-gather (STR tiles, broadcast bound) vs monolithic join", runPR9},
	{"ctxflow", "Gate: cancellation-poll overhead of the context-threaded hot path", runCtxFlow},
	{"pr10", "Gate: EXPLAIN capture overhead and result parity, explain-off vs bare executor", runPR10},
}

// Experiments lists every registered experiment in presentation order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	return out
}

// ByName finds an experiment by CLI name.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted experiment names for usage messages.
func Names() []string {
	var names []string
	for _, e := range registry {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// RunAll executes every experiment in order.
func RunAll(l *Lab, w io.Writer) error {
	for _, e := range registry {
		if _, err := fmt.Fprintf(w, "=== %s: %s ===\n\n", e.Name, e.Title); err != nil {
			return err
		}
		if err := e.Run(l, w); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}

// Shared workload vocabulary ------------------------------------------------

// kSchedule is the K axis of Figures 7-10 (1 up to 100,000).
var kSchedule = []int{1, 10, 100, 1000, 10000, 100000}

// bufferSchedule is the LRU buffer axis of Figures 6 and 9 (total pages,
// split B/2 per tree).
var bufferSchedule = []int{0, 4, 16, 64, 256}

func uniformSpec(n int, seed int64) DataSpec {
	return DataSpec{Kind: UniformData, N: n, Seed: seed}
}

func realSpec() DataSpec { return DataSpec{Kind: RealData} }

// uniformControl is the 62,536-point uniform set joined with the real one
// in Sections 4 and 5.
func uniformControl() DataSpec { return uniformSpec(62536, 62536) }

func overlapLabel(o float64) string { return fmt.Sprintf("%.0f%%", o*100) }

package bench

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
	"repro/internal/shard"
)

// This file is the EXPLAIN/ANALYZE overhead gate behind BENCH_PR10.json:
// a clustered sharded K-CPQ (T=8 tiles, one worker, sequential HEAP —
// deterministic counters) run in three interleaved variants:
//
//   - baseline:    the bare PR 9 executor invocation (no capture plumbing
//     mentioned at all),
//   - explain-off: the facade-shaped invocation with a nil capture — the
//     path every production query takes when explain is not requested,
//   - explain-on:  a live capture attached as both the executor's capture
//     and the query tracer, snapshot + canonical JSON taken per run.
//
// The gate enforces the PR 5 disabled-hook discipline at query scale:
// all three variants must return bit-identical distances and identical
// paper counters, and the explain-off wall clock must stay within
// pr10MaxOverhead of the bare baseline — the nil-guarded capture points
// are designed to be free, and this experiment is where that claim is
// enforced. The explain-on overhead is reported (a live capture pays a
// mutex on every trace event by design) but not gated.

// pr10MaxOverhead is the accepted fractional wall-clock overhead of the
// explain-off path over the bare baseline (0.01 = 1%).
const pr10MaxOverhead = 0.01

// pr10GateFloor is the minimum baseline wall clock at which the 1% gate
// is meaningful; below it (scaled-down smoke runs) scheduler noise alone
// exceeds the margin, so only a gross regression fails.
const pr10GateFloor = 100 * time.Millisecond

// pr10NoiseOverhead is the loose sanity bound applied below the floor.
const pr10NoiseOverhead = 0.25

// pr10Reps is the number of interleaved repetitions; the minimum wall
// time per variant is compared, which discards scheduling noise instead
// of averaging it in.
const pr10Reps = 7

// PR10Run is one measured variant of the comparison.
type PR10Run struct {
	Label      string  `json:"label"`
	WallMS     float64 `json:"wall_ms"`
	Accesses   int64   `json:"accesses"`
	NodePairs  int64   `json:"node_pairs"`
	PointPairs int64   `json:"point_pairs"`
}

// PR10Report is the machine-readable record of one pr10 experiment run
// (cpqbench -pr10 writes it to BENCH_PR10.json).
type PR10Report struct {
	N          int     `json:"n"`
	Scale      float64 `json:"scale"`
	K          int     `json:"k"`
	Tiles      int     `json:"tiles"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Baseline   PR10Run `json:"baseline"`
	ExplainOff PR10Run `json:"explain_off"`
	ExplainOn  PR10Run `json:"explain_on"`
	// OverheadOff is explain-off / baseline - 1, gated at
	// <= pr10MaxOverhead (above the floor).
	OverheadOff float64 `json:"overhead_off"`
	// OverheadOn is explain-on / baseline - 1, reported only.
	OverheadOn float64 `json:"overhead_on"`
	// SnapshotBytes is the canonical JSON size of the explain-on
	// snapshot; ShardPairRows and Spans summarize its execution section.
	SnapshotBytes int `json:"snapshot_bytes"`
	ShardPairRows int `json:"shard_pair_rows"`
	Spans         int `json:"spans"`
}

var pr10Last struct {
	mu     sync.Mutex
	report *PR10Report
}

// PR10LastReport returns the report of the most recent "pr10" experiment
// run, nil if it has not run.
func PR10LastReport() *PR10Report {
	pr10Last.mu.Lock()
	defer pr10Last.mu.Unlock()
	return pr10Last.report
}

// countSpans counts a span forest's nodes, children included.
func countSpans(nodes []explain.SpanNode) int {
	n := 0
	for _, s := range nodes {
		n += 1 + countSpans(s.Children)
	}
	return n
}

// runPR10 is the "pr10" experiment.
func runPR10(l *Lab, w io.Writer) error {
	// The gate controls every knob per run; neutralise cpqbench
	// overrides for its duration.
	savedScan := defaultLeafScan.Load()
	savedPar := defaultParallelism.Load()
	savedShards := defaultShards.Load()
	savedExplain := defaultExplain.Load()
	defaultLeafScan.Store(0)
	defaultParallelism.Store(0)
	defaultShards.Store(0)
	defaultExplain.Store(false)
	defer func() {
		defaultLeafScan.Store(savedScan)
		defaultParallelism.Store(savedPar)
		defaultShards.Store(savedShards)
		defaultExplain.Store(savedExplain)
	}()

	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	const (
		k     = 100
		tiles = 8
	)
	opts := core.DefaultOptions(core.Heap)

	itemsA := buildClusteredItems(95, n)
	itemsB := buildClusteredItems(96, n)
	// One shared shard set: the measured region is the executor run, as
	// in pr9 (the partitioning cost is gated there).
	set, err := shard.PartitionContext(defaultCtx(), itemsA, itemsB, shard.Config{Tiles: tiles, Tree: cfg})
	if err != nil {
		return err
	}
	defer set.Close()

	// One worker and sequential joins: the plan order is fixed and the
	// pool counters deterministic, so the parity gate can require
	// equality, not similarity.
	type variant struct {
		label string
		run   func() (shard.Result, error)
	}
	var lastSnap *explain.Explain
	variants := []variant{
		{"baseline (bare executor)", func() (shard.Result, error) {
			ex := shard.Executor{Set: set, Workers: 1}
			return ex.RunContext(defaultCtx(), k, opts)
		}},
		{"explain-off (nil capture)", func() (shard.Result, error) {
			var ec *explain.Capture
			ex := shard.Executor{Set: set, Workers: 1, Capture: ec}
			jopts := opts
			jopts.Tracer = nil
			return ex.RunContext(defaultCtx(), k, jopts)
		}},
		{"explain-on (live capture)", func() (shard.Result, error) {
			ec := explain.New(nil)
			ec.SetPlanShards(tiles, shard.InProc{}.String(), set.TileBounds())
			ex := shard.Executor{Set: set, Workers: 1, Capture: ec}
			jopts := opts
			jopts.Tracer = ec
			res, err := ex.RunContext(defaultCtx(), k, jopts)
			if err == nil {
				lastSnap = ec.Snapshot()
			}
			return res, err
		}},
	}

	best := make([]time.Duration, len(variants))
	dists := make([][]float64, len(variants))
	stats := make([]core.Stats, len(variants))
	for i := range best {
		best[i] = time.Duration(1<<62 - 1)
	}
	// Interleave the variants within each repetition so drift (thermal,
	// cache, page layout) hits all sides equally.
	for r := 0; r < pr10Reps; r++ {
		for i, v := range variants {
			start := time.Now()
			res, err := v.run()
			if err != nil {
				return fmt.Errorf("pr10: %s: %w", v.label, err)
			}
			if wall := time.Since(start); wall < best[i] {
				best[i] = wall
			}
			stats[i] = res.Stats
			dists[i] = dists[i][:0]
			for _, p := range res.Pairs {
				dists[i] = append(dists[i], p.Dist)
			}
		}
	}

	// Parity gate: the capture must be invisible in the answer and the
	// paper counters, attached or not.
	for i := 1; i < len(variants); i++ {
		if len(dists[i]) != len(dists[0]) {
			return fmt.Errorf("pr10: %s returned %d pairs, baseline %d",
				variants[i].label, len(dists[i]), len(dists[0]))
		}
		for j := range dists[0] {
			if math.Float64bits(dists[i][j]) != math.Float64bits(dists[0][j]) {
				return fmt.Errorf("pr10: %s distance[%d] = %g deviates from baseline %g",
					variants[i].label, j, dists[i][j], dists[0][j])
			}
		}
		if stats[i].Accesses() != stats[0].Accesses() ||
			stats[i].NodePairsProcessed != stats[0].NodePairsProcessed ||
			stats[i].PointPairsCompared != stats[0].PointPairsCompared {
			return fmt.Errorf("pr10: %s counters (accesses %d, node pairs %d, point pairs %d) deviate from baseline (%d, %d, %d)",
				variants[i].label, stats[i].Accesses(), stats[i].NodePairsProcessed, stats[i].PointPairsCompared,
				stats[0].Accesses(), stats[0].NodePairsProcessed, stats[0].PointPairsCompared)
		}
	}
	if lastSnap == nil {
		return fmt.Errorf("pr10: explain-on variant produced no snapshot")
	}
	raw, err := lastSnap.JSON()
	if err != nil {
		return fmt.Errorf("pr10: snapshot JSON: %w", err)
	}

	rep := &PR10Report{
		N:             n,
		Scale:         l.scale(),
		K:             k,
		Tiles:         tiles,
		GOMAXPROCS:    1,
		SnapshotBytes: len(raw),
		ShardPairRows: len(lastSnap.Exec.ShardPairs),
		Spans:         countSpans(lastSnap.Exec.Spans),
	}
	runs := []*PR10Run{&rep.Baseline, &rep.ExplainOff, &rep.ExplainOn}
	for i, v := range variants {
		*runs[i] = PR10Run{
			Label:      v.label,
			WallMS:     float64(best[i]) / float64(time.Millisecond),
			Accesses:   stats[i].Accesses(),
			NodePairs:  stats[i].NodePairsProcessed,
			PointPairs: stats[i].PointPairsCompared,
		}
	}
	rep.OverheadOff = float64(best[1])/float64(best[0]) - 1
	rep.OverheadOn = float64(best[2])/float64(best[0]) - 1

	t := newTable(
		fmt.Sprintf("Ablation: EXPLAIN capture overhead on the sharded join (clustered %d/%d, K=%d, T=%d tiles, 1 worker, HEAP)", n, n, k, tiles),
		"variant", "wall (best of "+fmt.Sprint(pr10Reps)+")", "accesses", "node pairs", "point pairs")
	for i, v := range variants {
		t.addRow(v.label, best[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%d", stats[i].Accesses()),
			fmt.Sprintf("%d", stats[i].NodePairsProcessed),
			fmt.Sprintf("%d", stats[i].PointPairsCompared))
	}
	if err := t.write(w); err != nil {
		return err
	}

	maxOverhead := pr10MaxOverhead
	gateNote := "strict"
	if best[0] < pr10GateFloor {
		maxOverhead = pr10NoiseOverhead
		gateNote = fmt.Sprintf("noise-tolerant below a %s baseline; run at full scale for the strict gate", pr10GateFloor)
	}
	if _, err := fmt.Fprintf(w,
		"explain-off overhead vs bare executor: %+.2f%% (gate: <= %.0f%%, %s); explain-on: %+.2f%% (reported only); snapshot %d bytes, %d shard-pair rows, %d spans.\n\n",
		rep.OverheadOff*100, maxOverhead*100, gateNote, rep.OverheadOn*100,
		rep.SnapshotBytes, rep.ShardPairRows, rep.Spans); err != nil {
		return err
	}
	// The regression gate of `ci.sh bench`: the nil-capture path must not
	// slow the production query.
	if rep.OverheadOff > maxOverhead {
		return fmt.Errorf("pr10: explain-off path is %.2f%% slower than the bare executor (max %.0f%%)",
			rep.OverheadOff*100, maxOverhead*100)
	}

	pr10Last.mu.Lock()
	pr10Last.report = rep
	pr10Last.mu.Unlock()
	return nil
}

package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/sortx"
	"repro/internal/storage"
)

// runSorts is the ablation behind footnote 2: run STD's full query with
// each of the six sorting methods and report accesses (identical by
// construction — the sort affects CPU only) and wall time.
func runSorts(l *Lab, w io.Writer) error {
	ta, tb, err := l.Pair(realSpec(), uniformSpec(40000, 40000), 0.5)
	if err != nil {
		return err
	}
	t := newTable(
		"Footnote 2: STD with each sorting method (1-CPQ, R/40K, overlap 50%, B=0)",
		"method", "accesses", "wall time")
	for _, m := range sortx.Methods() {
		opts := core.DefaultOptions(core.SortedDistances)
		opts.Sort = m
		start := time.Now()
		stats, err := RunCore(ta, tb, 1, opts, 0)
		if err != nil {
			return err
		}
		t.addRow(m.String(), fmt.Sprintf("%d", stats.Accesses()),
			time.Since(start).Round(time.Microsecond).String())
	}
	return t.write(w)
}

// runKPrune is the K-pruning ablation (Section 3.8): the reconstructed
// MAXMAXDIST prefix rule against the simple K-heap-top rule for SIM, STD
// and HEAP across K, on overlapping workspaces where pruning matters most.
func runKPrune(l *Lab, w io.Writer) error {
	ta, tb, err := l.Pair(realSpec(), uniformControl(), 1.0)
	if err != nil {
		return err
	}
	t := newTable(
		"Ablation: K-CPQ pruning bound, disk accesses (R/uniform, overlap 100%, B=0)",
		"K", "SIM:maxmax", "SIM:heap-top", "STD:maxmax", "STD:heap-top", "HEAP:maxmax", "HEAP:heap-top")
	for _, k := range []int{10, 100, 1000, 10000} {
		cells := []string{fmt.Sprintf("%d", k)}
		for _, alg := range []core.Algorithm{core.Simple, core.SortedDistances, core.Heap} {
			for _, rule := range []core.KPruning{core.KPruneMaxMax, core.KPruneHeapTop} {
				opts := core.DefaultOptions(alg)
				opts.KPrune = rule
				stats, err := RunCore(ta, tb, k, opts, 0)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%d", stats.Accesses()))
			}
		}
		t.addRow(cells...)
	}
	return t.write(w)
}

// runBuild is the build-path ablation: the same workload indexed by
// repeated R* insertion versus STR bulk loading, comparing tree shape and
// 1-CPQ/K-CPQ cost. Packed trees have less node overlap, which shows up
// directly in join cost.
func runBuild(l *Lab, w io.Writer) error {
	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(40000)
	makeTree := func(seed int64, shift float64, bulk bool, fill float64) (*rtree.Tree, error) {
		pts := dataset.Uniform(seed, n)
		pool := storage.NewBufferPool(storage.NewMemFile(cfg.PageSize), 512)
		tr, err := rtree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		if bulk {
			items := make([]rtree.Item, len(pts))
			for i, p := range pts {
				items[i] = rtree.Item{Rect: p.Add(shift, 0).Rect(), Ref: int64(i)}
			}
			if err := tr.BulkLoad(items, fill); err != nil {
				return nil, err
			}
			return tr, nil
		}
		for i, p := range pts {
			if err := tr.InsertPoint(p.Add(shift, 0), int64(i)); err != nil {
				return nil, err
			}
		}
		return tr, nil
	}

	t := newTable(
		fmt.Sprintf("Ablation: insertion-built vs STR bulk-loaded trees (uniform %d/%d, overlap 100%%, B=0)", n, n),
		"build", "pages/tree", "height", "1-CP HEAP", "K=1000 HEAP")
	for _, row := range []struct {
		label string
		bulk  bool
		fill  float64
	}{
		{"insert (R*)", false, 0},
		{"bulk (STR 0.7)", true, 0.7},
		{"bulk (STR 1.0)", true, 1.0},
	} {
		ta, err := makeTree(91, 0, row.bulk, row.fill)
		if err != nil {
			return err
		}
		tb, err := makeTree(92, 0, row.bulk, row.fill)
		if err != nil {
			return err
		}
		label := row.label
		one, err := RunCore(ta, tb, 1, core.DefaultOptions(core.Heap), 0)
		if err != nil {
			return err
		}
		kk, err := RunCore(ta, tb, 1000, core.DefaultOptions(core.Heap), 0)
		if err != nil {
			return err
		}
		t.addRow(label,
			fmt.Sprintf("%d", ta.Pool().File().NumPages()),
			fmt.Sprintf("%d", ta.Height()),
			fmt.Sprintf("%d", one.Accesses()),
			fmt.Sprintf("%d", kk.Accesses()))
	}
	return t.write(w)
}

// runShape reports the physical shape of every data set used in the study
// (Section 4 quotes heights h=4 for 20K-60K and h=5 for 80K at M=21).
func runShape(l *Lab, w io.Writer) error {
	t := newTable(
		"Tree shapes (page size 1KB, M=21, m=7; insertion-built)",
		"data", "points", "height", "nodes/level (leaf..root)", "pages")
	specs := []struct {
		label string
		spec  DataSpec
	}{
		{"U20K", uniformSpec(20000, 20000)},
		{"U40K", uniformSpec(40000, 40000)},
		{"U60K", uniformSpec(60000, 60000)},
		{"U80K", uniformSpec(80000, 80000)},
		{"U62536", uniformControl()},
		{"R (real substitute)", realSpec()},
	}
	for _, s := range specs {
		tr, err := l.Tree(s.spec)
		if err != nil {
			return err
		}
		counts, err := tr.NodeCount()
		if err != nil {
			return err
		}
		t.addRow(s.label,
			fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%d", tr.Height()),
			fmt.Sprintf("%v", counts),
			fmt.Sprintf("%d", tr.Pool().File().NumPages()))
	}
	return t.write(w)
}

// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Sections 4 and 5): it builds the R*-trees for
// each workload (caching them across runs), configures the per-tree LRU
// buffers, runs the closest-pair algorithms, and prints the same rows and
// series the paper reports. The cmd/cpqbench executable and the
// repository-level Go benchmarks are thin wrappers around this package.
package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/storage"
)

// DataKind selects a workload generator.
type DataKind int

const (
	// UniformData is the paper's "random data following a uniform-like
	// distribution".
	UniformData DataKind = iota
	// RealData is the stand-in for the Sequoia California sites (see
	// DESIGN.md): a fixed clustered data set of 62,536 points.
	RealData
)

// String implements fmt.Stringer using the paper's labels.
func (k DataKind) String() string {
	switch k {
	case UniformData:
		return "U"
	case RealData:
		return "R"
	default:
		return fmt.Sprintf("DataKind(%d)", int(k))
	}
}

// DataSpec identifies one indexed data set: its generator, cardinality,
// seed, and the x translation that realizes a workspace overlap.
type DataSpec struct {
	Kind  DataKind
	N     int // cardinality before Lab scaling; RealData fixes 62,536
	Seed  int64
	Shift float64
}

// Lab builds and caches experiment trees.
type Lab struct {
	// Config is the physical tree setup; zero value = the paper's
	// (1 KB pages, M=21, m=7).
	Config rtree.Config
	// Scale multiplies every cardinality (1.0 = the paper's sizes; the
	// quick mode of cpqbench and the Go benchmarks use 0.1). 0 means 1.0.
	Scale float64
	// BuildBuffer is the pool capacity (pages) used while building trees;
	// it is replaced by the per-run buffer before each measurement.
	// 0 means 512.
	BuildBuffer int

	trees map[DataSpec]*rtree.Tree
}

// NewLab returns a Lab with the paper's defaults at the given scale.
func NewLab(scale float64) *Lab {
	return &Lab{Config: rtree.DefaultConfig(), Scale: scale}
}

func (l *Lab) scale() float64 {
	if l.Scale <= 0 {
		return 1.0
	}
	return l.Scale
}

// ScaledN returns the effective cardinality for a nominal size.
func (l *Lab) ScaledN(n int) int {
	s := int(float64(n) * l.scale())
	if s < 200 {
		s = 200
	}
	return s
}

// Tree returns the (cached) tree for a data spec, building it by repeated
// insertion as in the paper.
func (l *Lab) Tree(spec DataSpec) (*rtree.Tree, error) {
	if l.trees == nil {
		l.trees = make(map[DataSpec]*rtree.Tree)
	}
	if t, ok := l.trees[spec]; ok {
		return t, nil
	}
	points := l.generate(spec)
	buildBuf := l.BuildBuffer
	if buildBuf == 0 {
		buildBuf = 512
	}
	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	pool := storage.NewBufferPool(storage.NewMemFile(cfg.PageSize), buildBuf)
	t, err := rtree.New(pool, cfg)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		if err := t.InsertPoint(p, int64(i)); err != nil {
			return nil, fmt.Errorf("bench: building %+v: %w", spec, err)
		}
	}
	attachDefaultNodeCache(t)
	l.trees[spec] = t
	return t, nil
}

func (l *Lab) generate(spec DataSpec) []geom.Point {
	var pts []geom.Point
	switch spec.Kind {
	case RealData:
		n := l.ScaledN(dataset.RealCardinality)
		pts = dataset.Clustered(62536, n)
	default:
		pts = dataset.Uniform(spec.Seed, l.ScaledN(spec.N))
	}
	if spec.Shift != 0 {
		for i := range pts {
			pts[i] = pts[i].Add(spec.Shift, 0)
		}
	}
	return pts
}

// Pair returns the two trees of a workload: left in the unit workspace,
// right shifted so the workspaces overlap by the given portion.
func (l *Lab) Pair(left, right DataSpec, overlap float64) (*rtree.Tree, *rtree.Tree, error) {
	left.Shift = 0
	right.Shift = 1 - overlap
	ta, err := l.Tree(left)
	if err != nil {
		return nil, nil, err
	}
	tb, err := l.Tree(right)
	if err != nil {
		return nil, nil, err
	}
	return ta, tb, nil
}

// prepare configures the paper's buffer scheme for one measured run: an
// LRU buffer of B pages split evenly between the two trees, cold caches
// (node caches included, when attached), zeroed counters.
func prepare(ta, tb *rtree.Tree, bufferPages int) {
	half := bufferPages / 2
	ta.Pool().Resize(half)
	tb.Pool().Resize(half)
	ta.Pool().Clear()
	tb.Pool().Clear()
	ta.Pool().ResetStats()
	tb.Pool().ResetStats()
	for _, tr := range []*rtree.Tree{ta, tb} {
		if c := tr.NodeCache(); c != nil {
			c.Clear()
			c.ResetStats()
		}
	}
}

// defaultParallelism, when non-zero, overrides a zero Options.Parallelism
// in RunCore: cpqbench -parallel plumbs through here so every experiment
// can be re-run in parallel mode for disk-access-parity comparisons
// without touching each experiment's option wiring.
var defaultParallelism atomic.Int64

// SetDefaultParallelism sets the worker count applied to experiments that
// do not choose one themselves (0 restores the sequential default;
// core.AutoParallelism selects GOMAXPROCS).
func SetDefaultParallelism(n int) { defaultParallelism.Store(int64(n)) }

// defaultLeafScan, when set (stored value = LeafScan + 1, or
// leafScanAuto), overrides Options.LeafScan in RunCore: cpqbench -leafscan
// and the CPQ_LEAFSCAN env knob plumb through here so every experiment and
// benchmark can be A/B'd between the sweep, brute and grid leaf scans
// without per-experiment wiring.
var defaultLeafScan atomic.Int64

// leafScanAuto is the defaultLeafScan sentinel for the advisor-driven
// choice: RunCore asks core.AdviseLeafScan per query, so the pick tracks
// each workload's cardinalities, overlap and K.
const leafScanAuto = -1

// SetDefaultLeafScan forces a leaf scan strategy onto every RunCore call.
// Pass a negative value to restore the per-experiment default.
func SetDefaultLeafScan(l core.LeafScan) { defaultLeafScan.Store(int64(l) + 1) }

// SetDefaultLeafScanAuto lets the cost-model advisor pick the leaf scan of
// every RunCore call (core.AdviseLeafScan).
func SetDefaultLeafScanAuto() { defaultLeafScan.Store(leafScanAuto) }

// ClearDefaultLeafScan restores the per-experiment leaf scan choice.
func ClearDefaultLeafScan() { defaultLeafScan.Store(0) }

// defaultShards, when above 1, reroutes every RunCore call through the
// scatter-gather executor of internal/shard with that many spatial
// tiles: cpqbench -shards and the CPQ_SHARDS env knob plumb through
// here. A rerouted query re-partitions both sets (STR tiles, one tree
// pair and buffer pool per tile) and measures I/O on the shard pools,
// so its access counts are not comparable to the paper's monolithic
// figures; the knob exists to A/B the sharded executor across every
// experiment, as -parallel does for the parallel engine. The result
// distances and tie order stay bit-identical to the monolithic join.
var defaultShards atomic.Int64

// SetDefaultShards reroutes experiments run afterwards through the
// sharded executor with t tiles (values <= 1 restore the monolithic
// join).
func SetDefaultShards(t int) { defaultShards.Store(int64(t)) }

// defaultShardTransport carries the transport of sharded RunCore calls;
// nil means in-process. Boxed because atomic.Pointer needs a concrete
// type.
type transportBox struct{ t shard.Transport }

var defaultShardTransport atomic.Pointer[transportBox]

// SetDefaultShardTransport selects the transport used by sharded
// RunCore calls (nil restores the in-process default).
func SetDefaultShardTransport(t shard.Transport) {
	if t == nil {
		defaultShardTransport.Store(nil)
		return
	}
	defaultShardTransport.Store(&transportBox{t: t})
}

// defaultBatchExpand, when true, turns on Options.BatchExpand (batched
// heap dequeues in the sequential HEAP algorithm) for every RunCore call:
// cpqbench -batch-expand plumbs through here.
var defaultBatchExpand atomic.Bool

// SetDefaultBatchExpand toggles batched heap dequeues for experiments run
// afterwards.
func SetDefaultBatchExpand(on bool) { defaultBatchExpand.Store(on) }

// defaultNodeCache is the decoded-node cache capacity (nodes per tree)
// Lab.Tree and buildParallelTree attach to freshly built trees; 0 (the
// default) builds trees without a cache, preserving the paper's exact
// disk-access accounting. cpqbench -nodecache and the CPQ_NODECACHE env
// knob plumb through here.
var defaultNodeCache atomic.Int64

// SetDefaultNodeCache sets the node-cache capacity attached to trees built
// afterwards (0 disables).
func SetDefaultNodeCache(nodes int) { defaultNodeCache.Store(int64(nodes)) }

// attachDefaultNodeCache attaches the default node cache and tracer (when
// set) to a freshly built tree.
func attachDefaultNodeCache(t *rtree.Tree) {
	if n := defaultNodeCache.Load(); n > 0 {
		t.SetNodeCache(rtree.NewNodeCache(int(n), 16))
	}
	if b := defaultTracer.Load(); b != nil {
		t.SetTracer(b.tr)
		t.Pool().SetTracer(b.tr)
	}
}

// defaultContext, when set, is threaded into every RunCore query:
// cpqbench -timeout (and the CPQ_TIMEOUT env knob) plumb a deadline
// context through here, so a wall-clock budget covers the whole
// experiment sweep and a stuck configuration cannot hang an unattended
// run. Boxed because atomic.Pointer needs a concrete type.
type ctxBox struct{ ctx context.Context }

var defaultContext atomic.Pointer[ctxBox]

// SetDefaultContext applies ctx to experiments run afterwards (nil
// restores the non-cancellable context.Background()).
func SetDefaultContext(ctx context.Context) {
	if ctx == nil {
		defaultContext.Store(nil)
		return
	}
	defaultContext.Store(&ctxBox{ctx: ctx})
}

// defaultCtx resolves the context for one measured query.
func defaultCtx() context.Context {
	if b := defaultContext.Load(); b != nil {
		return b.ctx
	}
	return context.Background()
}

// defaultTracer, when set, is attached to every RunCore query and to every
// tree built afterwards (cache/evict events): cpqbench -trace plumbs
// through here so all experiments of a run land in one JSONL stream.
// Boxed because atomic.Value needs a consistent concrete type.
type tracerBox struct{ tr obs.Tracer }

var defaultTracer atomic.Pointer[tracerBox]

// SetDefaultTracer attaches tr to experiments run afterwards (nil
// restores the free no-tracer default). Trees already built keep their
// previous tracer.
func SetDefaultTracer(tr obs.Tracer) {
	if tr == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(&tracerBox{tr: tr})
}

// defaultExplain, when true, attaches a fresh EXPLAIN capture to every
// RunCore query: cpqbench -explain plumbs through here. Each query's
// snapshot replaces the previous one in lastExplain, so after a sweep
// LastExplain returns the final query's full plan + execution breakdown.
var defaultExplain atomic.Bool

// lastExplain holds the most recent RunCore query's explain snapshot.
var lastExplain atomic.Pointer[explain.Explain]

// SetDefaultExplain toggles per-query EXPLAIN capture for experiments run
// afterwards.
func SetDefaultExplain(on bool) { defaultExplain.Store(on) }

// LastExplain returns the explain snapshot of the most recent RunCore
// query captured under SetDefaultExplain(true); nil if none ran.
func LastExplain() *explain.Explain { return lastExplain.Load() }

// defaultMetrics, when set, receives every RunCore query's cost report:
// cpqbench -metrics-addr plumbs through here.
var defaultMetrics atomic.Pointer[obs.EngineMetrics]

// SetDefaultMetrics routes the cost of experiments run afterwards into em
// (nil disables).
func SetDefaultMetrics(em *obs.EngineMetrics) { defaultMetrics.Store(em) }

// init wires the env knobs used by `ci.sh bench` to re-run the Go
// benchmarks under the pre-optimisation configuration
// (CPQ_LEAFSCAN=brute) or with the decoded-node cache attached
// (CPQ_NODECACHE=<nodes per tree>).
func init() {
	switch os.Getenv("CPQ_LEAFSCAN") {
	case "brute":
		SetDefaultLeafScan(core.LeafScanBrute)
	case "sweep":
		SetDefaultLeafScan(core.LeafScanSweep)
	case "grid":
		SetDefaultLeafScan(core.LeafScanGrid)
	case "auto":
		SetDefaultLeafScanAuto()
	}
	if v := os.Getenv("CPQ_NODECACHE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			SetDefaultNodeCache(n)
		}
	}
	if v := os.Getenv("CPQ_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			SetDefaultShards(n)
		}
	}
}

// Totals aggregates the cost of every RunCore / RunIncremental call since
// the last ResetTotals. cpqbench's -json mode snapshots it per experiment.
type Totals struct {
	Queries         int64   `json:"queries"`
	Accesses        int64   `json:"accesses"`
	NodePairs       int64   `json:"node_pairs"`
	PointPairs      int64   `json:"point_pairs"`
	GridCellsProbed int64   `json:"grid_cells_probed"`
	GridRebuckets   int64   `json:"grid_rebuckets"`
	HeapBatches     int64   `json:"heap_batches"`
	HeapBatchPairs  int64   `json:"heap_batch_pairs"`
	NodeCacheHits   int64   `json:"node_cache_hits"`
	NodeCacheMisses int64   `json:"node_cache_misses"`
	NodeCacheRatio  float64 `json:"node_cache_hit_ratio"`
}

var totQueries, totAccesses, totNodePairs, totPointPairs atomic.Int64
var totGridProbes, totGridRebuckets, totHeapBatches, totHeapBatchPairs atomic.Int64
var totCacheHits, totCacheMisses atomic.Int64

// ResetTotals zeroes the aggregate counters.
func ResetTotals() {
	totQueries.Store(0)
	totAccesses.Store(0)
	totNodePairs.Store(0)
	totPointPairs.Store(0)
	totGridProbes.Store(0)
	totGridRebuckets.Store(0)
	totHeapBatches.Store(0)
	totHeapBatchPairs.Store(0)
	totCacheHits.Store(0)
	totCacheMisses.Store(0)
}

// CurrentTotals snapshots the aggregate counters.
func CurrentTotals() Totals {
	t := Totals{
		Queries:         totQueries.Load(),
		Accesses:        totAccesses.Load(),
		NodePairs:       totNodePairs.Load(),
		PointPairs:      totPointPairs.Load(),
		GridCellsProbed: totGridProbes.Load(),
		GridRebuckets:   totGridRebuckets.Load(),
		HeapBatches:     totHeapBatches.Load(),
		HeapBatchPairs:  totHeapBatchPairs.Load(),
		NodeCacheHits:   totCacheHits.Load(),
		NodeCacheMisses: totCacheMisses.Load(),
	}
	if lookups := t.NodeCacheHits + t.NodeCacheMisses; lookups > 0 {
		t.NodeCacheRatio = float64(t.NodeCacheHits) / float64(lookups)
	}
	return t
}

// RunCore executes one K-CPQ with one of the paper's algorithms under the
// given buffer size and returns its statistics.
func RunCore(ta, tb *rtree.Tree, k int, opts core.Options, bufferPages int) (core.Stats, error) {
	prepare(ta, tb, bufferPages)
	if opts.Parallelism == 0 {
		opts.Parallelism = int(defaultParallelism.Load())
	}
	switch l := defaultLeafScan.Load(); {
	case l > 0:
		opts.LeafScan = core.LeafScan(l - 1)
	case l == leafScanAuto:
		if ls, _, err := core.AdviseLeafScan(ta, tb, k); err == nil {
			opts.LeafScan = ls
		}
	}
	if defaultBatchExpand.Load() {
		opts.BatchExpand = true
	}
	if opts.Tracer == nil {
		if b := defaultTracer.Load(); b != nil {
			opts.Tracer = b.tr
		}
	}
	if opts.Metrics == nil {
		opts.Metrics = defaultMetrics.Load()
	}
	var ec *explain.Capture
	if defaultExplain.Load() {
		ec = explain.New(opts.Tracer)
		opts.Tracer = ec
	}
	var stats core.Stats
	var err error
	if t := int(defaultShards.Load()); t > 1 {
		stats, err = runShardedQuery(ta, tb, k, opts, t, ec)
	} else {
		_, stats, err = core.KClosestPairsContext(defaultCtx(), ta, tb, k, opts)
	}
	if ec != nil {
		lastExplain.Store(ec.Snapshot())
	}
	if err == nil {
		totQueries.Add(1)
		totAccesses.Add(stats.Accesses())
		totNodePairs.Add(stats.NodePairsProcessed)
		totPointPairs.Add(stats.PointPairsCompared)
		totGridProbes.Add(stats.GridCellsProbed)
		totGridRebuckets.Add(stats.GridRebuckets)
		totHeapBatches.Add(stats.HeapBatches)
		totHeapBatchPairs.Add(stats.HeapBatchPairs)
		totCacheHits.Add(stats.NodeCacheHits)
		totCacheMisses.Add(stats.NodeCacheMisses)
	}
	return stats, err
}

// runShardedQuery executes one RunCore query through the scatter-gather
// executor: drain both trees, partition into tiles (the shard trees
// inherit the left tree's geometry), join the tile pairs under the
// broadcast bound. The I/O counters come from the shard pools.
func runShardedQuery(ta, tb *rtree.Tree, k int, opts core.Options, tiles int, ec *explain.Capture) (core.Stats, error) {
	ctx := defaultCtx()
	itemsA, err := drainItems(ta)
	if err != nil {
		return core.Stats{}, err
	}
	itemsB, err := drainItems(tb)
	if err != nil {
		return core.Stats{}, err
	}
	set, err := shard.PartitionContext(ctx, itemsA, itemsB, shard.Config{Tiles: tiles, Tree: ta.Config(), Capture: ec})
	if err != nil {
		return core.Stats{}, err
	}
	ex := shard.Executor{Set: set, Capture: ec}
	if b := defaultShardTransport.Load(); b != nil {
		ex.Transport = b.t
	}
	if ec != nil {
		tr := ex.Transport
		if tr == nil {
			tr = shard.InProc{}
		}
		ec.SetPlanShards(tiles, tr.String(), set.TileBounds())
	}
	res, err := ex.RunContext(ctx, k, opts)
	if err != nil {
		return core.Stats{}, errors.Join(err, set.Close())
	}
	return res.Stats, set.Close()
}

// drainItems reads every item of a tree for re-partitioning.
func drainItems(t *rtree.Tree) ([]rtree.Item, error) {
	out := make([]rtree.Item, 0, t.Len())
	err := t.All(func(it rtree.Item) bool {
		out = append(out, it)
		return true
	})
	return out, err
}

// RunIncremental executes one K-bounded incremental distance join under
// the given buffer size and returns its statistics.
func RunIncremental(ta, tb *rtree.Tree, k int, opts incremental.Options, bufferPages int) (incremental.Stats, error) {
	prepare(ta, tb, bufferPages)
	_, stats, err := incremental.GetK(ta, tb, k, opts)
	if err == nil {
		totQueries.Add(1)
		totAccesses.Add(stats.Accesses())
	}
	return stats, err
}

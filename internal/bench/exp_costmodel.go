package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/costmodel"
)

// runCostModel validates the analytical cost model of internal/costmodel
// (the paper's future-work item (b)) against measured HEAP cost on uniform
// workloads across the overlap and K axes.
func runCostModel(l *Lab, w io.Writer) error {
	t := newTable(
		"Cost model: predicted vs measured K-CPQ accesses (HEAP, uniform data, B=0)",
		"N/N", "overlap", "K", "predicted", "measured", "ratio")
	for _, cfg := range []struct {
		n       int
		overlap float64
		k       int
	}{
		{20000, 1.0, 1},
		{20000, 1.0, 100},
		{20000, 1.0, 10000},
		{20000, 0.5, 1},
		{20000, 0.5, 100},
		{20000, 0.25, 1},
		{40000, 1.0, 1},
		{40000, 0.5, 100},
		{40000, 0.12, 1},
		{60000, 1.0, 1000},
	} {
		n := l.ScaledN(cfg.n)
		ta, tb, err := l.Pair(
			DataSpec{Kind: UniformData, N: cfg.n, Seed: 71},
			DataSpec{Kind: UniformData, N: cfg.n, Seed: 72},
			cfg.overlap)
		if err != nil {
			return err
		}
		stats, err := RunCore(ta, tb, cfg.k, core.DefaultOptions(core.Heap), 0)
		if err != nil {
			return err
		}
		pred, err := costmodel.Predict(costmodel.Params{
			NA: n, NB: n, Overlap: cfg.overlap, K: cfg.k,
		})
		if err != nil {
			return err
		}
		t.addRow(
			fmt.Sprintf("%d/%d", n, n),
			overlapLabel(cfg.overlap),
			fmt.Sprintf("%d", cfg.k),
			fmt.Sprintf("%.0f", pred.Accesses),
			fmt.Sprintf("%d", stats.Accesses()),
			fmt.Sprintf("%.2f", pred.Accesses/float64(stats.Accesses())))
	}
	return t.write(w)
}

package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/storage"
)

// This file is the sharded scatter-gather gate behind BENCH_PR9.json: a
// clustered 100,000 x 100,000 K-CPQ run once monolithically (sequential
// HEAP, the PR 6 baseline configuration) and once through the
// internal/shard executor at T=8 tiles. It is the regression gate for
// the sharded path: the experiment fails if the sharded distances or
// tie order deviate from the monolithic answer, if tile-level pruning
// eliminates less than 30% of the planned shard pairs, if the sharded
// wall clock exceeds the monolithic baseline, or if the shard joins
// together process more node pairs than the monolithic join (the
// tile-pruning envelope).

// PR9Run is one measured configuration of the comparison.
type PR9Run struct {
	Label     string  `json:"label"`
	Sharded   bool    `json:"sharded"`
	Tiles     int     `json:"tiles"`
	Workers   int     `json:"workers"`
	WallMS    float64 `json:"wall_ms"`
	Accesses  int64   `json:"accesses"`
	NodePairs int64   `json:"node_pairs"`
}

// PR9Report is the machine-readable record of one pr9 experiment run
// (cpqbench -pr9 writes it to BENCH_PR9.json).
type PR9Report struct {
	N          int     `json:"n"`
	Scale      float64 `json:"scale"`
	K          int     `json:"k"`
	BufferB    int     `json:"buffer_pages"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Tiles      int     `json:"tiles"`
	Transport  string  `json:"transport"`
	Baseline   PR9Run  `json:"baseline"`
	Sharded    PR9Run  `json:"sharded"`
	// PartitionMS is the STR re-partitioning cost (both sets, tree
	// builds included), kept apart from the join wall clock the gate
	// compares: the monolithic baseline's tree builds are likewise
	// excluded from its wall time.
	PartitionMS float64 `json:"partition_ms"`
	// PlannedPairs / PrunedPairs are the executor's shard-pair counts;
	// PruneFraction = pruned / planned is gated at >= 0.30.
	PlannedPairs  int     `json:"planned_pairs"`
	PrunedPairs   int     `json:"pruned_pairs"`
	PruneFraction float64 `json:"prune_fraction"`
	// WallRatio is sharded / baseline join wall clock (gated at <= 1).
	WallRatio float64 `json:"wall_ratio"`
	// FinalBound is the broadcast bound (a distance) at the end of the
	// sharded run.
	FinalBound float64 `json:"final_bound"`
	// Shards holds the executor's per-shard rows: tile MBR, cardinalities,
	// planned/pruned pair counts and the local bound trajectory.
	Shards []shard.ShardReport `json:"shards"`
}

var pr9Last struct {
	mu     sync.Mutex
	report *PR9Report
}

// PR9LastReport returns the report of the most recent "pr9" experiment
// run, nil if it has not run.
func PR9LastReport() *PR9Report {
	pr9Last.mu.Lock()
	defer pr9Last.mu.Unlock()
	return pr9Last.report
}

// buildClusteredItems generates one clustered point set and its item
// slice (record ids 0..n-1).
func buildClusteredItems(seed int64, n int) []rtree.Item {
	pts := dataset.Clustered(seed, n)
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Ref: int64(i)}
	}
	return items
}

// buildMonoTree bulk loads one monolithic tree over items on a sharded
// pool, no node cache (the gate compares the paper's exact accounting).
func buildMonoTree(cfg rtree.Config, items []rtree.Item) (*rtree.Tree, error) {
	pool := storage.NewShardedBufferPool(storage.NewMemFile(cfg.PageSize), 512, 16, storage.LRU)
	tr, err := rtree.New(pool, cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.BulkLoad(items, 0.7); err != nil {
		return nil, err
	}
	return tr, nil
}

// runPR9 is the "pr9" experiment.
func runPR9(l *Lab, w io.Writer) error {
	cfg := l.Config
	if cfg.PageSize == 0 {
		cfg = rtree.DefaultConfig()
	}
	n := l.ScaledN(100000)
	const (
		k      = 100
		buffer = 512
		tiles  = 8
		reps   = 3
	)
	workers := runtime.GOMAXPROCS(0)
	opts := core.DefaultOptions(core.Heap)

	itemsA := buildClusteredItems(93, n)
	itemsB := buildClusteredItems(94, n)
	ta, err := buildMonoTree(cfg, itemsA)
	if err != nil {
		return err
	}
	tb, err := buildMonoTree(cfg, itemsB)
	if err != nil {
		return err
	}

	// Monolithic baseline: sequential HEAP, best of reps cold runs.
	var basePairs []core.Pair
	var baseStats core.Stats
	baseBest := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		prepare(ta, tb, buffer)
		start := time.Now()
		pairs, s, err := core.KClosestPairs(ta, tb, k, opts)
		if err != nil {
			return err
		}
		if wall := time.Since(start); wall < baseBest {
			baseBest = wall
		}
		basePairs, baseStats = pairs, s
	}

	// Sharded run: partition once (timed separately), then best of reps
	// executor runs at T tiles.
	partStart := time.Now()
	set, err := shard.PartitionContext(defaultCtx(), itemsA, itemsB, shard.Config{Tiles: tiles, Tree: cfg})
	if err != nil {
		return err
	}
	defer set.Close()
	partWall := time.Since(partStart)

	ex := shard.Executor{Set: set, Workers: workers}
	var res shard.Result
	shardBest := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err = ex.RunContext(defaultCtx(), k, opts)
		if err != nil {
			return err
		}
		if wall := time.Since(start); wall < shardBest {
			shardBest = wall
		}
	}

	// Equivalence gate: bit-identical distances and tie order.
	if len(res.Pairs) != len(basePairs) {
		return fmt.Errorf("pr9: sharded run returned %d pairs, monolithic %d", len(res.Pairs), len(basePairs))
	}
	for i := range basePairs {
		b, g := basePairs[i], res.Pairs[i]
		if math.Float64bits(b.Dist) != math.Float64bits(g.Dist) {
			return fmt.Errorf("pr9: pair %d distance %g deviates from monolithic %g", i, g.Dist, b.Dist)
		}
		if b.RefP != g.RefP || b.RefQ != g.RefQ {
			return fmt.Errorf("pr9: pair %d tie order (%d,%d) deviates from monolithic (%d,%d)",
				i, g.RefP, g.RefQ, b.RefP, b.RefQ)
		}
	}

	rep := &PR9Report{
		N:          n,
		Scale:      l.scale(),
		K:          k,
		BufferB:    buffer,
		GOMAXPROCS: workers,
		Tiles:      tiles,
		Transport:  res.Transport,
		Baseline: PR9Run{
			Label:   "monolithic HEAP",
			Tiles:   1,
			Workers: 1,
			WallMS:  float64(baseBest) / float64(time.Millisecond),

			Accesses:  baseStats.Accesses(),
			NodePairs: baseStats.NodePairsProcessed,
		},
		Sharded: PR9Run{
			Label:     fmt.Sprintf("sharded HEAP T=%d", tiles),
			Sharded:   true,
			Tiles:     tiles,
			Workers:   workers,
			WallMS:    float64(shardBest) / float64(time.Millisecond),
			Accesses:  res.Stats.Accesses(),
			NodePairs: res.Stats.NodePairsProcessed,
		},
		PartitionMS:  float64(partWall) / float64(time.Millisecond),
		PlannedPairs: res.PlannedPairs,
		PrunedPairs:  res.PrunedPairs,
		FinalBound:   res.FinalBound,
		Shards:       res.Shards,
	}
	if rep.PlannedPairs > 0 {
		rep.PruneFraction = float64(rep.PrunedPairs) / float64(rep.PlannedPairs)
	}
	if rep.Baseline.WallMS > 0 {
		rep.WallRatio = rep.Sharded.WallMS / rep.Baseline.WallMS
	}

	t := newTable(
		fmt.Sprintf("Ablation: sharded scatter-gather vs monolithic join (clustered %d/%d bulk-loaded, K=%d, B=%d, HEAP)", n, n, k, buffer),
		"configuration", "tiles", "wkr", "wall", "accesses", "node pairs", "planned", "pruned")
	for _, r := range []struct {
		run             PR9Run
		planned, pruned string
	}{
		{rep.Baseline, "-", "-"},
		{rep.Sharded, fmt.Sprintf("%d", rep.PlannedPairs), fmt.Sprintf("%d", rep.PrunedPairs)},
	} {
		t.addRow(r.run.Label, fmt.Sprintf("%d", r.run.Tiles), fmt.Sprintf("%d", r.run.Workers),
			(time.Duration(r.run.WallMS * float64(time.Millisecond))).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.run.Accesses),
			fmt.Sprintf("%d", r.run.NodePairs),
			r.planned, r.pruned)
	}
	if err := t.write(w); err != nil {
		return err
	}

	// The regression gates of `ci.sh bench`. The wall-clock and pruning
	// envelopes only mean something once the workload amortizes the
	// executor's fixed per-tile costs; below gateMinN (the -quick scale)
	// they are reported, not enforced — the equivalence gate above always
	// runs.
	const gateMinN = 10000
	if n < gateMinN {
		if _, err := fmt.Fprintf(w,
			"perf gates reported only: n=%d is below the gating scale %d.\n", n, gateMinN); err != nil {
			return err
		}
	} else {
		if rep.PruneFraction < 0.30 {
			return fmt.Errorf("pr9: tile-level pruning eliminated only %.0f%% of %d planned shard pairs (want >= 30%%)",
				rep.PruneFraction*100, rep.PlannedPairs)
		}
		if rep.WallRatio > 1 {
			return fmt.Errorf("pr9: sharded T=%d wall clock %.1fms exceeds the monolithic baseline %.1fms",
				tiles, rep.Sharded.WallMS, rep.Baseline.WallMS)
		}
		if rep.Sharded.NodePairs > rep.Baseline.NodePairs {
			return fmt.Errorf("pr9: shard joins processed %d node pairs, above the monolithic envelope %d",
				rep.Sharded.NodePairs, rep.Baseline.NodePairs)
		}
	}

	pr9Last.mu.Lock()
	pr9Last.report = rep
	pr9Last.mu.Unlock()

	_, err = fmt.Fprintf(w,
		"sharded/monolithic wall ratio %.2f (partition %.1fms apart); shard-pair pruning %d/%d (%.0f%%); final bound %.3g.\n\n",
		rep.WallRatio, rep.PartitionMS, rep.PrunedPairs, rep.PlannedPairs, rep.PruneFraction*100, rep.FinalBound)
	return err
}

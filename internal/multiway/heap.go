package multiway

import (
	"sort"

	"repro/internal/geom"
)

// tupleHeap is a bounded max-heap of result tuples ordered by combined
// distance: the multi-way analogue of the paper's K-heap.
type tupleHeap struct {
	items []heapTuple
}

type heapTuple struct {
	dist   float64
	points []geom.Point
	refs   []int64
}

func (h *tupleHeap) len() int { return len(h.items) }

// top returns the largest stored distance (call only when non-empty).
func (h *tupleHeap) top() float64 { return h.items[0].dist }

// offer inserts a candidate tuple, keeping at most k and discarding the
// farthest. The point and ref slices are copied.
func (h *tupleHeap) offer(k int, dist float64, pts []geom.Point, refs []int64) {
	if len(h.items) >= k && dist >= h.items[0].dist {
		return
	}
	ht := heapTuple{
		dist:   dist,
		points: append([]geom.Point(nil), pts...),
		refs:   append([]int64(nil), refs...),
	}
	if len(h.items) < k {
		h.items = append(h.items, ht)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if h.items[parent].dist >= h.items[i].dist {
				break
			}
			h.items[parent], h.items[i] = h.items[i], h.items[parent]
			i = parent
		}
		return
	}
	h.items[0] = ht
	n := len(h.items)
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < n && h.items[l].dist > h.items[largest].dist {
			largest = l
		}
		if r := 2*i + 2; r < n && h.items[r].dist > h.items[largest].dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// sortedTuples returns the stored tuples in ascending distance order.
func (h *tupleHeap) sortedTuples(geom.Metric) []Tuple {
	out := make([]Tuple, len(h.items))
	for i, ht := range h.items {
		out[i] = Tuple{Points: ht.points, Refs: ht.refs, Dist: ht.dist}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		for t := range out[i].Refs {
			if out[i].Refs[t] != out[j].Refs[t] {
				return out[i].Refs[t] < out[j].Refs[t]
			}
		}
		return false
	})
	return out
}

// searchHeap is a binary min-heap of node tuples keyed by lower bound.
type searchHeap struct {
	items []nodeTuple
}

func (h *searchHeap) len() int { return len(h.items) }

func (h *searchHeap) push(t nodeTuple) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[i].bound >= h.items[parent].bound {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *searchHeap) pop() nodeTuple {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nodeTuple{} // release slice references
	h.items = h.items[:last]
	n := len(h.items)
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.items[l].bound < h.items[smallest].bound {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.items[r].bound < h.items[smallest].bound {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

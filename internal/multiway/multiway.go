// Package multiway implements multi-way closest pair queries — the
// paper's future-work item (a) (Section 6): given D >= 2 point sets, each
// in its own R*-tree, find the K tuples (p_1, ..., p_D), one point per
// set, with the smallest combined distance, extending the multi-way
// spatial join formulations of Mamoulis & Papadias (SIGMOD 1999) and
// Papadias, Mamoulis & Theodoridis (PODS 1999) from intersection joins to
// distance joins.
//
// Two query patterns are supported: a Chain scores a tuple by the sum of
// the distances along consecutive sets (p_1-p_2, ..., p_{D-1}-p_D); a Ring
// additionally closes the loop with dist(p_D, p_1). The traversal is a
// best-first search over node tuples, keyed by the sum of the pairwise
// MINMINDIST lower bounds along the pattern edges; one node of the tuple
// (the one at the highest level) is expanded per step, which keeps the
// queue polynomial and handles trees of different heights naturally.
package multiway

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Pattern selects how a tuple's combined distance is assembled.
type Pattern int

const (
	// Chain scores sum(dist(p_i, p_{i+1})) for i = 1..D-1.
	Chain Pattern = iota
	// Ring additionally adds dist(p_D, p_1).
	Ring
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Chain:
		return "chain"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Options configures a multi-way query.
type Options struct {
	// Pattern is the query graph shape (default Chain).
	Pattern Pattern
	// Metric is the Minkowski metric for every edge (default Euclidean).
	Metric geom.Metric
}

// Tuple is one result: a point and record id per data set plus the
// combined distance under the query pattern.
type Tuple struct {
	Points []geom.Point
	Refs   []int64
	Dist   float64
}

// Stats reports the cost of a multi-way query.
type Stats struct {
	// IO holds the buffer counter delta of each tree, in input order.
	IO []storage.IOStats
	// TuplesProcessed counts node tuples expanded.
	TuplesProcessed int64
	// TuplesPruned counts generated node tuples discarded by the bound.
	TuplesPruned int64
	// CombinationsScored counts point tuples evaluated at the leaf level.
	CombinationsScored int64
	// MaxQueueSize is the tuple heap's high-water mark.
	MaxQueueSize int
}

// Accesses returns the total disk accesses over all trees.
func (s Stats) Accesses() int64 {
	var total int64
	for _, io := range s.IO {
		total += io.Reads
	}
	return total
}

// KClosestTuples finds the K closest tuples across the given trees
// (one point from each). All trees must be non-empty, and at least two
// are required. Results arrive in ascending combined distance.
func KClosestTuples(trees []*rtree.Tree, k int, opts Options) ([]Tuple, Stats, error) {
	if len(trees) < 2 {
		return nil, Stats{}, fmt.Errorf("multiway: need at least 2 trees, got %d", len(trees))
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("multiway: k must be positive, got %d", k)
	}
	switch opts.Pattern {
	case Chain, Ring:
	default:
		return nil, Stats{}, fmt.Errorf("multiway: unknown pattern %d", int(opts.Pattern))
	}
	for i, t := range trees {
		if t.Len() == 0 {
			return nil, Stats{}, fmt.Errorf("multiway: tree %d is empty", i)
		}
	}
	q := &query{
		trees: trees,
		k:     k,
		opts:  opts,
		kbest: &tupleHeap{},
	}
	q.starts = make([]storage.IOStats, len(trees))
	for i, t := range trees {
		q.starts[i] = t.Pool().Stats()
	}
	if err := q.run(); err != nil {
		return nil, Stats{}, err
	}
	q.stats.IO = make([]storage.IOStats, len(trees))
	seen := map[*storage.BufferPool]bool{}
	for i, t := range trees {
		if seen[t.Pool()] {
			continue // shared pool: count the delta once
		}
		seen[t.Pool()] = true
		q.stats.IO[i] = t.Pool().Stats().Sub(q.starts[i])
	}
	return q.kbest.sortedTuples(q.opts.Metric), q.stats, nil
}

// query carries one multi-way search.
type query struct {
	trees  []*rtree.Tree
	k      int
	opts   Options
	kbest  *tupleHeap
	stats  Stats
	starts []storage.IOStats
}

// nodeTuple is a search state: one node (or, at level 0 with leafEntry >=
// 0, a concrete point) per tree. bound lower-bounds the combined distance
// of every point tuple underneath.
type nodeTuple struct {
	bound  float64
	pages  []storage.PageID
	rects  []geom.Rect
	levels []int
}

// edges enumerates the pattern's edge list as index pairs.
func (q *query) edges() [][2]int {
	d := len(q.trees)
	out := make([][2]int, 0, d)
	for i := 0; i+1 < d; i++ {
		out = append(out, [2]int{i, i + 1})
	}
	if q.opts.Pattern == Ring && d > 2 {
		out = append(out, [2]int{d - 1, 0})
	}
	return out
}

// boundOf computes the tuple's lower bound: the sum of MINMINDIST along
// the pattern edges (distances, not keys: distances add, keys do not).
func (q *query) boundOf(rects []geom.Rect) float64 {
	var sum float64
	m := q.opts.Metric
	for _, e := range q.edges() {
		sum += m.KeyToDist(m.MinMinKey(rects[e[0]], rects[e[1]]))
	}
	return sum
}

// threshold is the current pruning bound: the K-th best tuple distance.
func (q *query) threshold() float64 {
	if q.kbest.len() < q.k {
		return math.Inf(1)
	}
	return q.kbest.top()
}

func (q *query) run() error {
	root := nodeTuple{
		pages:  make([]storage.PageID, len(q.trees)),
		rects:  make([]geom.Rect, len(q.trees)),
		levels: make([]int, len(q.trees)),
	}
	for i, t := range q.trees {
		b, err := t.Bounds()
		if err != nil {
			return err
		}
		root.pages[i] = t.RootID()
		root.rects[i] = b
		root.levels[i] = t.Height() - 1
	}
	root.bound = q.boundOf(root.rects)

	h := &searchHeap{}
	h.push(root)
	for h.len() > 0 {
		if h.len() > q.stats.MaxQueueSize {
			q.stats.MaxQueueSize = h.len()
		}
		cur := h.pop()
		if cur.bound > q.threshold() {
			break // heap is ordered by bound: nothing better remains
		}
		if err := q.process(cur, h); err != nil {
			return err
		}
	}
	return nil
}

// process expands one node tuple: if every component is a leaf, its point
// combinations are scored; otherwise the highest-level component is opened
// and one child tuple per entry is enqueued.
func (q *query) process(cur nodeTuple, h *searchHeap) error {
	expand := -1
	for i, lvl := range cur.levels {
		if lvl > 0 && (expand == -1 || lvl > cur.levels[expand]) {
			expand = i
		}
	}
	q.stats.TuplesProcessed++

	if expand == -1 {
		return q.scanLeaves(cur)
	}
	n, err := q.trees[expand].ReadNode(cur.pages[expand])
	if err != nil {
		return err
	}
	T := q.threshold()
	for i := range n.Entries {
		child := nodeTuple{
			pages:  append([]storage.PageID(nil), cur.pages...),
			rects:  append([]geom.Rect(nil), cur.rects...),
			levels: append([]int(nil), cur.levels...),
		}
		child.pages[expand] = n.Entries[i].Child()
		child.rects[expand] = n.Entries[i].Rect
		child.levels[expand] = n.Level - 1
		child.bound = q.boundOf(child.rects)
		if child.bound > T {
			q.stats.TuplesPruned++
			continue
		}
		h.push(child)
	}
	return nil
}

// scanLeaves enumerates the cross product of the leaf entries, pruning
// partial tuples whose accumulated chain distance already exceeds the
// threshold.
func (q *query) scanLeaves(cur nodeTuple) error {
	nodes := make([]*rtree.Node, len(q.trees))
	for i, t := range q.trees {
		n, err := t.ReadNode(cur.pages[i])
		if err != nil {
			return err
		}
		nodes[i] = n
	}
	d := len(nodes)
	pts := make([]geom.Point, d)
	refs := make([]int64, d)
	m := q.opts.Metric
	ring := q.opts.Pattern == Ring && d > 2

	var rec func(i int, partial float64)
	rec = func(i int, partial float64) {
		if partial > q.threshold() {
			return
		}
		if i == d {
			total := partial
			if ring {
				total += m.Dist(pts[d-1], pts[0])
			}
			q.stats.CombinationsScored++
			if total <= q.threshold() {
				q.kbest.offer(q.k, total, pts, refs)
			}
			return
		}
		for _, e := range nodes[i].Entries {
			pts[i] = e.Rect.Min
			refs[i] = e.Ref
			next := partial
			if i > 0 {
				next += m.Dist(pts[i-1], pts[i])
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	return nil
}

// BruteForce computes the K closest tuples over in-memory point sets by
// full enumeration: the correctness oracle for tests. Refs are the point
// indices within each set.
func BruteForce(sets [][]geom.Point, k int, opts Options) ([]Tuple, error) {
	if len(sets) < 2 {
		return nil, errors.New("multiway: need at least 2 sets")
	}
	if k <= 0 {
		return nil, errors.New("multiway: k must be positive")
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil, errors.New("multiway: empty set")
		}
	}
	d := len(sets)
	m := opts.Metric
	ring := opts.Pattern == Ring && d > 2
	h := &tupleHeap{}
	pts := make([]geom.Point, d)
	refs := make([]int64, d)
	var rec func(i int, partial float64)
	rec = func(i int, partial float64) {
		if i == d {
			total := partial
			if ring {
				total += m.Dist(pts[d-1], pts[0])
			}
			h.offer(k, total, pts, refs)
			return
		}
		for t, p := range sets[i] {
			pts[i] = p
			refs[i] = int64(t)
			next := partial
			if i > 0 {
				next += m.Dist(pts[i-1], pts[i])
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	return h.sortedTuples(m), nil
}

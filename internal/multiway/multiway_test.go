package multiway

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func buildTree(t testing.TB, pts []geom.Point, pageSize int) *rtree.Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemFile(pageSize), 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func uniformPoints(seed int64, n int, x0 float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func checkTuplesMatch(t *testing.T, got, want []Tuple, sets [][]geom.Point, opts Options) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("tuple %d: dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
		// Refs must point to the reported points, and the reported distance
		// must be the true pattern distance.
		var total float64
		for d := range got[i].Points {
			if !sets[d][got[i].Refs[d]].Equal(got[i].Points[d]) {
				t.Fatalf("tuple %d set %d: ref mismatch", i, d)
			}
			if d > 0 {
				total += opts.Metric.Dist(got[i].Points[d-1], got[i].Points[d])
			}
		}
		if opts.Pattern == Ring && len(got[i].Points) > 2 {
			total += opts.Metric.Dist(got[i].Points[len(got[i].Points)-1], got[i].Points[0])
		}
		if math.Abs(total-got[i].Dist) > 1e-9 {
			t.Fatalf("tuple %d: inconsistent distance %.12g vs %.12g", i, got[i].Dist, total)
		}
	}
}

func TestThreeWayChainMatchesBruteForce(t *testing.T) {
	sets := [][]geom.Point{
		uniformPoints(1, 60, 0),
		uniformPoints(2, 50, 0.3),
		uniformPoints(3, 40, 0.6),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 256)
	}
	for _, k := range []int{1, 5, 20} {
		opts := Options{Pattern: Chain}
		got, stats, err := KClosestTuples(trees, k, opts)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want, err := BruteForce(sets, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkTuplesMatch(t, got, want, sets, opts)
		if stats.Accesses() <= 0 {
			t.Errorf("k=%d: no accesses recorded", k)
		}
	}
}

func TestRingPattern(t *testing.T) {
	sets := [][]geom.Point{
		uniformPoints(4, 40, 0),
		uniformPoints(5, 40, 0.2),
		uniformPoints(6, 40, 0.4),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 256)
	}
	opts := Options{Pattern: Ring}
	got, _, err := KClosestTuples(trees, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(sets, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTuplesMatch(t, got, want, sets, opts)
	// A ring score differs from the chain score on the same data.
	chain, _, err := KClosestTuples(trees, 1, Options{Pattern: Chain})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chain[0].Dist-got[0].Dist) < 1e-12 {
		t.Error("ring and chain scores should differ on random data")
	}
}

func TestTwoWayMatchesPairwise(t *testing.T) {
	// With D = 2 a chain multi-way query degenerates to the ordinary K-CPQ.
	ps := uniformPoints(7, 120, 0)
	qs := uniformPoints(8, 100, 0.5)
	trees := []*rtree.Tree{buildTree(t, ps, 256), buildTree(t, qs, 256)}
	got, _, err := KClosestTuples(trees, 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce([][]geom.Point{ps, qs}, 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkTuplesMatch(t, got, want, [][]geom.Point{ps, qs}, Options{})
}

func TestFourWayChain(t *testing.T) {
	sets := [][]geom.Point{
		uniformPoints(9, 25, 0),
		uniformPoints(10, 25, 0.25),
		uniformPoints(11, 25, 0.5),
		uniformPoints(12, 25, 0.75),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 256)
	}
	opts := Options{Pattern: Chain}
	got, _, err := KClosestTuples(trees, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(sets, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTuplesMatch(t, got, want, sets, opts)
}

func TestMultiwayDifferentHeights(t *testing.T) {
	sets := [][]geom.Point{
		uniformPoints(13, 15, 0),   // tiny tree
		uniformPoints(14, 2000, 0), // tall tree
		uniformPoints(15, 200, 0),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 256)
	}
	opts := Options{Pattern: Chain}
	got, _, err := KClosestTuples(trees, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(sets, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTuplesMatch(t, got, want, sets, opts)
}

func TestMultiwayUnderL1(t *testing.T) {
	sets := [][]geom.Point{
		uniformPoints(16, 50, 0),
		uniformPoints(17, 50, 0.3),
		uniformPoints(18, 50, 0.6),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 256)
	}
	opts := Options{Pattern: Chain, Metric: geom.L1()}
	got, _, err := KClosestTuples(trees, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(sets, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTuplesMatch(t, got, want, sets, opts)
}

func TestMultiwayErrors(t *testing.T) {
	tr := buildTree(t, uniformPoints(19, 10, 0), 256)
	empty := buildTree(t, nil, 256)
	if _, _, err := KClosestTuples([]*rtree.Tree{tr}, 1, Options{}); err == nil {
		t.Error("single tree must fail")
	}
	if _, _, err := KClosestTuples([]*rtree.Tree{tr, tr}, 0, Options{}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := KClosestTuples([]*rtree.Tree{tr, empty}, 1, Options{}); err == nil {
		t.Error("empty tree must fail")
	}
	if _, _, err := KClosestTuples([]*rtree.Tree{tr, tr}, 1, Options{Pattern: Pattern(7)}); err == nil {
		t.Error("bad pattern must fail")
	}
	if _, err := BruteForce(nil, 1, Options{}); err == nil {
		t.Error("brute force with no sets must fail")
	}
}

func TestMultiwayPrunes(t *testing.T) {
	// On well-separated clusters the search must not touch every tuple.
	sets := [][]geom.Point{
		uniformPoints(20, 1000, 0),
		uniformPoints(21, 1000, 0),
		uniformPoints(22, 1000, 0),
	}
	trees := make([]*rtree.Tree, len(sets))
	for i, s := range sets {
		trees[i] = buildTree(t, s, 1024)
	}
	_, stats, err := KClosestTuples(trees, 1, Options{Pattern: Chain})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CombinationsScored >= 1000*1000 {
		t.Errorf("scored %d combinations; pruning ineffective", stats.CombinationsScored)
	}
	if stats.TuplesPruned == 0 {
		t.Error("no tuples pruned")
	}
}

package costmodel_test

import (
	"math"
	"testing"

	"repro/internal/core"
	. "repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func TestTreeShape(t *testing.T) {
	levels := TreeShape(20000, 14.7)
	if len(levels) != 4 {
		t.Fatalf("20K points: %d levels, want 4 (paper h=4)", len(levels))
	}
	levels = TreeShape(80000, 14.7)
	if len(levels) != 5 {
		t.Fatalf("80K points: %d levels, want 5 (paper h=5)", len(levels))
	}
	// Monotone: counts shrink, sides grow, root is one node of side 1.
	for i := 1; i < len(levels); i++ {
		if levels[i].Count > levels[i-1].Count {
			t.Fatal("level counts must shrink upwards")
		}
		if levels[i].Side < levels[i-1].Side {
			t.Fatal("node sides must grow upwards")
		}
	}
	root := levels[len(levels)-1]
	if root.Count != 1 || root.Side != 1 {
		t.Fatalf("root level = %+v", root)
	}
	if TreeShape(0, 14.7) != nil {
		t.Fatal("no shape for empty tree")
	}
}

func TestAxisProb(t *testing.T) {
	// Identical workspaces, generous c: certain.
	if got := AxisProb(0, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("AxisProb(0,2) = %g", got)
	}
	// c = 0: zero.
	if got := AxisProb(0, 0); got > 1e-9 {
		t.Errorf("AxisProb(0,0) = %g", got)
	}
	// Identical workspaces: P(|x-y|<=c) = 2c - c^2 for c in [0,1].
	for _, c := range []float64{0.1, 0.3, 0.7} {
		want := 2*c - c*c
		if got := AxisProb(0, c); math.Abs(got-want) > 1e-5 {
			t.Errorf("AxisProb(0,%g) = %g, want %g", c, got, want)
		}
	}
	// Disjoint workspaces shifted by 1: P = c^2/2 for small c (corner
	// triangle of the unit square).
	for _, c := range []float64{0.05, 0.2} {
		want := c * c / 2
		if got := AxisProb(1, c); math.Abs(got-want) > 1e-5 {
			t.Errorf("AxisProb(1,%g) = %g, want %g", c, got, want)
		}
	}
	// Monotone in c, decreasing in shift.
	if AxisProb(0.5, 0.1) > AxisProb(0.5, 0.2) {
		t.Error("axisProb must be monotone in c")
	}
	if AxisProb(0.2, 0.1) < AxisProb(0.8, 0.1) {
		t.Error("axisProb must decrease with shift")
	}
}

func TestExpectedCPDistanceScales(t *testing.T) {
	d1 := ExpectedCPDistance(10000, 10000, 1, 1)
	d2 := ExpectedCPDistance(40000, 40000, 1, 1)
	if d2 >= d1 {
		t.Error("denser data must have a smaller CP distance")
	}
	dk := ExpectedCPDistance(10000, 10000, 1, 100)
	if dk <= d1 {
		t.Error("larger K must have a larger K-th distance")
	}
	dHalf := ExpectedCPDistance(10000, 10000, 0.5, 1)
	if dHalf <= d1 {
		t.Error("smaller overlap must enlarge the expected CP distance")
	}
}

func TestPredictValidation(t *testing.T) {
	bad := []Params{
		{NA: 0, NB: 10, Overlap: 1, K: 1},
		{NA: 10, NB: 10, Overlap: -0.1, K: 1},
		{NA: 10, NB: 10, Overlap: 2, K: 1},
		{NA: 10, NB: 10, Overlap: 1, K: 0},
	}
	for _, p := range bad {
		if _, err := Predict(p); err == nil {
			t.Errorf("Predict(%+v) must fail", p)
		}
	}
}

func TestPredictMonotonicity(t *testing.T) {
	base := Params{NA: 40000, NB: 40000, Overlap: 0.5, K: 1}
	b, err := Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	more := base
	more.Overlap = 1.0
	m, err := Predict(more)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accesses <= b.Accesses {
		t.Error("more overlap must predict more accesses")
	}
	bigK := base
	bigK.K = 10000
	k, err := Predict(bigK)
	if err != nil {
		t.Fatal(err)
	}
	if k.Accesses <= b.Accesses {
		t.Error("larger K must predict more accesses")
	}
	if k.CPDistance <= b.CPDistance {
		t.Error("larger K must predict a larger pruning distance")
	}
	if len(b.LevelPairs) == 0 || b.NodePairs <= 0 {
		t.Errorf("prediction not populated: %+v", b)
	}
}

// TestPredictionAccuracy validates the model against measured HEAP cost on
// uniform workloads: predictions must land within a factor of 3 for
// overlapping workspaces (the regime the model targets).
func TestPredictionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	build := func(seed int64, n int, shift float64) *rtree.Tree {
		pool := storage.NewBufferPool(storage.NewMemFile(1024), 0)
		tr, err := rtree.New(pool, rtree.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range dataset.Uniform(seed, n) {
			if err := tr.InsertPoint(p.Add(shift, 0), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	for _, cfg := range []struct {
		n       int
		overlap float64
		k       int
	}{
		{10000, 1.0, 1},
		{10000, 1.0, 100},
		{10000, 0.5, 1},
		{20000, 0.25, 10},
	} {
		ta := build(71, cfg.n, 0)
		tb := build(72, cfg.n, 1-cfg.overlap)
		_, stats, err := core.KClosestPairs(ta, tb, cfg.k, core.DefaultOptions(core.Heap))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := Predict(Params{NA: cfg.n, NB: cfg.n, Overlap: cfg.overlap, K: cfg.k})
		if err != nil {
			t.Fatal(err)
		}
		ratio := pred.Accesses / float64(stats.Accesses())
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("n=%d overlap=%g k=%d: predicted %.0f vs measured %d (ratio %.2f)",
				cfg.n, cfg.overlap, cfg.k, pred.Accesses, stats.Accesses(), ratio)
		}
	}
}

func TestRecommendShards(t *testing.T) {
	// Large balanced workload: scatter width rules, 2x workers.
	n, reason, err := RecommendShards(Params{NA: 100000, NB: 100000, Overlap: 1, K: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("large workload: want 8 tiles, got %d (%s)", n, reason)
	}
	// Tiny set: one tile, depth argument.
	n, _, err = RecommendShards(Params{NA: 100000, NB: 300, Overlap: 1, K: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("tiny set: want 1 tile, got %d", n)
	}
	// Depth cap binds between the extremes.
	n, reason, err = RecommendShards(Params{NA: 2000, NB: 2000, Overlap: 1, K: 10}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n >= 32 {
		t.Fatalf("mid workload: want depth-capped tiles in [2, 32), got %d (%s)", n, reason)
	}
	// Worker count floors at 1 and the advisor still answers.
	if _, _, err := RecommendShards(Params{NA: 100000, NB: 100000, Overlap: 1, K: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// Invalid params propagate.
	if _, _, err := RecommendShards(Params{NA: 0, NB: 1, Overlap: 1, K: 1}, 4); err == nil {
		t.Fatal("want validation error")
	}
}

// Package costmodel is an analytical model for K-CPQ cost over R*-trees —
// the "analytical study of CPQs" the paper lists as future work (Section
// 6), built in the style of the spatial-join cost models of Theodoridis,
// Stefanakis & Sellis (ICDE 1998) and the NN models of Papadopoulos &
// Manolopoulos (ICDT 1997).
//
// The model predicts the number of node pairs a well-pruned traversal
// (HEAP/STD) processes, assuming uniformly distributed points in two unit
// workspaces whose overlap portion is known:
//
//  1. Tree shape: level l (leaves = 0) holds N_l ≈ N/f^(l+1) square nodes
//     of side s_l ≈ sqrt(f^(l+1)/N), f the effective fanout.
//  2. Final pruning distance: the K-th closest-pair distance d_K follows
//     from the expected number of cross pairs within distance r,
//     E[pairs ≤ r] ≈ N_A·N_B·π·r²·ov (ov the workspace overlap), giving
//     d_K ≈ sqrt(K / (π·N_A·N_B·ov)).
//  3. Qualifying pairs per level: a node pair is processed when its
//     MINMINDIST is at most d_K, i.e. when the two node centers fall
//     within (s_A,l + s_B,l)/2 + d_K of each other per axis. With centers
//     uniform in their (possibly shifted) workspaces this probability
//     factors per axis and has a closed form.
//  4. Cost: each processed pair reads two pages, so
//     accesses ≈ 2·Σ_l N_A,l·N_B,l·P_l, floored by the two root paths.
//
// For disjoint or barely overlapping workspaces the closest pair hugs the
// workspace boundary and the uniform-pair argument in step 2 degrades;
// Predict clamps the overlap at a small epsilon and the validation
// experiment reports accuracy across the overlap axis honestly.
package costmodel

import (
	"fmt"
	"math"
)

// Params describes one K-CPQ workload for prediction.
type Params struct {
	// NA, NB are the two cardinalities.
	NA, NB int
	// Overlap is the portion of workspace overlap in [0, 1].
	Overlap float64
	// K is the number of closest pairs requested.
	K int
	// Fanout is the effective (average) node fan-out; 0 means 0.7 * M of
	// the paper's M = 21, i.e. ~14.7.
	Fanout float64
}

func (p Params) fanout() float64 {
	if p.Fanout > 0 {
		return p.Fanout
	}
	return 0.7 * 21
}

func (p Params) validate() error {
	if p.NA <= 0 || p.NB <= 0 {
		return fmt.Errorf("costmodel: cardinalities must be positive (%d, %d)", p.NA, p.NB)
	}
	if p.Overlap < 0 || p.Overlap > 1 {
		return fmt.Errorf("costmodel: overlap %g out of [0, 1]", p.Overlap)
	}
	if p.K <= 0 {
		return fmt.Errorf("costmodel: K must be positive, got %d", p.K)
	}
	return nil
}

// Level describes one level of a modeled R*-tree.
type Level struct {
	// Count is the expected number of nodes.
	Count float64
	// Side is the expected side length of a node MBR (workspace side = 1).
	Side float64
}

// TreeShape models the level structure of an R*-tree over n uniform points
// with the given effective fanout: level 0 is the leaf level; the last
// level is the root.
func TreeShape(n int, fanout float64) []Level {
	if n <= 0 {
		return nil
	}
	var levels []Level
	count := float64(n)
	for {
		count /= fanout
		if count < 1 {
			count = 1
		}
		// A level with count nodes tiles the unit workspace, so each node
		// covers area 1/count.
		levels = append(levels, Level{
			Count: math.Ceil(count),
			Side:  math.Min(1, math.Sqrt(1/count)),
		})
		if count == 1 {
			return levels
		}
	}
}

// ExpectedCPDistance estimates the K-th smallest cross-pair distance for
// uniform data in unit workspaces with the given overlap portion.
func ExpectedCPDistance(nA, nB int, overlap float64, k int) float64 {
	ov := math.Max(overlap, 1e-3) // boundary regime clamp, see package doc
	return math.Sqrt(float64(k) / (math.Pi * float64(nA) * float64(nB) * ov))
}

// axisProb returns P(|x - y| <= c) for x uniform in [0, 1] and y uniform
// in [d, d+1]: the per-axis probability that two node centers are within
// distance c, when the second workspace is shifted by d along the axis.
// Computed as the area of a band of width 2c around the diagonal of a unit
// square shifted by d.
func axisProb(d, c float64) float64 {
	if c < 0 {
		return 0
	}
	// P = ∫_0^1 len([x-c, x+c] ∩ [d, d+1]) dx; integrate exactly using the
	// piecewise-linear structure via fine trapezoids (the integrand is
	// piecewise linear, so a modest grid is exact up to float error).
	const steps = 4096
	sum := 0.0
	for i := 0; i <= steps; i++ {
		x := float64(i) / steps
		lo := math.Max(x-c, d)
		hi := math.Min(x+c, d+1)
		v := math.Max(0, hi-lo)
		if i == 0 || i == steps {
			v /= 2
		}
		sum += v
	}
	return math.Min(1, sum/steps)
}

// LeafScanChoice identifies a leaf-pair scanning strategy for step CP3
// (mirrored by core.LeafScan; the model stays import-free of the engine).
type LeafScanChoice int

const (
	// ChooseSweep is the plane-sweep scan: sort both leaves by low x and
	// band-walk within the pruning distance.
	ChooseSweep LeafScanChoice = iota
	// ChooseBrute is the all-pairs scan of the paper's CP3.
	ChooseBrute
	// ChooseGrid is the uniform-grid hash scan with cell side equal to the
	// pruning distance.
	ChooseGrid
)

// String implements fmt.Stringer with the engine's option names.
func (c LeafScanChoice) String() string {
	switch c {
	case ChooseBrute:
		return "brute"
	case ChooseGrid:
		return "grid"
	default:
		return "sweep"
	}
}

// RecommendLeafScan picks the leaf scanning strategy the model expects to
// win for the workload, with the reasoning:
//
//   - Tiny leaves (effective fan-out <= 8): the brute n*m scan — both the
//     sweep's sort and the grid's hashing cost O(n log n) / O(n) setup per
//     scan, which a handful of distance evaluations never amortizes.
//   - Pruning distance well below the leaf extent (d_K <= half the larger
//     leaf side): the grid — cells of side d_K isolate a small candidate
//     neighborhood out of each leaf, so most pairs are never touched and
//     the 3x3 probe beats even the sweep's x-band, which still walks every
//     entry within d_K along one axis.
//   - Otherwise: the plane sweep — when d_K is comparable to a leaf's
//     extent, one grid cell covers much of the leaf and the grid degrades
//     to brute plus hashing overhead, while the sweep still halves the
//     evaluated band on average.
func RecommendLeafScan(p Params) (LeafScanChoice, string, error) {
	if err := p.validate(); err != nil {
		return ChooseSweep, "", err
	}
	f := p.fanout()
	if f <= 8 {
		return ChooseBrute, fmt.Sprintf(
			"effective leaf fan-out %.1f (<= 8): per-scan sort/hash setup cannot amortize over so few entry pairs", f), nil
	}
	sA := TreeShape(p.NA, f)[0].Side
	sB := TreeShape(p.NB, f)[0].Side
	side := math.Max(sA, sB)
	d := ExpectedCPDistance(p.NA, p.NB, p.Overlap, p.K)
	if side > 0 && d/side <= 0.5 {
		return ChooseGrid, fmt.Sprintf(
			"expected pruning distance d_K=%.2g is %.0f%% of the leaf side %.2g (<= 50%%): grid cells isolate few candidates per probe", d, 100*d/side, side), nil
	}
	return ChooseSweep, fmt.Sprintf(
		"expected pruning distance d_K=%.2g is comparable to the leaf side %.2g: grid cells would cover whole leaves, the sweep band still prunes", d, side), nil
}

// RecommendShards picks a tile count T for the scatter-gather executor
// (internal/shard), with the reasoning. workers is the number of
// shard-pair joins that can run concurrently (values below 1 mean 1).
//
// The model weighs two forces:
//
//   - Scatter width: with aligned quantile tiles and a pruning distance
//     d_K far below a tile side, only the near-diagonal shard pairs
//     survive tile-level MINMINDIST pruning, so useful concurrency
//     grows with T roughly linearly while planning cost grows as T².
//     A modest multiple of the worker count keeps every worker busy
//     through the uneven tail without a quadratic plan.
//   - Shard depth: a shard holding fewer than ~f² points of a set
//     builds a 1–2 level R-tree, and a traversal that shallow has no
//     internal levels left to prune — the per-shard join degrades
//     toward a leaf-product scan. T is capped so both sides keep at
//     least f² expected points per shard (3+ levels).
func RecommendShards(p Params, workers int) (int, string, error) {
	if err := p.validate(); err != nil {
		return 1, "", err
	}
	if workers < 1 {
		workers = 1
	}
	f := p.fanout()
	nMin := p.NA
	if p.NB < nMin {
		nMin = p.NB
	}
	depthCap := int(float64(nMin) / (f * f))
	if depthCap < 2 {
		return 1, fmt.Sprintf(
			"smaller set holds %d points, under 2*f^2=%.0f: tiles would flatten the shard trees below 3 levels, leaving nothing to prune", nMin, 2*f*f), nil
	}
	t := 2 * workers
	reason := fmt.Sprintf("2x the %d concurrent joins keeps workers busy through the uneven tail", workers)
	if t > depthCap {
		t = depthCap
		reason = fmt.Sprintf("capped by shard depth: %d points per side / f^2=%.0f keeps every shard tree at 3+ levels", nMin, f*f)
	}
	const maxTiles = 64
	if t > maxTiles {
		t = maxTiles
		reason = fmt.Sprintf("capped at %d tiles: planning cost grows with T^2 and wider scatter adds no concurrency", maxTiles)
	}
	return t, reason, nil
}

// Prediction reports the model's outputs.
type Prediction struct {
	// Accesses is the predicted number of page reads (B = 0).
	Accesses float64
	// NodePairs is the predicted number of processed node pairs.
	NodePairs float64
	// CPDistance is the estimated K-th closest-pair distance.
	CPDistance float64
	// LevelPairs breaks NodePairs down per level (leaf level first).
	LevelPairs []float64
}

// Predict estimates the cost of a K-CPQ executed by a well-pruned
// traversal (HEAP or STD) at buffer size 0.
func Predict(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	f := p.fanout()
	la := TreeShape(p.NA, f)
	lb := TreeShape(p.NB, f)
	d := ExpectedCPDistance(p.NA, p.NB, p.Overlap, p.K)
	shift := 1 - p.Overlap

	// Align levels from the root downwards (fix-at-root): while one tree
	// is taller, its extra top levels pair with the other tree's root.
	ha, hb := len(la), len(lb)
	h := ha
	if hb > h {
		h = hb
	}
	pred := Prediction{CPDistance: d}
	for l := 0; l < h; l++ {
		ia, ib := l, l
		if ia >= ha {
			ia = ha - 1
		}
		if ib >= hb {
			ib = hb - 1
		}
		A, B := la[ia], lb[ib]
		// Two axis-aligned squares of sides sA, sB are within distance d
		// per axis when their centers differ by at most (sA+sB)/2 + d.
		c := (A.Side+B.Side)/2 + d
		prob := axisProb(shift, c) * axisProb(0, c)
		pairs := A.Count * B.Count * prob
		if pairs < 1 {
			pairs = 1 // the traversal always touches at least the two roots
		}
		if max := A.Count * B.Count; pairs > max {
			pairs = max
		}
		pred.LevelPairs = append(pred.LevelPairs, pairs)
		pred.NodePairs += pairs
	}
	pred.Accesses = 2 * pred.NodePairs
	return pred, nil
}

package costmodel

import "fmt"

// Decision is one advisor recommendation in a form the explain subsystem
// can serialize: the choice, the human-readable reasoning, and the model
// inputs that produced it. Field order is fixed (struct, no maps) so the
// canonical JSON encoding is byte-stable across runs.
type Decision struct {
	// Subject names what was decided ("leaf_scan", "shards").
	Subject string `json:"subject"`
	// Choice is the recommendation's engine-facing name ("sweep", "grid",
	// "brute", or a tile count rendered in decimal).
	Choice string `json:"choice"`
	// Reason is the model's one-line justification.
	Reason string `json:"reason"`
	// NA, NB, Overlap, K and Fanout echo the Params the model saw, with
	// the fanout default resolved.
	NA      int     `json:"n_a"`
	NB      int     `json:"n_b"`
	Overlap float64 `json:"overlap"`
	K       int     `json:"k"`
	Fanout  float64 `json:"fanout"`
}

// decision fills the shared input echo.
func (p Params) decision(subject, choice, reason string) Decision {
	return Decision{
		Subject: subject,
		Choice:  choice,
		Reason:  reason,
		NA:      p.NA,
		NB:      p.NB,
		Overlap: p.Overlap,
		K:       p.K,
		Fanout:  p.fanout(),
	}
}

// RecommendLeafScanDecision is RecommendLeafScan with the full decision
// record for EXPLAIN output.
func RecommendLeafScanDecision(p Params) (LeafScanChoice, Decision, error) {
	c, reason, err := RecommendLeafScan(p)
	if err != nil {
		return c, Decision{}, err
	}
	return c, p.decision("leaf_scan", c.String(), reason), nil
}

// RecommendShardsDecision is RecommendShards with the full decision record
// for EXPLAIN output.
func RecommendShardsDecision(p Params, workers int) (int, Decision, error) {
	t, reason, err := RecommendShards(p, workers)
	if err != nil {
		return t, Decision{}, err
	}
	return t, p.decision("shards", fmt.Sprintf("%d", t), reason), nil
}

package costmodel

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Histogram is a grid density summary of a point set over its workspace,
// the statistic that extends the uniform cost model to skewed data (real
// data sets are heavily clustered; Section 4.3.2 of the paper shows how
// strongly that changes join cost).
type Histogram struct {
	// Bounds is the workspace the grid covers.
	Bounds geom.Rect
	// Grid is the grid resolution per axis.
	Grid int
	// Counts holds the per-cell point counts, row-major (y*Grid + x).
	Counts []float64
	// Total is the summed count.
	Total float64
}

// NewHistogram builds a grid histogram of the points over their MBR.
func NewHistogram(pts []geom.Point, grid int) (*Histogram, error) {
	if grid <= 0 {
		return nil, fmt.Errorf("costmodel: grid must be positive, got %d", grid)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("costmodel: no points")
	}
	b := geom.RectOf(pts...)
	h := &Histogram{Bounds: b, Grid: grid, Counts: make([]float64, grid*grid)}
	w := b.Max.X - b.Min.X
	ht := b.Max.Y - b.Min.Y
	for _, p := range pts {
		cx, cy := 0, 0
		if w > 0 {
			cx = int((p.X - b.Min.X) / w * float64(grid))
		}
		if ht > 0 {
			cy = int((p.Y - b.Min.Y) / ht * float64(grid))
		}
		if cx >= grid {
			cx = grid - 1
		}
		if cy >= grid {
			cy = grid - 1
		}
		h.Counts[cy*grid+cx]++
		h.Total++
	}
	return h, nil
}

// CellArea returns the area of one grid cell.
func (h *Histogram) CellArea() float64 {
	w := h.Bounds.Max.X - h.Bounds.Min.X
	ht := h.Bounds.Max.Y - h.Bounds.Min.Y
	return w * ht / float64(h.Grid*h.Grid)
}

// cellRect returns the rectangle of cell (x, y).
func (h *Histogram) cellRect(x, y int) geom.Rect {
	w := (h.Bounds.Max.X - h.Bounds.Min.X) / float64(h.Grid)
	ht := (h.Bounds.Max.Y - h.Bounds.Min.Y) / float64(h.Grid)
	return geom.Rect{
		Min: geom.Point{X: h.Bounds.Min.X + float64(x)*w, Y: h.Bounds.Min.Y + float64(y)*ht},
		Max: geom.Point{X: h.Bounds.Min.X + float64(x+1)*w, Y: h.Bounds.Min.Y + float64(y+1)*ht},
	}
}

// PredictHistogram estimates K-CPQ cost for arbitrary (skewed) data from
// grid histograms of the two point sets. It generalizes Predict: the
// co-location mass Σ_c nA(c)·nB'(c) over aligned grid cells replaces the
// uniform N_A·N_B·ov term both in the K-th-distance estimate and in the
// per-level qualifying-pair counts, computed cell-locally.
func PredictHistogram(ha, hb *Histogram, k int, fanout float64) (Prediction, error) {
	if ha == nil || hb == nil {
		return Prediction{}, fmt.Errorf("costmodel: nil histogram")
	}
	if k <= 0 {
		return Prediction{}, fmt.Errorf("costmodel: K must be positive, got %d", k)
	}
	if ha.Grid != hb.Grid {
		return Prediction{}, fmt.Errorf("costmodel: grid mismatch %d vs %d", ha.Grid, hb.Grid)
	}
	if fanout <= 1 {
		fanout = 0.7 * 21
	}

	// Co-location mass over the intersection of the two workspaces, on
	// ha's grid: for each cell of A, the overlapping density mass of B.
	grid := ha.Grid
	mass := 0.0
	for y := 0; y < grid; y++ {
		for x := 0; x < grid; x++ {
			na := ha.Counts[y*grid+x]
			if na == 0 {
				continue
			}
			mass += na * hb.massIn(ha.cellRect(x, y))
		}
	}
	if mass == 0 {
		// Disjoint-ish data: fall back to the uniform boundary estimate.
		return Predict(Params{NA: int(ha.Total), NB: int(hb.Total), Overlap: 0, K: k, Fanout: fanout})
	}
	cellArea := ha.CellArea()
	d := math.Sqrt(float64(k) * cellArea / (math.Pi * mass))

	la := TreeShape(int(ha.Total), fanout)
	lb := TreeShape(int(hb.Total), fanout)
	hgt := len(la)
	if len(lb) > hgt {
		hgt = len(lb)
	}
	pred := Prediction{CPDistance: d}
	for l := 0; l < hgt; l++ {
		ia, ib := l, l
		if ia >= len(la) {
			ia = len(la) - 1
		}
		if ib >= len(lb) {
			ib = len(lb) - 1
		}
		fA := math.Pow(fanout, float64(ia+1)) // points per A node at level
		fB := math.Pow(fanout, float64(ib+1))
		pairs := 0.0
		for y := 0; y < grid; y++ {
			for x := 0; x < grid; x++ {
				na := ha.Counts[y*grid+x]
				if na == 0 {
					continue
				}
				cell := ha.cellRect(x, y)
				nb := hb.massIn(cell)
				if nb == 0 {
					continue
				}
				// Local node counts and sides within this cell.
				nodesA := na / fA
				nodesB := nb / fB
				sideA := math.Min(1, math.Sqrt(fA*cellArea/na))
				sideB := math.Min(1, math.Sqrt(fB*cellArea/nb))
				c := (sideA+sideB)/2 + d
				// Probability two uniform centers within the cell are
				// within c per axis.
				w := math.Sqrt(cellArea)
				p := 1.0
				if w > 0 {
					p = axisProbWithin(c / w)
					p *= p
				}
				pairs += nodesA * nodesB * p
			}
		}
		if pairs < 1 {
			pairs = 1
		}
		pred.LevelPairs = append(pred.LevelPairs, pairs)
		pred.NodePairs += pairs
	}
	pred.Accesses = 2 * pred.NodePairs
	return pred, nil
}

// massIn returns the histogram mass overlapping rect, assuming uniform
// density within each cell.
func (h *Histogram) massIn(r geom.Rect) float64 {
	cellArea := h.CellArea()
	if cellArea == 0 {
		if h.Bounds.Intersects(r) {
			return h.Total
		}
		return 0
	}
	sum := 0.0
	for y := 0; y < h.Grid; y++ {
		for x := 0; x < h.Grid; x++ {
			n := h.Counts[y*h.Grid+x]
			if n == 0 {
				continue
			}
			ov := h.cellRect(x, y).OverlapArea(r)
			if ov > 0 {
				sum += n * ov / cellArea
			}
		}
	}
	return sum
}

// axisProbWithin is axisProb(0, c) in closed form: P(|x-y| <= c) for two
// independent uniforms on [0, 1].
func axisProbWithin(c float64) float64 {
	if c <= 0 {
		return 0
	}
	if c >= 1 {
		return 1
	}
	return 2*c - c*c
}

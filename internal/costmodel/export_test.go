package costmodel

import "repro/internal/geom"

// Test-only exports. The model's validation tests live in the external
// costmodel_test package — they run the live engine, and internal/core now
// imports costmodel for the leaf-scan advice, so in-package tests would
// form an import cycle. The unexported internals they probe are
// re-exported here for tests only.
var AxisProb = axisProb

// MassIn exposes massIn for the histogram tests.
func (h *Histogram) MassIn(r geom.Rect) float64 { return h.massIn(r) }

package costmodel_test

import (
	"math"
	"testing"

	"repro/internal/core"
	. "repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func TestNewHistogramBasics(t *testing.T) {
	pts := dataset.Uniform(1, 4000)
	h, err := NewHistogram(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 4000 {
		t.Fatalf("Total = %g", h.Total)
	}
	var sum float64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 4000 {
		t.Fatalf("cell sum = %g", sum)
	}
	// Roughly uniform: no cell should be wildly off the mean.
	mean := 4000.0 / 64
	for i, c := range h.Counts {
		if c < mean/3 || c > mean*3 {
			t.Errorf("cell %d count %g far from mean %g", i, c, mean)
		}
	}
	if _, err := NewHistogram(nil, 8); err == nil {
		t.Error("empty points must fail")
	}
	if _, err := NewHistogram(pts, 0); err == nil {
		t.Error("zero grid must fail")
	}
}

func TestHistogramSkewDetection(t *testing.T) {
	h, err := NewHistogram(dataset.Clustered(2, 10000), 16)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if mean := h.Total / float64(len(h.Counts)); max < 4*mean {
		t.Errorf("clustered data: max cell %g not clearly above mean %g", max, mean)
	}
}

func TestMassIn(t *testing.T) {
	pts := dataset.Uniform(3, 10000)
	h, err := NewHistogram(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The whole bounds contain all mass.
	if got := h.MassIn(h.Bounds); math.Abs(got-h.Total) > 1 {
		t.Errorf("massIn(bounds) = %g, want %g", got, h.Total)
	}
	// Half the workspace holds about half the mass.
	half := geom.Rect{Min: h.Bounds.Min, Max: geom.Point{
		X: (h.Bounds.Min.X + h.Bounds.Max.X) / 2, Y: h.Bounds.Max.Y}}
	got := h.MassIn(half)
	if got < 0.4*h.Total || got > 0.6*h.Total {
		t.Errorf("massIn(half) = %g of %g", got, h.Total)
	}
	// Disjoint rect: nothing.
	far := geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 101, Y: 101}}
	if h.MassIn(far) != 0 {
		t.Error("disjoint massIn must be 0")
	}
}

func TestPredictHistogramValidation(t *testing.T) {
	h, _ := NewHistogram(dataset.Uniform(4, 100), 4)
	h2, _ := NewHistogram(dataset.Uniform(5, 100), 8)
	if _, err := PredictHistogram(nil, h, 1, 0); err == nil {
		t.Error("nil histogram must fail")
	}
	if _, err := PredictHistogram(h, h, 0, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := PredictHistogram(h, h2, 1, 0); err == nil {
		t.Error("grid mismatch must fail")
	}
}

func TestPredictHistogramAgreesWithUniformModel(t *testing.T) {
	// On uniform data the histogram model must land near the closed-form
	// uniform model.
	pa := dataset.Uniform(6, 20000)
	pb := dataset.Uniform(7, 20000)
	ha, err := NewHistogram(pa, 16)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHistogram(pb, 16)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := PredictHistogram(ha, hb, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	unif, err := Predict(Params{NA: 20000, NB: 20000, Overlap: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := hist.Accesses / unif.Accesses
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("histogram %g vs uniform %g (ratio %.2f)", hist.Accesses, unif.Accesses, ratio)
	}
}

func TestPredictHistogramOnClusteredData(t *testing.T) {
	// The point of the histogram model: on clustered-vs-uniform joins it
	// must stay within a reasonable factor of the measured cost, where the
	// uniform model has no way to see the skew.
	if testing.Short() {
		t.Skip("short mode")
	}
	pa := dataset.Clustered(62536, 20000)
	pb := dataset.Uniform(8, 20000)
	build := func(pts []geom.Point) *rtree.Tree {
		pool := storage.NewBufferPool(storage.NewMemFile(1024), 0)
		tr, err := rtree.New(pool, rtree.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := tr.InsertPoint(p, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	ta, tb := build(pa), build(pb)
	_, stats, err := core.KClosestPairs(ta, tb, 100, core.DefaultOptions(core.Heap))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := NewHistogram(pa, 16)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHistogram(pb, 16)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictHistogram(ha, hb, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.Accesses / float64(stats.Accesses())
	if ratio < 1.0/4 || ratio > 4 {
		t.Errorf("clustered join: predicted %.0f vs measured %d (ratio %.2f)",
			pred.Accesses, stats.Accesses(), ratio)
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/ssa"
)

// CancelPoll enforces the engine's cancellation-latency contract (ctxflow
// rule 2, DESIGN.md §11): every potentially unbounded loop in the join
// drivers must poll the context on some path through its body, so a
// cancelled query stops within a bounded amount of work instead of
// running the join to completion.
//
// A loop is potentially unbounded when its body performs frontier or
// storage work: it calls one of the configured hot-path callees
// (expandInto, readPair, the heap pops — the operations whose count
// scales with the input, not with a syntactic bound), calls directly into
// an I/O-scoped package, or calls a function the interprocedural
// reachesIO summary marks as transitively reaching one. Loops over the
// entries of a single decoded node, or over a result slice, trip none of
// these and are left alone.
//
// A loop polls when some node in its body calls ctx.Err/ctx.Done,
// receives from a Done channel, or calls a function the cancels summary
// marks as a cancellation point — which is how the engine's stride-gated
// cancelGate.poll satisfies the check without the driver spelling
// ctx.Err inline. Polls are found on the CFG, so a poll on one branch of
// the body counts (the branch runs every iteration or the loop has some
// other exit); what cannot happen is a flagged loop with a poll hiding
// on every path, because absence is checked over all blocks of the
// natural loop.
//
// Stride allowance: a poll gated by a masked counter (`steps&(N-1) != 0`
// or `steps%N != 0`) is accepted up to MaxStride — the gate is exactly
// how the hot path keeps the poll at zero cost — but a coarser gate
// defers cancellation too long and is flagged. The stride is read from
// the constant-folded gate conditions of the polling function and of the
// loop body itself; a canceller reached through a further call level
// reports stride 1 (lenient: the check enforces presence, the stride
// bound is a direct-idiom guard).
type CancelPoll struct {
	// Scopes are import-path fragments for the packages whose loops are
	// checked.
	Scopes []string
	// IOScopes are import-path fragments for the storage layers; calls
	// into them (transitively) make a loop potentially unbounded.
	IOScopes []string
	// HotNames are callee names that mark frontier work regardless of
	// package.
	HotNames []string
	// ExemptRecv names receiver types whose methods are container
	// internals (the heaps themselves); their loops are bounded by the
	// container and never polled.
	ExemptRecv []string
	// MaxStride is the largest accepted poll stride.
	MaxStride int64
}

// NewCancelPoll returns the check configured for the join engine.
func NewCancelPoll() *CancelPoll {
	// IOScopes names only the storage layer, not internal/rtree: the
	// rtree package mixes page-reading traversal with pure geometry
	// (Entry.Child, Rect accessors), and the functions that really read
	// pages reach internal/storage anyway, so the transitive summary
	// catches them without branding every MBR accessor as I/O.
	return &CancelPoll{
		Scopes:     []string{"internal/core", "internal/shard"},
		IOScopes:   []string{"internal/storage"},
		HotNames:   []string{"expandInto", "scanLeaves", "readPair", "pop", "popBatch", "Pop"},
		ExemptRecv: []string{"pairHeap", "kHeap", "batchQueue"},
		MaxStride:  1 << 16,
	}
}

// Name implements Check.
func (c *CancelPoll) Name() string { return "cancelpoll" }

// Run implements Check.
func (c *CancelPoll) Run(prog *Program) []Diagnostic {
	facts := newCtxFacts(prog)
	reachesIO := c.reachesIO(facts)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		for _, fs := range funcsOf(prog, pkg) {
			if fs.Recv != nil && inList(fs.Recv.Obj().Name(), c.ExemptRecv) {
				continue
			}
			diags = append(diags, c.checkFunc(prog, facts, reachesIO, fs)...)
		}
	}
	return diags
}

// reachesIO computes the transitive may-reach-I/O summary: a node holds
// the fact when it is a function of an I/O-scoped package or calls one,
// directly or through callees.
func (c *CancelPoll) reachesIO(facts *ctxFacts) map[any]bool {
	direct := make(map[any]bool)
	for n, succs := range facts.g.edges {
		if c.nodeInIO(n) {
			direct[n] = true
		}
		for _, s := range succs {
			if c.nodeInIO(s) {
				direct[s] = true
			}
		}
	}
	return propagateUp(facts.g, direct)
}

// nodeInIO reports whether a callgraph node is a declared function of an
// I/O-scoped package.
func (c *CancelPoll) nodeInIO(n any) bool {
	fn, ok := n.(*types.Func)
	return ok && fn.Pkg() != nil && pathInScope(fn.Pkg().Path(), c.IOScopes)
}

// pollPoint is one cancellation point of a function body: the AST node
// that polls, and the effective stride after masked-counter gates.
type pollPoint struct {
	node   ast.Node
	stride int64
}

func (c *CancelPoll) checkFunc(prog *Program, facts *ctxFacts, reachesIO map[any]bool, fs FuncSource) []Diagnostic {
	f := prog.IR(fs)
	loops := f.Loops(f.Dominators())
	if len(loops) == 0 {
		return nil
	}
	info := fs.Pkg.Info

	// Gate conditions of this body: if-statements whose condition folds
	// to a masked-counter stride. A poll lexically inside such an if
	// inherits the gate's stride.
	type gate struct {
		stmt   *ast.IfStmt
		stride int64
	}
	var gates []gate
	bodyInspect(fs.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			if s := strideOf(info, ifs.Cond); s > 0 {
				gates = append(gates, gate{ifs, s})
			}
		}
		return true
	})

	// Cancellation points of this body, with effective strides.
	var polls []pollPoint
	addPoll := func(n ast.Node, base int64) {
		stride := base
		for _, g := range gates {
			if g.stmt.Pos() <= n.Pos() && n.End() <= g.stmt.End() && g.stride > stride {
				stride = g.stride
			}
		}
		polls = append(polls, pollPoint{node: n, stride: stride})
	}
	bodyInspect(fs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ctxMethodName(info, n) != "" {
				addPoll(n, 1)
				return true
			}
			if fn := staticCallee(info, n); fn != nil && facts.cancels[fn] {
				addPoll(n, facts.strideOfCallee(fn))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && ctxMethodName(info, call) == "Done" {
					addPoll(n, 1)
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	for _, loop := range loops {
		if !c.loopUnbounded(info, facts, reachesIO, loop) {
			continue
		}
		minStride := int64(-1)
		for _, p := range polls {
			b := f.BlockOf(p.node)
			if b == nil || !loop.Contains(b) {
				continue
			}
			if minStride < 0 || p.stride < minStride {
				minStride = p.stride
			}
		}
		pos := loopPos(loop)
		switch {
		case minStride < 0:
			diags = append(diags, Diagnostic{
				Pos:   prog.position(pos),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"potentially unbounded loop in %s never polls the context; a cancelled query runs it to completion — poll ctx.Err() (stride-gated is fine)",
					fs.Name),
			})
		case minStride > c.MaxStride:
			diags = append(diags, Diagnostic{
				Pos:   prog.position(pos),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"loop in %s polls the context only every %d iterations (max allowed %d); tighten the gate",
					fs.Name, minStride, c.MaxStride),
			})
		}
	}
	return diags
}

// loopUnbounded classifies a natural loop as potentially unbounded: some
// node of its body calls a hot-path callee or (transitively) reaches the
// I/O layers.
func (c *CancelPoll) loopUnbounded(info *types.Info, facts *ctxFacts, reachesIO map[any]bool, loop *ssa.Loop) bool {
	for b := range loop.Blocks {
		for _, n := range b.Nodes {
			hot := false
			ssa.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(info, call)
				if fn == nil {
					return true
				}
				if inList(fn.Name(), c.HotNames) {
					hot = true
					return false
				}
				if fn.Pkg() != nil && pathInScope(fn.Pkg().Path(), c.IOScopes) {
					hot = true
					return false
				}
				if reachesIO[fn] {
					hot = true
					return false
				}
				return true
			})
			if hot {
				return true
			}
		}
	}
	return false
}

// loopPos anchors a loop diagnostic: the first node of the header block,
// falling back to the smallest position across the loop body (so
// //lint:ignore directives above the `for` line work).
func loopPos(loop *ssa.Loop) token.Pos {
	if len(loop.Head.Nodes) > 0 {
		return loop.Head.Nodes[0].Pos()
	}
	pos := token.NoPos
	for b := range loop.Blocks {
		for _, n := range b.Nodes {
			if pos == token.NoPos || n.Pos() < pos {
				pos = n.Pos()
			}
		}
	}
	return pos
}

// inList reports whether name appears in list.
func inList(name string, list []string) bool {
	for _, s := range list {
		if s == name {
			return true
		}
	}
	return false
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxLeak enforces goroutine hygiene under cancellation (ctxflow rule 3,
// DESIGN.md §11): a goroutine spawned by the engine must either select on
// the context's Done channel — transitively, via the waitsDone summary —
// or be provably joined by its spawner before the spawning function
// returns. A goroutine with neither property outlives a cancelled query:
// it holds buffer pages, heap memory and a scheduler slot for work whose
// result nobody will read, and a caller issuing queries in a loop
// accumulates them without bound.
//
// "Provably joined" is deliberately syntactic: the spawning function's
// own body must call Wait on a sync.WaitGroup. That matches the engine's
// two spawn sites (workers joined on one WaitGroup, the cancellation
// watcher on another) and every mainstream join idiom; handing the
// WaitGroup to a helper to wait on is exotic enough to deserve the
// //lint:ignore it would need.
type CtxLeak struct {
	// Scopes are import-path fragments for the packages whose go
	// statements are checked.
	Scopes []string
}

// NewCtxLeak returns the check configured for the join engine.
func NewCtxLeak() *CtxLeak {
	return &CtxLeak{Scopes: []string{"internal/core", "internal/shard"}}
}

// Name implements Check.
func (c *CtxLeak) Name() string { return "ctxleak" }

// Run implements Check.
func (c *CtxLeak) Run(prog *Program) []Diagnostic {
	facts := newCtxFacts(prog)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		for _, fs := range funcsOf(prog, pkg) {
			diags = append(diags, c.checkFunc(prog, facts, fs)...)
		}
	}
	return diags
}

func (c *CtxLeak) checkFunc(prog *Program, facts *ctxFacts, fs FuncSource) []Diagnostic {
	info := fs.Pkg.Info
	var goStmts []*ast.GoStmt
	bodyInspect(fs.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return nil
	}
	joined := bodyWaits(info, fs.Body)
	var diags []Diagnostic
	for _, stmt := range goStmts {
		if joined || c.spawnWaitsDone(facts, stmt) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   prog.position(stmt.Go),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"goroutine spawned by %s neither selects on ctx.Done() nor is joined by its spawner; it outlives a cancelled query",
				fs.Name),
		})
	}
	return diags
}

// spawnWaitsDone reports whether every resolved target of the go
// statement carries the waitsDone summary. The targets come from the
// callgraph's root resolution (literal, direct callee, or the reaching
// definitions of a spawned function variable); an unresolvable spawn has
// no targets and is flagged — a spawn the analysis cannot see through is
// a spawn it cannot clear.
func (c *CtxLeak) spawnWaitsDone(facts *ctxFacts, stmt *ast.GoStmt) bool {
	found := false
	for _, r := range facts.g.roots {
		if r.pos != stmt.Go {
			continue
		}
		found = true
		if !facts.waitsDone[r.node] {
			return false
		}
	}
	return found
}

// bodyWaits reports whether the function body itself calls Wait on a
// sync.WaitGroup.
func bodyWaits(info *types.Info, body *ast.BlockStmt) bool {
	waits := false
	bodyInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if named := namedOf(info.TypeOf(sel.X)); named != nil {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				waits = true
				return false
			}
		}
		return true
	})
	return waits
}

// Package driver is the ctxprop fixture: entry points that thread,
// sever, shim and ignore a context, covering every rule of the check.
package driver

import "context"

// queryContext is the cancellable variant every other function here
// delegates to; it polls, so the chain is genuinely cancellable.
func queryContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// query is the recognized delegating shim: one return statement
// forwarding to its own Context variant. Clean.
func query(n int) error {
	return queryContext(context.Background(), n)
}

// runContext accepts a context and then severs it: rule 1.
func runContext(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return queryContext(context.Background(), n)
}

// dropsCtx calls with Background outside a shim (the body is more than a
// delegating return): rule 2.
func dropsCtx(n int) error {
	err := queryContext(context.Background(), n)
	return err
}

// entryNoCtx delegates to a differently named callee, so the shim
// allowlist does not apply: rule 2.
func entryNoCtx(n int) error {
	return queryContext(context.TODO(), n)
}

// unused accepts a context and never touches it: rule 3.
func unused(ctx context.Context, n int) int {
	return n * 2
}

// suppressed severs the chain under an explicit directive. Clean.
func suppressed(n int) error {
	var total int
	for i := 0; i < n; i++ {
		total += i
	}
	//lint:ignore ctxprop fixture: intentionally severed for the suppression test
	return queryContext(context.TODO(), total)
}

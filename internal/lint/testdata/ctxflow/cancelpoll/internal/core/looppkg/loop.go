// Package looppkg is the cancelpoll fixture: loops that reach I/O with
// and without polls, stride gates at and beyond the allowance, an exempt
// heap container and a suppressed finding.
package looppkg

import (
	"context"

	"repro/internal/lint/testdata/ctxflow/cancelpoll/internal/storage/fakeio"
)

const stride = 1024

// gate mirrors the engine's stride-gated poll: the masked counter keeps
// the context untouched on all but every stride-th call.
type gate struct{ steps uint32 }

func (g *gate) poll(ctx context.Context) error {
	g.steps++
	if g.steps&(stride-1) != 0 {
		return nil
	}
	return ctx.Err()
}

// coarseGate polls once per 2^20 steps — beyond the allowance.
type coarseGate struct{ steps uint32 }

func (g *coarseGate) poll(ctx context.Context) error {
	g.steps++
	if g.steps&(1<<20-1) != 0 {
		return nil
	}
	return ctx.Err()
}

// drainNoPoll reaches I/O every iteration and never polls: flagged.
func drainNoPoll(s *fakeio.Store, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += len(s.ReadPage(i))
	}
	return total
}

// drainPolled polls the context inline every iteration. Clean.
func drainPolled(ctx context.Context, s *fakeio.Store, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += len(s.ReadPage(i))
	}
	return total, nil
}

// drainGated polls through the summarized stride-gated canceller. Clean.
func drainGated(ctx context.Context, s *fakeio.Store, n int) (int, error) {
	var g gate
	total := 0
	for i := 0; i < n; i++ {
		if err := g.poll(ctx); err != nil {
			return total, err
		}
		total += len(s.ReadPage(i))
	}
	return total, nil
}

// drainCoarse polls, but only every 2^20 iterations: stride finding.
func drainCoarse(ctx context.Context, s *fakeio.Store, n int) (int, error) {
	var g coarseGate
	total := 0
	for i := 0; i < n; i++ {
		if err := g.poll(ctx); err != nil {
			return total, err
		}
		total += len(s.ReadPage(i))
	}
	return total, nil
}

// pairHeap matches the check's exempt receivers: container internals are
// bounded by the container, so drainAll below is not flagged despite the
// unpolled loop reaching I/O.
type pairHeap struct{ items []int }

func (h *pairHeap) pop() int {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}

func (h *pairHeap) drainAll(s *fakeio.Store) int {
	total := 0
	for len(h.items) > 0 {
		total += len(s.ReadPage(h.pop()))
	}
	return total
}

// drainHeap pops the heap from a non-exempt function — hot by callee
// name, no I/O needed — and polls. Clean.
func drainHeap(ctx context.Context, h *pairHeap) int {
	total := 0
	for len(h.items) > 0 {
		if ctx.Err() != nil {
			return total
		}
		total += h.pop()
	}
	return total
}

// drainHeapNoPoll is drainHeap without the poll: flagged via the hot
// callee name alone.
func drainHeapNoPoll(h *pairHeap) int {
	total := 0
	for len(h.items) > 0 {
		total += h.pop()
	}
	return total
}

// sum is a pure bounded loop: no hot calls, no I/O, never flagged.
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// drainSuppressed is drainNoPoll under an explicit directive. Clean.
func drainSuppressed(s *fakeio.Store, n int) int {
	total := 0
	//lint:ignore cancelpoll fixture: bounded by the caller's contract
	for i := 0; i < n; i++ {
		total += len(s.ReadPage(i))
	}
	return total
}

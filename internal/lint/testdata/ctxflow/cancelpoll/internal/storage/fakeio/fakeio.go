// Package fakeio stands in for the storage layer in the cancelpoll
// fixtures: its import path matches the check's IOScopes, so calls into
// it classify a loop as potentially unbounded.
package fakeio

// Store is a stand-in page source.
type Store struct {
	calls int
}

// ReadPage pretends to read a page.
func (s *Store) ReadPage(id int) []byte {
	s.calls++
	return nil
}

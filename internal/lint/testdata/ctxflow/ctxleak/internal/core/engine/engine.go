// Package engine is the ctxleak fixture: goroutines that leak, that are
// joined by their spawner, that watch ctx.Done directly and through a
// helper, and one suppressed leak.
package engine

import (
	"context"
	"sync"
)

// leak spawns a goroutine that neither watches Done nor is joined:
// flagged.
func leak(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// joined spawns and waits on a WaitGroup before returning. Clean.
func joined(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
	wg.Wait()
}

// watched spawns a goroutine that selects on ctx.Done. Clean.
func watched(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			}
		}
	}()
}

// waitDone blocks until the context is cancelled.
func waitDone(ctx context.Context) { <-ctx.Done() }

// watchedIndirect's goroutine reaches Done through a callee — the
// waitsDone summary clears it. Clean.
func watchedIndirect(ctx context.Context) {
	go func() {
		waitDone(ctx)
	}()
}

// suppressedLeak is a fire-and-forget goroutine under an explicit
// directive. Clean.
func suppressedLeak(ch chan int) {
	//lint:ignore ctxleak fixture: fire-and-forget by design
	go func() {
		for range ch {
		}
	}()
}

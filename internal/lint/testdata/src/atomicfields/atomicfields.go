// Package atomicfields is a lint fixture: a field addressed into
// sync/atomic anywhere must be accessed atomically everywhere, and typed
// atomics must not be copied.
package atomicfields

import "sync/atomic"

// counters mixes an atomically accessed plain field (hits), a never-atomic
// field (plain) and a typed atomic (gauge).
type counters struct {
	hits  int64
	plain int64
	gauge atomic.Int64
}

// bump is the legal pattern: &c.hits only ever flows into sync/atomic and
// gauge is driven through its methods.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	c.gauge.Add(1)
	c.plain++
}

// broken mixes access modes; every hits access and the gauge copy must be
// flagged, while plain stays legal.
func broken(c *counters) int64 {
	c.hits++
	before := c.hits
	snapshot := c.gauge
	_ = snapshot
	c.plain = before
	return atomic.LoadInt64(&c.hits)
}

// suppressed demonstrates an accepted, documented exception.
func suppressed(c *counters) int64 {
	//lint:ignore atomicfields torn read is acceptable in this debug dump
	return c.hits
}

// stale has a directive with no reason; the driver reports it instead of
// honoring it.
func stale(c *counters) int64 {
	//lint:ignore atomicfields
	return c.hits
}

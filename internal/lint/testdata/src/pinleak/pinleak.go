// Package pinleak is a lint fixture: a closeable handle obtained from a
// storage constructor must be released on every control-flow path or
// demonstrably change owner.
package pinleak

import "repro/internal/storage"

// leakEarlyReturn closes the file on the normal path but not on the
// early return.
func leakEarlyReturn(path string, flag bool) error {
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return err
	}
	if flag {
		return nil
	}
	return df.Close()
}

// leakPanic closes the file on the normal path but not past the panic.
func leakPanic(path string, n int) error {
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return err
	}
	if n < 0 {
		panic("negative page count")
	}
	return df.Close()
}

// leakPlainUse reads through the handle but never closes it; a plain
// read does not transfer ownership.
func leakPlainUse(path string) (int64, error) {
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return 0, err
	}
	n := df.NumPages()
	return n, nil
}

// okDefer is the canonical pattern: a deferred Close right after the
// error check covers every later path, panics included.
func okDefer(path string, n int) error {
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return err
	}
	defer df.Close()
	if n < 0 {
		panic("negative page count")
	}
	return nil
}

// okEscapeReturn hands the handle to the caller, who owns it now.
func okEscapeReturn(path string) (*storage.DiskFile, error) {
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return nil, err
	}
	return df, nil
}

// okEscapeArg passes the handle into a constructor; the pool owns it.
func okEscapeArg(pageSize int) *storage.BufferPool {
	mf := storage.NewMemFile(pageSize)
	return storage.NewBufferPool(mf, 8)
}

// suppressed leaks deliberately, with the leak documented in place.
func suppressed(path string, flag bool) error {
	//lint:ignore pinleak fixture demonstrates suppressing a deliberate leak
	df, err := storage.CreateDiskFile(path, 4096)
	if err != nil {
		return err
	}
	if flag {
		return nil
	}
	return df.Close()
}

// Package errprop is a lint fixture: errors returned by the storage I/O
// layer must not be discarded with a bare call, a deferred call, or an
// assignment to the blank identifier.
package errprop

import "repro/internal/storage"

// drop discards errors in every shape the check recognizes.
func drop(f *storage.DiskFile, pool *storage.BufferPool) {
	f.Sync()
	_ = f.Sync()
	defer f.Close()
	if _, err := pool.Get(0); err != nil {
		panic(err)
	}
	buf, _ := pool.Get(1)
	_ = buf
}

// propagate is the legal pattern.
func propagate(f *storage.DiskFile) error {
	return f.Sync()
}

// Package errprop is a lint fixture: errors returned by the storage I/O
// layer must not be discarded with a bare call, a deferred call, or an
// assignment to the blank identifier.
package errprop

import "repro/internal/storage"

// drop discards errors in every shape the check recognizes.
func drop(f *storage.DiskFile, pool *storage.BufferPool) {
	f.Sync()
	_ = f.Sync()
	defer f.Close()
	if _, err := pool.Get(0); err != nil {
		panic(err)
	}
	buf, _ := pool.Get(1)
	_ = buf
}

// dropMultiline discards an error from the second line of a wrapped
// statement: the finding anchors on the call's line, not the
// statement's first line.
func dropMultiline(f *storage.DiskFile) {
	_, _ = f.PageSize(),
		f.WritePage(0, nil)
}

// suppressedMultiline is the regression case for directives above
// wrapped statements: the directive sits above the statement's first
// line and must cover the finding on the second.
func suppressedMultiline(f *storage.DiskFile) {
	//lint:ignore errprop fixture: directive covers the wrapped statement
	_, _ = f.PageSize(),
		f.WritePage(0, nil)
}

// propagate is the legal pattern.
func propagate(f *storage.DiskFile) error {
	return f.Sync()
}

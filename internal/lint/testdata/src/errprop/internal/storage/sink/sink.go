// Package sink is a lint fixture nested under an internal/storage path:
// inside the I/O layers every discarded error is flagged, whoever the
// callee is.
package sink

import "os"

// cleanup discards an os error from inside a storage-scoped package.
func cleanup(path string) {
	os.Remove(path)
}

// Package engine is a lint fixture for the boundmono check: the shared
// pruning bound only tightens, so outside the bound type's own methods
// every write must go through tighten, the raw bits are off limits, and
// store is legal only for the +Inf initialization.
package engine

import (
	"math"
	"sync/atomic"
)

// atomicMinFloat64 mirrors the parallel engine's tighten-only bound.
type atomicMinFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicMinFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicMinFloat64) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicMinFloat64) tighten(v float64) {
	for {
		old := a.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

type searcher struct {
	bound atomicMinFloat64
}

// resetToZero stores a non-Inf constant: every candidate pair would be
// pruned afterwards.
func (s *searcher) resetToZero() {
	s.bound.store(0)
}

// resetToSnapshot stores a value that reaches the call from an arbitrary
// computation, which can widen the bound.
func (s *searcher) resetToSnapshot() {
	v := s.bound.load() * 2
	s.bound.store(v)
}

// pokeBits bypasses the CAS-min discipline entirely.
func (s *searcher) pokeBits() {
	s.bound.bits.Store(0)
}

// overwrite replaces the whole value, resetting the bound to zero.
func (s *searcher) overwrite() {
	s.bound = atomicMinFloat64{}
}

// initialize is the one legal store: +Inf before any worker runs.
func (s *searcher) initialize() {
	s.bound.store(math.Inf(1))
}

// initializeViaLocal resolves through a reaching definition to the same
// +Inf call.
func (s *searcher) initializeViaLocal() {
	inf := math.Inf(1)
	s.bound.store(inf)
}

// shrink is the sanctioned write path.
func (s *searcher) shrink(candidate float64) {
	if candidate < s.bound.load() {
		s.bound.tighten(candidate)
	}
}

// suppressed documents a deliberate reset between query batches.
func (s *searcher) suppressed() {
	//lint:ignore boundmono fixture: batch boundary resets are serialized
	s.bound.store(0)
}

// SharedBound mirrors the exported cross-join broadcast bound: a thin
// wrapper whose +Inf reset lives in its own method, so the wrapper is
// exempt inside its methods exactly like the inner type.
type SharedBound struct {
	b atomicMinFloat64
}

func (s *SharedBound) reset() { s.b.store(math.Inf(1)) }

// Tighten is the sanctioned cross-join write path.
func (s *SharedBound) Tighten(v float64) { s.b.tighten(v) }

type coordinator struct {
	shared  *SharedBound
	scratch SharedBound
}

// inject hands the shared bound pointer to a collaborator; pointer
// assignment is injection, not a reset, and is not flagged.
func (c *coordinator) inject(b *SharedBound) {
	c.shared = b
}

// clobber overwrites the whole wrapper value, resetting the bound.
func (c *coordinator) clobber() {
	c.scratch = SharedBound{}
}

// reachInside pokes the wrapped bound from outside the type's methods.
func (c *coordinator) reachInside() {
	c.scratch.b.store(0)
}

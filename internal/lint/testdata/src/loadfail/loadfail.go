// Package loadfail is a lint fixture that parses but does not
// type-check, for testing that load failures surface as a non-zero exit
// instead of silently shrinking the linted set.
package loadfail

var answer int = "forty-two"

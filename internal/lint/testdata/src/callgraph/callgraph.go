// Package callgraph is a lint fixture for goroutine reachability: every
// spawn shape the callgraph resolves — direct method goroutines, method
// calls wrapped in literals, and method values spawned through a local —
// plus one worker that is never spawned at all.
package callgraph

type server struct {
	n int
}

func (s *server) worker()  { s.n++ }
func (s *server) worker2() { s.n++ }
func (s *server) worker3() { s.n++ }
func (s *server) worker4() { s.n++ }

func (s *server) start() {
	go s.worker()
	go func() {
		s.worker2()
	}()
	w := s.worker3
	go w()
}

// onlyCalled invokes worker4 synchronously; it must not be goroutine-
// reachable.
func (s *server) onlyCalled() {
	s.worker4()
}

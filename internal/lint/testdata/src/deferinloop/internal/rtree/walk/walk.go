// Package walk is a lint fixture for the deferinloop check: a deferred
// release inside a loop runs at function return, not per iteration, and
// so pins every visited node until the whole traversal finishes.
package walk

import "errors"

type node struct {
	id     int
	closed bool
}

func (n *node) Close() error {
	if n.closed {
		return errors.New("double close")
	}
	n.closed = true
	return nil
}

func open(id int) *node { return &node{id: id} }

// traverseBad defers the release inside the loop: every node stays
// pinned until the function returns.
func traverseBad(ids []int) {
	for _, id := range ids {
		n := open(id)
		defer n.Close()
		_ = n.id
	}
}

// traverseWrapped is the sanctioned rewrite: the per-iteration literal's
// own return triggers the defer.
func traverseWrapped(ids []int) {
	for _, id := range ids {
		func() {
			n := open(id)
			defer n.Close()
			_ = n.id
		}()
	}
}

// traverseExplicit releases at the end of the iteration, no defer.
func traverseExplicit(ids []int) error {
	for _, id := range ids {
		n := open(id)
		if err := n.Close(); err != nil {
			return err
		}
	}
	return nil
}

// closeOnce defers outside any loop; the loop below is unrelated.
func closeOnce(ids []int) int {
	n := open(0)
	defer n.Close()
	sum := 0
	for _, id := range ids {
		sum += id
	}
	return sum
}

// suppressed documents a deliberately bounded accumulation.
func suppressed(ids [4]int) {
	for _, id := range ids {
		n := open(id)
		//lint:ignore deferinloop fixture: at most four handles accumulate
		defer n.Close()
	}
}

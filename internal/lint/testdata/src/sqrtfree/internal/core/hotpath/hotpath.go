// Package hotpath is a lint fixture nested under an internal/core path so
// it falls inside the sqrtfree scope: roots in comparisons are flagged,
// allowlisted reporting functions and suppressed sites are not.
package hotpath

import "math"

// prune compares distances the wrong way: both roots are violations.
func prune(dSq, tSq float64) bool {
	return math.Sqrt(dSq) > math.Sqrt(tSq)
}

// KeyToDist is on the result-reporting allowlist.
func KeyToDist(dSq float64) float64 { return math.Sqrt(dSq) }

// legacy keeps a deliberate root behind a suppression.
func legacy(dSq float64) float64 {
	//lint:ignore sqrtfree reporting helper kept for a comparison test
	return math.Sqrt(dSq)
}

// Package gridkernel is a lint fixture nested under an internal/core path
// mimicking the grid leaf scan and the batched expansion kernel: taking a
// root per probed cell or per kernel lane is exactly the regression
// sqrtfree exists to catch — both hot loops must compare squared keys and
// convert to a distance only through the allowlisted reporters.
package gridkernel

import "math"

// gridProbe buckets by true distance instead of the squared key; the root
// per candidate is a violation.
func gridProbe(keys []float64, t float64) int {
	hits := 0
	for _, k := range keys {
		if math.Sqrt(k) <= t {
			hits++
		}
	}
	return hits
}

// kernelKeys converts every lane's squared key to a distance inside the
// batch loop; a violation.
func kernelKeys(dx, dy, out []float64) {
	for i := range dx {
		out[i] = math.Sqrt(dx[i]*dx[i] + dy[i]*dy[i])
	}
}

// KeyToDist is on the result-reporting allowlist: the one legal root.
func KeyToDist(dSq float64) float64 { return math.Sqrt(dSq) }

// Package core is a lint fixture nested under an internal/core path so it
// falls inside the bufferdiscipline scope for the join rule: the
// sequential drivers' expandInto/scanLeaves on any path reachable from a
// go statement must be flagged, the per-worker beginExpand/finish and
// scanLeavesInto pair must not, and sequential use stays legal.
package core

// join mimics the engine's join state: a non-atomic bound and a shared
// K-heap that only the sequential drivers may touch.
type join struct {
	bound float64
	heap  []float64
}

type nodePair struct{ minminSq float64 }

type expansion struct{ j *join }

// expandInto is the sequential expansion entry point (assigns j.bound).
func (j *join) expandInto(p nodePair, dst []nodePair) []nodePair {
	j.bound = p.minminSq
	return append(dst, p)
}

// scanLeaves offers into the shared K-heap; sequential only.
func (j *join) scanLeaves(d float64) {
	j.heap = append(j.heap, d)
}

// beginExpand / finish are the parallel-safe pair.
func (j *join) beginExpand(p nodePair) expansion { return expansion{j: j} }

func (e expansion) finish(dst []nodePair) []nodePair { return dst }

// scanLeavesInto scans against a worker-local heap; parallel-safe.
func (j *join) scanLeavesInto(local *[]float64, d float64) {
	*local = append(*local, d)
}

// spawnWorkers starts the goroutines the check traces from.
func spawnWorkers(j *join) {
	go badWorker(j)
	go func() { badLeafChain(j) }()
	go goodWorker(j)
	sequentialDriver(j)
}

// badWorker calls the sequential expansion from a goroutine; a violation.
func badWorker(j *join) {
	subs := j.expandInto(nodePair{minminSq: 1}, nil)
	_ = subs
}

// badLeafChain reaches scanLeaves transitively; a violation.
func badLeafChain(j *join) { leafHelper(j) }

func leafHelper(j *join) { j.scanLeaves(2) }

// goodWorker uses the per-worker pair; no finding.
func goodWorker(j *join) {
	var local []float64
	e := j.beginExpand(nodePair{minminSq: 3})
	_ = e.finish(nil)
	j.scanLeavesInto(&local, 3)
}

// sequentialDriver is never spawned, so its calls are the legal
// sequential contract.
func sequentialDriver(j *join) {
	_ = j.expandInto(nodePair{minminSq: 4}, nil)
	j.scanLeaves(4)
}

// Package bufferdiscipline is a lint fixture: BufferPool.Get on any path
// reachable from a go statement must be flagged, View must not, and
// sequential Get stays legal.
package bufferdiscipline

import "repro/internal/storage"

// spawnAll starts the goroutines the check traces from.
func spawnAll(pool *storage.BufferPool) {
	go directReader(pool)
	go func() {
		if err := chainA(pool); err != nil {
			panic(err)
		}
	}()
	go viewReader(pool)
	sequentialGet(pool)
}

// directReader is spawned directly; its Get is a violation.
func directReader(pool *storage.BufferPool) {
	buf, err := pool.Get(1)
	if err != nil {
		panic(err)
	}
	_ = buf
}

// chainA reaches Get only transitively, through chainB.
func chainA(pool *storage.BufferPool) error { return chainB(pool) }

func chainB(pool *storage.BufferPool) error {
	_, err := pool.Get(2)
	return err
}

// viewReader uses the concurrency-safe read path; no finding.
func viewReader(pool *storage.BufferPool) {
	if err := pool.View(3, func([]byte) error { return nil }); err != nil {
		panic(err)
	}
}

// sequentialGet is never spawned on a goroutine, so its Get is the legal
// single-goroutine contract.
func sequentialGet(pool *storage.BufferPool) {
	if _, err := pool.Get(4); err != nil {
		panic(err)
	}
}

// Package bufferdiscipline is a lint fixture: BufferPool.Get on any path
// reachable from a go statement must be flagged, View must not, and
// sequential Get stays legal.
package bufferdiscipline

import (
	"repro/internal/rtree"
	"repro/internal/storage"
)

// spawnAll starts the goroutines the check traces from.
func spawnAll(pool *storage.BufferPool) {
	go directReader(pool)
	go func() {
		if err := chainA(pool); err != nil {
			panic(err)
		}
	}()
	go viewReader(pool)
	sequentialGet(pool)
}

// directReader is spawned directly; its Get is a violation.
func directReader(pool *storage.BufferPool) {
	buf, err := pool.Get(1)
	if err != nil {
		panic(err)
	}
	_ = buf
}

// chainA reaches Get only transitively, through chainB.
func chainA(pool *storage.BufferPool) error { return chainB(pool) }

func chainB(pool *storage.BufferPool) error {
	_, err := pool.Get(2)
	return err
}

// viewReader uses the concurrency-safe read path; no finding.
func viewReader(pool *storage.BufferPool) {
	if err := pool.View(3, func([]byte) error { return nil }); err != nil {
		panic(err)
	}
}

// sequentialGet is never spawned on a goroutine, so its Get is the legal
// single-goroutine contract.
func sequentialGet(pool *storage.BufferPool) {
	if _, err := pool.Get(4); err != nil {
		panic(err)
	}
}

// The NodeCache side of the discipline: Get/Add are the legal concurrent
// read path (a hit bypasses BufferPool.View entirely); Invalidate and
// Clear are reserved to the tree's single-writer mutation path.

// spawnCacheUsers starts the goroutines of the node-cache cases.
func spawnCacheUsers(cache *rtree.NodeCache) {
	go cacheReader(cache)
	go cacheInvalidator(cache)
	go func() { cacheClearChain(cache) }()
	sequentialInvalidate(cache)
}

// cacheReader hits the concurrent read path; Get and Add are legal.
func cacheReader(cache *rtree.NodeCache) {
	if n, ok := cache.Get(7); ok {
		_ = n
		return
	}
	cache.Add(&rtree.Node{ID: 7})
}

// cacheInvalidator mutates the cache from a goroutine; a violation.
func cacheInvalidator(cache *rtree.NodeCache) {
	cache.Invalidate(8)
}

// cacheClearChain reaches Clear transitively; a violation.
func cacheClearChain(cache *rtree.NodeCache) {
	cache.Clear()
}

// sequentialInvalidate is never spawned, so it stays on the legal
// single-writer mutation path.
func sequentialInvalidate(cache *rtree.NodeCache) {
	cache.Invalidate(9)
}

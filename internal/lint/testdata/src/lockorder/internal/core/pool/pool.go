// Package pool is a lint fixture for the lockorder check: the static
// lock-ordering graph must be acyclic and no two instances of one shard
// lock may be held at once.
package pool

import "sync"

type registry struct {
	amu sync.Mutex
	bmu sync.Mutex
	cmu sync.Mutex
	dmu sync.Mutex
	emu sync.Mutex
	fmu sync.RWMutex
}

// lockAB and lockBA close a two-lock cycle: concurrent callers deadlock.
func (r *registry) lockAB() {
	r.amu.Lock()
	r.bmu.Lock()
	r.bmu.Unlock()
	r.amu.Unlock()
}

func (r *registry) lockBA() {
	r.bmu.Lock()
	r.amu.Lock()
	r.amu.Unlock()
	r.bmu.Unlock()
}

// lockCThenHelper takes dmu through a helper while holding cmu; together
// with lockDC below that closes an interprocedural cycle.
func (r *registry) lockCThenHelper() {
	r.cmu.Lock()
	r.helperD()
	r.cmu.Unlock()
}

func (r *registry) helperD() {
	r.dmu.Lock()
	r.dmu.Unlock()
}

func (r *registry) lockDC() {
	r.dmu.Lock()
	r.cmu.Lock()
	r.cmu.Unlock()
	r.dmu.Unlock()
}

// lockSequential is clean: emu is released before fmu is taken, so no
// ordering edge exists.
func (r *registry) lockSequential() {
	r.emu.Lock()
	r.emu.Unlock()
	r.fmu.RLock()
	r.fmu.RUnlock()
}

type shard struct {
	mu    sync.Mutex
	pages map[int][]byte
}

type sharded struct {
	shards []*shard
}

// moveBad holds two shard locks at once; shard locks of one pool have no
// fixed order, so two movers deadlock against each other.
func (p *sharded) moveBad(src, dst, id int) {
	p.shards[src].mu.Lock()
	p.shards[dst].mu.Lock()
	p.shards[dst].pages[id] = p.shards[src].pages[id]
	delete(p.shards[src].pages, id)
	p.shards[dst].mu.Unlock()
	p.shards[src].mu.Unlock()
}

// moveStaged is clean: it copies out under the source lock, releases it,
// then fills the destination — one shard lock at a time.
func (p *sharded) moveStaged(src, dst, id int) {
	p.shards[src].mu.Lock()
	buf := p.shards[src].pages[id]
	delete(p.shards[src].pages, id)
	p.shards[src].mu.Unlock()
	p.shards[dst].mu.Lock()
	p.shards[dst].pages[id] = buf
	p.shards[dst].mu.Unlock()
}

// shard2 has its own lock identity so the suppressed finding below is
// distinct from moveBad's (the graph dedupes edges per lock pair).
type shard2 struct {
	mu    sync.Mutex
	pages map[int][]byte
}

type sharded2 struct {
	shards []*shard2
}

// moveSuppressed documents a deliberate double-shard hold (caller
// serializes movers externally).
func (p *sharded2) moveSuppressed(src, dst, id int) {
	p.shards[src].mu.Lock()
	//lint:ignore lockorder fixture: movers are serialized by the caller
	p.shards[dst].mu.Lock()
	p.shards[dst].pages[id] = p.shards[src].pages[id]
	p.shards[dst].mu.Unlock()
	p.shards[src].mu.Unlock()
}

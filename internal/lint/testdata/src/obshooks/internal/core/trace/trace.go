// Package trace is a lint fixture nested under an internal/core path so it
// falls inside the obshooks scope: unguarded emissions are flagged, the
// two accepted guard shapes and a suppressed site are not.
package trace

import "repro/internal/obs"

// engine mirrors the real join's observability fields.
type engine struct {
	span    *obs.Span
	tracer  obs.Tracer
	metrics *obs.EngineMetrics
}

// emitBare calls Emit with no guard at all: flagged.
func (e *engine) emitBare(n int) {
	e.span.Emit(obs.Event{Kind: obs.EvHeapHighWater, N: int64(n)})
}

// emitGuardedHelper is the canonical helper shape: a leading nil check,
// then the emission. Accepted.
func (e *engine) emitGuardedHelper(n int) {
	if e.span == nil {
		return
	}
	e.span.Emit(obs.Event{Kind: obs.EvHeapHighWater, N: int64(n)})
}

// emitInBlock wraps the emission in a positive nil check. Accepted.
func (e *engine) emitInBlock(ev obs.Event) {
	if e.tracer != nil {
		e.tracer.Event(ev)
	}
}

// emitPrefixGuard guards a parent of the receiver chain: the metrics
// pointer shields its histogram field. Accepted.
func (e *engine) emitPrefixGuard(util float64) {
	if e.metrics != nil {
		e.metrics.WorkerUtilization.Observe(util)
	}
}

// emitWrongGuard checks one field but emits through another: flagged.
func (e *engine) emitWrongGuard(ev obs.Event) {
	if e.span != nil {
		e.tracer.Event(ev)
	}
}

// emitAfterGuard has the right leading check but emits outside it — the
// guard returns, yet a second emission below a non-leading check is also
// flagged because the check only accepts a function-leading guard or an
// enclosing block.
func (e *engine) emitAfterGuard(n int) {
	if n > 0 {
		return
	}
	if e.span == nil {
		return
	}
	e.span.Emit(obs.Event{Kind: obs.EvHeapHighWater, N: int64(n)})
}

// emitCallReceiver emits through a call result that no guard can name:
// flagged.
func (e *engine) emitCallReceiver(ev obs.Event) {
	e.pick().Event(ev)
}

func (e *engine) pick() obs.Tracer { return e.tracer }

// emitEndGuarded closes a span behind the helper guard. Accepted.
func (e *engine) emitEndGuarded(bound float64, results int) {
	if e.span == nil {
		return
	}
	e.span.End(bound, results, "")
}

// emitSuppressed keeps a deliberate bare emission behind a suppression:
// the startup path runs once before any query, and the tracer is known
// non-nil there.
func (e *engine) emitSuppressed(ev obs.Event) {
	//lint:ignore obshooks startup path, tracer checked by the constructor
	e.tracer.Event(ev)
}

// record is nil-safe by contract and not an emission method: never
// flagged, guard or no guard.
func (e *engine) record(r obs.QueryReport) {
	e.metrics.Record(r)
}

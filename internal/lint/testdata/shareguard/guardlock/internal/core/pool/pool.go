// Package pool is the guardlock fixture: shared fields with locking
// evidence but inconsistent coverage, and //lint:guardedby annotations
// both honored and violated.
package pool

import "sync"

type queue struct {
	mu sync.Mutex
	// items is the inconsistency positive: locked in work, bare in
	// drain, so no single lock covers every shared access.
	items []int

	gmu sync.Mutex
	// total pins its guard; one access in work and one in observe skip
	// the lock.
	//lint:guardedby gmu
	total int

	// bad carries a malformed annotation: no such sibling field.
	//lint:guardedby nosuch
	bad int

	// worse names a sibling that is not a mutex.
	//lint:guardedby items
	worse int

	cmu sync.Mutex
	// hits is the negative: every shared access holds cmu.
	hits int

	done chan struct{}
}

func serve() {
	q := &queue{done: make(chan struct{})}
	go q.work()
	<-q.done
}

func (q *queue) work() {
	q.mu.Lock()
	q.items = append(q.items, 1)
	q.mu.Unlock()
	q.drain()

	q.gmu.Lock()
	q.total++
	q.gmu.Unlock()
	q.total++ // want: guardlock (annotated guard not held)

	q.cmu.Lock()
	q.hits++
	q.cmu.Unlock()

	q.observe()
	close(q.done)
}

func (q *queue) drain() {
	q.items = nil // want: guardlock (mu held at the other sites, not here)
}

// observe exercises the multi-line suppression path: both statements
// wrap across lines, the directive above the first one suppresses the
// finding inside it, the twin below surfaces.
func (q *queue) observe() {
	//lint:ignore guardlock fixture: wrapped-statement directive coverage
	sink(
		q.total)
	sink(
		q.total) // want: guardlock (annotated guard not held)
}

func sink(int) {}

// Package job is the pubimmut fixture: safe publication — constructor
// writes before the go statement are immutable-after-publish, writes
// after it need synchronization.
package job

import "sync"

type job struct {
	mu   sync.Mutex
	name string
	hits int
	done chan struct{}
}

func start() *job {
	j := &job{done: make(chan struct{})}
	j.name = "init" // pre-publication constructor write: exempt
	go j.run()
	j.name = "late" // want: pubimmut
	j.mu.Lock()
	j.hits = 1 // post-publication but locked: fine
	j.mu.Unlock()
	return j
}

func (j *job) run() {
	_ = j.name
	close(j.done)
}

// local never publishes its value, so its writes are plain local state.
func local() int {
	j := &job{done: make(chan struct{})}
	j.hits = 2
	return j.hits
}

// startQuiet is the suppressed case: the same post-publication write,
// acknowledged in-line.
func startQuiet() *job {
	j := &job{done: make(chan struct{})}
	go j.run()
	//lint:ignore pubimmut fixture: post-publication write acknowledged
	j.name = "late"
	return j
}

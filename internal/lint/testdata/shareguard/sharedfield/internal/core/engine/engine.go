// Package engine is the sharedfield fixture: struct fields written from
// goroutine-spawned code through shared state with no synchronization.
package engine

import (
	"sync"
	"sync/atomic"
)

// hub's n is the positive case: the spawned worker writes it with no
// lock held anywhere, no atomic discipline and no annotation.
type hub struct {
	n    int
	done chan struct{}
}

func runHub() {
	h := &hub{done: make(chan struct{})}
	go h.work()
	<-h.done
}

func (h *hub) work() {
	h.n++ // want: sharedfield
	close(h.done)
}

// safeHub is a negative case: the same shape with the write under the
// mutex at every shared access site.
type safeHub struct {
	mu   sync.Mutex
	n    int
	done chan struct{}
}

func runSafeHub() {
	h := &safeHub{done: make(chan struct{})}
	go h.work()
	<-h.done
}

func (h *safeHub) work() {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
	close(h.done)
}

// opsHub is a negative case: the counter lives behind sync/atomic, which
// the atomicfields check owns.
type opsHub struct {
	ops  int64
	done chan struct{}
}

func runOpsHub() {
	h := &opsHub{done: make(chan struct{})}
	go h.work()
	<-h.done
}

func (h *opsHub) work() {
	atomic.AddInt64(&h.ops, 1)
	close(h.done)
}

// scratch is a negative case: the worker's accumulator is created inside
// the goroutine and never escapes it, so its field is worker-local no
// matter how hot the loop.
type scratch struct {
	sum int
}

type scanHub struct {
	done chan struct{}
}

func runScanHub() {
	h := &scanHub{done: make(chan struct{})}
	go h.work()
	<-h.done
}

func (h *scanHub) work() {
	var acc scratch
	for i := 0; i < 100; i++ {
		acc.sum += i
	}
	_ = acc.sum
	close(h.done)
}

// child is a negative case for constructor writes in goroutine-reachable
// code: the spawned worker builds a fresh child and fills it in before
// publishing it with the nested go statement.
type child struct {
	id   int
	done chan struct{}
}

type nestHub struct {
	done chan struct{}
}

func runNestHub() {
	h := &nestHub{done: make(chan struct{})}
	go h.work()
	<-h.done
}

func (h *nestHub) work() {
	c := &child{done: make(chan struct{})}
	c.id = 1 // pre-publication constructor write: not shared
	go c.loop()
	<-c.done
	close(h.done)
}

func (c *child) loop() {
	_ = c.id // read-only after publication: immutable-after-publish
	close(c.done)
}

// loud is the suppressed case: the same race as hub, acknowledged
// in-line.
type loud struct {
	n    int
	done chan struct{}
}

func runLoud() {
	l := &loud{done: make(chan struct{})}
	go l.work()
	<-l.done
}

func (l *loud) work() {
	//lint:ignore sharedfield fixture: unguarded write acknowledged
	l.n++
	close(l.done)
}

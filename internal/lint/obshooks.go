package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ObsHooks enforces the observability emission discipline in the engine's
// hot paths: tracer and metric emissions are free when disabled only
// because every call to an emitting method of repro/internal/obs sits
// behind an explicit nil check. A bare emission compiles and works, but
// it either panics on the nil default or silently moves event-struct
// construction and argument evaluation onto the always-taken path; this
// check turns the convention into a build failure.
//
// A call is accepted in either of two shapes:
//
//   - the enclosing function leads with `if x == nil { return ... }`,
//     where x is the emitting value (the helper pattern used by
//     internal/core/trace.go and friends), or
//   - the call sits inside the body of an `if x != nil { ... }` block.
//
// In both shapes x must be the call's receiver chain or a dotted prefix
// of it (`j.opts.Metrics` guards `j.opts.Metrics.WorkerUtilization
// .Observe`). Receivers that are not plain selector chains (a call
// result, an index expression) cannot be matched against a guard and are
// always flagged: bind them to a variable and guard that.
type ObsHooks struct {
	// Scopes are the import-path fragments of the hot-path packages.
	Scopes []string
	// Methods are the emitting method names of the obs package.
	Methods map[string]bool
}

// NewObsHooks returns the check configured for the engine's hot-path
// packages and the obs layer's emitting methods: Tracer.Event (the
// explain.Capture implementation included), Span.Emit/End, and the metric
// mutators Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe. Aggregating
// consumers (EngineMetrics.Record, SlowQueryLog.Record) and the explain
// capture's structured mutators (Phase, AddShardPair, SetShards, ...) are
// nil-safe by contract and not flagged.
func NewObsHooks() *ObsHooks {
	return &ObsHooks{
		Scopes: []string{"internal/core", "internal/rtree", "internal/storage", "internal/shard"},
		Methods: map[string]bool{
			"Event":   true,
			"Emit":    true,
			"End":     true,
			"Inc":     true,
			"Add":     true,
			"Set":     true,
			"Observe": true,
		},
	}
}

// Name implements Check.
func (c *ObsHooks) Name() string { return "obshooks" }

// Run implements Check.
func (c *ObsHooks) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				leading := leadingNilGuard(fd)
				guards := enclosingNilGuards(fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !c.Methods[sel.Sel.Name] {
						return true
					}
					fn := staticCallee(info, call)
					if fn == nil || fn.Pkg() == nil || !obsPackage(fn.Pkg().Path()) {
						return true
					}
					recv := chainString(sel.X)
					if recv != "" {
						if leading != "" && dotPrefix(leading, recv) {
							return true
						}
						for _, g := range guards {
							if dotPrefix(g.chain, recv) &&
								g.body.Pos() <= call.Pos() && call.End() <= g.body.End() {
								return true
							}
						}
					}
					diags = append(diags, Diagnostic{
						Pos:   prog.position(call.Pos()),
						Check: c.Name(),
						Message: fmt.Sprintf(
							"unguarded obs emission %s.%s in hot-path function %s; lead the function with `if %s == nil { return }` or wrap the call in `if %s != nil`",
							exprLabel(recv), sel.Sel.Name, fd.Name.Name, exprLabel(recv), exprLabel(recv)),
					})
					return true
				})
			}
		}
	}
	return diags
}

// obsPackage reports whether path is the observability layer: the obs
// package itself or one of its sub-packages (internal/obs/explain), whose
// Tracer implementations follow the same emission discipline.
func obsPackage(path string) bool {
	return strings.HasSuffix(path, "internal/obs") ||
		strings.Contains(path, "internal/obs/")
}

// leadingNilGuard returns the guarded chain when fd's body begins with
// `if x == nil { return ... }` (in either operand order), or "".
func leadingNilGuard(fd *ast.FuncDecl) string {
	if len(fd.Body.List) == 0 {
		return ""
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return ""
	}
	if _, ok := ifs.Body.List[0].(*ast.ReturnStmt); !ok {
		return ""
	}
	return nilComparand(ifs.Cond, "==")
}

// nilGuard pairs an `if x != nil` condition chain with the guarded block.
type nilGuard struct {
	chain string
	body  *ast.BlockStmt
}

// enclosingNilGuards collects every `if x != nil` statement of fd whose
// body can shelter emissions.
func enclosingNilGuards(fd *ast.FuncDecl) []nilGuard {
	var guards []nilGuard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if chain := nilComparand(ifs.Cond, "!="); chain != "" {
			guards = append(guards, nilGuard{chain: chain, body: ifs.Body})
		}
		return true
	})
	return guards
}

// nilComparand returns the selector chain compared against nil with the
// given operator ("==" or "!="), or "" when the condition has another
// shape.
func nilComparand(cond ast.Expr, op string) string {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != op {
		return ""
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilLiteral(y) {
		return chainString(x)
	}
	if isNilLiteral(x) {
		return chainString(y)
	}
	return ""
}

func isNilLiteral(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// chainString renders a pure selector chain (idents joined by dots) and
// returns "" for anything else.
func chainString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := chainString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// dotPrefix reports whether guard names recv itself or a parent of it on
// the selector chain.
func dotPrefix(guard, recv string) bool {
	return guard == recv || strings.HasPrefix(recv, guard+".")
}

// exprLabel keeps diagnostics readable when the receiver could not be
// rendered.
func exprLabel(chain string) string {
	if chain == "" {
		return "<expr>"
	}
	return chain
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/ssa"
)

// LockOrder builds a static lock-ordering graph over the engine's
// sync.Mutex/RWMutex fields and flags two hazards:
//
//   - a cycle: lock A is taken while B is held on one path and B while
//     A is held on another — two goroutines interleaving those paths
//     deadlock;
//   - a same-lock self-edge: an instance of a lock is taken while
//     another instance of the same (static) lock may be held. The
//     sharded buffer pool is the motivating case — shard locks have no
//     fixed order, so holding two at once deadlocks against any peer
//     doing the same in the opposite shard order.
//
// Held-lock sets are propagated over the SSA-lite CFG (may-analysis,
// union at joins); a deferred Unlock keeps its lock held to function
// exit, matching runtime behavior. Calls to statically resolvable
// module functions are summarized by the set of locks they (or their
// callees) may acquire, so an acquisition buried two calls deep still
// produces the ordering edge at the outer call site. Goroutine bodies
// start with an empty held set — a spawned function does not inherit
// its spawner's locks.
type LockOrder struct {
	// Scopes are import-path fragments; only mutexes declared in these
	// packages participate.
	Scopes []string
}

// NewLockOrder returns the check configured for the engine's
// concurrency-bearing packages.
func NewLockOrder() *LockOrder {
	return &LockOrder{Scopes: []string{"internal/storage", "internal/rtree", "internal/core"}}
}

// Name implements Check.
func (c *LockOrder) Name() string { return "lockorder" }

// lockEdge is one ordered acquisition: to was locked while from was
// held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

// Run implements Check.
func (c *LockOrder) Run(prog *Program) []Diagnostic {
	g := prog.Callgraph()

	// Phase 1: per-function held-set analysis. Records direct ordering
	// edges, per-function acquisition summaries, and call sites made
	// while holding locks.
	acquired := make(map[any]map[*types.Var]bool)
	type heldCall struct {
		held   []*types.Var
		callee *types.Func
		pos    token.Pos
	}
	var calls []heldCall
	var edges []lockEdge
	for _, pkg := range prog.Packages {
		for _, fs := range funcsOf(prog, pkg) {
			key := funcKey(fs)
			if key == nil {
				continue
			}
			acq, es, cs := c.analyzeFunc(prog, fs)
			acquired[key] = acq
			edges = append(edges, es...)
			for _, hc := range cs {
				calls = append(calls, heldCall{hc.held, hc.callee, hc.pos})
			}
		}
	}

	// Phase 2: close summaries over the callgraph — the locks a
	// function may acquire include those of everything it can call.
	mayAcquire := make(map[any]map[*types.Var]bool)
	var closure func(key any, seen map[any]bool) map[*types.Var]bool
	closure = func(key any, seen map[any]bool) map[*types.Var]bool {
		if m, ok := mayAcquire[key]; ok {
			return m
		}
		if seen[key] {
			return acquired[key]
		}
		seen[key] = true
		m := make(map[*types.Var]bool)
		for v := range acquired[key] {
			m[v] = true
		}
		for _, succ := range g.edges[key] {
			for v := range closure(succ, seen) {
				m[v] = true
			}
		}
		mayAcquire[key] = m
		return m
	}
	for key := range acquired {
		closure(key, make(map[any]bool))
	}

	// Phase 3: interprocedural edges from calls made under locks.
	for _, hc := range calls {
		for v := range mayAcquire[any(hc.callee)] {
			for _, h := range hc.held {
				edges = append(edges, lockEdge{from: h, to: v, pos: hc.pos})
			}
		}
	}

	return c.report(prog, edges)
}

// funcKey maps a FuncSource to its callgraph node.
func funcKey(fs FuncSource) any {
	switch d := fs.Decl.(type) {
	case *ast.FuncDecl:
		if fn, ok := fs.Pkg.Info.Defs[d.Name].(*types.Func); ok {
			return fn
		}
	case *ast.FuncLit:
		return d
	}
	return nil
}

// lockEventKind distinguishes the primitive held-set transitions.
type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evCall
)

type lockEvent struct {
	kind   lockEventKind
	lock   *types.Var
	callee *types.Func
	pos    token.Pos
}

// analyzeFunc runs the held-set fixpoint over one function and returns
// its acquisition summary, direct ordering edges, and under-lock calls.
func (c *LockOrder) analyzeFunc(prog *Program, fs FuncSource) (map[*types.Var]bool, []lockEdge, []struct {
	held   []*types.Var
	callee *types.Func
	pos    token.Pos
}) {
	info := fs.Pkg.Info
	f := prog.IR(fs)
	events := make(map[*ssa.Block][]lockEvent)
	acq := make(map[*types.Var]bool)
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			evs := c.eventsOf(info, n)
			events[b] = append(events[b], evs...)
			for _, e := range evs {
				if e.kind == evLock {
					acq[e.lock] = true
				}
			}
		}
	}

	// May-held fixpoint: in[b] = union out[preds]; out = transfer(in).
	in := make(map[*ssa.Block]map[*types.Var]bool)
	out := make(map[*ssa.Block]map[*types.Var]bool)
	for _, b := range f.Blocks {
		in[b] = map[*types.Var]bool{}
		out[b] = map[*types.Var]bool{}
	}
	apply := func(b *ssa.Block, record bool, edges *[]lockEdge, calls *[]struct {
		held   []*types.Var
		callee *types.Func
		pos    token.Pos
	}) map[*types.Var]bool {
		held := make(map[*types.Var]bool, len(in[b]))
		for v := range in[b] {
			held[v] = true
		}
		for _, e := range events[b] {
			switch e.kind {
			case evLock:
				if record {
					for h := range held {
						*edges = append(*edges, lockEdge{from: h, to: e.lock, pos: e.pos})
					}
				}
				held[e.lock] = true
			case evUnlock:
				delete(held, e.lock)
			case evCall:
				if record && len(held) > 0 {
					hs := make([]*types.Var, 0, len(held))
					for v := range held {
						hs = append(hs, v)
					}
					*calls = append(*calls, struct {
						held   []*types.Var
						callee *types.Func
						pos    token.Pos
					}{hs, e.callee, e.pos})
				}
			}
		}
		return held
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			inb := in[b]
			for _, p := range b.Preds {
				for v := range out[p] {
					if !inb[v] {
						inb[v] = true
						changed = true
					}
				}
			}
			nout := apply(b, false, nil, nil)
			if len(nout) != len(out[b]) {
				out[b] = nout
				changed = true
			} else {
				for v := range nout {
					if !out[b][v] {
						out[b] = nout
						changed = true
						break
					}
				}
			}
		}
	}
	var edges []lockEdge
	var calls []struct {
		held   []*types.Var
		callee *types.Func
		pos    token.Pos
	}
	for _, b := range f.Blocks {
		apply(b, true, &edges, &calls)
	}
	return acq, edges, calls
}

// eventsOf extracts the lock events of one recorded block node, in
// traversal order. Deferred statements are skipped entirely: a deferred
// Unlock keeps the lock held (which the held-set fixpoint models by
// never seeing the release), and deferred work runs outside the block's
// sequential order. Goroutine spawns are skipped too — the spawned body
// is analyzed as its own function with an empty held set.
func (c *LockOrder) eventsOf(info *types.Info, n ast.Node) []lockEvent {
	var evs []lockEvent
	ssa.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if ok {
				if v := c.mutexOf(info, sel.X); v != nil {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						evs = append(evs, lockEvent{kind: evLock, lock: v, pos: m.Lparen})
						return true
					case "Unlock", "RUnlock":
						evs = append(evs, lockEvent{kind: evUnlock, lock: v, pos: m.Lparen})
						return true
					}
				}
			}
			if fn := staticCallee(info, m); fn != nil {
				evs = append(evs, lockEvent{kind: evCall, callee: fn, pos: m.Lparen})
			}
		}
		return true
	})
	return evs
}

// mutexOf resolves an expression to a scoped mutex variable: a struct
// field or plain variable of type sync.Mutex / sync.RWMutex declared in
// one of the configured packages.
func (c *LockOrder) mutexOf(info *types.Info, e ast.Expr) *types.Var {
	var v *types.Var
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ = sel.Obj().(*types.Var)
		} else if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
			v = obj // package-qualified variable
		}
	case *ast.Ident:
		v, _ = info.Uses[e].(*types.Var)
	}
	if v == nil || v.Pkg() == nil || !pathInScope(v.Pkg().Path(), c.Scopes) {
		return nil
	}
	if !isMutexType(v.Type()) {
		return nil
	}
	return v
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// report deduplicates edges, finds self-edges and cycles, and renders
// diagnostics.
func (c *LockOrder) report(prog *Program, edges []lockEdge) []Diagnostic {
	type key struct{ from, to *types.Var }
	first := make(map[key]token.Pos)
	adj := make(map[*types.Var]map[*types.Var]bool)
	for _, e := range edges {
		k := key{e.from, e.to}
		if p, ok := first[k]; !ok || e.pos < p {
			first[k] = e.pos
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[*types.Var]bool)
		}
		adj[e.from][e.to] = true
	}
	// reaches reports whether a path from -> ... -> to exists.
	reaches := func(from, to *types.Var) bool {
		seen := map[*types.Var]bool{}
		stack := []*types.Var{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			for s := range adj[n] {
				stack = append(stack, s)
			}
		}
		return false
	}
	keys := make([]key, 0, len(first))
	for k := range first {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return first[keys[i]] < first[keys[j]] })
	var diags []Diagnostic
	for _, k := range keys {
		pos := prog.position(first[k])
		switch {
		case k.from == k.to:
			diags = append(diags, Diagnostic{
				Pos:   pos,
				Check: c.Name(),
				Message: fmt.Sprintf(
					"%s acquired while another instance of %s may already be held; instances of one lock have no fixed order (shard deadlock risk)",
					fieldName(k.from), fieldName(k.to)),
			})
		case reaches(k.to, k.from):
			diags = append(diags, Diagnostic{
				Pos:   pos,
				Check: c.Name(),
				Message: fmt.Sprintf(
					"%s acquired while %s is held, but the reverse order also exists; lock-order cycle deadlocks under concurrency",
					fieldName(k.to), fieldName(k.from)),
			})
		}
	}
	return diags
}

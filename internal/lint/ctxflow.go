package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// This file is the shared substrate of the ctxflow pass — the three
// cancellation-correctness checks ctxprop, cancelpoll and ctxleak (see
// DESIGN.md §11). It computes interprocedural summaries over the memoized
// callgraph:
//
//   - cancels: the function polls the context (calls ctx.Err or ctx.Done
//     on a context.Context value), directly or through a callee. A loop
//     that calls a summarized canceller is interruptible without spelling
//     the poll inline — this is how the engine's stride-gated
//     cancelGate.poll makes every driver loop a cancellation point.
//   - waitsDone: the function receives from a context's Done channel
//     (<-ctx.Done(), typically a select case), directly or through a
//     callee. The ctxleak check accepts a spawned goroutine that
//     transitively waits on Done.
//   - reachesIO: the function calls into the storage or R-tree layers,
//     directly or through a callee. Together with a list of hot-path
//     callee names this classifies loops as "potentially unbounded" for
//     cancelpoll.
//
// All three are may-analyses over the callgraph-lite edges: an edge
// over-approximates (a literal may run whenever its encloser does, a
// method value may be invoked by its receiver), so a summary can claim a
// poll that a particular path never executes. That direction of error
// makes cancelpoll lenient, never noisy — the checks enforce the presence
// of cancellation machinery, and a missing poll has no path to hide on.

// bodyInspect walks a whole function body like ast.Inspect but never
// descends into a nested function literal's body: a literal is its own
// FuncSource and callgraph node, so its statements must not be
// attributed to the encloser. Unlike ssa.Inspect — which serves
// per-block node walks and so also skips range bodies (they live in
// successor blocks) — this walker does descend into loop bodies, which
// is what a function-at-a-time scan needs.
func bodyInspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !fn(m) {
			return false
		}
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

// isContextType reports whether t is context.Context (possibly behind a
// pointer).
func isContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParamIndex returns the index of the first context.Context parameter
// of sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

// deadContextCall returns "context.Background()" or "context.TODO()" when
// e is a direct call of one of those constructors, and "" otherwise.
func deadContextCall(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return "context." + name + "()"
	}
	return ""
}

// ctxMethodName returns "Err" or "Done" when call invokes that method on
// a context.Context value, and "" otherwise.
func ctxMethodName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return ""
	}
	if t := info.TypeOf(sel.X); t != nil && isContextType(t) {
		return sel.Sel.Name
	}
	return ""
}

// ctxFacts bundles the callgraph with per-node bodies and the propagated
// summaries. One instance serves one check run.
type ctxFacts struct {
	g *callgraph
	// bodies and infos index the shallow body and type info of every
	// callgraph node (*types.Func of a declared function, or
	// *ast.FuncLit).
	bodies map[any]*ast.BlockStmt
	infos  map[any]*types.Info
	// cancels marks nodes that poll ctx.Err/ctx.Done, transitively.
	cancels map[any]bool
	// waitsDone marks nodes that receive from a Done channel, transitively.
	waitsDone map[any]bool
}

// newCtxFacts builds the summaries over every loaded package.
func newCtxFacts(prog *Program) *ctxFacts {
	f := &ctxFacts{
		g:      prog.Callgraph(),
		bodies: make(map[any]*ast.BlockStmt),
		infos:  make(map[any]*types.Info),
	}
	directCancel := make(map[any]bool)
	directDone := make(map[any]bool)
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, fs := range funcsOf(prog, pkg) {
			node := fs.node(pkg)
			if node == nil {
				continue
			}
			f.bodies[node] = fs.Body
			f.infos[node] = info
			bodyInspect(fs.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if ctxMethodName(info, n) != "" {
						directCancel[node] = true
					}
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok &&
							ctxMethodName(info, call) == "Done" {
							directDone[node] = true
						}
					}
				}
				return true
			})
		}
	}
	f.cancels = propagateUp(f.g, directCancel)
	f.waitsDone = propagateUp(f.g, directDone)
	return f
}

// node resolves a FuncSource to its callgraph node: the *types.Func for a
// declared function, the *ast.FuncLit itself for a literal.
func (fs FuncSource) node(pkg *Package) any {
	switch d := fs.Decl.(type) {
	case *ast.FuncDecl:
		if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
			return fn
		}
		return nil
	case *ast.FuncLit:
		return d
	}
	return nil
}

// propagateUp closes a direct-fact map over the callgraph: a node holds
// the fact when it holds it directly or any callee (edge successor) does.
// The fixpoint iterates to a stable solution; cycles (recursion) converge
// because facts only ever turn on.
func propagateUp(g *callgraph, direct map[any]bool) map[any]bool {
	out := make(map[any]bool, len(direct))
	for n, v := range direct {
		if v {
			out[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for n, succs := range g.edges {
			if out[n] {
				continue
			}
			for _, s := range succs {
				if out[s] {
					out[n] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// callCancels reports whether a call expression invokes a summarized
// cancellation point.
func (f *ctxFacts) callCancels(info *types.Info, call *ast.CallExpr) bool {
	if ctxMethodName(info, call) != "" {
		return true
	}
	if fn := staticCallee(info, call); fn != nil {
		return f.cancels[fn]
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return f.cancels[lit]
	}
	return false
}

// strideOfCallee estimates the poll stride of a summarized canceller: the
// coarsest masked-counter gate in its own body, or 1 when the body is
// unavailable or ungated. A canceller reached through a further call
// level is not followed — the stride bound is a direct-idiom guard, and
// understating a stride only makes the check more lenient.
func (f *ctxFacts) strideOfCallee(fn any) int64 {
	body := f.bodies[fn]
	info := f.infos[fn]
	if body == nil || info == nil {
		return 1
	}
	stride := int64(1)
	bodyInspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			if s := strideOf(info, ifs.Cond); s > stride {
				stride = s
			}
		}
		return true
	})
	return stride
}

// strideOf extracts the poll stride from a counter guard: for a condition
// containing `expr & C` the stride is C+1 (the mask idiom
// `steps&(stride-1) == 0`), for `expr % C` it is C. Returns 0 when the
// expression carries no constant-masked counter.
func strideOf(info *types.Info, cond ast.Expr) int64 {
	var stride int64
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var c int64
		switch be.Op.String() {
		case "&":
			if v, ok := intConst(info, be.X); ok {
				c = v + 1
			} else if v, ok := intConst(info, be.Y); ok {
				c = v + 1
			}
		case "%":
			if v, ok := intConst(info, be.Y); ok {
				c = v
			}
		}
		if c > stride {
			stride = c
		}
		return true
	})
	return stride
}

// intConst evaluates e as a constant int64 via the type-checker's folding
// (so named constants and constant arithmetic like cancelStride-1 work).
func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// funcLabel renders a callee for diagnostics: "pkg.Func" or
// "(*T).Method".
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return fmt.Sprintf("(*%s).%s", named.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

package lint

import (
	"fmt"
	"go/types"
)

// BufferDiscipline enforces the buffer pool's concurrency contract: Get
// returns the pooled page slice, which a concurrent eviction may reuse
// while the caller still reads it, so any function reachable from a
// goroutine spawn must use View (which pins the page under the shard lock
// for the duration of the callback). The check finds every go statement in
// the analyzed packages, walks the callgraph from the spawned functions
// and flags reachable calls to BufferPool.Get or BufferPool.Put.
type BufferDiscipline struct {
	// PoolPkg is the import-path fragment of the package declaring the
	// pool type (matched with pathInScope).
	PoolPkg string
	// PoolType is the name of the pool type.
	PoolType string
	// Methods are the method names concurrent code must not call.
	Methods []string
}

// NewBufferDiscipline returns the check configured for
// internal/storage.BufferPool.
func NewBufferDiscipline() *BufferDiscipline {
	return &BufferDiscipline{
		PoolPkg:  "internal/storage",
		PoolType: "BufferPool",
		Methods:  []string{"Get", "Put"},
	}
}

// Name implements Check.
func (c *BufferDiscipline) Name() string { return "bufferdiscipline" }

// Run implements Check.
func (c *BufferDiscipline) Run(prog *Program) []Diagnostic {
	g := buildCallgraph(prog)
	reach := g.reachableFromGo()
	var diags []Diagnostic
	for node, spawn := range reach {
		for _, call := range g.calls[node] {
			if !c.isForbidden(call.callee) {
				continue
			}
			spawnPos := prog.position(spawn)
			diags = append(diags, Diagnostic{
				Pos:   prog.position(call.pos),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"(*%s).%s called on a path reachable from a goroutine (go statement at %s:%d); concurrent readers must use View",
					c.PoolType, call.callee.Name(), spawnPos.Filename, spawnPos.Line),
			})
		}
	}
	return diags
}

// isForbidden reports whether fn is one of the pool methods banned on
// concurrent paths.
func (c *BufferDiscipline) isForbidden(fn *types.Func) bool {
	named := false
	for _, m := range c.Methods {
		if fn.Name() == m {
			named = true
			break
		}
	}
	if !named || fn.Pkg() == nil || !pathInScope(fn.Pkg().Path(), []string{c.PoolPkg}) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named2, ok := recv.(*types.Named)
	return ok && named2.Obj().Name() == c.PoolType
}

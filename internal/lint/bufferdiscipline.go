package lint

import (
	"fmt"
	"go/types"
)

// DisciplineRule bans a set of methods of one type on goroutine-reachable
// paths.
type DisciplineRule struct {
	// Pkg is the import-path fragment of the package declaring the type
	// (matched with pathInScope).
	Pkg string
	// Type is the name of the type whose methods are restricted.
	Type string
	// Methods are the method names concurrent code must not call.
	Methods []string
	// Advice completes the diagnostic: what concurrent code should do
	// instead.
	Advice string
}

// BufferDiscipline enforces the storage layer's concurrency contracts.
//
// BufferPool: Get returns the pooled page slice, which a concurrent
// eviction may reuse while the caller still reads it, so any function
// reachable from a goroutine spawn must use View (which pins the page
// under the shard lock for the duration of the callback).
//
// NodeCache: Get and Add are the legal concurrent read path — a cache hit
// returns an immutable decoded node without touching BufferPool.View at
// all, and a miss publishes the fresh decode. The write side (Invalidate,
// Clear) belongs to the tree's single-writer mutation contract
// (writeNode/freeNode); a goroutine-reachable call to it means a query
// path is mutating the index, which the engine forbids.
//
// core.join: expandInto and scanLeaves are the sequential drivers' entry
// points — they assign the non-atomic auxiliary bound, offer into the
// shared K-heap and reuse the caller-owned destination buffer. The
// parallel engine's workers must instead pair beginExpand/finish with the
// shared atomic bound and call scanLeavesInto against a worker-local
// K-heap; a goroutine-reachable call to the sequential pair is a data
// race waiting for a scheduler.
//
// The check finds every go statement in the analyzed packages, walks the
// callgraph from the spawned functions and flags reachable calls to the
// restricted methods.
type BufferDiscipline struct {
	Rules []DisciplineRule
}

// NewBufferDiscipline returns the check configured for
// internal/storage.BufferPool and internal/rtree.NodeCache.
func NewBufferDiscipline() *BufferDiscipline {
	return &BufferDiscipline{
		Rules: []DisciplineRule{
			{
				Pkg:     "internal/storage",
				Type:    "BufferPool",
				Methods: []string{"Get", "Put"},
				Advice:  "concurrent readers must use View",
			},
			{
				Pkg:     "internal/rtree",
				Type:    "NodeCache",
				Methods: []string{"Invalidate", "Clear"},
				Advice:  "cache writes belong to the single-writer mutation path; concurrent readers use Get/Add only",
			},
			{
				Pkg:     "internal/core",
				Type:    "join",
				Methods: []string{"expandInto", "scanLeaves"},
				Advice:  "these drive the sequential contract (the shared K-heap, the non-atomic bound, the caller-owned dst buffer); parallel workers use beginExpand/finish and scanLeavesInto with per-worker state",
			},
		},
	}
}

// Name implements Check.
func (c *BufferDiscipline) Name() string { return "bufferdiscipline" }

// Run implements Check.
func (c *BufferDiscipline) Run(prog *Program) []Diagnostic {
	g := prog.Callgraph()
	reach := g.reachableFromGo()
	var diags []Diagnostic
	for node, spawn := range reach {
		for _, call := range g.calls[node] {
			rule := c.forbiddenBy(call.callee)
			if rule == nil {
				continue
			}
			spawnPos := prog.position(spawn)
			diags = append(diags, Diagnostic{
				Pos:   prog.position(call.pos),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"(*%s).%s called on a path reachable from a goroutine (go statement at %s:%d); %s",
					rule.Type, call.callee.Name(), spawnPos.Filename, spawnPos.Line, rule.Advice),
			})
		}
	}
	return diags
}

// forbiddenBy returns the rule banning fn on concurrent paths, nil if fn is
// unrestricted.
func (c *BufferDiscipline) forbiddenBy(fn *types.Func) *DisciplineRule {
	for i := range c.Rules {
		rule := &c.Rules[i]
		named := false
		for _, m := range rule.Methods {
			if fn.Name() == m {
				named = true
				break
			}
		}
		if !named || fn.Pkg() == nil || !pathInScope(fn.Pkg().Path(), []string{rule.Pkg}) {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named2, ok := recv.(*types.Named); ok && named2.Obj().Name() == rule.Type {
			return rule
		}
	}
	return nil
}

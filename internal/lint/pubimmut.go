package lint

import (
	"fmt"
)

// PubImmut enforces safe publication: a field written only while its
// owning value is still private to the constructing goroutine —
// definitely before the value's earliest escape site — is
// immutable-after-publish and needs no lock (the happens-before edge of
// the go statement or channel send publishes the writes with the value).
// The check flags the writes that break the pattern: a write definitely
// *after* the enclosing function published the value, with no lock
// may-held and no atomic discipline. That write races with every reader
// the publication created, whether or not any reader has been written
// yet — the classic lazily-patched-after-spawn bug the parallel engine's
// pre-spawn-only configuration fields are designed around.
//
// Ordering is decided per function by dominance over the SSA-lite CFG
// (same block: node order); a write whose ordering against the escape
// site is ambiguous is left to sharedfield/guardlock, keeping this check
// quiet on loops that republish.
type PubImmut struct {
	// Scopes are import-path fragments; only fields declared in these
	// packages participate.
	Scopes []string
}

// NewPubImmut returns the check configured for the engine's shared
// state.
func NewPubImmut() *PubImmut {
	return &PubImmut{Scopes: sgScopes()}
}

// Name implements Check.
func (c *PubImmut) Name() string { return "pubimmut" }

// Run implements Check.
func (c *PubImmut) Run(prog *Program) []Diagnostic {
	facts := shareguardFacts(prog, c.Scopes)
	var diags []Diagnostic
	for _, field := range facts.fields {
		if facts.exempt(field) {
			continue
		}
		for _, a := range facts.accesses[field] {
			if !a.write || !a.postEscape {
				continue
			}
			if len(facts.heldAt(a)) > 0 {
				continue
			}
			site := prog.position(a.escapePos)
			diags = append(diags, Diagnostic{
				Pos:   prog.position(a.pos),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"field %s is written after its value was published to another goroutine at %s:%d; post-publication writes need a lock or sync/atomic",
					fieldName(field), site.Filename, site.Line),
			})
		}
	}
	return diags
}

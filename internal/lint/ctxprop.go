package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxProp enforces context propagation through the query entry points and
// join drivers (ctxflow rule 1, DESIGN.md §11): a cancellable call chain
// must stay cancellable. Three rules, applied to every function of the
// public package and the core engine:
//
//  1. A function that accepts a context.Context must not sever the chain
//     by passing context.Background()/context.TODO() to a callee that
//     accepts one — the caller's context is right there.
//  2. A function without a context parameter may call a context-accepting
//     callee with context.Background()/TODO() only as a delegating shim:
//     a single return statement forwarding to its own "<name>Context"
//     variant. That is exactly the compatibility surface the API keeps;
//     anywhere else, a Background call is an entry point dropping
//     cancellation.
//  3. A context parameter must be used — passed on or polled. An ignored
//     ctx is threading rot: the signature promises cancellation the body
//     does not deliver.
//
// The rules are syntactic about the severing call (only a literal
// context.Background()/TODO() argument is flagged; a context variable is
// trusted to be derived from the caller's) and callgraph-resolved about
// the callee, which keeps them precise on the engine's direct call
// style.
type CtxProp struct {
	// Scopes are import-path fragments for the checked packages; the
	// module root package is always in scope.
	Scopes []string
}

// NewCtxProp returns the check configured for the public API and the
// core engine.
func NewCtxProp() *CtxProp {
	return &CtxProp{Scopes: []string{"internal/core", "internal/shard"}}
}

// Name implements Check.
func (c *CtxProp) Name() string { return "ctxprop" }

// Run implements Check.
func (c *CtxProp) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if pkg.ImportPath != prog.Module.Path && !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		for _, fs := range funcsOf(prog, pkg) {
			diags = append(diags, c.checkFunc(prog, pkg, fs)...)
		}
	}
	return diags
}

func (c *CtxProp) checkFunc(prog *Program, pkg *Package, fs FuncSource) []Diagnostic {
	info := pkg.Info
	ctxParams := ctxParamVars(info, fs)
	var diags []Diagnostic

	// Rules 1 and 2: Background/TODO flowing into a context-accepting
	// callee. Shallow walk — a nested literal is its own FuncSource.
	bodyInspect(fs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		idx := ctxParamIndex(sig)
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		dead := deadContextCall(info, call.Args[idx])
		if dead == "" {
			return true
		}
		if len(ctxParams) > 0 {
			diags = append(diags, Diagnostic{
				Pos:   prog.position(call.Lparen),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"%s accepts a context.Context but passes %s to %s; thread the caller's context through",
					fs.Name, dead, funcLabel(callee)),
			})
			return true
		}
		if c.isShim(fs, callee) {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:   prog.position(call.Lparen),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"%s calls %s with %s outside a *Context delegating shim; accept a context.Context and pass it through",
				fs.Name, funcLabel(callee), dead),
		})
		return true
	})

	// Rule 3: every context parameter must be used somewhere in the body,
	// nested literals included (a capture propagates it just fine).
	for _, p := range ctxParams {
		used := false
		ast.Inspect(fs.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == p.obj {
				used = true
			}
			return !used
		})
		if !used {
			diags = append(diags, Diagnostic{
				Pos:   prog.position(p.pos.Pos()),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"%s accepts context parameter %q but never uses it; pass it to callees or poll it",
					fs.Name, p.obj.Name()),
			})
		}
	}
	return diags
}

// ctxParam is one context.Context parameter of a function.
type ctxParam struct {
	obj types.Object
	pos ast.Node
}

// ctxParamVars collects the context parameters of a declared function or
// literal. Unnamed and blank parameters are skipped: they cannot be used
// by construction, and an explicit `_ context.Context` is the idiom for
// intentionally satisfying an interface, not rot.
func ctxParamVars(info *types.Info, fs FuncSource) []ctxParam {
	var ft *ast.FuncType
	switch d := fs.Decl.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	default:
		return nil
	}
	var out []ctxParam
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			out = append(out, ctxParam{obj: obj, pos: name})
		}
	}
	return out
}

// isShim recognizes the allowlisted compatibility shims: a declared
// function whose entire body is one return statement delegating to its
// own "<name>Context" variant.
func (c *CtxProp) isShim(fs FuncSource, callee *types.Func) bool {
	fd, ok := fs.Decl.(*ast.FuncDecl)
	if !ok {
		return false
	}
	if len(fs.Body.List) != 1 {
		return false
	}
	if _, ok := fs.Body.List[0].(*ast.ReturnStmt); !ok {
		return false
	}
	return callee.Name() == fd.Name.Name+"Context"
}

package lint

import (
	"fmt"
	"go/ast"
)

// SqrtFree keeps the pruning and traversal hot paths free of math.Sqrt.
// All of the paper's pruning comparisons (MINMINDIST / MINMAXDIST /
// MAXMAXDIST against the bound T) are order-preserving under squaring, so
// the engine compares squared distances end to end and takes a single root
// only when reporting final results. A stray Sqrt in a comparison is both
// a silent performance regression and a numerical-robustness hazard; this
// check flags every math.Sqrt call in the hot-path packages outside an
// explicit allowlist of result-reporting functions.
type SqrtFree struct {
	// Scopes are the import-path fragments of the hot-path packages.
	Scopes []string
	// Allow lists the top-level functions (and methods, by bare name)
	// that may call math.Sqrt: the final result-reporting converters.
	Allow map[string]bool
}

// NewSqrtFree returns the check configured for the engine's hot-path
// packages and their reporting functions.
func NewSqrtFree() *SqrtFree {
	return &SqrtFree{
		Scopes: []string{"internal/core", "internal/geom", "internal/rtree"},
		Allow: map[string]bool{
			"Dist":                true, // Point.Dist, Metric.Dist
			"KeyToDist":           true, // Metric key -> reported distance
			"MinMinDist":          true,
			"MinMaxDist":          true,
			"MaxMaxDist":          true,
			"PointRectMinDist":    true,
			"PointRectMinMaxDist": true,
		},
	}
}

// Name implements Check.
func (c *SqrtFree) Name() string { return "sqrtfree" }

// Run implements Check.
func (c *SqrtFree) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if c.Allow[fd.Name.Name] {
					continue
				}
				name := fd.Name.Name
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := staticCallee(info, call)
					if fn == nil || fn.Name() != "Sqrt" || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:   prog.position(call.Pos()),
						Check: c.Name(),
						Message: fmt.Sprintf(
							"math.Sqrt in hot-path function %s; compare squared distances (only allowlisted result-reporting functions may take roots)",
							name),
					})
					return true
				})
			}
		}
	}
	return diags
}

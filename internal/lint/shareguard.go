package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/ssa"
)

// This file is the shared substrate of the shareguard pass — the three
// data-race checks sharedfield, guardlock and pubimmut (DESIGN.md §12).
// It classifies every access to a scoped struct field by who can reach
// it and what protects it:
//
//   - shared: the access happens in goroutine-reachable code, through a
//     base value that may be visible to more than one goroutine. The
//     base judgment is a global taint over variables: a variable is
//     tainted when it escapes to a goroutine in some function (the
//     ssa.AnalyzeEscapes layer: go captures, go call arguments, channel
//     sends, stores into already-escaping bases), when it is a
//     package-level variable, or when it is a parameter/receiver bound
//     to a tainted argument at any statically resolved call site — the
//     interprocedural closure that lets a worker's helper methods see
//     that their receiver is the published engine state, while a
//     worker-local heap stays untainted and free.
//   - guarded: the lockset that may be held at the access. Locksets are
//     the lockorder fixpoint (may-held, union at joins, deferred Unlock
//     keeps the lock) extended with an entry set per function: the
//     union over all statically resolved call sites of the caller's
//     held set, so a helper that is only ever called under mu counts as
//     guarded by mu. A function spawned by a go statement starts with
//     nothing held; an inline function literal inherits its encloser's
//     held set at the literal's position.
//   - published: whether the access is definitely before or definitely
//     after the base value's earliest escape site in the enclosing
//     function, decided by dominance (same block: node order). A write
//     that is definitely pre-escape is a constructor filling in a value
//     nobody else can see yet; a write definitely post-escape needs
//     synchronization (pubimmut).
//
// Every judgment errs on the lenient side — unresolvable calls break
// taint chains, the entry set is a union, unordered blocks are neither
// pre- nor post-escape — matching the ctxflow philosophy: a may-analysis
// that flags only what it can demonstrate on every reading stays quiet
// enough to hard-gate CI.
//
// A field can pin its intended guard with the declaration annotation
//
//	//lint:guardedby <lock>
//
// where <lock> names a sibling field of the same struct of type
// sync.Mutex or sync.RWMutex. Annotated fields are enforced by
// guardlock at every shared access (evidence or not) and skipped by
// sharedfield.

// sgScopes are the packages whose fields shareguard audits: everything
// the parallel engine and the shard executor share across goroutines.
func sgScopes() []string {
	return []string{"internal/core", "internal/rtree", "internal/storage", "internal/obs", "internal/shard"}
}

// sgAccess is one classified access to a scoped struct field.
type sgAccess struct {
	field *types.Var
	pos   token.Pos
	// write marks an assignment or inc/dec whose target is the field.
	write bool
	// node is the callgraph node of the enclosing function.
	node any
	// base is the root variable the selector chain starts from (nil when
	// the chain roots in a call result).
	base *types.Var
	// held is the local may-held lockset at the access (the enclosing
	// function's entry set is added by heldAt).
	held map[*types.Var]bool
	// preEscape / postEscape order the access against base's earliest
	// escape site in the enclosing function (both false when base does
	// not escape there or the blocks are unordered).
	preEscape  bool
	postEscape bool
	// escapePos is the escape site's position when postEscape is set.
	escapePos token.Pos
}

// sgFacts bundles everything the three shareguard checks consume.
type sgFacts struct {
	prog   *Program
	scopes []string
	// reach maps goroutine-reachable callgraph nodes to the spawn site
	// that first reached them.
	reach map[any]token.Pos
	// tainted marks variables that may be visible to >1 goroutine.
	tainted map[*types.Var]bool
	// accesses collects every scoped field access, keyed by field.
	accesses map[*types.Var][]*sgAccess
	// fields lists the access map's keys in declaration order.
	fields []*types.Var
	// entryHeld is the union of caller-held locksets per callgraph node.
	entryHeld map[any]map[*types.Var]bool
	// atomicUse marks fields whose address reaches a sync/atomic call
	// somewhere (the atomicfields check owns their consistency).
	atomicUse map[*types.Var]bool
	// guardedBy maps an annotated field to its declared lock field.
	guardedBy map[*types.Var]*types.Var
	// badGuards are malformed //lint:guardedby annotations, reported by
	// guardlock.
	badGuards []Diagnostic

	typeMemo map[types.Type]bool
}

// sgBind is one interprocedural binding for the taint fixpoint: param
// becomes tainted when any of roots is.
type sgBind struct {
	param *types.Var
	roots []*types.Var
}

// sgAlias is one intraprocedural alias/store edge for the taint
// fixpoint.
type sgAlias struct {
	// dst is the variable written (alias rule); nil for a store through
	// base (store rule, taints roots when base is tainted).
	dst   *types.Var
	base  *types.Var
	roots []*types.Var
}

// sgHeldCall is one statically resolved call site with the caller's held
// set, for the entry-set fixpoint.
type sgHeldCall struct {
	caller any
	callee any // *types.Func or *ast.FuncLit
	held   map[*types.Var]bool
}

// shareguardFacts builds (or returns the memoized) substrate.
func shareguardFacts(prog *Program, scopes []string) *sgFacts {
	if prog.sg != nil {
		return prog.sg
	}
	f := &sgFacts{
		prog:      prog,
		scopes:    scopes,
		reach:     prog.Callgraph().reachableFromGo(),
		tainted:   make(map[*types.Var]bool),
		accesses:  make(map[*types.Var][]*sgAccess),
		entryHeld: make(map[any]map[*types.Var]bool),
		atomicUse: make(map[*types.Var]bool),
		guardedBy: make(map[*types.Var]*types.Var),
		typeMemo:  make(map[types.Type]bool),
	}
	f.collectAtomicUse()
	f.collectAnnotations()

	var binds []sgBind
	var aliases []sgAlias
	var calls []sgHeldCall
	for _, pkg := range prog.Packages {
		for _, fs := range funcsOf(prog, pkg) {
			node := fs.node(pkg)
			if node == nil {
				continue
			}
			b, a, c := f.scanFunc(fs, node)
			binds = append(binds, b...)
			aliases = append(aliases, a...)
			calls = append(calls, c...)
		}
	}
	f.solveTaint(binds, aliases)
	f.solveEntryHeld(calls)
	for v := range f.accesses {
		f.fields = append(f.fields, v)
	}
	sort.Slice(f.fields, func(i, j int) bool { return f.fields[i].Pos() < f.fields[j].Pos() })
	prog.sg = f
	return f
}

// collectAtomicUse gathers the fields whose address flows into a
// sync/atomic call, mirroring the atomicfields check's first pass.
func (f *sgFacts) collectAtomicUse() {
	for _, pkg := range f.prog.Packages {
		info := pkg.Info
		walkFiles(pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(info, arg); fld != nil {
					f.atomicUse[fld] = true
				}
			}
			return true
		})
	}
}

// collectAnnotations parses //lint:guardedby annotations off struct field
// declarations in scope. A malformed annotation (missing lock name, no
// sibling field of that name, sibling is not a mutex) becomes a
// badGuards diagnostic.
func (f *sgFacts) collectAnnotations() {
	for _, pkg := range f.prog.Packages {
		if !pathInScope(pkg.ImportPath, f.scopes) {
			continue
		}
		info := pkg.Info
		walkFiles(pkg, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				lock, pos, ok := guardAnnotation(fld)
				if !ok {
					continue
				}
				f.bindAnnotation(info, st, fld, lock, pos)
			}
			return true
		})
	}
}

// guardAnnotation extracts the lock name of a field's //lint:guardedby
// comment, returning ok=false when the field carries none. An empty name
// returns ok=true with lock=="" so the caller can flag it.
func guardAnnotation(fld *ast.Field) (lock string, pos token.Pos, ok bool) {
	var comments []*ast.Comment
	if fld.Doc != nil {
		comments = append(comments, fld.Doc.List...)
	}
	if fld.Comment != nil {
		comments = append(comments, fld.Comment.List...)
	}
	for _, c := range comments {
		rest, found := strings.CutPrefix(c.Text, "//lint:guardedby")
		if !found {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", c.Pos(), true
		}
		return fields[0], c.Pos(), true
	}
	return "", token.NoPos, false
}

// bindAnnotation resolves one annotation: the named lock must be a
// sibling field of the same struct with a mutex type.
func (f *sgFacts) bindAnnotation(info *types.Info, st *ast.StructType, fld *ast.Field, lock string, pos token.Pos) {
	bad := func(format string, args ...any) {
		f.badGuards = append(f.badGuards, Diagnostic{
			Pos:     f.prog.position(pos),
			Check:   "guardlock",
			Message: fmt.Sprintf(format, args...),
		})
	}
	if lock == "" {
		bad(`malformed annotation: want "//lint:guardedby <lock>"`)
		return
	}
	var lockVar *types.Var
	for _, sib := range st.Fields.List {
		for _, name := range sib.Names {
			if name.Name == lock {
				lockVar, _ = info.Defs[name].(*types.Var)
			}
		}
	}
	if lockVar == nil {
		bad("//lint:guardedby names %s, which is not a field of this struct", lock)
		return
	}
	if !isMutexType(lockVar.Type()) {
		bad("//lint:guardedby names %s, which is not a sync.Mutex or sync.RWMutex", lock)
		return
	}
	for _, name := range fld.Names {
		if fv, ok := info.Defs[name].(*types.Var); ok {
			f.guardedBy[fv] = lockVar
		}
	}
}

// scanFunc walks one function's IR: it records scoped field accesses with
// their local locksets and escape ordering, and returns the taint binds,
// alias edges, and held call sites the global fixpoints need.
func (f *sgFacts) scanFunc(fs FuncSource, node any) ([]sgBind, []sgAlias, []sgHeldCall) {
	info := fs.Pkg.Info
	ir := f.prog.IR(fs)
	esc := f.prog.escFor(ir, info)
	dom := ir.Dominators()

	var binds []sgBind
	var aliases []sgAlias
	var calls []sgHeldCall

	// escLoc locates a variable's earliest escape site: its block and the
	// index of the recorded node within it.
	type loc struct {
		block *ssa.Block
		idx   int
	}
	escLoc := make(map[*types.Var]loc)
	for _, v := range esc.Escaping() {
		site := esc.Site(v)
		if site == nil {
			continue
		}
		for _, b := range ir.Blocks {
			for i, n := range b.Nodes {
				if n == site {
					escLoc[v] = loc{b, i}
				}
			}
		}
	}

	// May-held fixpoint over the blocks (the lockorder discipline:
	// union at joins, deferred Unlock never seen so the lock stays held,
	// go/defer bodies skipped).
	events := make(map[*ssa.Block][]lockEvent)
	for _, b := range ir.Blocks {
		for _, n := range b.Nodes {
			events[b] = append(events[b], f.lockEventsOf(info, n)...)
		}
	}
	in := sgHeldFixpoint(ir, events)

	// heldBefore replays block b's events up to (not including) pos.
	heldBefore := func(b *ssa.Block, pos token.Pos) map[*types.Var]bool {
		held := make(map[*types.Var]bool, len(in[b]))
		for v := range in[b] {
			held[v] = true
		}
		for _, e := range events[b] {
			if e.pos >= pos {
				break
			}
			switch e.kind {
			case evLock:
				held[e.lock] = true
			case evUnlock:
				delete(held, e.lock)
			}
		}
		return held
	}

	record := func(b *ssa.Block, idx int, sel *ast.SelectorExpr, write bool) {
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok || field.Pkg() == nil || !pathInScope(field.Pkg().Path(), f.scopes) {
			return
		}
		acc := &sgAccess{
			field: field,
			pos:   sel.Sel.Pos(),
			write: write,
			node:  node,
			base:  ssa.BaseVar(info, sel),
			held:  heldBefore(b, sel.Pos()),
		}
		if acc.base != nil {
			if l, ok := escLoc[acc.base]; ok {
				switch {
				case l.block == b:
					site := b.Nodes[l.idx]
					if sel.Pos() < site.Pos() {
						acc.preEscape = true
					} else if sel.Pos() >= site.End() {
						acc.postEscape = true
						acc.escapePos = site.Pos()
					}
				case dom.Dominates(l.block, b):
					acc.postEscape = true
					acc.escapePos = b.Nodes[0].Pos()
					if site := esc.Site(acc.base); site != nil {
						acc.escapePos = site.Pos()
					}
				case dom.Dominates(b, l.block):
					acc.preEscape = true
				}
			}
		}
		f.accesses[field] = append(f.accesses[field], acc)
	}

	// recordExpr registers every field selection under expr as a read.
	var recordExpr func(b *ssa.Block, idx int, e ast.Expr)
	recordExpr = func(b *ssa.Block, idx int, e ast.Expr) {
		if e == nil {
			return
		}
		ssa.Inspect(e, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				record(b, idx, sel, false)
			}
			return true
		})
	}

	// bindCall registers the taint binds of one call whose signature is
	// statically known (arguments to parameters, receiver expression to
	// the receiver) and returns the callee node for the held-call list —
	// the *types.Func for a resolved call, the *ast.FuncLit for a
	// directly invoked literal, nil for a dynamic call.
	bindCall := func(call *ast.CallExpr) any {
		var sig *types.Signature
		var callee any
		if fn := staticCallee(info, call); fn != nil {
			sig, _ = fn.Type().(*types.Signature)
			callee = fn
		} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			if t := info.TypeOf(lit); t != nil {
				sig, _ = t.(*types.Signature)
			}
			callee = lit
		}
		if sig == nil {
			return nil
		}
		if recv := sig.Recv(); recv != nil {
			if selx, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				binds = append(binds, sgBind{param: recv, roots: taintRoots(info, selx.X)})
			}
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var p *types.Var
			switch {
			case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
				p = params.At(i)
			case params.Len() > 0:
				p = params.At(params.Len() - 1) // variadic tail
			}
			if p != nil {
				binds = append(binds, sgBind{param: p, roots: taintRoots(info, arg)})
			}
		}
		return callee
	}

	// aliasOf registers the taint edges of one assignment pair.
	aliasOf := func(lhs, rhs ast.Expr) {
		if rhs == nil {
			return
		}
		switch t := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			roots := taintRoots(info, rhs)
			if len(roots) == 0 {
				return
			}
			if v, ok := info.Defs[t].(*types.Var); ok {
				aliases = append(aliases, sgAlias{dst: v, roots: roots})
			} else if v, ok := info.Uses[t].(*types.Var); ok {
				aliases = append(aliases, sgAlias{dst: v, roots: roots})
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			roots := ssa.RootVars(info, rhs)
			if len(roots) == 0 {
				return
			}
			if base := ssa.BaseVar(info, lhs); base != nil {
				aliases = append(aliases, sgAlias{base: base, roots: roots})
			}
		}
	}

	for _, b := range ir.Blocks {
		for idx, n := range b.Nodes {
			// Writes come from the statement's shape; everything else
			// under the node is a read.
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						record(b, idx, sel, true)
						recordExpr(b, idx, sel.X)
					} else {
						recordExpr(b, idx, lhs)
					}
				}
				for _, rhs := range n.Rhs {
					recordExpr(b, idx, rhs)
				}
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						aliasOf(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					record(b, idx, sel, true)
					recordExpr(b, idx, sel.X)
				} else {
					recordExpr(b, idx, n.X)
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
							for i, name := range vs.Names {
								recordExpr(b, idx, vs.Values[i])
								aliasOf(name, vs.Values[i])
							}
						}
					}
				}
			default:
				ssa.Inspect(n, func(m ast.Node) bool {
					if sel, ok := m.(*ast.SelectorExpr); ok {
						record(b, idx, sel, false)
					}
					return true
				})
			}

			// Call sites: taint binds always; held binds only for calls
			// that run here and now (not go, not defer).
			ssa.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.GoStmt:
					bindCall(m.Call)
					return false
				case *ast.DeferStmt:
					bindCall(m.Call)
					return false
				case *ast.CallExpr:
					if fn := bindCall(m); fn != nil {
						calls = append(calls, sgHeldCall{caller: node, callee: fn, held: heldBefore(b, m.Lparen)})
					}
				case *ast.FuncLit:
					calls = append(calls, sgHeldCall{caller: node, callee: m, held: heldBefore(b, m.Pos())})
					return false
				}
				return true
			})
		}
	}
	return binds, aliases, calls
}

// taintRoots collects the variables whose *storage* an expression's
// value may share: identifiers, address-of, dereference, and
// selector/index/slice chains. Unlike ssa.RootVars it does NOT traverse
// composite literals — `e := expansion{j: j}` builds a fresh value, and
// holding a pointer to shared state inside it does not make e's own
// storage shared. (The reverse direction still uses RootVars: storing a
// composite into an already-shared base publishes its contents.)
func taintRoots(info *types.Info, expr ast.Expr) []*types.Var {
	var out []*types.Var
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				out = append(out, v)
			} else if v, ok := info.Defs[e].(*types.Var); ok {
				out = append(out, v)
			}
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		}
	}
	walk(expr)
	return out
}

// lockEventsOf extracts the lock/unlock events of one block node, in
// traversal order, skipping defer and go bodies like lockorder does.
func (f *sgFacts) lockEventsOf(info *types.Info, n ast.Node) []lockEvent {
	var evs []lockEvent
	ssa.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := f.mutexOf(info, sel.X); v != nil {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					evs = append(evs, lockEvent{kind: evLock, lock: v, pos: m.Lparen})
				case "Unlock", "RUnlock":
					evs = append(evs, lockEvent{kind: evUnlock, lock: v, pos: m.Lparen})
				}
			}
		}
		return true
	})
	return evs
}

// mutexOf resolves an expression to a scoped mutex variable (field or
// plain variable of type sync.Mutex / sync.RWMutex).
func (f *sgFacts) mutexOf(info *types.Info, e ast.Expr) *types.Var {
	var v *types.Var
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ = sel.Obj().(*types.Var)
		} else if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
			v = obj
		}
	case *ast.Ident:
		v, _ = info.Uses[e].(*types.Var)
	}
	if v == nil || v.Pkg() == nil || !pathInScope(v.Pkg().Path(), f.scopes) {
		return nil
	}
	if !isMutexType(v.Type()) {
		return nil
	}
	return v
}

// sgHeldFixpoint runs the may-held dataflow (in = union of preds' out)
// and returns the per-block entry sets.
func sgHeldFixpoint(ir *ssa.Func, events map[*ssa.Block][]lockEvent) map[*ssa.Block]map[*types.Var]bool {
	in := make(map[*ssa.Block]map[*types.Var]bool)
	out := make(map[*ssa.Block]map[*types.Var]bool)
	for _, b := range ir.Blocks {
		in[b] = map[*types.Var]bool{}
		out[b] = map[*types.Var]bool{}
	}
	transfer := func(b *ssa.Block) map[*types.Var]bool {
		held := make(map[*types.Var]bool, len(in[b]))
		for v := range in[b] {
			held[v] = true
		}
		for _, e := range events[b] {
			switch e.kind {
			case evLock:
				held[e.lock] = true
			case evUnlock:
				delete(held, e.lock)
			}
		}
		return held
	}
	for changed := true; changed; {
		changed = false
		for _, b := range ir.Blocks {
			inb := in[b]
			for _, p := range b.Preds {
				for v := range out[p] {
					if !inb[v] {
						inb[v] = true
						changed = true
					}
				}
			}
			nout := transfer(b)
			if !sgSetEq(nout, out[b]) {
				out[b] = nout
				changed = true
			}
		}
	}
	return in
}

func sgSetEq(a, b map[*types.Var]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// solveTaint closes the tainted-variable set: seeds are per-function
// escapes and package-level variables; the closure adds assignment
// aliases, stores through tainted bases, and call-site bindings, to a
// fixpoint.
func (f *sgFacts) solveTaint(binds []sgBind, aliases []sgAlias) {
	for _, pkg := range f.prog.Packages {
		for _, fs := range funcsOf(f.prog, pkg) {
			ir := f.prog.IR(fs)
			for _, v := range f.prog.escFor(ir, fs.Pkg.Info).Escaping() {
				f.tainted[v] = true
			}
		}
	}
	isTainted := func(v *types.Var) bool {
		return v != nil && (f.tainted[v] || sgIsGlobal(v))
	}
	anyTainted := func(roots []*types.Var) bool {
		for _, r := range roots {
			if isTainted(r) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, b := range binds {
			if !f.tainted[b.param] && anyTainted(b.roots) {
				f.tainted[b.param] = true
				changed = true
			}
		}
		for _, a := range aliases {
			switch {
			case a.dst != nil:
				if !f.tainted[a.dst] && anyTainted(a.roots) {
					f.tainted[a.dst] = true
					changed = true
				}
			case a.base != nil && isTainted(a.base):
				for _, r := range a.roots {
					if !f.tainted[r] {
						f.tainted[r] = true
						changed = true
					}
				}
			}
		}
	}
}

// solveEntryHeld closes the per-function entry locksets over the call
// sites: entry(callee) ∪= held(site) ∪ entry(caller), except that a
// go-spawned function or literal starts with nothing held.
func (f *sgFacts) solveEntryHeld(calls []sgHeldCall) {
	goFns := make(map[any]bool)
	for _, r := range f.prog.Callgraph().roots {
		goFns[r.node] = true
	}
	for changed := true; changed; {
		changed = false
		for _, c := range calls {
			if goFns[c.callee] {
				// The spawn contributes nothing, and a function that is
				// ever spawned keeps an empty entry set even when also
				// called inline — the spawned execution is the one the
				// race analysis must survive.
				continue
			}
			dst := f.entryHeld[c.callee]
			if dst == nil {
				dst = make(map[*types.Var]bool)
				f.entryHeld[c.callee] = dst
			}
			add := func(v *types.Var) {
				if !dst[v] {
					dst[v] = true
					changed = true
				}
			}
			for v := range c.held {
				add(v)
			}
			for v := range f.entryHeld[c.caller] {
				add(v)
			}
		}
	}
}

// heldAt is an access's full may-held lockset: the local set plus the
// enclosing function's entry set.
func (f *sgFacts) heldAt(a *sgAccess) map[*types.Var]bool {
	entry := f.entryHeld[a.node]
	if len(entry) == 0 {
		return a.held
	}
	full := make(map[*types.Var]bool, len(a.held)+len(entry))
	for v := range a.held {
		full[v] = true
	}
	for v := range entry {
		full[v] = true
	}
	return full
}

// sharedAccesses filters a field's accesses down to the ones that can
// race: goroutine-reachable code, tainted base, not definitely before
// the base's publication.
func (f *sgFacts) sharedAccesses(field *types.Var) []*sgAccess {
	var out []*sgAccess
	for _, a := range f.accesses[field] {
		if _, ok := f.reach[a.node]; !ok {
			continue
		}
		if a.base == nil || (!f.tainted[a.base] && !sgIsGlobal(a.base)) {
			continue
		}
		if a.preEscape {
			continue
		}
		out = append(out, a)
	}
	return out
}

// exempt reports whether a field opts out of lock discipline: it is
// accessed through sync/atomic (atomicfields owns consistency), has an
// intrinsically atomic type, is itself a synchronization primitive, or
// is a channel.
func (f *sgFacts) exempt(field *types.Var) bool {
	if f.atomicUse[field] {
		return true
	}
	t := field.Type()
	if isAtomicType(t, f.typeMemo) || isSyncType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// isSyncType reports whether t is (or points to) a type declared in
// package sync — a mutex, wait group, once, cond, pool or map is itself
// a synchronization point, not a field to guard.
func isSyncType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

// sgIsGlobal reports whether v is a package-level variable.
func sgIsGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// spawnSite renders the goroutine spawn that reaches node, for messages.
func (f *sgFacts) spawnSite(node any) string {
	pos, ok := f.reach[node]
	if !ok {
		return "a goroutine"
	}
	p := f.prog.position(pos)
	return fmt.Sprintf("the goroutine spawned at %s:%d", p.Filename, p.Line)
}

// lockName renders a lock variable for messages.
func lockName(v *types.Var) string {
	return fieldName(v)
}

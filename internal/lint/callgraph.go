package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The callgraph built here is deliberately "lite": nodes are declared
// functions (identified by their *types.Func) and function literals
// (identified by their *ast.FuncLit), and edges are the statically
// resolvable calls — direct calls of package functions, method calls whose
// receiver type is concrete, an over-approximating edge from every
// function to the literals nested in its body (a literal may run whenever
// its encloser does: it is called inline, deferred, or passed as a
// callback), and an over-approximating edge for every method value taken
// without being called (s.worker used as a value may be invoked by
// whoever receives it). A goroutine spawned through a local variable
// (`w := s.worker; go w()`) is resolved through the SSA-lite reaching
// definitions of the spawn site. Calls through interfaces or
// function-typed parameters are not traced further; the engine's
// concurrent paths are all direct calls, and a missed edge here fails
// loud in review, not silent in production.

// cgCall is one statically resolved call site.
type cgCall struct {
	callee *types.Func
	pos    token.Pos
}

// cgRoot is a function started by a go statement.
type cgRoot struct {
	node any // *types.Func or *ast.FuncLit
	pos  token.Pos
}

// callgraph holds the nodes, edges, call sites and goroutine roots of the
// analyzed packages.
type callgraph struct {
	prog *Program
	// edges maps a node (*types.Func or *ast.FuncLit) to its successors.
	edges map[any][]any
	// calls maps a node to the call sites appearing directly in its body.
	calls map[any][]cgCall
	// roots are the functions spawned by go statements.
	roots []cgRoot
}

// buildCallgraph constructs the callgraph over the bodies of all functions
// declared in prog.Packages.
func buildCallgraph(prog *Program) *callgraph {
	g := &callgraph{
		prog:  prog,
		edges: make(map[any][]any),
		calls: make(map[any][]cgCall),
	}
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
						g.walkBody(info, fn, fd.Body)
					}
				}
			}
		}
	}
	return g
}

// walkBody records the calls, nested literals, method values and go
// statements of one function body under the node `from`.
func (g *callgraph) walkBody(info *types.Info, from any, body *ast.BlockStmt) {
	// calleeExprs marks selector expressions that are the function part
	// of a call, to tell a method call from a method value below (a
	// parent CallExpr is visited before its Fun child).
	calleeExprs := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.edges[from] = append(g.edges[from], n)
			g.walkBody(info, n, n.Body)
			return false // the nested walk owns the literal's body
		case *ast.GoStmt:
			g.addRoot(info, body, n)
			// Fall through into the call so argument expressions (and the
			// spawned callee itself, when resolvable) are still recorded as
			// ordinary work of the encloser.
		case *ast.CallExpr:
			calleeExprs[ast.Unparen(n.Fun)] = true
			if callee := staticCallee(info, n); callee != nil {
				g.edges[from] = append(g.edges[from], callee)
				g.calls[from] = append(g.calls[from], cgCall{callee: callee, pos: n.Lparen})
			}
		case *ast.SelectorExpr:
			if calleeExprs[n] {
				return true
			}
			// A method value taken without being called: whoever
			// receives the value may invoke it, so over-approximate
			// with an edge from the encloser.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					g.edges[from] = append(g.edges[from], fn)
				}
			}
		}
		return true
	})
}

// addRoot records the function started by a go statement. A spawn
// through a local function variable (`go w()`) is resolved through the
// reaching definitions of the spawn site: every definition of w that is
// a method value or a declared function contributes a root.
func (g *callgraph) addRoot(info *types.Info, body *ast.BlockStmt, stmt *ast.GoStmt) {
	fun := ast.Unparen(stmt.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		g.roots = append(g.roots, cgRoot{node: lit, pos: stmt.Go})
		return
	}
	if fn := staticCallee(info, stmt.Call); fn != nil {
		g.roots = append(g.roots, cgRoot{node: fn, pos: stmt.Go})
		return
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	f := g.prog.irFor("go-spawn", body, info)
	r := g.prog.reachFor(f, info)
	for _, def := range r.At(id, v) {
		if def.Rhs == nil {
			continue
		}
		switch rhs := ast.Unparen(def.Rhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[rhs]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					g.roots = append(g.roots, cgRoot{node: fn, pos: stmt.Go})
				}
			}
		case *ast.Ident:
			if fn, ok := info.Uses[rhs].(*types.Func); ok {
				g.roots = append(g.roots, cgRoot{node: fn, pos: stmt.Go})
			}
		case *ast.FuncLit:
			g.roots = append(g.roots, cgRoot{node: rhs, pos: stmt.Go})
		}
	}
}

// staticCallee resolves a call expression to the *types.Func it invokes,
// or nil when the callee is dynamic (a function value), a builtin, or a
// type conversion.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// reachableFromGo runs a BFS from every go-statement root and returns, for
// each reachable node, the root spawn site that first reached it.
func (g *callgraph) reachableFromGo() map[any]token.Pos {
	reach := make(map[any]token.Pos)
	var queue []any
	for _, r := range g.roots {
		if _, ok := reach[r.node]; !ok {
			reach[r.node] = r.pos
			queue = append(queue, r.node)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, succ := range g.edges[n] {
			if _, ok := reach[succ]; !ok {
				reach[succ] = reach[n]
				queue = append(queue, succ)
			}
		}
	}
	return reach
}

package lint

import (
	"fmt"
)

// SharedField flags struct fields that the goroutine-reachable code
// writes through a shared base value with no synchronization anywhere:
// no lock may-held at any shared access site, no sync/atomic discipline,
// no //lint:guardedby annotation. This is the "completely unprotected"
// tier of the shareguard pass — a field with *some* locking evidence but
// inconsistent coverage belongs to guardlock instead, and a field whose
// only writes happen before the value is published belongs to pubimmut's
// immutable-after-publish exemption (a definitely-pre-escape write never
// counts as shared here).
type SharedField struct {
	// Scopes are import-path fragments; only fields declared in these
	// packages participate.
	Scopes []string
}

// NewSharedField returns the check configured for the engine's shared
// state.
func NewSharedField() *SharedField {
	return &SharedField{Scopes: sgScopes()}
}

// Name implements Check.
func (c *SharedField) Name() string { return "sharedfield" }

// Run implements Check.
func (c *SharedField) Run(prog *Program) []Diagnostic {
	facts := shareguardFacts(prog, c.Scopes)
	var diags []Diagnostic
	for _, field := range facts.fields {
		if facts.exempt(field) {
			continue
		}
		if _, annotated := facts.guardedBy[field]; annotated {
			continue // guardlock enforces the declared guard
		}
		shared := facts.sharedAccesses(field)
		var firstWrite *sgAccess
		locked := false
		for _, a := range shared {
			if a.write && (firstWrite == nil || a.pos < firstWrite.pos) {
				firstWrite = a
			}
			if len(facts.heldAt(a)) > 0 {
				locked = true
			}
		}
		if firstWrite == nil || locked {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   prog.position(firstWrite.pos),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"field %s is written here with no lock held and is reachable from %s through shared state; guard every access with one mutex, move to sync/atomic, or declare the guard with //lint:guardedby",
				fieldName(field), facts.spawnSite(firstWrite.node)),
		})
	}
	return diags
}

package ssa

// Natural-loop detection from back edges: an edge a -> h is a back edge
// when h dominates a, and its natural loop is h plus every block that
// reaches a without passing through h. Loops sharing a header are
// merged, matching the textbook definition.

// Loop is one natural loop of a Func.
type Loop struct {
	// Head is the loop header (the target of the back edges).
	Head *Block
	// Blocks is the loop body, header included.
	Blocks map[*Block]bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// Loops finds the natural loops of f using the dominator tree d (pass
// f.Dominators(), shared with other consumers to avoid recomputing).
func (f *Func) Loops(d *Dom) []*Loop {
	byHead := make(map[*Block]*Loop)
	var order []*Block
	for _, b := range f.Blocks {
		if _, ok := d.idom[b]; !ok && b != f.Entry {
			continue // unreachable
		}
		for _, s := range b.Succs {
			if !d.Dominates(s, b) {
				continue
			}
			l := byHead[s]
			if l == nil {
				l = &Loop{Head: s, Blocks: map[*Block]bool{s: true}}
				byHead[s] = l
				order = append(order, s)
			}
			// Collect the body: walk predecessors back from the back
			// edge's source until the header bounds the walk.
			stack := []*Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				stack = append(stack, n.Preds...)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHead[h])
	}
	return loops
}

// InLoop reports whether block b lies inside any of the given loops.
func InLoop(loops []*Loop, b *Block) bool {
	for _, l := range loops {
		if l.Contains(b) {
			return true
		}
	}
	return false
}

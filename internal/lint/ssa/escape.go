package ssa

import (
	"go/ast"
	"go/types"
	"sort"
)

// Escape-to-goroutine analysis: which local variables of one function may
// become visible to another goroutine. This is the alias layer under the
// shareguard checks — a field access only participates in the data-race
// analysis when the value it is reached through may be shared, and
// sharing starts exactly here.
//
// The lattice is a two-point may-analysis per variable (local /
// escapes-to-goroutine) with three seed rules and a closure:
//
//   - go captures: every variable referenced by the function literal of a
//     go statement, and every variable appearing in the spawned call's
//     receiver or arguments, escapes at the go statement.
//   - channel sends: `ch <- v` hands v to a receiver on an unknown
//     goroutine, so the variables of the sent expression escape.
//   - stores into escaping bases: `x.f = v` and `x[i] = v` publish v
//     wherever x is already visible, so once x escapes, v does too; a
//     store into a package-level variable escapes unconditionally.
//   - alias closure: `w := v` (including &v, v wrapped in a composite
//     literal, or a function literal capturing v) makes w and v views of
//     one object, so an escape of either escapes the other. The closure
//     runs to a fixpoint; calls are deliberately opaque (a value passed
//     to or returned from an ordinary call does not escape here — the
//     interprocedural half lives in the lint package's taint
//     propagation over the callgraph).
//
// Each escaping variable remembers its earliest escape site in source
// order. The safe-publication check uses the site to separate
// constructor writes (before the value is visible to any goroutine) from
// post-publication writes (after).

// Escapes holds the escape-to-goroutine facts of one Func.
type Escapes struct {
	f    *Func
	info *types.Info
	// sites maps each escaping variable to its earliest escape site (a
	// node recorded in a block of f).
	sites map[*types.Var]ast.Node
}

// AnalyzeEscapes computes the escape facts for f.
func AnalyzeEscapes(f *Func, info *types.Info) *Escapes {
	e := &Escapes{f: f, info: info, sites: make(map[*types.Var]ast.Node)}
	// Seed pass: go captures and channel sends.
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.GoStmt:
					e.seedGo(n, m)
				case *ast.SendStmt:
					e.markAll(n, RootVars(info, m.Value))
				}
				return true
			})
		}
	}
	// Closure: aliases and stores into escaping bases, to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, n := range b.Nodes {
				if e.propagate(n) {
					changed = true
				}
			}
		}
	}
	return e
}

// seedGo marks the captures of one go statement: the free variables of a
// spawned literal, and every variable of the call's function expression
// (the receiver of `go s.work()`, a spawned function variable) and
// arguments.
func (e *Escapes) seedGo(site ast.Node, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		e.markAll(site, capturedVars(e.info, lit))
	} else {
		e.markAll(site, RootVars(e.info, g.Call.Fun))
	}
	for _, arg := range g.Call.Args {
		e.markAll(site, RootVars(e.info, arg))
	}
}

// propagate applies the alias and store rules to one block node,
// reporting whether any new variable escaped.
func (e *Escapes) propagate(n ast.Node) bool {
	changed := false
	apply := func(lhs ast.Expr, rhs ast.Expr) {
		if rhs == nil {
			return
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			// Alias: lhs and rhs view one object. An escape of either
			// side escapes the other (the store may have happened before
			// the escape was discovered, so the rule is symmetric).
			v, ok := e.objOf(target)
			if !ok {
				return
			}
			roots := RootVars(e.info, rhs)
			if isGlobal(v) {
				changed = e.mark(n, v) || changed
			}
			if site, esc := e.sites[v]; esc {
				changed = e.markAll(site, roots) || changed
			}
			for _, r := range roots {
				if site, esc := e.sites[r]; esc {
					changed = e.mark(site, v) || changed
				}
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			// Store through a base: publishes rhs wherever the base is
			// visible.
			base := BaseVar(e.info, lhs)
			if base == nil {
				return
			}
			site, esc := e.sites[base]
			if !esc && !isGlobal(base) {
				return
			}
			if site == nil {
				site = n
			}
			changed = e.markAll(site, RootVars(e.info, rhs)) || changed
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				apply(n.Lhs[i], n.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			for i, name := range vs.Names {
				apply(name, vs.Values[i])
			}
		}
	}
	return changed
}

// objOf resolves an identifier to its variable object.
func (e *Escapes) objOf(id *ast.Ident) (*types.Var, bool) {
	if v, ok := e.info.Defs[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := e.info.Uses[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// mark records v as escaping at site (keeping the earliest site when v
// already escapes). Reports whether v is newly escaping.
func (e *Escapes) mark(site ast.Node, v *types.Var) bool {
	if v == nil {
		return false
	}
	if old, ok := e.sites[v]; ok {
		if site != nil && site.Pos() < old.Pos() {
			e.sites[v] = site
		}
		return false
	}
	e.sites[v] = site
	return true
}

func (e *Escapes) markAll(site ast.Node, vars []*types.Var) bool {
	changed := false
	for _, v := range vars {
		changed = e.mark(site, v) || changed
	}
	return changed
}

// Escaping lists the escaping variables in source-position order.
func (e *Escapes) Escaping() []*types.Var {
	out := make([]*types.Var, 0, len(e.sites))
	for v := range e.sites {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Escapes reports whether v may be visible to another goroutine.
func (e *Escapes) Escapes(v *types.Var) bool {
	_, ok := e.sites[v]
	return ok
}

// Site returns the earliest escape site of v (a node recorded in a block
// of the function), or nil when v does not escape.
func (e *Escapes) Site(v *types.Var) ast.Node { return e.sites[v] }

// RootVars collects the variables an expression's value may alias: the
// identifier itself, the operand of an address-of, the elements of a
// composite literal, the base of a selector/index/slice chain, and the
// captures of a function literal. Calls (including conversions) are
// opaque — their results are fresh values here.
func RootVars(info *types.Info, expr ast.Expr) []*types.Var {
	var out []*types.Var
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				out = append(out, v)
			} else if v, ok := info.Defs[e].(*types.Var); ok {
				out = append(out, v)
			}
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
					continue
				}
				walk(elt)
			}
		case *ast.FuncLit:
			out = append(out, capturedVars(info, e)...)
		}
	}
	walk(expr)
	return out
}

// BaseVar resolves the root variable of a selector/index/star chain
// (`x.f.g[i]` -> x), or nil when the chain roots in a call or literal.
func BaseVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[e].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// capturedVars lists the free variables of a function literal: variables
// referenced in its body but declared outside it.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// isGlobal reports whether v is a package-level variable (shared by
// definition: any goroutine of the process can reach it).
func isGlobal(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

package ssa

import (
	"go/ast"
	"go/types"
)

// Liveness: which variables may still be read after a given block. The
// backward dual of reaching definitions; kept intraprocedural like the
// rest of the IR.
//
// Uses inside nested function literals count as uses of the enclosing
// function's variables (a closure capturing v keeps it live), but
// assignments inside literals do not count as kills — the literal may
// run at any time, so the outer definition must stay live across it.

// Liveness holds the fixpoint solution for one Func.
type Liveness struct {
	in, out map[*Block]map[*types.Var]bool
}

// Live computes per-block live-in/live-out sets for f.
func Live(f *Func, info *types.Info) *Liveness {
	l := &Liveness{
		in:  make(map[*Block]map[*types.Var]bool),
		out: make(map[*Block]map[*types.Var]bool),
	}
	use := make(map[*Block]map[*types.Var]bool)
	def := make(map[*Block]map[*types.Var]bool)
	for _, b := range f.Blocks {
		u, d := map[*types.Var]bool{}, map[*types.Var]bool{}
		for _, n := range b.Nodes {
			// Uses first when they precede the def in the same node
			// (x = x + 1 uses then defines x); scanning uses before
			// applying the node's defs approximates that safely.
			for _, v := range usesOf(info, n) {
				if !d[v] {
					u[v] = true
				}
			}
			for _, dd := range defsOf(info, n) {
				d[dd.Var] = true
			}
		}
		use[b], def[b] = u, d
		l.in[b] = map[*types.Var]bool{}
		l.out[b] = map[*types.Var]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			outb := l.out[b]
			for _, s := range b.Succs {
				for v := range l.in[s] {
					if !outb[v] {
						outb[v] = true
						changed = true
					}
				}
			}
			inb := l.in[b]
			for v := range use[b] {
				if !inb[v] {
					inb[v] = true
					changed = true
				}
			}
			for v := range outb {
				if !def[b][v] && !inb[v] {
					inb[v] = true
					changed = true
				}
			}
		}
	}
	return l
}

// LiveIn reports whether v may be read on some path from the start of b.
func (l *Liveness) LiveIn(b *Block, v *types.Var) bool { return l.in[b][v] }

// LiveOut reports whether v may be read on some path after b.
func (l *Liveness) LiveOut(b *Block, v *types.Var) bool { return l.out[b][v] }

// usesOf collects the variables read by a recorded block node,
// including reads from nested function literals (captures).
func usesOf(info *types.Info, n ast.Node) []*types.Var {
	var uses []*types.Var
	// Deliberately ast.Inspect, not ssa.Inspect: closure bodies count
	// for uses (see the package comment above).
	skipDefs := collectDefIdents(info, n)
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if skipDefs[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			uses = append(uses, v)
		}
		return true
	})
	return uses
}

// collectDefIdents marks the identifiers that are pure definition sites
// of n (LHS of :=, range key/value), which are not reads.
func collectDefIdents(info *types.Info, n ast.Node) map[*ast.Ident]bool {
	m := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if _, isDef := info.Defs[id]; isDef {
				m[id] = true
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			mark(lhs)
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			mark(n.Key)
		}
		if n.Value != nil {
			mark(n.Value)
		}
	}
	return m
}

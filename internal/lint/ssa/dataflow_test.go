package ssa_test

import (
	"go/ast"
	"go/types"
	"testing"

	"repro/internal/lint/ssa"
)

// findIdent returns the n-th identifier (1-based) with the given name
// in the function body.
func findIdent(f *ssa.Func, name string, nth int) *ast.Ident {
	var found *ast.Ident
	count := 0
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			count++
			if count == nth {
				found = id
			}
		}
		return found == nil
	})
	return found
}

func varOf(t *testing.T, info *types.Info, id *ast.Ident) *types.Var {
	t.Helper()
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	t.Fatalf("identifier %s resolves to no variable", id.Name)
	return nil
}

func TestReachingDefsMergeAtJoin(t *testing.T) {
	f, info := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	r := ssa.Reach(f, info)
	// The x in `return x` sees both definitions.
	use := findIdent(f, "x", 3)
	defs := r.At(use, varOf(t, info, use))
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs at the return, got %d", len(defs))
	}
}

func TestReachingDefsKillInBlock(t *testing.T) {
	f, info := buildFunc(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	r := ssa.Reach(f, info)
	use := findIdent(f, "x", 3)
	defs := r.At(use, varOf(t, info, use))
	if len(defs) != 1 {
		t.Fatalf("want 1 reaching def (the second assignment), got %d", len(defs))
	}
	if lit, ok := defs[0].Rhs.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Errorf("reaching def should be x = 2, got %v", defs[0].Rhs)
	}
}

func TestResolveIdentChain(t *testing.T) {
	f, info := buildFunc(t, `package p
func g() float64 { return 1 }
func f() float64 {
	a := g()
	b := a
	return b
}`, "f")
	r := ssa.Reach(f, info)
	use := findIdent(f, "b", 2) // the b in `return b`
	resolved := r.ResolveIdent(use)
	if _, ok := resolved.(*ast.CallExpr); !ok {
		t.Errorf("want the g() call after chasing b -> a -> g(), got %T", resolved)
	}
}

func TestResolveIdentAmbiguousStaysPut(t *testing.T) {
	f, info := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	y := x
	return y
}`, "f")
	r := ssa.Reach(f, info)
	use := findIdent(f, "y", 2)
	resolved := r.ResolveIdent(use)
	// y has one def (x) but x has two: the chain must stop at x.
	if id, ok := resolved.(*ast.Ident); !ok || id.Name != "x" {
		t.Errorf("want resolution to stop at the ambiguous x, got %v", resolved)
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	f, info := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	l := ssa.Live(f, info)
	sUse := findIdent(f, "s", 2) // s in `s += i`
	v := varOf(t, info, sUse)
	// s is read after the loop, so it is live out of the loop body.
	body := f.BlockOf(f.Body.List[1].(*ast.ForStmt).Body.List[0])
	if body == nil {
		t.Fatal("loop body block not found")
	}
	if !l.LiveOut(body, v) {
		t.Error("s must be live out of the loop body (read by the return)")
	}
}

func TestLivenessDeadAfterLastUse(t *testing.T) {
	f, info := buildFunc(t, `package p
func sink(int) {}
func f() int {
	tmp := 41
	sink(tmp)
	return 7
}`, "f")
	l := ssa.Live(f, info)
	def := findIdent(f, "tmp", 1)
	v := varOf(t, info, def)
	if l.LiveOut(f.Entry, v) {
		t.Error("tmp is never read after the entry block; must be dead at its end")
	}
}

func TestLivenessCaptureByClosure(t *testing.T) {
	f, info := buildFunc(t, `package p
func f(c bool) func() int {
	x := 1
	var g func() int
	if c {
		g = func() int { return x }
	}
	return g
}`, "f")
	l := ssa.Live(f, info)
	def := findIdent(f, "x", 1)
	v := varOf(t, info, def)
	// x is captured by the literal in the then-branch; the capture
	// counts as a use, so x must be live out of the entry block.
	if !l.LiveOut(f.Entry, v) {
		t.Error("captured variable must be live out of the defining block")
	}
}

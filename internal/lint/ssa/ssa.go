// Package ssa is the SSA-lite intermediate representation behind the
// path-sensitive cpqlint checks. "Lite" is deliberate: the IR stops at
// basic blocks over the typed AST — no phi nodes, no virtual registers —
// because the factored form of SSA that the checks actually need
// (which definitions of a variable reach a use, which blocks must run
// before which) is recoverable from four classic analyses over the
// control-flow graph:
//
//   - a CFG of basic blocks per function body (cfg.go),
//   - the dominator tree (dom.go),
//   - natural-loop detection from back edges (loops.go),
//   - intraprocedural reaching definitions with def-use chains
//     (reaching.go) and liveness (liveness.go).
//
// The package is stdlib-only (go/ast + go/types), like the rest of the
// analyzer. It deals in the original AST nodes throughout, so checks can
// report positions without any mapping layer.
//
// Block contents follow one convention: a block holds simple statements
// as-is and, for compound statements, only the header parts that execute
// when control passes through the block (an if condition, a for
// condition, a switch tag, a range header). Nested bodies are laid out
// in successor blocks. Function literals are opaque values here — each
// literal gets its own Func when a check asks for one — so traversals of
// block contents must use Inspect below, which prunes literal bodies.
package ssa

import (
	"go/ast"
)

// Block is one basic block: a maximal straight-line run of nodes with
// edges only at the end.
type Block struct {
	// Index is the block's position in Func.Blocks (entry is 0).
	Index int
	// Nodes are the statements and header expressions executed by the
	// block, in source order.
	Nodes []ast.Node
	// Succs and Preds are the CFG edges.
	Succs []*Block
	Preds []*Block
}

// Func is the control-flow graph of one function or function-literal
// body.
type Func struct {
	// Name labels the function for debugging ("(*parHeap).work",
	// "func@42" for literals).
	Name string
	// Body is the AST body the graph was built from.
	Body *ast.BlockStmt
	// Blocks lists every block, entry first. Unreachable blocks (dead
	// code after a terminator) stay in the list with no predecessors.
	Blocks []*Block
	// Entry is Blocks[0]; Exit is the synthetic sink every return,
	// panic and fallthrough-off-the-end edge targets. Exit holds no
	// nodes.
	Entry, Exit *Block

	blockOf map[ast.Node]*Block
}

// BlockOf returns the block holding node n. For a node that was not
// appended directly (a sub-expression of a recorded statement), the
// enclosing recorded node's block is found by position containment.
// Returns nil for nodes outside the function (including nodes inside
// nested function literals).
func (f *Func) BlockOf(n ast.Node) *Block {
	if b, ok := f.blockOf[n]; ok {
		return b
	}
	for _, b := range f.Blocks {
		for _, m := range b.Nodes {
			if m.Pos() <= n.Pos() && n.End() <= m.End() && containsShallow(m, n) {
				return b
			}
		}
	}
	return nil
}

// containsShallow reports whether target occurs under root without
// crossing into a nested function literal.
func containsShallow(root, target ast.Node) bool {
	found := false
	Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// Inspect is ast.Inspect restricted to the current function: it visits
// *ast.FuncLit nodes themselves but never their bodies (a literal is a
// value here; its body is a different Func), and for a *ast.RangeStmt
// header recorded in a block it visits only the key/value expressions
// (the range operand is recorded separately in the pre-loop block, and
// the body lives in successor blocks).
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !fn(m) {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if m.Key != nil {
				Inspect(m.Key, fn)
			}
			if m.Value != nil {
				Inspect(m.Value, fn)
			}
			return false
		}
		return true
	})
}

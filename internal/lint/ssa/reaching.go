package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Reaching definitions: which assignments of a local variable may still
// be in effect at a given program point. This is the factored def-use
// form the checks consume instead of materialized SSA — a use's
// reaching-definition set is exactly the operand list its phi-chain
// would carry.

// Def is one definition of a variable.
type Def struct {
	// Var is the defined variable.
	Var *types.Var
	// Node is the defining statement (or range header).
	Node ast.Node
	// Rhs is the defining expression when one is statically attributable
	// (single-value assignment, initialized var declaration); nil for
	// multi-value assignments, ++/--, compound assignment, range
	// headers and zero-value declarations.
	Rhs ast.Expr

	index int
}

// Reaching holds the fixpoint solution for one Func.
type Reaching struct {
	f    *Func
	info *types.Info
	defs []*Def
	// in[b] is the bitset of defs reaching the start of block b.
	in map[*Block][]uint64
	// byNode caches defs grouped by their defining node.
	byNode map[ast.Node][]*Def
}

// Reach computes reaching definitions for f. Function parameters have
// no Def (there is no defining statement); a variable with an empty
// reaching set at a use is therefore "defined outside the body" —
// callers must treat that conservatively.
func Reach(f *Func, info *types.Info) *Reaching {
	r := &Reaching{
		f:      f,
		info:   info,
		in:     make(map[*Block][]uint64),
		byNode: make(map[ast.Node][]*Def),
	}
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			for _, d := range defsOf(info, n) {
				d.index = len(r.defs)
				r.defs = append(r.defs, d)
				r.byNode[n] = append(r.byNode[n], d)
			}
		}
	}
	words := (len(r.defs) + 63) / 64
	// Per-variable kill masks.
	killByVar := make(map[*types.Var][]uint64)
	for _, d := range r.defs {
		m := killByVar[d.Var]
		if m == nil {
			m = make([]uint64, words)
			killByVar[d.Var] = m
		}
		m[d.index/64] |= 1 << (d.index % 64)
	}
	// Block-local gen/kill by a forward scan (later defs of a variable
	// supersede earlier ones within the block).
	gen := make(map[*Block][]uint64)
	kill := make(map[*Block][]uint64)
	for _, b := range f.Blocks {
		g, k := make([]uint64, words), make([]uint64, words)
		for _, n := range b.Nodes {
			for _, d := range r.byNode[n] {
				vk := killByVar[d.Var]
				for w := range g {
					g[w] &^= vk[w]
					k[w] |= vk[w]
				}
				g[d.index/64] |= 1 << (d.index % 64)
			}
		}
		gen[b], kill[b] = g, k
		r.in[b] = make([]uint64, words)
	}
	// Forward fixpoint: in[b] = union of out[p]; out = gen | (in &^ kill).
	out := make(map[*Block][]uint64)
	for _, b := range f.Blocks {
		out[b] = make([]uint64, words)
		copy(out[b], gen[b])
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			inb := r.in[b]
			for _, p := range b.Preds {
				for w, v := range out[p] {
					inb[w] |= v
				}
			}
			for w := range inb {
				nv := gen[b][w] | (inb[w] &^ kill[b][w])
				if nv != out[b][w] {
					out[b][w] = nv
					changed = true
				}
			}
		}
	}
	return r
}

// At returns the definitions of v that may reach the given use site.
// use must be a node recorded in a block or nested (shallowly) inside
// one; nil is returned when the node cannot be located.
func (r *Reaching) At(use ast.Node, v *types.Var) []*Def {
	b := r.f.BlockOf(use)
	if b == nil {
		return nil
	}
	live := make([]uint64, len(r.in[b]))
	copy(live, r.in[b])
	// Apply the block's defs up to (not including) the node containing
	// the use.
	for _, n := range b.Nodes {
		if n == use || (n.Pos() <= use.Pos() && use.End() <= n.End()) {
			break
		}
		for _, d := range r.byNode[n] {
			for i, od := range r.defs {
				if od.Var == d.Var {
					live[i/64] &^= 1 << (i % 64)
				}
			}
			live[d.index/64] |= 1 << (d.index % 64)
		}
	}
	var res []*Def
	for _, d := range r.defs {
		if d.Var == v && live[d.index/64]&(1<<(d.index%64)) != 0 {
			res = append(res, d)
		}
	}
	return res
}

// Defs returns every definition in the function, in block order.
func (r *Reaching) Defs() []*Def { return r.defs }

// ResolveIdent chases an identifier through its reaching definitions:
// if id has exactly one reaching definition with a known Rhs, that Rhs
// is returned (unwrapping further single-definition identifiers); the
// identifier itself is returned when the chain cannot be resolved
// uniquely. This is the SSA-style "look through the virtual register"
// operation the monotone-bound check uses to evaluate store arguments.
func (r *Reaching) ResolveIdent(e ast.Expr) ast.Expr {
	for i := 0; i < 8; i++ { // depth guard against pathological chains
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return e
		}
		v, ok := r.info.Uses[id].(*types.Var)
		if !ok {
			return e
		}
		defs := r.At(id, v)
		if len(defs) != 1 || defs[0].Rhs == nil {
			return e
		}
		e = defs[0].Rhs
	}
	return e
}

// defsOf extracts the variable definitions a recorded block node makes.
func defsOf(info *types.Info, n ast.Node) []*Def {
	var defs []*Def
	add := func(id *ast.Ident, node ast.Node, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		var v *types.Var
		if obj, ok := info.Defs[id].(*types.Var); ok {
			v = obj
		} else if obj, ok := info.Uses[id].(*types.Var); ok {
			v = obj
		}
		if v != nil {
			defs = append(defs, &Def{Var: v, Node: node, Rhs: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		single := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if single && (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) {
				rhs = n.Rhs[i]
			}
			add(id, n, rhs)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				}
				add(name, n, rhs)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			add(id, n, nil)
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			add(id, n, nil)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			add(id, n, nil)
		}
	}
	return defs
}

package ssa_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/ssa"
)

// buildFunc type-checks src (a complete file) and builds the CFG of the
// function named name.
func buildFunc(t testing.TB, src, name string) (*ssa.Func, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
			return ssa.Build(name, fd.Body, info), info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// reachable returns the blocks reachable from Entry.
func reachable(f *ssa.Func) map[*ssa.Block]bool {
	seen := map[*ssa.Block]bool{f.Entry: true}
	stack := []*ssa.Block{f.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestIfElseJoin(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	if len(f.Exit.Preds) != 1 {
		t.Errorf("want 1 exit pred (the join's return), got %d", len(f.Exit.Preds))
	}
	d := f.Dominators()
	for b := range reachable(f) {
		if !d.Dominates(f.Entry, b) {
			t.Errorf("entry must dominate block %d", b.Index)
		}
	}
	if got := len(f.Entry.Succs); got != 2 {
		t.Errorf("condition block should branch two ways, got %d succs", got)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}`, "f")
	d := f.Dominators()
	loops := f.Loops(d)
	if len(loops) != 1 {
		t.Fatalf("want 1 natural loop, got %d", len(loops))
	}
	l := loops[0]
	if !d.Dominates(l.Head, l.Head) || len(l.Blocks) < 3 {
		t.Errorf("loop body too small: %d blocks", len(l.Blocks))
	}
	// The head must dominate every block of the loop.
	for b := range l.Blocks {
		if !d.Dominates(l.Head, b) {
			t.Errorf("loop head must dominate member block %d", b.Index)
		}
	}
}

func TestRangeAndNestedLoops(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		for x > 0 {
			x--
			s++
		}
	}
	return s
}`, "f")
	d := f.Dominators()
	loops := f.Loops(d)
	if len(loops) != 2 {
		t.Fatalf("want 2 natural loops, got %d", len(loops))
	}
}

func TestTerminatorsEndPaths(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	if c {
		panic("no")
	}
	return 1
}`, "f")
	// Exit has two preds: the panic block and the return block. The
	// statement after the panic must not be a fallthrough successor.
	if len(f.Exit.Preds) != 2 {
		t.Errorf("want 2 exit preds (panic, return), got %d", len(f.Exit.Preds))
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`, "f")
	// All three cases plus the fallthrough edge must keep the return
	// reachable and the exit single-pred.
	if len(f.Exit.Preds) != 1 {
		t.Errorf("want 1 exit pred, got %d", len(f.Exit.Preds))
	}
	reach := reachable(f)
	if !reach[f.Exit] {
		t.Error("exit unreachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
		}
	}
	return 1
}`, "f")
	d := f.Dominators()
	if n := len(f.Loops(d)); n != 2 {
		t.Errorf("want 2 loops, got %d", n)
	}
	if !reachable(f)[f.Exit] {
		t.Error("exit unreachable")
	}
}

func TestBlockOfLocatesSubExpressions(t *testing.T) {
	f, _ := buildFunc(t, `package p
func g(int) int { return 0 }
func f(c bool) int {
	x := 1
	if c {
		x = g(41)
	}
	return x
}`, "f")
	var callBlock *ssa.Block
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callBlock = f.BlockOf(call)
		}
		return true
	})
	if callBlock == nil {
		t.Fatal("BlockOf failed to locate the call")
	}
	if callBlock == f.Entry || callBlock == f.Exit {
		t.Error("call should live in the then-branch block, not entry/exit")
	}
}

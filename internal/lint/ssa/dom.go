package ssa

// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm:
// simple, and on CFGs of this size (function bodies) effectively linear.

// Dom is the dominator tree of a Func, computed over the blocks
// reachable from Entry.
type Dom struct {
	f      *Func
	idom   map[*Block]*Block
	rpo    []*Block
	rpoNum map[*Block]int
}

// Dominators computes the dominator tree.
func (f *Func) Dominators() *Dom {
	d := &Dom{
		f:      f,
		idom:   make(map[*Block]*Block),
		rpoNum: make(map[*Block]int),
	}
	d.rpo = reversePostorder(f.Entry)
	for i, b := range d.rpo {
		d.rpoNum[b] = i
	}
	d.idom[f.Entry] = f.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := d.idom[p]; !ok {
					continue // pred not yet processed (or unreachable)
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks two blocks up the (partial) dominator tree to their
// common ancestor.
func (d *Dom) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpoNum[a] > d.rpoNum[b] {
			a = d.idom[a]
		}
		for d.rpoNum[b] > d.rpoNum[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (Entry's is Entry); nil for
// unreachable blocks.
func (d *Dom) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively). Unreachable
// blocks are dominated by nothing and dominate nothing but themselves.
func (d *Dom) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if _, ok := d.idom[b]; !ok {
		return false
	}
	for b != d.f.Entry {
		b = d.idom[b]
		if b == a {
			return true
		}
	}
	return false
}

// reversePostorder returns the blocks reachable from entry in reverse
// postorder of a depth-first search.
func reversePostorder(entry *Block) []*Block {
	var order []*Block
	seen := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

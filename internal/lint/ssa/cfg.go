package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Build constructs the control-flow graph of one function body. info may
// be nil; when present it is used to recognize terminator calls (panic,
// os.Exit, runtime.Goexit, log.Fatal*) so the paths they end do not fall
// through to the next statement.
//
// goto is modeled conservatively as an edge to Exit (the repository has
// no goto statements; the edge keeps every analysis sound rather than
// precise if one ever appears).
func Build(name string, body *ast.BlockStmt, info *types.Info) *Func {
	f := &Func{
		Name:    name,
		Body:    body,
		blockOf: make(map[ast.Node]*Block),
	}
	b := &builder{f: f, info: info}
	f.Entry = b.newBlock()
	f.Exit = b.newBlock()
	b.cur = f.Entry
	b.stmt(body)
	b.edge(b.cur, f.Exit)
	return f
}

// frame is one enclosing breakable/continuable construct during the
// build.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select
}

type builder struct {
	f    *Func
	info *types.Info
	// cur is the block under construction; nil right after a terminator
	// (return, break, panic, ...) until the next statement starts a
	// fresh — possibly unreachable — block.
	cur *Block
	// frames is the stack of enclosing loops/switches for break and
	// continue resolution, innermost last.
	frames []frame
	// label set by a LabeledStmt for the construct that follows it.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// edge links a -> b; a nil source (dead code) adds nothing.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// append records n as executed by the current block, starting an
// unreachable block if the previous statement terminated control flow.
func (b *builder) append(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.f.blockOf[n] = b.cur
}

// takeLabel consumes the label a LabeledStmt attached for the construct
// being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break or continue target: the innermost matching
// frame, or the one carrying the label.
func (b *builder) findFrame(label string, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := &b.frames[i]
		if needContinue && fr.continueTo == nil {
			continue
		}
		if label == "" || fr.label == label {
			return fr
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		// Start a fresh block so a labeled continue/break has a clean
		// target even when the label precedes a plain statement.
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.f.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if fr := b.findFrame(labelName(s), false); fr != nil {
				b.edge(b.cur, fr.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if fr := b.findFrame(labelName(s), true); fr != nil {
				b.edge(b.cur, fr.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			b.edge(b.cur, b.f.Exit)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder via block fallthrough; the
			// statement itself executes nothing.
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The assign executes per matching case; recording it once in
		// the dispatch block keeps its defs and uses visible.
		b.stmt(s.Assign)
		b.switchStmt(nil, nil, s.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.append(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isTerminator(call) {
			b.edge(b.cur, b.f.Exit)
			b.cur = nil
		}
	case nil:
		// Absent else branch and friends.
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.append(s)
	}
}

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.append(s.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.append(s.Cond)
	}
	after := b.newBlock()
	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: continueTo})
	b.cur = body
	b.stmt(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	// The range operand is evaluated once, before the loop.
	b.append(s.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	// The header stands for the per-iteration key/value assignment; see
	// the Inspect convention in ssa.go.
	b.append(s)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	b.cur = after
}

// switchStmt builds expression and type switches: one block per case
// clause, fallthrough edges between consecutive cases, and an edge from
// the dispatch block straight to after when no default exists.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.append(tag)
	}
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.append(e)
		}
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
			}
			b.stmt(st)
		}
		if falls && i+1 < len(clauses) {
			b.edge(b.cur, caseBlocks[i+1])
			b.cur = nil
		}
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// isTerminator reports whether a call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or the log.Fatal family.
func (b *builder) isTerminator(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if blt, ok := b.info.Uses[fun].(*types.Builtin); ok {
			return blt.Name() == "panic"
		}
	case *ast.SelectorExpr:
		fn, ok := b.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		}
	}
	return false
}

package ssa_test

import (
	"go/types"
	"sort"
	"testing"

	"repro/internal/lint/ssa"
)

// escapingNames runs the escape analysis on the named function and
// returns the escaping variable names in sorted order.
func escapingNames(t *testing.T, src, name string) []string {
	t.Helper()
	f, info := buildFunc(t, src, name)
	esc := ssa.AnalyzeEscapes(f, info)
	var out []string
	for _, v := range esc.Escaping() {
		out = append(out, v.Name())
	}
	sort.Strings(out)
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEscapeGoCapture(t *testing.T) {
	got := escapingNames(t, `package p
func f() {
	x := 0
	y := 0
	go func() { x++ }()
	_ = y
}`, "f")
	if !eq(got, []string{"x"}) {
		t.Errorf("go capture: got %v, want [x]", got)
	}
}

func TestEscapeGoArgsAndReceiver(t *testing.T) {
	got := escapingNames(t, `package p
type s struct{ n int }
func (s *s) work(p *int) {}
func f() {
	v := &s{}
	a := 1
	b := 2
	go v.work(&a)
	_ = b
}`, "f")
	if !eq(got, []string{"a", "v"}) {
		t.Errorf("go receiver+args: got %v, want [a v]", got)
	}
}

func TestEscapeChannelSend(t *testing.T) {
	got := escapingNames(t, `package p
func f(ch chan *int) {
	x := 1
	local := 2
	ch <- &x
	_ = local
}`, "f")
	if !eq(got, []string{"x"}) {
		t.Errorf("channel send: got %v, want [x]", got)
	}
}

// An alias created before the escape must escape too: w and v name the
// same object, and the goroutine sees it through w.
func TestEscapeAliasClosure(t *testing.T) {
	got := escapingNames(t, `package p
func f() {
	v := new(int)
	w := v
	go func() { _ = w }()
}`, "f")
	if !eq(got, []string{"v", "w"}) {
		t.Errorf("alias closure: got %v, want [v w]", got)
	}
}

// A store into an already-escaping base publishes the stored value.
func TestEscapeStoreIntoEscapingBase(t *testing.T) {
	got := escapingNames(t, `package p
type box struct{ p *int }
func f() {
	b := &box{}
	go func() { _ = b }()
	n := 7
	b.p = &n
}`, "f")
	if !eq(got, []string{"b", "n"}) {
		t.Errorf("store into escaping base: got %v, want [b n]", got)
	}
}

// A store into a package-level variable escapes even with no goroutine
// in sight — globals are shared by definition.
func TestEscapeStoreIntoGlobal(t *testing.T) {
	got := escapingNames(t, `package p
var sink *int
func f() {
	n := 7
	sink = &n
}`, "f")
	if !eq(got, []string{"n", "sink"}) {
		t.Errorf("store into global: got %v, want [n sink]", got)
	}
}

// Calls are opaque: passing a value to an ordinary call is not an
// escape at this layer.
func TestEscapeCallsOpaque(t *testing.T) {
	got := escapingNames(t, `package p
func use(p *int) {}
func f() {
	n := 7
	use(&n)
}`, "f")
	if len(got) != 0 {
		t.Errorf("ordinary call: got %v, want none", got)
	}
}

// The recorded site is the earliest escape in source order, and
// Site/Escapes agree with Escaping.
func TestEscapeSite(t *testing.T) {
	f, info := buildFunc(t, `package p
func f() {
	x := 0
	go func() { x++ }()
	go func() { x-- }()
}`, "f")
	esc := ssa.AnalyzeEscapes(f, info)
	vars := esc.Escaping()
	if len(vars) != 1 || vars[0].Name() != "x" {
		t.Fatalf("want [x], got %v", vars)
	}
	var x *types.Var = vars[0]
	if !esc.Escapes(x) {
		t.Error("Escapes(x) = false")
	}
	site := esc.Site(x)
	if site == nil {
		t.Fatal("Site(x) = nil")
	}
	// The earliest site is the first go statement; the second go
	// statement is later in the file.
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() > x.Pos() && n.Pos() < site.Pos() {
				t.Errorf("site %v is not the earliest escape (node at %v precedes it)", site.Pos(), n.Pos())
			}
		}
	}
}

// BenchmarkAnalyzeEscapes measures one escape pass over a function with
// every edge kind the lattice handles (go captures, call-argument roots,
// channel sends, aliasing, stores through escaping and global bases);
// the allocation count is the per-function cost the lint driver pays for
// each scanned function in the shareguard substrate.
func BenchmarkAnalyzeEscapes(b *testing.B) {
	const src = `package p
import "sync"
var sink *int
type box struct{ n *int }
func f() {
	v := new(int)
	a := new(box)
	w := v
	a.n = w
	sink = v
	ch := make(chan *box, 1)
	ch <- a
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		*v++
	}()
	wg.Wait()
}
`
	f, info := buildFunc(b, src, "f")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssa.AnalyzeEscapes(f, info)
	}
}

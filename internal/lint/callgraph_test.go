package lint

import (
	"go/types"
	"testing"
)

// TestGoroutineReachability pins the callgraph's spawn resolution across
// the shapes the engine uses: a direct method goroutine (`go s.worker()`),
// a method call wrapped in a spawned literal (`go func() { s.worker2() }()`),
// and a method value spawned through a local (`w := s.worker3; go w()`).
// worker4 is only ever called synchronously and must stay unreachable.
func TestGoroutineReachability(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(mod.Dir, "internal/lint/testdata/src/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Failed) > 0 {
		t.Fatalf("fixture failed to load: %v", prog.Failed[0])
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("want 1 package, got %d", len(prog.Packages))
	}
	pkg := prog.Packages[0]

	methods := make(map[string]*types.Func)
	for _, obj := range pkg.Info.Defs {
		if fn, ok := obj.(*types.Func); ok {
			methods[fn.Name()] = fn
		}
	}
	for _, name := range []string{"worker", "worker2", "worker3", "worker4"} {
		if methods[name] == nil {
			t.Fatalf("fixture is missing method %s", name)
		}
	}

	g := buildCallgraph(prog)
	reach := g.reachableFromGo()
	for _, name := range []string{"worker", "worker2", "worker3"} {
		if _, ok := reach[any(methods[name])]; !ok {
			t.Errorf("%s not goroutine-reachable; its spawn shape was not resolved", name)
		}
	}
	if _, ok := reach[any(methods["worker4"])]; ok {
		t.Errorf("worker4 is goroutine-reachable but is only ever called synchronously")
	}
}

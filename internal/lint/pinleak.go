package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/ssa"
)

// PinLeak enforces handle discipline at the storage boundary: a page
// file or other closeable handle obtained from a storage constructor
// must be released on every control-flow path out of the acquiring
// function — including early returns and explicit panics — unless
// ownership demonstrably moves elsewhere (the handle is returned,
// stored, or passed on). The disk-access accounting of the experiments
// (paper §6.2) runs through these handles; a leaked one skews counters
// for every query that follows, besides leaking the fd itself.
//
// The check is path-sensitive: it walks the SSA-lite CFG from each
// acquisition and reports when some event-free path reaches the
// function exit, where an event is
//
//   - a release: a call of one of the release methods (Close, ...) on
//     the handle, directly or anywhere inside a defer (a deferred
//     release covers every path after its registration, panics
//     included);
//   - an escape: the handle is returned, assigned, captured, or passed
//     to another function — ownership has moved, the new owner is
//     responsible.
//
// The idiomatic error check `if err != nil { return ... }` right after
// a two-result acquisition is exempt: on that branch the handle is nil
// by the constructor's contract.
type PinLeak struct {
	// AcquireScopes are import-path fragments of the packages whose
	// package-level functions hand out closeable handles.
	AcquireScopes []string
	// ReleaseMethods are the method names that release a handle.
	ReleaseMethods []string
}

// NewPinLeak returns the check configured for the storage layer.
func NewPinLeak() *PinLeak {
	return &PinLeak{
		AcquireScopes:  []string{"internal/storage"},
		ReleaseMethods: []string{"Close", "Release", "Unpin", "Put"},
	}
}

// Name implements Check.
func (c *PinLeak) Name() string { return "pinleak" }

// Run implements Check.
func (c *PinLeak) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, fs := range funcsOf(prog, pkg) {
			diags = append(diags, c.checkFunc(prog, fs)...)
		}
	}
	return diags
}

// acquisition is one tracked handle binding.
type acquisition struct {
	handle *types.Var // the local the handle is bound to
	errVar *types.Var // the error result of the same call, if bound
	node   ast.Node   // the acquiring assignment
	block  *ssa.Block
	index  int // node index within block
	label  string
}

func (c *PinLeak) checkFunc(prog *Program, fs FuncSource) []Diagnostic {
	info := fs.Pkg.Info
	f := prog.IR(fs)
	acqs := c.findAcquisitions(info, f)
	if len(acqs) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, a := range acqs {
		exempt := c.exemptBlocks(info, f, a.errVar)
		if c.leaks(info, f, a, exempt) {
			diags = append(diags, Diagnostic{
				Pos:   prog.position(a.node.Pos()),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"%s obtained from %s may not be released on every path; close it on each exit or defer the release",
					a.handle.Name(), a.label),
			})
		}
	}
	return diags
}

// findAcquisitions locates assignments binding a closeable result of a
// scoped package-level constructor to a plain local variable.
func (c *PinLeak) findAcquisitions(info *types.Info, f *ssa.Func) []acquisition {
	var acqs []acquisition
	for _, b := range f.Blocks {
		for i, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || !pathInScope(fn.Pkg().Path(), c.AcquireScopes) {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				continue // methods (getters like File()) do not mint ownership
			}
			res := sig.Results()
			var errVar *types.Var
			if res.Len() == len(as.Lhs) {
				for ri := 0; ri < res.Len(); ri++ {
					if isErrorType(res.At(ri).Type()) {
						errVar = localVar(info, as.Lhs[ri])
					}
				}
			}
			for ri := 0; ri < res.Len(); ri++ {
				if !c.isCloseable(res.At(ri).Type()) || ri >= len(as.Lhs) {
					continue
				}
				v := localVar(info, as.Lhs[ri])
				if v == nil {
					continue // blank, field, or index target: ownership escaped at birth
				}
				acqs = append(acqs, acquisition{
					handle: v,
					errVar: errVar,
					node:   n,
					block:  b,
					index:  i,
					label:  fn.Pkg().Name() + "." + fn.Name(),
				})
			}
		}
	}
	return acqs
}

// isCloseable reports whether t (or what it points to) offers one of the
// release methods.
func (c *PinLeak) isCloseable(t types.Type) bool {
	if _, ok := t.(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for _, m := range c.ReleaseMethods {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == m {
				return true
			}
		}
	}
	return false
}

// exemptBlocks marks the branch entered when the acquisition's error is
// non-nil: `if err != nil { ... }` (then) and `if err == nil { ... }
// else { ... }` (else). The handle is nil there by contract.
func (c *PinLeak) exemptBlocks(info *types.Info, f *ssa.Func, errVar *types.Var) map[*ssa.Block]bool {
	exempt := make(map[*ssa.Block]bool)
	if errVar == nil {
		return exempt
	}
	markBranch := func(body *ast.BlockStmt) {
		if body == nil || len(body.List) == 0 {
			return
		}
		if b := f.BlockOf(body.List[0]); b != nil {
			exempt[b] = true
		}
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || !isNilCheckOf(info, bin, errVar) {
			return true
		}
		switch bin.Op {
		case token.NEQ:
			markBranch(ifs.Body)
		case token.EQL:
			if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				markBranch(els)
			}
		}
		return true
	})
	return exempt
}

// leaks reports whether some event-free path runs from just after the
// acquisition to the function exit.
func (c *PinLeak) leaks(info *types.Info, f *ssa.Func, a acquisition, exempt map[*ssa.Block]bool) bool {
	// handled[b]: block b contains a release or escape of the handle.
	handled := make(map[*ssa.Block]bool)
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			if n == a.node {
				continue
			}
			if c.nodeHandles(info, n, a.handle) {
				handled[b] = true
				break
			}
		}
	}
	// Least fixpoint of leakFrom[b]: an event-free path from the start
	// of b reaches Exit.
	leakFrom := map[*ssa.Block]bool{f.Exit: true}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b == f.Exit || handled[b] || leakFrom[b] {
				continue
			}
			for _, s := range b.Succs {
				if exempt[s] {
					continue
				}
				if leakFrom[s] {
					leakFrom[b] = true
					changed = true
					break
				}
			}
		}
	}
	// From the acquisition point: events later in the same block cover
	// every path; otherwise any successor with a leaking path leaks.
	for _, n := range a.block.Nodes[a.index+1:] {
		if c.nodeHandles(info, n, a.handle) {
			return false
		}
	}
	for _, s := range a.block.Succs {
		if exempt[s] {
			continue
		}
		if leakFrom[s] {
			return true
		}
	}
	return false
}

// nodeHandles reports whether node n releases the handle or lets it
// escape. Uses inside nested function literals count — a closure
// capturing the handle owns its fate now.
func (c *PinLeak) nodeHandles(info *types.Info, n ast.Node, v *types.Var) bool {
	handled := false
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if handled {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == v {
			if c.classifyUse(info, id, stack) {
				handled = true
			}
		}
		stack = append(stack, m)
		return true
	})
	return handled
}

// classifyUse decides whether one identifier use of the handle is a
// release or escape (true) or a plain read that keeps this function
// responsible (false). stack holds the ancestors, innermost last.
func (c *PinLeak) classifyUse(info *types.Info, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		// Receiver position: a release method call handles the
		// handle; any other selection is a plain use.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
				for _, m := range c.ReleaseMethods {
					if p.Sel.Name == m {
						return true
					}
				}
			}
		}
		return false
	case *ast.BinaryExpr:
		// Nil comparisons test the handle, they do not move it.
		if (p.Op == token.EQL || p.Op == token.NEQ) && (isNilIdent(info, p.X) || isNilIdent(info, p.Y)) {
			return false
		}
		return true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return false // overwritten, not read
			}
		}
		return true // handle on the RHS: ownership moves
	default:
		// Argument, return operand, composite literal element, closure
		// capture context, ...: ownership moves or is shared.
		return true
	}
}

// isNilCheckOf reports whether bin compares errVar against nil.
func isNilCheckOf(info *types.Info, bin *ast.BinaryExpr, errVar *types.Var) bool {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == errVar
	}
	return (matches(bin.X) && isNilIdent(info, bin.Y)) ||
		(matches(bin.Y) && isNilIdent(info, bin.X))
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// localVar resolves an assignment target to a plain local variable, nil
// for blank identifiers and non-ident targets.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

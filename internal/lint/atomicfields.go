package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFields enforces the all-or-nothing contract of atomic access: a
// struct field whose address is passed to a sync/atomic function anywhere
// must be accessed through sync/atomic everywhere (a single plain read or
// write of such a field is a data race), and a field of a sync/atomic type
// (atomic.Int64 & co., or a struct embedding one, like the parallel
// engine's tighten-only bound) must only be used as a method receiver or
// through its address — copying the value tears the atomic.
type AtomicFields struct{}

// NewAtomicFields returns the check.
func NewAtomicFields() *AtomicFields { return &AtomicFields{} }

// Name implements Check.
func (c *AtomicFields) Name() string { return "atomicfields" }

// Run implements Check.
func (c *AtomicFields) Run(prog *Program) []Diagnostic {
	// Pass 1: collect every field whose address flows into a sync/atomic
	// call, remembering one example site for the message.
	atomicUse := make(map[*types.Var]token.Position)
	for _, pkg := range prog.Packages {
		info := pkg.Info
		walkFiles(pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if f := addressedField(info, arg); f != nil {
					if _, ok := atomicUse[f]; !ok {
						atomicUse[f] = prog.position(arg.Pos())
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag non-atomic uses of those fields, and value uses of
	// fields whose type is intrinsically atomic.
	var diags []Diagnostic
	noCopyMemo := make(map[types.Type]bool)
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if d := c.checkSelector(prog, info, sel, stack, atomicUse, noCopyMemo); d != nil {
						diags = append(diags, *d)
					}
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return diags
}

// checkSelector inspects one field selection in its syntactic context
// (stack holds the ancestors, innermost last) and returns a diagnostic if
// the access violates the atomic contract.
func (c *AtomicFields) checkSelector(prog *Program, info *types.Info, sel *ast.SelectorExpr,
	stack []ast.Node, atomicUse map[*types.Var]token.Position, memo map[types.Type]bool) *Diagnostic {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil
	}
	var parent ast.Node
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}

	if site, used := atomicUse[field]; used {
		if c.isAtomicArg(info, stack) {
			return nil
		}
		d := Diagnostic{
			Pos:   prog.position(sel.Pos()),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"field %s is accessed with sync/atomic at %s:%d; this plain access is a data race — use sync/atomic here too",
				fieldName(field), site.Filename, site.Line),
		}
		return &d
	}

	if isAtomicType(field.Type(), memo) {
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X == sel {
				return nil // receiver of a method call or deeper selection
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return nil // address taken, value not copied
			}
		}
		d := Diagnostic{
			Pos:   prog.position(sel.Pos()),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"field %s has atomic type %s; reading, writing or copying the value tears the atomic — use its methods",
				fieldName(field), field.Type()),
		}
		return &d
	}
	return nil
}

// isAtomicArg reports whether the selector whose ancestors are stack is
// being passed as &field directly into a sync/atomic call.
func (c *AtomicFields) isAtomicArg(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	unary, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedField resolves an argument expression of the form &x.f to the
// field object f, or nil.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, _ := selection.Obj().(*types.Var)
	return field
}

// isAtomicType reports whether t is a sync/atomic type or a composite that
// contains one (recursively through named types, structs and arrays).
func isAtomicType(t types.Type, memo map[types.Type]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // cycle guard
	result := false
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			result = true
		} else {
			result = isAtomicType(u.Underlying(), memo)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isAtomicType(u.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = isAtomicType(u.Elem(), memo)
	}
	memo[t] = result
	return result
}

// fieldName renders a field as Struct.field for messages.
func fieldName(f *types.Var) string {
	return fmt.Sprintf("%s.%s", ownerName(f), f.Name())
}

// ownerName finds the name of the struct type declaring field f, falling
// back to the package name.
func ownerName(f *types.Var) string {
	if pkg := f.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == f {
					return tn.Name()
				}
			}
		}
		return pkg.Name()
	}
	return "?"
}

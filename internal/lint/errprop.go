package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrProp enforces error propagation at the storage boundary: the paper's
// cost metric is counted in the buffer pool, so a swallowed I/O error does
// not just lose data — it silently corrupts every experiment downstream.
// The check flags two shapes of discarded error:
//
//   - a call to a function or method declared in the storage or R-tree
//     packages whose error result is dropped (bare call statement,
//     deferred or go'ed call, or an assignment to _), wherever the call
//     site is; and
//   - any call with a dropped error result when the call site itself is
//     inside the storage or R-tree packages (their internal file handling
//     must be airtight too).
type ErrProp struct {
	// CalleeScopes are import-path fragments: calls into these packages
	// must propagate errors at every call site in the module.
	CalleeScopes []string
	// SiteScopes are import-path fragments: code inside these packages
	// must propagate every error, whoever the callee is.
	SiteScopes []string
}

// NewErrProp returns the check configured for the I/O layers.
func NewErrProp() *ErrProp {
	scopes := []string{"internal/storage", "internal/rtree"}
	return &ErrProp{CalleeScopes: scopes, SiteScopes: scopes}
}

// Name implements Check.
func (c *ErrProp) Name() string { return "errprop" }

// Run implements Check.
func (c *ErrProp) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		info := pkg.Info
		siteScoped := pathInScope(pkg.ImportPath, c.SiteScopes)
		walkFiles(pkg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					diags = c.checkDropAll(prog, info, siteScoped, call, "", diags)
				}
			case *ast.DeferStmt:
				diags = c.checkDropAll(prog, info, siteScoped, n.Call, "deferred ", diags)
			case *ast.GoStmt:
				diags = c.checkDropAll(prog, info, siteScoped, n.Call, "goroutine ", diags)
			case *ast.AssignStmt:
				diags = c.checkAssign(prog, info, siteScoped, n, diags)
			}
			return true
		})
	}
	return diags
}

// checkDropAll handles statements that discard every result of a call.
func (c *ErrProp) checkDropAll(prog *Program, info *types.Info, siteScoped bool,
	call *ast.CallExpr, kind string, diags []Diagnostic) []Diagnostic {
	sig := callSignature(info, call)
	if sig == nil || !hasErrorResult(sig) {
		return diags
	}
	if !c.qualifies(info, call, siteScoped) {
		return diags
	}
	return append(diags, Diagnostic{
		Pos:   prog.position(call.Pos()),
		Check: c.Name(),
		Message: fmt.Sprintf("%scall to %s discards its error result; handle or propagate it",
			kind, calleeLabel(info, call)),
	})
}

// checkAssign flags blank-identifier assignments of error results
// (`_ = f()` and `v, _ := g()`).
func (c *ErrProp) checkAssign(prog *Program, info *types.Info, siteScoped bool,
	stmt *ast.AssignStmt, diags []Diagnostic) []Diagnostic {
	// One call expanding to the whole LHS, or element-wise RHS.
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return diags
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(stmt.Lhs) {
			return diags
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) && c.qualifies(info, call, siteScoped) {
				diags = append(diags, Diagnostic{
					Pos:   prog.position(call.Pos()),
					Check: c.Name(),
					Message: fmt.Sprintf("error result of %s assigned to _; handle or propagate it",
						calleeLabel(info, call)),
				})
			}
		}
		return diags
	}
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := info.Types[call]; !ok || !isErrorType(tv.Type) {
			continue
		}
		if !c.qualifies(info, call, siteScoped) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   prog.position(call.Pos()),
			Check: c.Name(),
			Message: fmt.Sprintf("error result of %s assigned to _; handle or propagate it",
				calleeLabel(info, call)),
		})
	}
	return diags
}

// qualifies reports whether a discarded-error call is in scope: the callee
// is declared in a callee-scoped package, or the call site lies in a
// site-scoped package.
func (c *ErrProp) qualifies(info *types.Info, call *ast.CallExpr, siteScoped bool) bool {
	if siteScoped {
		return true
	}
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && pathInScope(fn.Pkg().Path(), c.CalleeScopes)
}

// callSignature returns the signature of the called function, or nil for
// conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// hasErrorResult reports whether any result of sig is of type error.
func hasErrorResult(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeLabel renders the called function for messages: (*T).M, T.M or
// pkg.F when statically known, "function value" otherwise.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil {
		return "function value"
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, okp := recv.(*types.Pointer); okp {
			if named, okn := ptr.Elem().(*types.Named); okn {
				return fmt.Sprintf("(*%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), fn.Name())
			}
		}
		if named, okn := recv.(*types.Named); okn && named.Obj().Pkg() != nil {
			return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), fn.Name())
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
	}
	return fn.Name()
}

package lint

import (
	"fmt"
	"go/types"
	"sort"
)

// GuardLock enforces consistent lock coverage over shared fields. For a
// field with at least one shared write (see sgFacts.sharedAccesses), the
// rule depends on whether the field declares its guard:
//
//   - annotated (//lint:guardedby mu): every shared access must have mu
//     in its may-held lockset; each access without it is flagged. The
//     annotation pins intent, so even a field with no locking evidence
//     at all is held to it.
//   - unannotated: if some shared access holds a lock, the intersection
//     of may-held locksets across all shared accesses must be
//     non-empty. An empty intersection means no single lock protects
//     the field — two of the access sites can interleave — and the
//     first access missing the field's most-held lock is flagged.
//
// Malformed annotations (no lock name, unknown sibling, sibling not a
// mutex) are reported here too, so a typo cannot silently drop a field
// out of enforcement.
type GuardLock struct {
	// Scopes are import-path fragments; only fields declared in these
	// packages participate.
	Scopes []string
}

// NewGuardLock returns the check configured for the engine's shared
// state.
func NewGuardLock() *GuardLock {
	return &GuardLock{Scopes: sgScopes()}
}

// Name implements Check.
func (c *GuardLock) Name() string { return "guardlock" }

// Run implements Check.
func (c *GuardLock) Run(prog *Program) []Diagnostic {
	facts := shareguardFacts(prog, c.Scopes)
	diags := append([]Diagnostic(nil), facts.badGuards...)
	for _, field := range facts.fields {
		if facts.exempt(field) {
			continue
		}
		shared := facts.sharedAccesses(field)
		if lock, annotated := facts.guardedBy[field]; annotated {
			diags = append(diags, c.checkAnnotated(prog, facts, field, lock, shared)...)
			continue
		}
		diags = append(diags, c.checkIntersection(prog, facts, field, shared)...)
	}
	return diags
}

// checkAnnotated flags every shared access that does not hold the
// declared guard.
func (c *GuardLock) checkAnnotated(prog *Program, facts *sgFacts, field, lock *types.Var, shared []*sgAccess) []Diagnostic {
	var diags []Diagnostic
	for _, a := range shared {
		if facts.heldAt(a)[lock] {
			continue
		}
		verb := "read"
		if a.write {
			verb = "written"
		}
		diags = append(diags, Diagnostic{
			Pos:   prog.position(a.pos),
			Check: c.Name(),
			Message: fmt.Sprintf(
				"field %s is declared //lint:guardedby %s but is %s here without it (reachable from %s)",
				fieldName(field), lock.Name(), verb, facts.spawnSite(a.node)),
		})
	}
	return diags
}

// checkIntersection applies the unannotated rule: locking evidence plus
// an empty lockset intersection across the shared accesses.
func (c *GuardLock) checkIntersection(prog *Program, facts *sgFacts, field *types.Var, shared []*sgAccess) []Diagnostic {
	hasWrite := false
	counts := make(map[*types.Var]int)
	for _, a := range shared {
		if a.write {
			hasWrite = true
		}
		for v := range facts.heldAt(a) {
			counts[v]++
		}
	}
	if !hasWrite || len(counts) == 0 {
		return nil // fully unprotected fields are sharedfield's finding
	}
	// Non-empty intersection: some lock is held at every shared access.
	for _, n := range counts {
		if n == len(shared) {
			return nil
		}
	}
	// Pick the lock held at most sites as the presumed guard, breaking
	// ties by source position for determinism.
	var guard *types.Var
	for v, n := range counts {
		if guard == nil || n > counts[guard] || (n == counts[guard] && v.Pos() < guard.Pos()) {
			guard = v
		}
	}
	// Flag the first access (by position) missing the presumed guard.
	missing := make([]*sgAccess, 0, len(shared))
	for _, a := range shared {
		if !facts.heldAt(a)[guard] {
			missing = append(missing, a)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].pos < missing[j].pos })
	a := missing[0]
	verb := "read"
	if a.write {
		verb = "written"
	}
	return []Diagnostic{{
		Pos:   prog.position(a.pos),
		Check: c.Name(),
		Message: fmt.Sprintf(
			"field %s is guarded by %s at %d of %d shared access sites but %s here without it; no single lock covers every access",
			fieldName(field), lockName(guard), counts[guard], len(shared), verb),
	}}
}

// Package lint is a from-scratch static analyzer for this repository,
// built directly on the standard library's go/parser + go/ast + go/types
// stack (no golang.org/x/tools dependency). It loads every package of the
// module from source, builds a lightweight callgraph over the typed ASTs
// and enforces the engine's cross-cutting invariants:
//
//   - bufferdiscipline: code reachable from a goroutine must read pages
//     through BufferPool.View, never Get/Put — Get hands out the pooled
//     slice, which a concurrent eviction may reuse under the reader.
//   - atomicfields: a struct field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere, and fields of sync/atomic
//     types must only be touched through their methods.
//   - sqrtfree: the pruning and traversal hot paths compare squared
//     distances; math.Sqrt is reserved for the final result-reporting
//     functions (MINMINDIST <= MINMAXDIST <= MAXMAXDIST ordering is
//     preserved by squaring, so comparisons never need the root).
//   - errprop: errors returned by the storage and R-tree I/O layers must
//     not be discarded with `_ =` or a bare call.
//   - obshooks: tracer and metric emissions in the hot-path packages must
//     sit behind an explicit nil guard (a leading `if x == nil { return }`
//     helper or an enclosing `if x != nil` block), keeping the disabled
//     observability path at zero cost.
//
// Four further checks are path-sensitive: they run over the SSA-lite IR
// of package repro/internal/lint/ssa (basic blocks, dominators, reaching
// definitions) instead of matching syntax:
//
//   - pinleak: a storage handle must be released on every control-flow
//     path out of the acquiring function, or demonstrably change owner.
//   - lockorder: the static lock-ordering graph over the engine's
//     mutexes must be acyclic, and no two instances of one shard lock
//     may be held at once.
//   - boundmono: the parallel engine's shared pruning bound is written
//     only through its CAS-min helper; a raw store or whole-value
//     overwrite can widen the bound and lose results.
//   - deferinloop: a deferred Close/Put inside a loop releases nothing
//     until function return and so pins the whole traversal's resources.
//
// The ctxflow pass (three checks sharing interprocedural summaries over
// the callgraph; DESIGN.md §11) guards the cancellation contract:
//
//   - ctxprop: query entry points and join drivers must accept a
//     context.Context and thread it through — context.Background() is
//     allowed only in the recognized *Context delegating shims.
//   - cancelpoll: every potentially unbounded driver loop (frontier
//     expansion, heap pops, storage I/O) must poll the context on some
//     path, directly or via a summarized cancellation point such as the
//     stride-gated cancelGate.poll; gates coarser than the allowance are
//     flagged.
//   - ctxleak: a spawned goroutine must select on ctx.Done() or be
//     joined by its spawner, so cancelled queries leak nothing.
//
// The shareguard pass (three checks sharing an escape analysis, a taint
// fixpoint over the callgraph and per-block locksets; DESIGN.md §12)
// guards the sharing discipline the race detector can only spot-check:
//
//   - sharedfield: a struct field written from goroutine-reachable code
//     through shared state with no lock held at any access, no
//     sync/atomic discipline and no annotation is a data race waiting
//     for a schedule.
//   - guardlock: where locking evidence exists it must cover — every
//     access to a //lint:guardedby-annotated field holds the declared
//     mutex, and an unannotated field's locksets must share at least one
//     lock across all shared accesses.
//   - pubimmut: a field write after its value was published to another
//     goroutine needs synchronization; constructor writes before the
//     publishing go statement, send or global store are exempt.
//
// A finding can be suppressed by the line comment
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line directly above the statement the
// finding points into (for a multi-line statement the directive sits
// above the first line); the reason is mandatory. Diagnostics print as
// "file:line: [check] message" and the
// cpqlint command exits non-zero when any survive, which is how ci.sh
// turns these conventions into build failures.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding of one check.
type Diagnostic struct {
	// Pos locates the finding; the file name is relative to the module
	// root.
	Pos token.Position
	// Check is the name of the check that produced the finding (or
	// "lint" for problems with suppression directives themselves).
	Check string
	// Message describes the violation.
	Message string
}

// String formats the diagnostic as "file:line: [check] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Check is one analysis run over a loaded program.
type Check interface {
	// Name is the identifier used in diagnostics and ignore directives.
	Name() string
	// Run analyzes prog.Packages and returns its findings.
	Run(prog *Program) []Diagnostic
}

// Checks returns the repository's check suite with its production
// configuration.
func Checks() []Check {
	return []Check{
		NewBufferDiscipline(),
		NewAtomicFields(),
		NewSqrtFree(),
		NewErrProp(),
		NewPinLeak(),
		NewLockOrder(),
		NewBoundMono(),
		NewDeferInLoop(),
		NewObsHooks(),
		NewCtxProp(),
		NewCancelPoll(),
		NewCtxLeak(),
		NewSharedField(),
		NewGuardLock(),
		NewPubImmut(),
	}
}

// CheckGroups maps group aliases to the check names they expand to; the
// cpqlint -checks flag accepts a group name wherever it accepts a check
// name. "ctxflow" is the cancellation-correctness pass of DESIGN.md §11;
// "shareguard" is the static data-race pass of DESIGN.md §12.
func CheckGroups() map[string][]string {
	return map[string][]string{
		"ctxflow":    {"ctxprop", "cancelpoll", "ctxleak"},
		"shareguard": {"sharedfield", "guardlock", "pubimmut"},
	}
}

// GroupOf maps each check name to its group alias ("" for ungrouped
// checks); the cpqlint JSON output attaches it to every finding.
func GroupOf(check string) string {
	for group, names := range CheckGroups() {
		for _, n := range names {
			if n == check {
				return group
			}
		}
	}
	return ""
}

// CheckTiming is the wall-clock cost of one check during a
// RunWithTimings pass.
type CheckTiming struct {
	// Name is the check's name.
	Name string
	// Elapsed is the check's own Run time (loading and suppression
	// filtering are shared and not attributed).
	Elapsed time.Duration
}

// Run executes the checks over prog, applies //lint:ignore suppressions
// and returns the surviving diagnostics sorted by position.
func Run(prog *Program, checks []Check) []Diagnostic {
	diags, _ := RunWithTimings(prog, checks)
	return diags
}

// RunWithTimings is Run plus a per-check wall-clock breakdown, for the
// cpqlint -timing flag and the lint benchmark.
func RunWithTimings(prog *Program, checks []Check) ([]Diagnostic, []CheckTiming) {
	diags, _, timings := RunAll(prog, checks)
	return diags, timings
}

// RunAll executes the checks over prog and returns the surviving
// diagnostics, the number of findings dropped by //lint:ignore
// directives (for the JSON output's suppressed count), and the per-check
// wall-clock breakdown. The typed load, the callgraph and the
// per-function IR are memoized on prog, so the first check that needs a
// shared artifact pays for it and the rest ride along — the timings show
// exactly that.
func RunAll(prog *Program, checks []Check) ([]Diagnostic, int, []CheckTiming) {
	var diags []Diagnostic
	timings := make([]CheckTiming, 0, len(checks))
	for _, c := range checks {
		start := time.Now()
		diags = append(diags, c.Run(prog)...)
		timings = append(timings, CheckTiming{Name: c.Name(), Elapsed: time.Since(start)})
	}
	// A directive may name any check of the full registry, not only the
	// selected subset — running `-checks ctxflow` must not turn every
	// sqrtfree suppression in the tree into an "unknown check" finding.
	known := make(map[string]bool, len(checks))
	for _, c := range checks {
		known[c.Name()] = true
	}
	for _, c := range Checks() {
		known[c.Name()] = true
	}
	diags, suppressed := applyIgnores(prog, known, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags, suppressed, timings
}

// ignoreKey identifies the scope of one suppression directive: a check
// name on one line of one file (the directive covers its own line and the
// line below).
type ignoreKey struct {
	file  string
	line  int
	check string
}

// applyIgnores drops diagnostics covered by well-formed //lint:ignore
// directives (returning how many were dropped) and reports malformed or
// unknown-check directives as findings of the built-in "lint"
// pseudo-check.
func applyIgnores(prog *Program, known map[string]bool, diags []Diagnostic) ([]Diagnostic, int) {
	ignores := make(map[ignoreKey]bool)
	var problems []Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := prog.position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						problems = append(problems, Diagnostic{
							Pos:     pos,
							Check:   "lint",
							Message: `malformed directive: want "//lint:ignore <check> <reason>"`,
						})
						continue
					}
					check := fields[0]
					if !known[check] {
						problems = append(problems, Diagnostic{
							Pos:     pos,
							Check:   "lint",
							Message: fmt.Sprintf("ignore directive names unknown check %q", check),
						})
						continue
					}
					ignores[ignoreKey{pos.Filename, pos.Line, check}] = true
				}
			}
		}
	}
	starts := stmtStartLines(prog)
	kept := problems
	suppressed := 0
	for _, d := range diags {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}] ||
			ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}] {
			suppressed++
			continue
		}
		// A finding inside a multi-line statement is also covered by a
		// directive on the line above the statement's first line — the
		// only place gofmt lets a comment live for a wrapped call.
		if s, ok := starts[lineKey{d.Pos.Filename, d.Pos.Line}]; ok &&
			(ignores[ignoreKey{d.Pos.Filename, s, d.Check}] ||
				ignores[ignoreKey{d.Pos.Filename, s - 1, d.Check}]) {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// lineKey addresses one source line of one file.
type lineKey struct {
	file string
	line int
}

// stmtStartLines maps every line spanned by a multi-line simple statement
// to the statement's first line. Only simple statements participate:
// extending a directive above a compound statement (for, if, ...) to its
// whole body would suppress far more than the author aimed at.
func stmtStartLines(prog *Program) map[lineKey]int {
	starts := make(map[lineKey]int)
	for _, pkg := range prog.Packages {
		walkFiles(pkg, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt,
				*ast.ReturnStmt, *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt:
			default:
				return true
			}
			from := prog.position(n.Pos())
			to := prog.position(n.End())
			for l := from.Line + 1; l <= to.Line; l++ {
				starts[lineKey{from.Filename, l}] = from.Line
			}
			return true
		})
	}
	return starts
}

// pathInScope reports whether an import path falls under any of the scope
// fragments (substring match on the slash-separated path, so
// "internal/core" covers both the real package and nested fixtures).
func pathInScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// walkFiles applies fn to every node of every file of pkg.
func walkFiles(pkg *Package, fn func(n ast.Node) bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, fn)
	}
}

package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// moduleDir locates the repository root from the test's working directory
// (internal/lint).
func moduleDir(t *testing.T) string {
	t.Helper()
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	return mod.Dir
}

// runCheck loads the given patterns relative to the module root and runs a
// single check through the full driver (including suppression handling).
func runCheck(t *testing.T, check lint.Check, patterns ...string) []lint.Diagnostic {
	t.Helper()
	prog, err := lint.Load(moduleDir(t), patterns...)
	if err != nil {
		t.Fatal(err)
	}
	for _, le := range prog.Failed {
		t.Fatalf("fixture failed to load: %v", le)
	}
	return lint.Run(prog, []lint.Check{check})
}

// TestGolden pins each check's behavior on its fixture package: the
// formatted diagnostics must match the committed golden file exactly
// (regenerate with `go test ./internal/lint -run Golden -update`).
func TestGolden(t *testing.T) {
	cases := []struct {
		check    lint.Check
		patterns []string
	}{
		{lint.NewBufferDiscipline(), []string{"internal/lint/testdata/src/bufferdiscipline/..."}},
		{lint.NewAtomicFields(), []string{"internal/lint/testdata/src/atomicfields"}},
		{lint.NewSqrtFree(), []string{"internal/lint/testdata/src/sqrtfree/..."}},
		{lint.NewErrProp(), []string{"internal/lint/testdata/src/errprop/..."}},
		{lint.NewPinLeak(), []string{"internal/lint/testdata/src/pinleak"}},
		{lint.NewLockOrder(), []string{"internal/lint/testdata/src/lockorder/internal/core/pool"}},
		{lint.NewBoundMono(), []string{"internal/lint/testdata/src/boundmono/internal/core/engine"}},
		{lint.NewDeferInLoop(), []string{"internal/lint/testdata/src/deferinloop/internal/rtree/walk"}},
		{lint.NewObsHooks(), []string{"internal/lint/testdata/src/obshooks/internal/core/trace"}},
		{lint.NewCtxProp(), []string{"internal/lint/testdata/ctxflow/ctxprop/internal/core/driver"}},
		{lint.NewCancelPoll(), []string{"internal/lint/testdata/ctxflow/cancelpoll/..."}},
		{lint.NewCtxLeak(), []string{"internal/lint/testdata/ctxflow/ctxleak/internal/core/engine"}},
		{lint.NewSharedField(), []string{"internal/lint/testdata/shareguard/sharedfield/internal/core/engine"}},
		{lint.NewGuardLock(), []string{"internal/lint/testdata/shareguard/guardlock/internal/core/pool"}},
		{lint.NewPubImmut(), []string{"internal/lint/testdata/shareguard/pubimmut/internal/core/job"}},
	}
	for _, tc := range cases {
		t.Run(tc.check.Name(), func(t *testing.T) {
			diags := runCheck(t, tc.check, tc.patterns...)
			var lines []string
			for _, d := range diags {
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n") + "\n"
			golden := filepath.Join(moduleDir(t), "internal/lint/testdata", tc.check.Name()+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixturesFindSomething guards against a check silently going blind:
// every fixture run must produce at least one finding of its own check.
func TestFixturesFindSomething(t *testing.T) {
	cases := []struct {
		check    lint.Check
		patterns []string
	}{
		{lint.NewBufferDiscipline(), []string{"internal/lint/testdata/src/bufferdiscipline/..."}},
		{lint.NewAtomicFields(), []string{"internal/lint/testdata/src/atomicfields"}},
		{lint.NewSqrtFree(), []string{"internal/lint/testdata/src/sqrtfree/..."}},
		{lint.NewErrProp(), []string{"internal/lint/testdata/src/errprop/..."}},
		{lint.NewPinLeak(), []string{"internal/lint/testdata/src/pinleak"}},
		{lint.NewLockOrder(), []string{"internal/lint/testdata/src/lockorder/internal/core/pool"}},
		{lint.NewBoundMono(), []string{"internal/lint/testdata/src/boundmono/internal/core/engine"}},
		{lint.NewDeferInLoop(), []string{"internal/lint/testdata/src/deferinloop/internal/rtree/walk"}},
		{lint.NewObsHooks(), []string{"internal/lint/testdata/src/obshooks/internal/core/trace"}},
		{lint.NewCtxProp(), []string{"internal/lint/testdata/ctxflow/ctxprop/internal/core/driver"}},
		{lint.NewCancelPoll(), []string{"internal/lint/testdata/ctxflow/cancelpoll/..."}},
		{lint.NewCtxLeak(), []string{"internal/lint/testdata/ctxflow/ctxleak/internal/core/engine"}},
		{lint.NewSharedField(), []string{"internal/lint/testdata/shareguard/sharedfield/internal/core/engine"}},
		{lint.NewGuardLock(), []string{"internal/lint/testdata/shareguard/guardlock/internal/core/pool"}},
		{lint.NewPubImmut(), []string{"internal/lint/testdata/shareguard/pubimmut/internal/core/job"}},
	}
	for _, tc := range cases {
		found := false
		for _, d := range runCheck(t, tc.check, tc.patterns...) {
			if d.Check == tc.check.Name() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no findings on its fixture package", tc.check.Name())
		}
	}
}

// TestSuppression asserts the //lint:ignore mechanics directly: the
// suppressed sqrtfree site in the fixture must not appear, while the
// unsuppressed ones must.
func TestSuppression(t *testing.T) {
	diags := runCheck(t, lint.NewSqrtFree(), "internal/lint/testdata/src/sqrtfree/...")
	for _, d := range diags {
		if strings.Contains(d.Message, "legacy") {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
	if len(diags) != 4 {
		t.Errorf("want exactly the 4 hot-loop findings (2 prune, 2 grid/kernel), got %d: %v", len(diags), diags)
	}
}

// TestMultilineSuppression is the regression test for directives above
// statements that wrap across lines: the errprop fixture has two copies
// of the same wrapped statement, one suppressed, one not, and only the
// unsuppressed one may surface.
func TestMultilineSuppression(t *testing.T) {
	diags := runCheck(t, lint.NewErrProp(), "internal/lint/testdata/src/errprop")
	var wrapped []lint.Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "WritePage") {
			wrapped = append(wrapped, d)
		}
	}
	if len(wrapped) != 1 {
		t.Errorf("want exactly 1 unsuppressed wrapped-statement finding, got %d: %v", len(wrapped), wrapped)
	}
}

// TestShareguardMultilineSuppression pins the directive-above-wrapped-
// statement path for the shareguard group: the guardlock fixture's
// observe method has two copies of the same wrapped call reading an
// annotated field, one under a //lint:ignore directive, one bare. The
// finding anchors to the wrapped line (the q.total argument, not the
// sink( line), so only the stmtStartLines mapping can connect it to the
// directive above the statement's first line.
func TestShareguardMultilineSuppression(t *testing.T) {
	prog, err := lint.Load(moduleDir(t), "internal/lint/testdata/shareguard/guardlock/internal/core/pool")
	if err != nil {
		t.Fatal(err)
	}
	diags, suppressed, _ := lint.RunAll(prog, []lint.Check{lint.NewGuardLock()})
	var reads []lint.Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "read here") {
			reads = append(reads, d)
		}
	}
	if len(reads) != 1 {
		t.Errorf("want exactly 1 unsuppressed wrapped-statement read finding, got %d: %v", len(reads), reads)
	}
	if suppressed != 1 {
		t.Errorf("want 1 suppressed finding (the directive-covered twin), got %d", suppressed)
	}
}

// TestShareguardCleanRepo pins the real module to zero shareguard
// findings with zero suppressions: the parallel engine's sharing
// discipline (mutex-guarded frontier state, sync/atomic counters,
// worker-local scratch, constructor-then-publish initialization) is
// recognized by the analysis itself, not waived by directives.
func TestShareguardCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := lint.Load(moduleDir(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, le := range prog.Failed {
		t.Errorf("package failed to load: %v", le)
	}
	checks := []lint.Check{lint.NewSharedField(), lint.NewGuardLock(), lint.NewPubImmut()}
	diags, suppressed, _ := lint.RunAll(prog, checks)
	for _, d := range diags {
		t.Errorf("unexpected shareguard finding: %s", d)
	}
	if suppressed != 0 {
		t.Errorf("shareguard needed %d suppression(s) on the real module, want 0", suppressed)
	}
}

// TestLoadFailure asserts that a package that fails to type-check is
// reported through Program.Failed without hiding the packages that do
// load: the analyzable part of the module must still produce findings.
func TestLoadFailure(t *testing.T) {
	prog, err := lint.Load(moduleDir(t),
		"internal/lint/testdata/src/loadfail",
		"internal/lint/testdata/src/sqrtfree/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Failed) != 1 {
		t.Fatalf("want 1 load failure, got %d: %v", len(prog.Failed), prog.Failed)
	}
	if !strings.Contains(prog.Failed[0].Error(), "loadfail") {
		t.Errorf("failure does not name the broken package: %v", prog.Failed[0])
	}
	diags := lint.Run(prog, []lint.Check{lint.NewSqrtFree()})
	if len(diags) == 0 {
		t.Error("loadable packages produced no findings; the failure hid them")
	}
}

// TestCleanRepo asserts the real module lints clean with the production
// check suite — the repository's own code is the fifth fixture, pinned to
// zero findings.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := lint.Load(moduleDir(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, le := range prog.Failed {
		t.Errorf("package failed to load: %v", le)
	}
	diags := lint.Run(prog, lint.Checks())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestRealRepoCoverage asserts the checks are actually exercising the real
// engine: the whole-module load must include the parallel engine's
// goroutine spawn and the storage pool, i.e. the clean result above is not
// an artifact of loading nothing.
func TestRealRepoCoverage(t *testing.T) {
	prog, err := lint.Load(moduleDir(t), "internal/core", "internal/storage")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 2 {
		t.Fatalf("want 2 packages, got %d", len(prog.Packages))
	}
	for _, pkg := range prog.Packages {
		if pkg.Types == nil || len(pkg.Files) == 0 {
			t.Errorf("package %s loaded without types or files", pkg.ImportPath)
		}
	}
}

// BenchmarkLintRepo measures the full production pass over the real
// module, with the typed load hoisted out of the loop: what remains is
// the checks themselves sharing the memoized callgraph and IR, which is
// exactly what `cpqlint -timing` attributes per check.
func BenchmarkLintRepo(b *testing.B) {
	mod, err := lint.FindModule(".")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lint.Load(mod.Dir, "./...")
	if err != nil {
		b.Fatal(err)
	}
	if len(prog.Failed) > 0 {
		b.Fatalf("load failures: %v", prog.Failed)
	}
	checks := lint.Checks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lint.Run(prog, checks)
	}
	b.StopTimer()

	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lint.Load(mod.Dir, "./..."); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The shareguard sub-benchmark isolates the group's substrate —
	// per-function escape analysis, the taint fixpoint and the lockset
	// solve — by running it on a fresh Program each iteration (the
	// substrate is memoized, so reusing prog would time a map lookup).
	// The load is paused out of the timer; the reported allocs are the
	// escape layer plus the shareguard facts, nothing else.
	b.Run("shareguard", func(b *testing.B) {
		checks := []lint.Check{lint.NewSharedField(), lint.NewGuardLock(), lint.NewPubImmut()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fresh, err := lint.Load(mod.Dir, "./...")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			lint.Run(fresh, checks)
		}
	})
}

package lint

import (
	"fmt"
	"go/ast"

	"repro/internal/lint/ssa"
)

// DeferInLoop flags deferred releases registered inside a loop. A defer
// runs at function return, not at the end of the iteration that
// registered it, so `defer n.Close()` inside an R-tree traversal loop
// pins every visited node's resources until the whole query finishes —
// on the experiments' page-level traversals that is the working set of
// the entire tree, not of one node. The fix is either an explicit
// release at the end of the iteration or a per-iteration function
// literal whose own return triggers the defer; the latter is recognized
// and not flagged, because the literal's body is a separate function
// with no enclosing loop.
//
// Loops are found structurally on the SSA-lite CFG (back edges whose
// target dominates their source), so a defer inside a loop spelled with
// goto or with labeled continue is caught the same as one in a plain
// for.
type DeferInLoop struct {
	// Scopes are import-path fragments; only functions in these
	// packages are checked.
	Scopes []string
	// ReleaseNames are the deferred callee names that indicate a
	// per-iteration resource release.
	ReleaseNames []string
}

// NewDeferInLoop returns the check configured for the traversal-heavy
// packages.
func NewDeferInLoop() *DeferInLoop {
	return &DeferInLoop{
		Scopes:       []string{"internal/rtree", "internal/storage", "internal/core"},
		ReleaseNames: []string{"Close", "Put", "Release", "Unpin"},
	}
}

// Name implements Check.
func (c *DeferInLoop) Name() string { return "deferinloop" }

// Run implements Check.
func (c *DeferInLoop) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pathInScope(pkg.ImportPath, c.Scopes) {
			continue
		}
		for _, fs := range funcsOf(prog, pkg) {
			diags = append(diags, c.checkFunc(prog, fs)...)
		}
	}
	return diags
}

func (c *DeferInLoop) checkFunc(prog *Program, fs FuncSource) []Diagnostic {
	f := prog.IR(fs)
	loops := f.Loops(f.Dominators())
	if len(loops) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, b := range f.Blocks {
		if !ssa.InLoop(loops, b) {
			continue
		}
		for _, n := range b.Nodes {
			ds, ok := n.(*ast.DeferStmt)
			if !ok {
				continue
			}
			name := c.releaseName(ds)
			if name == "" {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:   prog.position(ds.Pos()),
				Check: c.Name(),
				Message: fmt.Sprintf(
					"defer %s inside a loop runs at function return, not per iteration; release explicitly or wrap the iteration in a function",
					name),
			})
		}
	}
	return diags
}

// releaseName returns the deferred call's release-method name, or ""
// when the defer is not a recognized release.
func (c *DeferInLoop) releaseName(ds *ast.DeferStmt) string {
	var name string
	switch fun := ast.Unparen(ds.Call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return ""
	}
	for _, r := range c.ReleaseNames {
		if name == r {
			return name
		}
	}
	return ""
}

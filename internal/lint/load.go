package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/ssa"
)

// Module identifies the Go module under analysis.
type Module struct {
	// Dir is the absolute path of the module root (the directory holding
	// go.mod).
	Dir string
	// Path is the module path declared in go.mod.
	Path string
}

// Package is one type-checked package of the module: the parsed files plus
// the type information the checks traverse.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
}

// Program is a load result: the module, the packages selected by the load
// patterns, and every module package pulled in as a dependency. Checks run
// over Packages; dependencies are available for type information only.
type Program struct {
	Module   Module
	Fset     *token.FileSet
	Packages []*Package
	// Failed records the packages that did not load (parse or
	// type-check error). The rest of the program is still analyzable,
	// but a caller gating a build MUST treat a non-empty Failed as a
	// failure — a package that does not load is a package that was not
	// linted.
	Failed []LoadError

	// ir memoizes the SSA-lite CFG per function body, and reach the
	// reaching-definitions solution per CFG (see ir.go). cg memoizes the
	// callgraph so every check shares one build (see Callgraph). esc
	// memoizes the escape-to-goroutine facts per CFG and sg the whole
	// shareguard substrate (see shareguard.go), so the three shareguard
	// checks pay for one access/taint/lockset pass between them.
	ir    map[*ast.BlockStmt]*ssa.Func
	reach map[*ssa.Func]*ssa.Reaching
	cg    *callgraph
	esc   map[*ssa.Func]*ssa.Escapes
	sg    *sgFacts
}

// Callgraph returns the program's callgraph-lite, building and memoizing
// it on first use: the typed load is already shared across checks through
// this Program, and the callgraph — the next most expensive artifact —
// is shared the same way.
func (p *Program) Callgraph() *callgraph {
	if p.cg == nil {
		p.cg = buildCallgraph(p)
	}
	return p.cg
}

// LoadError is one package that failed to load.
type LoadError struct {
	// Dir is the package directory that was requested.
	Dir string
	// Err is the parse or type-check error.
	Err error
}

func (e LoadError) Error() string { return fmt.Sprintf("%s: %v", e.Dir, e.Err) }

// position resolves a token.Pos into a Position whose file name is relative
// to the module root, for stable diagnostics.
func (p *Program) position(pos token.Pos) token.Position {
	tp := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.Module.Dir, tp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		tp.Filename = filepath.ToSlash(rel)
	}
	return tp
}

// loader loads and type-checks module packages from source. Imports of
// module-internal packages are resolved recursively from the module tree;
// everything else (the standard library — the module has no external
// dependencies, and the analyzer refuses to guess at any) goes through the
// stdlib source importer.
type loader struct {
	mod     Module
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

func newLoader(mod Module) *loader {
	fset := token.NewFileSet()
	return &loader{
		mod:     mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for the type-checker's sake: module
// packages load from the module tree, the rest from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		pkg, err := l.loadDir(filepath.Join(l.mod.Dir, filepath.FromSlash(strings.TrimPrefix(path, l.mod.Path))))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir (non-test files only),
// memoized by import path.
func (l *loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFileNames(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        abs,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.mod.Dir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.mod.Dir)
	}
	if rel == "." {
		return l.mod.Path, nil
	}
	return l.mod.Path + "/" + filepath.ToSlash(rel), nil
}

// goFileNames lists the non-test Go files of a directory, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FindModule locates the module containing dir by walking up to the nearest
// go.mod and reading its module path.
func FindModule(dir string) (Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return Module{}, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path, perr := modulePath(data)
			if perr != nil {
				return Module{}, fmt.Errorf("lint: %s/go.mod: %w", d, perr)
			}
			return Module{Dir: d, Path: path}, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return Module{}, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) (string, error) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
			if path != "" {
				return path, nil
			}
		}
	}
	return "", fmt.Errorf("no module directive")
}

// Load type-checks the packages selected by patterns, resolved relative to
// dir (which must lie inside a module). A pattern is either a directory, or
// a directory followed by "/..." to include every package below it;
// "./..." therefore loads the whole module. Recursive walks skip testdata,
// hidden and underscore-prefixed directories, exactly like the go tool; a
// directory named explicitly is always loaded, which is how the analyzer's
// own fixture packages under testdata are linted.
func Load(dir string, patterns ...string) (*Program, error) {
	mod, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(mod)
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root, recursive = rest, true
			if root == "" || root == "." {
				root = "."
			}
		} else if pat == "..." {
			root, recursive = ".", true
		}
		if !filepath.IsAbs(root) {
			root = filepath.Join(dir, root)
		}
		if !recursive {
			add(root)
			continue
		}
		walked, err := walkPackageDirs(root)
		if err != nil {
			return nil, err
		}
		for _, d := range walked {
			add(d)
		}
	}
	prog := &Program{Module: mod, Fset: l.fset}
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			// A broken package must not hide the findings of the rest
			// of the module: record the failure and keep loading. The
			// cpqlint command turns a non-empty Failed into a non-zero
			// exit even when every loaded package is clean.
			prog.Failed = append(prog.Failed, LoadError{Dir: d, Err: err})
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].ImportPath < prog.Packages[j].ImportPath
	})
	return prog, nil
}

// walkPackageDirs returns every directory under root that contains at least
// one non-test Go file, skipping testdata, hidden and underscore-prefixed
// directories below the root.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root {
			base := filepath.Base(path)
			if base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
				return filepath.SkipDir
			}
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

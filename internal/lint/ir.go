package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint/ssa"
)

// This file ports the driver onto the SSA-lite IR: Program owns one
// memoized CFG per function body, so the path-sensitive checks
// (pinleak, lockorder, boundmono, deferinloop) and the callgraph's
// go-root resolution all share a single build per function.

// FuncSource is one analyzable function body: a declared function or a
// function literal, with the package context a check needs to resolve
// types and report positions.
type FuncSource struct {
	// Pkg is the package declaring the function.
	Pkg *Package
	// Name is a human-readable label: "Name", "(*T).Name", or
	// "Parent.func@line" for literals.
	Name string
	// Decl is the *ast.FuncDecl or *ast.FuncLit.
	Decl ast.Node
	// Body is the function body the IR is built from.
	Body *ast.BlockStmt
	// Recv is the receiver's named type for methods, nil otherwise.
	Recv *types.Named
}

// funcsOf lists every function and function literal of pkg, outermost
// first.
func funcsOf(prog *Program, pkg *Package) []FuncSource {
	var out []FuncSource
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			var recv *types.Named
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if t := pkg.Info.TypeOf(fd.Recv.List[0].Type); t != nil {
					recv = namedOf(t)
					if recv != nil {
						name = fmt.Sprintf("(*%s).%s", recv.Obj().Name(), fd.Name.Name)
					}
				}
			}
			out = append(out, FuncSource{Pkg: pkg, Name: name, Decl: fd, Body: fd.Body, Recv: recv})
			out = append(out, literalsIn(prog, pkg, name, fd.Body)...)
		}
	}
	return out
}

// literalsIn collects the function literals nested in body (each one a
// separate Func for the IR, mirroring the callgraph's treatment).
func literalsIn(prog *Program, pkg *Package, parent string, body ast.Node) []FuncSource {
	var out []FuncSource
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		name := fmt.Sprintf("%s.func@%d", parent, prog.position(lit.Pos()).Line)
		out = append(out, FuncSource{Pkg: pkg, Name: name, Decl: lit, Body: lit.Body})
		out = append(out, literalsIn(prog, pkg, name, lit.Body)...)
		return false // the recursive call owns the nested literals
	})
	return out
}

// IR returns the control-flow graph for fs, building and memoizing it
// on first use.
func (p *Program) IR(fs FuncSource) *ssa.Func {
	return p.irFor(fs.Name, fs.Body, fs.Pkg.Info)
}

// irFor is the memoized CFG builder shared by IR and the callgraph.
func (p *Program) irFor(name string, body *ast.BlockStmt, info *types.Info) *ssa.Func {
	if p.ir == nil {
		p.ir = make(map[*ast.BlockStmt]*ssa.Func)
	}
	if f, ok := p.ir[body]; ok {
		return f
	}
	f := ssa.Build(name, body, info)
	p.ir[body] = f
	return f
}

// escFor memoizes the escape-to-goroutine facts per CFG.
func (p *Program) escFor(f *ssa.Func, info *types.Info) *ssa.Escapes {
	if p.esc == nil {
		p.esc = make(map[*ssa.Func]*ssa.Escapes)
	}
	if e, ok := p.esc[f]; ok {
		return e
	}
	e := ssa.AnalyzeEscapes(f, info)
	p.esc[f] = e
	return e
}

// reachFor memoizes the reaching-definitions solution per CFG.
func (p *Program) reachFor(f *ssa.Func, info *types.Info) *ssa.Reaching {
	if p.reach == nil {
		p.reach = make(map[*ssa.Func]*ssa.Reaching)
	}
	if r, ok := p.reach[f]; ok {
		return r
	}
	r := ssa.Reach(f, info)
	p.reach[f] = r
	return r
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

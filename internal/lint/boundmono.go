package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BoundMono protects the monotonicity of the parallel engine's shared
// pruning bound. The K-CPQ bound T only ever tightens (paper §5.2):
// every worker prunes against it, so a write that raises it re-admits
// node pairs that were already correctly discarded — results silently
// lose members of the true closest-pair set. The bound type therefore
// funnels all writes through two helpers: tighten (CAS-min) and store,
// which is legal only for the +Inf initialization before workers start.
//
// The check flags, outside the bound type's own methods:
//
//   - any access to the type's raw bits field (a write bypasses the
//     CAS-min discipline entirely; even a read belongs in load);
//   - a store whose argument does not resolve — through the SSA-lite
//     reaching definitions — to math.Inf(1): storing anything else is a
//     blind reset that can widen the bound;
//   - overwriting a whole value of the bound type (composite-literal or
//     copy assignment), which resets it to zero or to an arbitrary
//     snapshot.
type BoundMono struct {
	// Scopes are import-path fragments; only bound types declared in
	// these packages are protected.
	Scopes []string
	// TypeNames are the names of the tighten-only bound types: the
	// parallel engine's internal bound and the exported wrapper the
	// shard executor broadcasts across joins.
	TypeNames []string
}

// NewBoundMono returns the check configured for the parallel engine and
// the shard executor's broadcast bound.
func NewBoundMono() *BoundMono {
	return &BoundMono{Scopes: []string{"internal/core"}, TypeNames: []string{"atomicMinFloat64", "SharedBound"}}
}

// Name implements Check.
func (c *BoundMono) Name() string { return "boundmono" }

// Run implements Check.
func (c *BoundMono) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, fs := range funcsOf(prog, pkg) {
			if c.isBoundMethod(fs) {
				continue // the helpers themselves live here
			}
			diags = append(diags, c.checkFunc(prog, fs)...)
		}
	}
	return diags
}

// boundTypeName returns the protected bound type's name when t (or its
// pointee) is one.
func (c *BoundMono) boundTypeName(t types.Type) (string, bool) {
	named := namedOf(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathInScope(obj.Pkg().Path(), c.Scopes) {
		return "", false
	}
	for _, name := range c.TypeNames {
		if obj.Name() == name {
			return name, true
		}
	}
	return "", false
}

// isBoundType reports whether t (or its pointee) is a protected bound
// type.
func (c *BoundMono) isBoundType(t types.Type) bool {
	_, ok := c.boundTypeName(t)
	return ok
}

// isBoundMethod reports whether fs is a method declared on the bound
// type itself.
func (c *BoundMono) isBoundMethod(fs FuncSource) bool {
	return fs.Recv != nil && c.isBoundType(fs.Recv)
}

func (c *BoundMono) checkFunc(prog *Program, fs FuncSource) []Diagnostic {
	info := fs.Pkg.Info
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     prog.position(n.Pos()),
			Check:   c.Name(),
			Message: fmt.Sprintf(format, args...),
		})
	}
	// The traversal prunes nested literals: funcsOf hands each literal to
	// checkFunc separately, with its own IR.
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fs.Decl {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Raw field access on a bound value: x.bits, s.bound.bits.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if name, bound := c.boundTypeName(info.TypeOf(n.X)); bound {
					report(n.Sel, "raw %s field %s accessed outside the type's methods; the CAS-min discipline lives in tighten/load",
						name, n.Sel.Name)
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "store" || !c.isBoundType(info.TypeOf(sel.X)) {
				return true
			}
			if len(n.Args) == 1 && c.isPlusInf(prog, fs, n.Args[0]) {
				return true // the one legal store: +Inf initialization
			}
			report(n, "store on the shared bound with a value other than math.Inf(1) can widen it; use tighten (CAS-min)")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				t := info.TypeOf(lhs)
				if _, isPtr := t.(*types.Pointer); isPtr {
					// Handing a *bound around is injection (the shard
					// executor wiring a broadcast bound into Options),
					// not a reset of the value.
					continue
				}
				if name, bound := c.boundTypeName(t); bound {
					report(lhs, "overwriting a whole %s value resets the shared bound; use tighten (CAS-min)", name)
				}
			}
		}
		return true
	})
	return diags
}

// isPlusInf reports whether e resolves, through the function's reaching
// definitions, to a math.Inf(1) call.
func (c *BoundMono) isPlusInf(prog *Program, fs FuncSource, e ast.Expr) bool {
	info := fs.Pkg.Info
	r := prog.reachFor(prog.IR(fs), info)
	call, ok := ast.Unparen(r.ResolveIdent(e)).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" || fn.Name() != "Inf" {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "1"
}

// Package geom provides the planar geometry primitives and the MBR distance
// metrics used by the closest-pair algorithms: points, axis-aligned
// rectangles (MBRs), and the MINMINDIST / MINMAXDIST / MAXMAXDIST metrics
// between two MBRs defined in Section 2.3 of Corral et al. (SIGMOD 2000),
// plus the point-to-MBR metrics of Roussopoulos et al. (SIGMOD 1995).
//
// All distance computations are carried out on squared Euclidean distances
// to avoid square roots on hot paths; every *Sq function has a non-squared
// convenience wrapper.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane. The paper focuses on 2-dimensional data;
// the extension to k dimensions is mechanical (§2.1).
type Point struct {
	X, Y float64
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.DistSq(q))
}

// Add returns the translation of p by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{p.X + dx, p.Y + dy}
}

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point {
	return Point{p.X * s, p.Y * s}
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	return p.X == q.X && p.Y == q.Y
}

// Less orders points lexicographically by (X, Y). It is used to produce
// deterministic output orders for pairs with tied distances.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Rect returns the degenerate rectangle covering exactly p.
func (p Point) Rect() Rect {
	return Rect{Min: p, Max: p}
}

package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (a minimum bounding rectangle, MBR).
// A Rect is valid when Min.X <= Max.X and Min.Y <= Max.Y; a point is
// represented as a degenerate Rect with Min == Max.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions to the other operand.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// RectOf returns the MBR of the given points. It returns EmptyRect for an
// empty argument list.
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Union(p.Rect())
	}
	return r
}

// IsEmpty reports whether r contains no points (Min > Max on some axis).
func (r Rect) IsEmpty() bool {
	return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y
}

// Valid reports whether r is a well-formed, non-empty rectangle with
// finite coordinates.
func (r Rect) Valid() bool {
	if r.IsEmpty() {
		return false
	}
	for _, v := range [...]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Area returns the area of r. Degenerate rectangles have area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Margin returns half the perimeter of r (the R*-tree split "margin" value).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the overlap of r and s; the result IsEmpty when the
// rectangles are disjoint.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	return out
}

// Intersects reports whether r and s share at least one point
// (touching edges count as intersecting).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// OverlapArea returns the area of the intersection of r and s
// (0 when disjoint or merely touching).
func (r Rect) OverlapArea(s Rect) float64 {
	dx := math.Min(r.Max.X, s.Max.X) - math.Max(r.Min.X, s.Min.X)
	if dx <= 0 {
		return 0
	}
	dy := math.Min(r.Max.Y, s.Max.Y) - math.Max(r.Min.Y, s.Min.Y)
	if dy <= 0 {
		return 0
	}
	return dx * dy
}

// Contains reports whether s lies entirely inside r.
func (r Rect) Contains(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Min.X <= s.Min.X && r.Min.Y <= s.Min.Y &&
		r.Max.X >= s.Max.X && r.Max.Y >= s.Max.Y
}

// ContainsPoint reports whether p lies inside r (boundary included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// Enlargement returns the area increase needed for r to also cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Equal reports whether r and s are identical rectangles.
func (r Rect) Equal(s Rect) bool {
	return r.Min.Equal(s.Min) && r.Max.Equal(s.Max)
}

// Corners returns the four vertices of r in the order
// (min,min), (max,min), (max,max), (min,max).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

// Edges returns the four edges of r as endpoint pairs:
// bottom, right, top, left.
func (r Rect) Edges() [4][2]Point {
	c := r.Corners()
	return [4][2]Point{
		{c[0], c[1]}, // bottom
		{c[1], c[2]}, // right
		{c[2], c[3]}, // top
		{c[3], c[0]}, // left
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{Min: r.Min.Add(dx, dy), Max: r.Max.Add(dx, dy)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

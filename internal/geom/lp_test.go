package geom

import (
	"math"
	"math/rand"
	"testing"
)

func metricsUnderTest(t *testing.T) []Metric {
	t.Helper()
	l3, err := Lp(3)
	if err != nil {
		t.Fatal(err)
	}
	l15, err := Lp(1.5)
	if err != nil {
		t.Fatal(err)
	}
	return []Metric{L2(), L1(), LInf(), l3, l15}
}

func TestLpConstructors(t *testing.T) {
	if _, err := Lp(0.5); err == nil {
		t.Error("p < 1 must be rejected")
	}
	if _, err := Lp(math.NaN()); err == nil {
		t.Error("NaN p must be rejected")
	}
	m, err := Lp(2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsEuclidean() {
		t.Error("Lp(2) must normalize to the Euclidean metric")
	}
	if !(Metric{}).IsEuclidean() {
		t.Error("zero Metric must be Euclidean")
	}
	names := map[string]bool{}
	for _, m := range metricsUnderTest(t) {
		if n := m.String(); n == "" || names[n] {
			t.Errorf("bad or duplicate metric name %q", n)
		} else {
			names[n] = true
		}
	}
}

func TestMetricPointDistances(t *testing.T) {
	a, b := Point{X: 1, Y: 2}, Point{X: 4, Y: 6} // dx=3, dy=4
	cases := []struct {
		m    Metric
		want float64
	}{
		{L2(), 5},
		{L1(), 7},
		{LInf(), 4},
	}
	for _, c := range cases {
		if got := c.m.Dist(a, b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Dist = %g, want %g", c.m, got, c.want)
		}
	}
	l3, _ := Lp(3)
	want := math.Pow(27+64, 1.0/3)
	if got := l3.Dist(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("L3.Dist = %g, want %g", got, want)
	}
}

func TestMetricKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 500; i++ {
			d := rng.Float64() * 100
			if got := m.KeyToDist(m.DistToKey(d)); math.Abs(got-d) > 1e-9*math.Max(1, d) {
				t.Fatalf("%v: key round trip %g -> %g", m, d, got)
			}
		}
	}
}

func TestMetricKeyIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 500; i++ {
			a := Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
			b := Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
			c := Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
			d := Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
			kLess := m.Key(a, b) < m.Key(c, d)
			dLess := m.Dist(a, b) < m.Dist(c, d)
			if kLess != dLess {
				t.Fatalf("%v: key order disagrees with distance order", m)
			}
		}
	}
}

func TestMetricTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 500; i++ {
			a := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			b := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			c := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-9 {
				t.Fatalf("%v: triangle inequality violated", m)
			}
		}
	}
}

func TestMetricL2MatchesLegacyFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := L2()
	for i := 0; i < 1000; i++ {
		a, b := randRect(rng, 10), randRect(rng, 10)
		if m.MinMinKey(a, b) != MinMinDistSq(a, b) {
			t.Fatal("MinMinKey != MinMinDistSq")
		}
		if m.MaxMaxKey(a, b) != MaxMaxDistSq(a, b) {
			t.Fatal("MaxMaxKey != MaxMaxDistSq")
		}
		if math.Abs(m.MinMaxKey(a, b)-MinMaxDistSq(a, b)) > 1e-9 {
			t.Fatal("MinMaxKey != MinMaxDistSq")
		}
		p := Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		if m.PointRectMinKey(p, a) != PointRectMinDistSq(p, a) {
			t.Fatal("PointRectMinKey != PointRectMinDistSq")
		}
	}
}

func TestLpInequalityOneProperty(t *testing.T) {
	// MINMINDIST <= dist(p,q) <= MAXMAXDIST under every metric.
	rng := rand.New(rand.NewSource(5))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 200; i++ {
			a, b := randRect(rng, 5), randRect(rng, 5)
			mn, mx := m.MinMinKey(a, b), m.MaxMaxKey(a, b)
			for j := 0; j < 10; j++ {
				p, q := randPointIn(rng, a), randPointIn(rng, b)
				k := m.Key(p, q)
				if k < mn-1e-9 || k > mx+1e-9 {
					t.Fatalf("%v: inequality 1 violated: key=%g mn=%g mx=%g",
						m, k, mn, mx)
				}
			}
		}
	}
}

func TestLpInequalityTwoProperty(t *testing.T) {
	// Inequality 2 under every metric: MBRs of point sets always contain a
	// pair at distance <= MINMAXDIST.
	rng := rand.New(rand.NewSource(6))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 100; i++ {
			ps := make([]Point, 4+rng.Intn(8))
			qs := make([]Point, 4+rng.Intn(8))
			for j := range ps {
				ps[j] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			}
			for j := range qs {
				qs[j] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			}
			a, b := RectOf(ps...), RectOf(qs...)
			mm := m.MinMaxKey(a, b)
			best := math.Inf(1)
			for _, p := range ps {
				for _, q := range qs {
					if k := m.Key(p, q); k < best {
						best = k
					}
				}
			}
			if best > mm+1e-9 {
				t.Fatalf("%v: inequality 2 violated: best=%g minmax=%g", m, best, mm)
			}
		}
	}
}

func TestLpMetricOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range metricsUnderTest(t) {
		for i := 0; i < 500; i++ {
			a, b := randRect(rng, 10), randRect(rng, 10)
			mn, mm, mx := m.MinMinKey(a, b), m.MinMaxKey(a, b), m.MaxMaxKey(a, b)
			if mn > mm+1e-9 || mm > mx+1e-9 {
				t.Fatalf("%v: metric ordering violated: %g %g %g", m, mn, mm, mx)
			}
		}
	}
}

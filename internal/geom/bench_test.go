package geom

import (
	"math/rand"
	"testing"
)

func benchRects(n int) ([]Rect, []Rect) {
	rng := rand.New(rand.NewSource(1))
	a := make([]Rect, n)
	b := make([]Rect, n)
	for i := 0; i < n; i++ {
		a[i] = randRect(rng, 10)
		b[i] = randRect(rng, 10)
	}
	return a, b
}

func BenchmarkMinMinDistSq(bb *testing.B) {
	a, b := benchRects(1024)
	bb.ResetTimer()
	var sink float64
	for i := 0; i < bb.N; i++ {
		sink += MinMinDistSq(a[i%1024], b[i%1024])
	}
	_ = sink
}

func BenchmarkMinMaxDistSq(bb *testing.B) {
	a, b := benchRects(1024)
	bb.ResetTimer()
	var sink float64
	for i := 0; i < bb.N; i++ {
		sink += MinMaxDistSq(a[i%1024], b[i%1024])
	}
	_ = sink
}

func BenchmarkMaxMaxDistSq(bb *testing.B) {
	a, b := benchRects(1024)
	bb.ResetTimer()
	var sink float64
	for i := 0; i < bb.N; i++ {
		sink += MaxMaxDistSq(a[i%1024], b[i%1024])
	}
	_ = sink
}

func BenchmarkMetricMinMinKeyL1(bb *testing.B) {
	a, b := benchRects(1024)
	m := L1()
	bb.ResetTimer()
	var sink float64
	for i := 0; i < bb.N; i++ {
		sink += m.MinMinKey(a[i%1024], b[i%1024])
	}
	_ = sink
}

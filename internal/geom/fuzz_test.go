package geom

import (
	"math"
	"testing"
)

// FuzzMetricOrder asserts the paper's Inequalities 1 and 2 (Section 2.3)
// on arbitrary rectangle pairs: for any two MBRs,
//
//	MINMINDIST <= MINMAXDIST <= MAXMAXDIST
//
// both in the squared forms the pruning hot paths compare and in the
// reported (rooted) forms, plus the side conditions the algorithms lean
// on: all three are non-negative, and MINMINDIST is exactly 0 for
// intersecting rectangles. The engine's correctness rests on this chain —
// the sqrtfree lint check keeps roots out of comparisons, and this fuzz
// target keeps the squared metrics ordered.
func FuzzMetricOrder(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0)      // disjoint squares
	f.Add(-5.0, 1.0, 0.0, 4.0, -1.0, -2.0, 6.0, 0.5)   // overlapping
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)      // coincident points
	f.Add(1.0, 2.0, 1.0, 9.0, -3.0, 2.0, -3.0, 2.0)    // segment vs point
	f.Add(1e-9, 0.0, 2e-9, 1e17, -1e17, 0.0, 0.0, 1.0) // extreme aspect ratios
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite coordinate")
			}
		}
		a := rectFrom(ax, ay, bx, by)
		b := rectFrom(cx, cy, dx, dy)

		minmin := MinMinDistSq(a, b)
		minmax := MinMaxDistSq(a, b)
		maxmax := MaxMaxDistSq(a, b)
		if minmin < 0 || minmax < 0 || maxmax < 0 {
			t.Fatalf("negative squared metric: minmin=%g minmax=%g maxmax=%g", minmin, minmax, maxmax)
		}
		if minmin > minmax {
			t.Errorf("MINMINDIST^2 %g > MINMAXDIST^2 %g for %v %v", minmin, minmax, a, b)
		}
		if minmax > maxmax {
			t.Errorf("MINMAXDIST^2 %g > MAXMAXDIST^2 %g for %v %v", minmax, maxmax, a, b)
		}
		if a.Intersects(b) && minmin != 0 {
			t.Errorf("intersecting MBRs with MINMINDIST^2 %g for %v %v", minmin, a, b)
		}

		// The reported distances must order the same way (the root is
		// monotone) and agree with the squared forms.
		dMin, dMid, dMax := MinMinDist(a, b), MinMaxDist(a, b), MaxMaxDist(a, b)
		if dMin > dMid || dMid > dMax {
			t.Errorf("rooted metrics out of order: %g %g %g for %v %v", dMin, dMid, dMax, a, b)
		}
		if dMin != math.Sqrt(minmin) || dMid != math.Sqrt(minmax) || dMax != math.Sqrt(maxmax) {
			t.Errorf("rooted metrics disagree with squared forms for %v %v", a, b)
		}
	})
}

// rectFrom builds a valid MBR from two arbitrary corner points.
func rectFrom(x1, y1, x2, y2 float64) Rect {
	return Rect{
		Min: Point{X: math.Min(x1, x2), Y: math.Min(y1, y2)},
		Max: Point{X: math.Max(x1, x2), Y: math.Max(y1, y2)},
	}
}

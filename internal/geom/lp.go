package geom

import (
	"fmt"
	"math"
)

// Metric is a Minkowski (L_p) distance on the plane, p >= 1, including the
// L1 (Manhattan), L2 (Euclidean) and L-infinity (Chebyshev) special cases.
// Section 2.1 of the paper notes its methods "can be easily adapted to any
// Minkowski metric"; this type is that adaptation.
//
// The zero value is the Euclidean metric, so existing call sites keep
// their behavior. To avoid roots and powers on hot paths, all comparisons
// run on a monotone *key* of the distance (the squared distance for L2,
// the p-th power for general L_p, the distance itself for L1/L-infinity);
// KeyToDist converts a key back to the actual distance.
type Metric struct {
	// p encodes the order: 0 means L2 (the zero value), math.Inf(1) means
	// L-infinity, anything else is the literal order.
	p float64
}

// L2 returns the Euclidean metric (the paper's default).
func L2() Metric { return Metric{} }

// L1 returns the Manhattan metric.
func L1() Metric { return Metric{p: 1} }

// LInf returns the Chebyshev (maximum) metric.
func LInf() Metric { return Metric{p: math.Inf(1)} }

// Lp returns the Minkowski metric of order p >= 1.
func Lp(p float64) (Metric, error) {
	if math.IsNaN(p) || p < 1 {
		return Metric{}, fmt.Errorf("geom: Minkowski order %g out of [1, +inf]", p)
	}
	if p == 2 {
		return Metric{}, nil
	}
	return Metric{p: p}, nil
}

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch {
	case m.p == 0:
		return "L2"
	case math.IsInf(m.p, 1):
		return "Linf"
	default:
		return fmt.Sprintf("L%g", m.p)
	}
}

// IsEuclidean reports whether m is the L2 metric.
func (m Metric) IsEuclidean() bool { return m.p == 0 }

// combine merges non-negative per-axis deltas into a comparison key.
func (m Metric) combine(dx, dy float64) float64 {
	switch {
	case m.p == 0:
		return dx*dx + dy*dy
	case m.p == 1:
		return dx + dy
	case math.IsInf(m.p, 1):
		return math.Max(dx, dy)
	default:
		return math.Pow(dx, m.p) + math.Pow(dy, m.p)
	}
}

// Combine merges non-negative per-axis deltas into a comparison key. It
// is the exported form of combine for flat-array distance kernels
// (internal/core's batched MINMINDIST loop) that compute per-axis
// workspace gaps themselves and only need the norm applied; callers must
// pass deltas >= 0 or the general-p branch misbehaves.
func (m Metric) Combine(dx, dy float64) float64 { return m.combine(dx, dy) }

// KeyToDist converts a comparison key back into a distance.
func (m Metric) KeyToDist(k float64) float64 {
	switch {
	case m.p == 0:
		return math.Sqrt(k)
	case m.p == 1 || math.IsInf(m.p, 1):
		return k
	default:
		return math.Pow(k, 1/m.p)
	}
}

// DistToKey converts a distance into its comparison key.
func (m Metric) DistToKey(d float64) float64 {
	switch {
	case m.p == 0:
		return d * d
	case m.p == 1 || math.IsInf(m.p, 1):
		return d
	default:
		return math.Pow(d, m.p)
	}
}

// Key returns the comparison key of the distance between two points.
func (m Metric) Key(a, b Point) float64 {
	return m.combine(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// Dist returns the distance between two points.
func (m Metric) Dist(a, b Point) float64 {
	return m.KeyToDist(m.Key(a, b))
}

// MinMinKey returns the key of MINMINDIST under m: per-axis workspace
// separations combined by the norm (0 when the rectangles intersect).
func (m Metric) MinMinKey(a, b Rect) float64 {
	var dx, dy float64
	switch {
	case b.Min.X > a.Max.X:
		dx = b.Min.X - a.Max.X
	case a.Min.X > b.Max.X:
		dx = a.Min.X - b.Max.X
	}
	switch {
	case b.Min.Y > a.Max.Y:
		dy = b.Min.Y - a.Max.Y
	case a.Min.Y > b.Max.Y:
		dy = a.Min.Y - b.Max.Y
	}
	return m.combine(dx, dy)
}

// MaxMaxKey returns the key of MAXMAXDIST under m. Any L_p norm is
// coordinate-wise increasing in the per-axis deltas, whose maxima are
// attained simultaneously at a corner pair.
func (m Metric) MaxMaxKey(a, b Rect) float64 {
	dx := math.Max(math.Abs(b.Max.X-a.Min.X), math.Abs(a.Max.X-b.Min.X))
	dy := math.Max(math.Abs(b.Max.Y-a.Min.Y), math.Abs(a.Max.Y-b.Min.Y))
	return m.combine(dx, dy)
}

// edgeMaxKey returns the key of the maximum distance between two segments
// under m; every L_p norm is convex, so the maximum over the segment
// product is attained at endpoints.
func (m Metric) edgeMaxKey(e, f [2]Point) float64 {
	mx := m.Key(e[0], f[0])
	if d := m.Key(e[0], f[1]); d > mx {
		mx = d
	}
	if d := m.Key(e[1], f[0]); d > mx {
		mx = d
	}
	if d := m.Key(e[1], f[1]); d > mx {
		mx = d
	}
	return mx
}

// MinMaxKey returns the key of MINMAXDIST under m (Inequality 2 holds for
// any metric: each MBR edge carries at least one data point).
func (m Metric) MinMaxKey(a, b Rect) float64 {
	ea, eb := a.Edges(), b.Edges()
	min := math.Inf(1)
	for i := range ea {
		for j := range eb {
			if d := m.edgeMaxKey(ea[i], eb[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// PointRectMinKey returns the key of MINDIST(p, r) under m.
func (m Metric) PointRectMinKey(p Point, r Rect) float64 {
	var dx, dy float64
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X > r.Max.X:
		dx = p.X - r.Max.X
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y > r.Max.Y:
		dy = p.Y - r.Max.Y
	}
	return m.combine(dx, dy)
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinMinDistBasic(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	cases := []struct {
		b    Rect
		want float64 // non-squared
	}{
		{Rect{Point{2, 0}, Point{3, 1}}, 1},     // right of a
		{Rect{Point{0, 3}, Point{1, 4}}, 2},     // above a
		{Rect{Point{4, 5}, Point{6, 7}}, 5},     // diagonal: dx=3, dy=4
		{Rect{Point{0.5, 0.5}, Point{2, 2}}, 0}, // overlapping
		{Rect{Point{1, 0}, Point{2, 1}}, 0},     // touching
		{Rect{Point{-3, -4}, Point{-3, -4}}, 5}, // point rect, diagonal
		{Rect{Point{0.2, 0.2}, Point{0.8, 0.8}}, 0} /* contained */}
	for _, c := range cases {
		if got := MinMinDist(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinMinDist(%v, %v) = %g, want %g", a, c.b, got, c.want)
		}
		if got, want := MinMinDistSq(a, c.b), c.want*c.want; math.Abs(got-want) > 1e-12 {
			t.Errorf("MinMinDistSq(%v, %v) = %g, want %g", a, c.b, got, want)
		}
	}
}

func TestMaxMaxDistBasic(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{2, 0}, Point{3, 1}}
	// Farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1).
	want := math.Sqrt(10)
	if got := MaxMaxDist(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxMaxDist = %g, want %g", got, want)
	}
	// Identical unit squares: diagonal.
	if got := MaxMaxDist(a, a); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("MaxMaxDist(a,a) = %g, want sqrt(2)", got)
	}
}

func TestMinMaxDistBasic(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{2, 0}, Point{3, 1}}
	// Best edge pair: right edge of a (x=1) and left edge of b (x=2).
	// MAXDIST of those edges = max corner-to-corner = sqrt(1 + 1).
	want := math.Sqrt(2)
	if got := MinMaxDist(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinMaxDist = %g, want %g", got, want)
	}
}

func TestMetricsOnDegenerateRects(t *testing.T) {
	// For two point-rects all three metrics collapse to the point distance.
	p, q := Point{1, 2}, Point{4, 6}
	a, b := p.Rect(), q.Rect()
	want := p.DistSq(q)
	for name, got := range map[string]float64{
		"MinMinDistSq": MinMinDistSq(a, b),
		"MinMaxDistSq": MinMaxDistSq(a, b),
		"MaxMaxDistSq": MaxMaxDistSq(a, b),
	} {
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestMetricOrderingProperty(t *testing.T) {
	// MINMINDIST <= MINMAXDIST <= MAXMAXDIST for random rect pairs.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng, 10), randRect(rng, 10)
		mn := MinMinDistSq(a, b)
		mm := MinMaxDistSq(a, b)
		mx := MaxMaxDistSq(a, b)
		if mn > mm+1e-9 || mm > mx+1e-9 {
			t.Fatalf("metric ordering violated: a=%v b=%v mn=%g mm=%g mx=%g",
				a, b, mn, mm, mx)
		}
	}
}

func TestInequalityOneProperty(t *testing.T) {
	// Inequality 1: MINMINDIST <= dist(p,q) <= MAXMAXDIST for all p in a,
	// q in b.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng, 5), randRect(rng, 5)
		mn := MinMinDistSq(a, b)
		mx := MaxMaxDistSq(a, b)
		for j := 0; j < 20; j++ {
			p, q := randPointIn(rng, a), randPointIn(rng, b)
			d := p.DistSq(q)
			if d < mn-1e-9 || d > mx+1e-9 {
				t.Fatalf("inequality 1 violated: a=%v b=%v p=%v q=%v d=%g mn=%g mx=%g",
					a, b, p, q, d, mn, mx)
			}
		}
	}
}

func TestInequalityTwoProperty(t *testing.T) {
	// Inequality 2: when every edge of both MBRs carries a data point, some
	// pair has distance <= MINMAXDIST. Build MBRs of random point sets (so
	// the edge property holds) and verify the minimum pairwise distance
	// does not exceed MINMAXDIST.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		ps := make([]Point, 5+rng.Intn(10))
		qs := make([]Point, 5+rng.Intn(10))
		for j := range ps {
			ps[j] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		for j := range qs {
			qs[j] = Point{rng.Float64()*10 + 5, rng.Float64() * 10}
		}
		a, b := RectOf(ps...), RectOf(qs...)
		mm := MinMaxDistSq(a, b)
		best := math.Inf(1)
		for _, p := range ps {
			for _, q := range qs {
				if d := p.DistSq(q); d < best {
					best = d
				}
			}
		}
		if best > mm+1e-9 {
			t.Fatalf("inequality 2 violated: best=%g minmax=%g a=%v b=%v",
				best, mm, a, b)
		}
	}
}

func TestMetricsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		a, b := randRect(rng, 10), randRect(rng, 10)
		if MinMinDistSq(a, b) != MinMinDistSq(b, a) {
			t.Fatal("MinMinDistSq must be symmetric")
		}
		if MaxMaxDistSq(a, b) != MaxMaxDistSq(b, a) {
			t.Fatal("MaxMaxDistSq must be symmetric")
		}
		if math.Abs(MinMaxDistSq(a, b)-MinMaxDistSq(b, a)) > 1e-9 {
			t.Fatal("MinMaxDistSq must be symmetric")
		}
	}
}

func TestPointRectMinDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},  // inside
		{Point{0, 0}, 0},  // corner
		{Point{3, 1}, 1},  // right
		{Point{1, -2}, 2}, // below
		{Point{5, 6}, 5},  // diagonal dx=3 dy=4
	}
	for _, c := range cases {
		if got := PointRectMinDist(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PointRectMinDist(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPointRectMinDistMatchesRectMetric(t *testing.T) {
	// MINDIST(p, r) == MINMINDIST(rect(p), r).
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		r := randRect(rng, 10)
		p := Point{rng.Float64()*40 - 20, rng.Float64()*40 - 20}
		a := PointRectMinDistSq(p, r)
		b := MinMinDistSq(p.Rect(), r)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("mismatch p=%v r=%v a=%g b=%g", p, r, a, b)
		}
	}
}

func TestPointRectMinMaxDistMatchesRectMetric(t *testing.T) {
	// The Roussopoulos point-MBR MINMAXDIST must agree with the generic
	// MBR-MBR MINMAXDIST applied to a degenerate rectangle.
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 2000; i++ {
		r := randRect(rng, 10)
		p := Point{rng.Float64()*40 - 20, rng.Float64()*40 - 20}
		a := PointRectMinMaxDistSq(p, r)
		b := MinMaxDistSq(p.Rect(), r)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("mismatch p=%v r=%v a=%g b=%g", p, r, a, b)
		}
	}
}

func TestPointRectMaxDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	// From (3,3) the farthest corner is (0,0): dist sqrt(18).
	if got := PointRectMaxDistSq(Point{3, 3}, r); math.Abs(got-18) > 1e-12 {
		t.Errorf("PointRectMaxDistSq = %g, want 18", got)
	}
	// Inside point: farthest corner.
	if got := PointRectMaxDistSq(Point{0.5, 0.5}, r); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("PointRectMaxDistSq inside = %g, want 4.5", got)
	}
}

func TestMinMaxDistBruteForceEdges(t *testing.T) {
	// Cross-check MinMaxDistSq against a slow sampling upper/lower check:
	// for every edge pair, the sampled max over points on the edges must be
	// <= the analytic edge max; the min over edge pairs of sampled maxima
	// approximates MINMAXDIST from below.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		a, b := randRect(rng, 5), randRect(rng, 5)
		ea, eb := a.Edges(), b.Edges()
		approx := math.Inf(1)
		for _, e := range ea {
			for _, f := range eb {
				sampledMax := 0.0
				for s := 0; s <= 8; s++ {
					for u := 0; u <= 8; u++ {
						sp := Point{
							e[0].X + float64(s)/8*(e[1].X-e[0].X),
							e[0].Y + float64(s)/8*(e[1].Y-e[0].Y),
						}
						up := Point{
							f[0].X + float64(u)/8*(f[1].X-f[0].X),
							f[0].Y + float64(u)/8*(f[1].Y-f[0].Y),
						}
						if d := sp.DistSq(up); d > sampledMax {
							sampledMax = d
						}
					}
				}
				analytic := edgeMaxDistSq(e, f)
				if sampledMax > analytic+1e-9 {
					t.Fatalf("edge max underestimates: sampled=%g analytic=%g",
						sampledMax, analytic)
				}
				if sampledMax < approx {
					approx = sampledMax
				}
			}
		}
		got := MinMaxDistSq(a, b)
		if got > approx+1e-9 {
			t.Fatalf("MinMaxDistSq=%g exceeds sampled bound %g", got, approx)
		}
	}
}

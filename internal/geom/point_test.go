package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); math.Abs(got-c.want*c.want) > 1e-12 {
			t.Errorf("DistSq(%v, %v) = %g, want %g", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.DistSq(q) == q.DistSq(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointAddScale(t *testing.T) {
	p := Point{1, 2}
	if got := p.Add(3, -1); !got.Equal(Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointLess(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{0, 0}, Point{1, 0}, true},
		{Point{1, 0}, Point{0, 0}, false},
		{Point{0, 0}, Point{0, 1}, true},
		{Point{0, 1}, Point{0, 0}, false},
		{Point{0, 0}, Point{0, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Less(c.q); got != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPointLessIsStrictWeakOrder(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		if p.Less(q) && q.Less(p) {
			return false // antisymmetry
		}
		if p.Equal(q) && (p.Less(q) || q.Less(p)) {
			return false // irreflexivity on equal points
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointRect(t *testing.T) {
	p := Point{3, 7}
	r := p.Rect()
	if !r.Min.Equal(p) || !r.Max.Equal(p) {
		t.Errorf("Rect() = %v", r)
	}
	if r.Area() != 0 {
		t.Errorf("point rect area = %g", r.Area())
	}
	if !r.ContainsPoint(p) {
		t.Error("point rect must contain its point")
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{1, 2.5}).String(); s != "(1, 2.5)" {
		t.Errorf("String = %q", s)
	}
}

package geom

import "math"

// This file implements the distance metrics of Section 2.3 of the paper.
//
// For two MBRs M_P and M_Q with edges r_1..r_4 and s_1..s_4:
//
//	MINMINDIST(M_P, M_Q) = min_{i,j} MINDIST(r_i, s_j)   (0 if they intersect)
//	MINMAXDIST(M_P, M_Q) = min_{i,j} MAXDIST(r_i, s_j)
//	MAXMAXDIST(M_P, M_Q) = max_{i,j} MAXDIST(r_i, s_j)
//
// where MINDIST/MAXDIST between two edges are the minimum/maximum distances
// between a point on the first edge and a point on the second. Because each
// edge of a minimum bounding rectangle carries at least one data point, for
// every pair of points p ∈ M_P, q ∈ M_Q (Inequalities 1 and 2 of the paper):
//
//	MINMINDIST <= dist(p, q) <= MAXMAXDIST
//	∃ (p, q): dist(p, q) <= MINMAXDIST

// MinMinDistSq returns the squared MINMINDIST between two MBRs: the smallest
// possible squared distance between a point in a and a point in b. It is 0
// when the rectangles intersect or touch.
func MinMinDistSq(a, b Rect) float64 {
	var dx, dy float64
	switch {
	case b.Min.X > a.Max.X:
		dx = b.Min.X - a.Max.X
	case a.Min.X > b.Max.X:
		dx = a.Min.X - b.Max.X
	}
	switch {
	case b.Min.Y > a.Max.Y:
		dy = b.Min.Y - a.Max.Y
	case a.Min.Y > b.Max.Y:
		dy = a.Min.Y - b.Max.Y
	}
	return dx*dx + dy*dy
}

// MinMinDist returns MINMINDIST(a, b).
func MinMinDist(a, b Rect) float64 {
	return math.Sqrt(MinMinDistSq(a, b))
}

// MaxMaxDistSq returns the squared MAXMAXDIST between two MBRs: the largest
// possible squared distance between a point in a and a point in b. The
// maximum of the (coordinate-wise convex) distance function over two
// rectangles is attained at a pair of corners.
func MaxMaxDistSq(a, b Rect) float64 {
	dx := math.Max(math.Abs(b.Max.X-a.Min.X), math.Abs(a.Max.X-b.Min.X))
	dy := math.Max(math.Abs(b.Max.Y-a.Min.Y), math.Abs(a.Max.Y-b.Min.Y))
	return dx*dx + dy*dy
}

// MaxMaxDist returns MAXMAXDIST(a, b).
func MaxMaxDist(a, b Rect) float64 {
	return math.Sqrt(MaxMaxDistSq(a, b))
}

// edgeMaxDistSq returns the squared MAXDIST between two segments: the
// largest squared distance between a point on the first and a point on the
// second. Squared Euclidean distance is convex in each endpoint, so the
// maximum over the product of two segments is attained at segment endpoints.
func edgeMaxDistSq(e, f [2]Point) float64 {
	m := e[0].DistSq(f[0])
	if d := e[0].DistSq(f[1]); d > m {
		m = d
	}
	if d := e[1].DistSq(f[0]); d > m {
		m = d
	}
	if d := e[1].DistSq(f[1]); d > m {
		m = d
	}
	return m
}

// MinMaxDistSq returns the squared MINMAXDIST between two MBRs. There is
// always at least one pair of points (p, q), p enclosed by a and q by b,
// with dist(p, q)^2 <= MinMaxDistSq(a, b), because at least one data point
// lies on each edge of a minimum bounding rectangle (Inequality 2).
//
// Degenerate rectangles (points or line segments) are handled naturally:
// their "edges" collapse but remain valid segments.
func MinMaxDistSq(a, b Rect) float64 {
	ea, eb := a.Edges(), b.Edges()
	min := math.Inf(1)
	for i := range ea {
		for j := range eb {
			if d := edgeMaxDistSq(ea[i], eb[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// MinMaxDist returns MINMAXDIST(a, b).
func MinMaxDist(a, b Rect) float64 {
	return math.Sqrt(MinMaxDistSq(a, b))
}

// PointRectMinDistSq returns the squared MINDIST between a point and an MBR
// (Roussopoulos et al., SIGMOD 1995): the squared distance from p to the
// closest point of r. It is 0 when p lies inside r.
func PointRectMinDistSq(p Point, r Rect) float64 {
	var dx, dy float64
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X > r.Max.X:
		dx = p.X - r.Max.X
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y > r.Max.Y:
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// PointRectMinDist returns MINDIST(p, r).
func PointRectMinDist(p Point, r Rect) float64 {
	return math.Sqrt(PointRectMinDistSq(p, r))
}

// PointRectMinMaxDistSq returns the squared MINMAXDIST between a point and
// an MBR (Roussopoulos et al.): the smallest upper bound on the distance
// from p to at least one object enclosed by r.
func PointRectMinMaxDistSq(p Point, r Rect) float64 {
	// Along each axis k, take the face of r closer to p on axis k combined
	// with the farther coordinate on the other axis.
	rmX := r.Min.X
	if p.X > (r.Min.X+r.Max.X)/2 {
		rmX = r.Max.X
	}
	rmY := r.Min.Y
	if p.Y > (r.Min.Y+r.Max.Y)/2 {
		rmY = r.Max.Y
	}
	rMX := r.Max.X
	if p.X > (r.Min.X+r.Max.X)/2 {
		rMX = r.Min.X
	}
	rMY := r.Max.Y
	if p.Y > (r.Min.Y+r.Max.Y)/2 {
		rMY = r.Min.Y
	}
	dx1 := p.X - rmX
	dy1 := p.Y - rMY
	v1 := dx1*dx1 + dy1*dy1
	dx2 := p.X - rMX
	dy2 := p.Y - rmY
	v2 := dx2*dx2 + dy2*dy2
	return math.Min(v1, v2)
}

// PointRectMinMaxDist returns MINMAXDIST(p, r).
func PointRectMinMaxDist(p Point, r Rect) float64 {
	return math.Sqrt(PointRectMinMaxDistSq(p, r))
}

// PointRectMaxDistSq returns the squared maximum distance from p to any
// point of r (attained at a corner of r).
func PointRectMaxDistSq(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randRect produces a valid rectangle inside [-s, s]^2.
func randRect(rng *rand.Rand, s float64) Rect {
	x1, x2 := rng.Float64()*2*s-s, rng.Float64()*2*s-s
	y1, y2 := rng.Float64()*2*s-s, rng.Float64()*2*s-s
	return Rect{
		Min: Point{math.Min(x1, x2), math.Min(y1, y2)},
		Max: Point{math.Max(x1, x2), math.Max(y1, y2)},
	}
}

// randPointIn returns a random point inside r.
func randPointIn(rng *rand.Rand, r Rect) Point {
	return Point{
		X: r.Min.X + rng.Float64()*(r.Max.X-r.Min.X),
		Y: r.Min.Y + rng.Float64()*(r.Max.Y-r.Min.Y),
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect must be empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Error("empty rect must have zero area and margin")
	}
	r := Rect{Point{0, 0}, Point{1, 1}}
	if got := e.Union(r); !got.Equal(r) {
		t.Errorf("EmptyRect.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); !got.Equal(r) {
		t.Errorf("r.Union(EmptyRect) = %v, want %v", got, r)
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Point{1, 5}, Point{-2, 3}, Point{4, 4})
	want := Rect{Point{-2, 3}, Point{4, 5}}
	if !r.Equal(want) {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	if !RectOf().IsEmpty() {
		t.Error("RectOf() must be empty")
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := Rect{Point{1, 2}, Point{4, 6}}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %g", got)
	}
	if got := r.Center(); !got.Equal(Point{2.5, 4}) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectUnionContains(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := RectOf(Point{ax, ay}, Point{bx, by})
		b := RectOf(Point{cx, cy}, Point{dx, dy})
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectUnionCommutative(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := RectOf(Point{ax, ay}, Point{bx, by})
		b := RectOf(Point{cx, cy}, Point{dx, dy})
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	got := a.Intersect(b)
	want := Rect{Point{1, 1}, Point{2, 2}}
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b must intersect")
	}
	c := Rect{Point{5, 5}, Point{6, 6}}
	if a.Intersects(c) {
		t.Error("a and c must not intersect")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint intersect must be empty")
	}
	// Touching edges intersect but have zero overlap area.
	d := Rect{Point{2, 0}, Point{4, 2}}
	if !a.Intersects(d) {
		t.Error("touching rects must intersect")
	}
	if a.OverlapArea(d) != 0 {
		t.Error("touching rects must have zero overlap area")
	}
}

func TestRectOverlapArea(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %g", got)
	}
	if got := a.OverlapArea(a); got != 4 {
		t.Errorf("self OverlapArea = %g", got)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{2, 0}, Point{3, 1}}
	if got := a.Enlargement(b); got != 2 {
		t.Errorf("Enlargement = %g", got)
	}
	if got := a.Enlargement(a); got != 0 {
		t.Errorf("self Enlargement = %g", got)
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	for _, p := range []Point{{0, 0}, {1, 1}, {0.5, 0.5}, {0, 1}} {
		if !r.ContainsPoint(p) {
			t.Errorf("%v must be inside %v", p, r)
		}
	}
	for _, p := range []Point{{-0.1, 0}, {1.1, 1}, {0.5, 2}} {
		if r.ContainsPoint(p) {
			t.Errorf("%v must be outside %v", p, r)
		}
	}
}

func TestRectCornersEdges(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 1}}
	corners := r.Corners()
	for _, c := range corners {
		if !r.ContainsPoint(c) {
			t.Errorf("corner %v outside rect", c)
		}
	}
	edges := r.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	// Each edge endpoint must be a corner.
	isCorner := func(p Point) bool {
		for _, c := range corners {
			if c.Equal(p) {
				return true
			}
		}
		return false
	}
	for _, e := range edges {
		if !isCorner(e[0]) || !isCorner(e[1]) {
			t.Errorf("edge %v endpoints are not corners", e)
		}
	}
}

func TestRectTranslate(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	got := r.Translate(2, 3)
	want := Rect{Point{2, 3}, Point{3, 4}}
	if !got.Equal(want) {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestRectValid(t *testing.T) {
	if !(Rect{Point{0, 0}, Point{1, 1}}).Valid() {
		t.Error("unit rect must be valid")
	}
	if (Rect{Point{1, 0}, Point{0, 1}}).Valid() {
		t.Error("inverted rect must be invalid")
	}
	if EmptyRect().Valid() {
		t.Error("empty rect must be invalid")
	}
	if (Rect{Point{math.NaN(), 0}, Point{1, 1}}).Valid() {
		t.Error("NaN rect must be invalid")
	}
}

package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Insert adds a data record with the given MBR (a degenerate rectangle for
// a point) and record id. Duplicate rectangles and refs are allowed.
func (t *Tree) Insert(r geom.Rect, ref int64) error {
	if !r.Valid() {
		return fmt.Errorf("rtree: invalid rectangle %v", r)
	}
	if t.root == storage.InvalidPageID {
		root, err := t.allocNode(0)
		if err != nil {
			return err
		}
		root.Entries = append(root.Entries, Entry{Rect: r, Ref: ref})
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = root.ID
		t.height = 1
		t.size = 1
		return t.writeMeta()
	}
	ctx := &insertCtx{reinserted: make(map[int]bool)}
	if err := t.insertEntry(Entry{Rect: r, Ref: ref}, 0, ctx); err != nil {
		return err
	}
	for len(ctx.pending) > 0 {
		p := ctx.pending[0]
		ctx.pending = ctx.pending[1:]
		if err := t.insertEntry(p.entry, p.level, ctx); err != nil {
			return err
		}
	}
	t.size++
	return t.writeMeta()
}

// InsertPoint adds a point record.
func (t *Tree) InsertPoint(p geom.Point, ref int64) error {
	return t.Insert(p.Rect(), ref)
}

// insertCtx carries per-insertion state: which levels already performed a
// forced reinsert (R* allows one per level per data insertion) and the
// queue of entries awaiting reinsertion.
type insertCtx struct {
	reinserted map[int]bool
	pending    []pendingInsert
}

type pendingInsert struct {
	entry Entry
	level int
}

// insertEntry routes one entry to a node at targetLevel, growing the root
// if the root itself splits.
func (t *Tree) insertEntry(e Entry, targetLevel int, ctx *insertCtx) error {
	rootMBR, split, err := t.insertAt(t.root, t.height-1, e, targetLevel, ctx)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// The root split: grow the tree by one level.
	newRoot, err := t.allocNode(t.height)
	if err != nil {
		return err
	}
	newRoot.Entries = []Entry{
		{Rect: rootMBR, Ref: int64(t.root)},
		*split,
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRoot.ID
	t.height++
	return nil
}

// insertAt descends from the node at page id (which sits at the given
// level) towards targetLevel, inserts e there, and unwinds any overflow
// treatment. It returns the node's resulting MBR and, if the node was
// split, the entry describing its new sibling.
func (t *Tree) insertAt(id storage.PageID, level int, e Entry, targetLevel int, ctx *insertCtx) (geom.Rect, *Entry, error) {
	// readNodeMut, not ReadNode: n is edited in place below and must never
	// be a shared node-cache decode.
	n, err := t.readNodeMut(id)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	if n.Level != level {
		return geom.Rect{}, nil, fmt.Errorf("rtree: page %d has level %d, expected %d",
			id, n.Level, level)
	}
	if level == targetLevel {
		n.Entries = append(n.Entries, e)
	} else {
		i := chooseSubtree(n, e.Rect, targetLevel)
		childMBR, split, err := t.insertAt(n.Entries[i].Child(), level-1, e, targetLevel, ctx)
		if err != nil {
			return geom.Rect{}, nil, err
		}
		n.Entries[i].Rect = childMBR
		if split != nil {
			n.Entries = append(n.Entries, *split)
		}
	}
	if len(n.Entries) <= t.cfg.MaxEntries {
		if err := t.writeNode(n); err != nil {
			return geom.Rect{}, nil, err
		}
		return n.MBR(), nil, nil
	}
	return t.overflowTreatment(n, ctx)
}

// overflowTreatment applies the R* policy to a node holding M+1 entries:
// the first overflow on a non-root level during one insertion triggers a
// forced reinsert; any other overflow splits the node.
func (t *Tree) overflowTreatment(n *Node, ctx *insertCtx) (geom.Rect, *Entry, error) {
	p := int(t.cfg.ReinsertFraction * float64(t.cfg.MaxEntries))
	isRoot := n.ID == t.root
	if !isRoot && p > 0 && !ctx.reinserted[n.Level] {
		ctx.reinserted[n.Level] = true
		removed := removeFarthest(n, p)
		if err := t.writeNode(n); err != nil {
			return geom.Rect{}, nil, err
		}
		for _, e := range removed {
			ctx.pending = append(ctx.pending, pendingInsert{entry: e, level: n.Level})
		}
		return n.MBR(), nil, nil
	}
	sibling, err := t.splitNode(n)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	return n.MBR(), &Entry{Rect: sibling.MBR(), Ref: int64(sibling.ID)}, nil
}

// removeFarthest removes from n the p entries whose rectangle centers are
// farthest from the center of n's MBR and returns them ordered closest
// first ("close reinsert", the variant Beckmann et al. found best).
func removeFarthest(n *Node, p int) []Entry {
	if p >= len(n.Entries) {
		p = len(n.Entries) - 1
	}
	center := n.MBR().Center()
	type distEntry struct {
		d float64
		e Entry
	}
	des := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		des[i] = distEntry{d: center.DistSq(e.Rect.Center()), e: e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })
	keep := des[:len(des)-p]
	out := des[len(des)-p:]
	n.Entries = n.Entries[:0]
	for _, de := range keep {
		n.Entries = append(n.Entries, de.e)
	}
	removed := make([]Entry, 0, p)
	for _, de := range out { // closest of the removed ones first
		removed = append(removed, de.e)
	}
	return removed
}

// chooseSubtree implements the R* descent rule: when the children are at
// the insertion target level's parent boundary (i.e. we are choosing the
// final node), minimize overlap enlargement with ties broken by area
// enlargement then area; higher up, minimize area enlargement with ties
// broken by area.
func chooseSubtree(n *Node, r geom.Rect, targetLevel int) int {
	if n.Level == targetLevel+1 {
		return chooseLeastOverlapEnlargement(n, r)
	}
	return chooseLeastAreaEnlargement(n, r)
}

func chooseLeastAreaEnlargement(n *Node, r geom.Rect) int {
	best := 0
	bestEnl := n.Entries[0].Rect.Enlargement(r)
	bestArea := n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func chooseLeastOverlapEnlargement(n *Node, r geom.Rect) int {
	best := 0
	bestOverlap := overlapEnlargement(n, 0, r)
	bestEnl := n.Entries[0].Rect.Enlargement(r)
	bestArea := n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		ov := overlapEnlargement(n, i, r)
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if ov < bestOverlap ||
			(ov == bestOverlap && enl < bestEnl) ||
			(ov == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

// overlapEnlargement returns how much the total overlap between entry i and
// its siblings grows if entry i is enlarged to also cover r.
func overlapEnlargement(n *Node, i int, r geom.Rect) float64 {
	enlarged := n.Entries[i].Rect.Union(r)
	var delta float64
	for j := range n.Entries {
		if j == i {
			continue
		}
		delta += enlarged.OverlapArea(n.Entries[j].Rect) -
			n.Entries[i].Rect.OverlapArea(n.Entries[j].Rect)
	}
	return delta
}

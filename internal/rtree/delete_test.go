package rtree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestDeleteSimple(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(10, 50)
	insertAll(t, tr, pts)
	if err := tr.DeletePoint(pts[7], 7); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 49 {
		t.Fatalf("Len = %d", tr.Len())
	}
	found := false
	if err := tr.Search(pts[7].Rect(), func(it Item) bool {
		if it.Ref == 7 {
			found = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("deleted entry still present")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(11, 20)
	insertAll(t, tr, pts)
	// Wrong ref.
	if err := tr.DeletePoint(pts[0], 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// Absent point.
	if err := tr.DeletePoint(geom.Point{X: -5, Y: -5}, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// Empty tree.
	empty := newTestTree(t, Config{})
	if err := empty.DeletePoint(pts[0], 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(12, 600)
	insertAll(t, tr, pts)
	perm := rand.New(rand.NewSource(13)).Perm(len(pts))
	for step, i := range perm {
		if err := tr.DeletePoint(pts[i], int64(i)); err != nil {
			t.Fatalf("delete %d (step %d): %v", i, step, err)
		}
		if step%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 0 {
		t.Fatalf("Height = %d after deleting all", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteHalfThenQuery(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(14, 1000)
	insertAll(t, tr, pts)
	for i := 0; i < 500; i++ {
		if err := tr.DeletePoint(pts[i], int64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every survivor must be findable, every deleted point gone.
	seen := map[int64]bool{}
	if err := tr.All(func(it Item) bool { seen[it.Ref] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 500 {
		t.Fatalf("%d survivors, want 500", len(seen))
	}
	for i := 0; i < 500; i++ {
		if seen[int64(i)] {
			t.Fatalf("deleted ref %d still present", i)
		}
	}
	for i := 500; i < 1000; i++ {
		if !seen[int64(i)] {
			t.Fatalf("surviving ref %d missing", i)
		}
	}
}

func TestDeleteReusesPages(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(15, 800)
	insertAll(t, tr, pts)
	for i := range pts {
		if err := tr.DeletePoint(pts[i], int64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	pagesAfterDrain := tr.Pool().File().NumPages()
	// Rebuilding the same content must recycle freed pages rather than
	// growing the file substantially.
	insertAll(t, tr, pts)
	if grown := tr.Pool().File().NumPages() - pagesAfterDrain; grown > 5 {
		t.Errorf("file grew by %d pages on rebuild; free list not reused", grown)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	tr := newTestTree(t, Config{})
	rng := rand.New(rand.NewSource(16))
	type rec struct {
		p   geom.Point
		ref int64
	}
	var live []rec
	nextRef := int64(0)
	for op := 0; op < 4000; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			if err := tr.InsertPoint(p, nextRef); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec{p, nextRef})
			nextRef++
		} else {
			i := rng.Intn(len(live))
			if err := tr.DeletePoint(live[i].p, live[i].ref); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != int64(len(live)) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteDeepCondensation(t *testing.T) {
	// Small fan-out plus clustered deletions force whole subtrees to
	// dissolve, exercising orphan reinsertion at internal levels, the
	// grow-root path, and root shrinking.
	cfg := Config{PageSize: 256} // M=6, m=2
	tr := newTestTree(t, cfg)
	pts := randPoints(60, 4000)
	insertAll(t, tr, pts)
	if tr.Height() < 4 {
		t.Fatalf("height %d too small to exercise deep condensation", tr.Height())
	}
	// Delete in spatial order (left to right): whole regions empty out,
	// which keeps dissolving nodes on one flank of the tree.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	for step, i := range order {
		if err := tr.DeletePoint(pts[i], int64(i)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%250 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not empty: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAlternatingClusters(t *testing.T) {
	// Two dense clusters; deleting one entirely forces its subtree to
	// collapse while the other survives intact.
	cfg := Config{PageSize: 256}
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(61))
	var left, right []geom.Point
	for i := 0; i < 900; i++ {
		left = append(left, geom.Point{X: rng.Float64() * 0.1, Y: rng.Float64()})
		right = append(right, geom.Point{X: 10 + rng.Float64()*0.1, Y: rng.Float64()})
	}
	for i, p := range left {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range right {
		if err := tr.InsertPoint(p, int64(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range left {
		if err := tr.DeletePoint(p, int64(i)); err != nil {
			t.Fatalf("delete left %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 900 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	if err := tr.All(func(Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 900 {
		t.Fatalf("survivors = %d", count)
	}
}

package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(30, 1500)
	insertAll(t, tr, pts)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		q := geom.Point{X: rng.Float64() * 1.4, Y: rng.Float64() * 1.4}
		k := 1 + rng.Intn(20)
		got, err := tr.NearestNeighbors(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Brute force.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = q.Dist(p)
		}
		sort.Float64s(dists)
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d neighbor %d: dist %g, want %g",
					trial, i, got[i].Dist, dists[i])
			}
		}
		// Ascending order.
		for i := 1; i < k; i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted: %g before %g", got[i-1].Dist, got[i].Dist)
			}
		}
	}
}

func TestNearestNeighborSingle(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}})
	nn, err := tr.NearestNeighbor(geom.Point{X: 0.9, Y: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if nn.Ref != 1 {
		t.Fatalf("nearest ref = %d, want 1", nn.Ref)
	}
}

func TestNearestNeighborEmptyTree(t *testing.T) {
	tr := newTestTree(t, Config{})
	if _, err := tr.NearestNeighbor(geom.Point{X: 0, Y: 0}); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	nn, err := tr.NearestNeighbors(geom.Point{X: 0, Y: 0}, 5)
	if err != nil || nn != nil {
		t.Fatalf("empty tree: nn=%v err=%v", nn, err)
	}
}

func TestNearestNeighborsKLargerThanTree(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(32, 10))
	nn, err := tr.NearestNeighbors(geom.Point{X: 0.5, Y: 0.5}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 10 {
		t.Fatalf("got %d, want all 10", len(nn))
	}
}

func TestNearestNeighborsBadK(t *testing.T) {
	tr := newTestTree(t, Config{})
	if _, err := tr.NearestNeighbors(geom.Point{X: 0, Y: 0}, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := tr.NearestNeighbors(geom.Point{X: 0, Y: 0}, -3); err == nil {
		t.Fatal("negative k must be rejected")
	}
}

func TestNearestNeighborsPrunes(t *testing.T) {
	// Best-first NN on a big tree must touch far fewer pages than a scan.
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(33, 8000))
	total := tr.Pool().File().NumPages()
	tr.Pool().Clear()
	tr.Pool().ResetStats()
	if _, err := tr.NearestNeighbors(geom.Point{X: 0.5, Y: 0.5}, 3); err != nil {
		t.Fatal(err)
	}
	reads := tr.Pool().Stats().Reads
	if reads*10 > total {
		t.Errorf("NN read %d of %d pages; pruning ineffective", reads, total)
	}
}

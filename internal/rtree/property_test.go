package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/storage"
)

// TestInsertSearchProperty: any multiset of points inserted into the tree
// is exactly recoverable by range search, for testing/quick-generated
// inputs and several node capacities.
func TestInsertSearchProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(raw []struct{ X, Y float64 }, pageSel uint8) bool {
		pageSize := []int{256, 512, 1024}[int(pageSel)%3]
		pool := storage.NewBufferPool(storage.NewMemFile(pageSize), 64)
		tr, err := New(pool, Config{PageSize: pageSize})
		if err != nil {
			return false
		}
		want := map[int64]geom.Point{}
		for i, r := range raw {
			// Clamp quick's unbounded floats into a sane range.
			p := geom.Point{
				X: clampFinite(r.X),
				Y: clampFinite(r.Y),
			}
			if err := tr.InsertPoint(p, int64(i)); err != nil {
				return false
			}
			want[int64(i)] = p
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		got := map[int64]geom.Point{}
		if err := tr.All(func(it Item) bool {
			got[it.Ref] = it.Rect.Min
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for ref, p := range want {
			if !got[ref].Equal(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func clampFinite(v float64) float64 {
	switch {
	case v != v: // NaN
		return 0
	case v > 1e9:
		return 1e9
	case v < -1e9:
		return -1e9
	default:
		return v
	}
}

// TestDeletePreservesInvariantsProperty: after any interleaving of inserts
// and deletes the tree invariants hold and the content matches a model.
func TestDeletePreservesInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := storage.NewBufferPool(storage.NewMemFile(512), 64)
		tr, err := New(pool, Config{PageSize: 512})
		if err != nil {
			return false
		}
		model := map[int64]geom.Point{}
		nextRef := int64(0)
		for op := 0; op < 300; op++ {
			if len(model) == 0 || rng.Intn(5) < 3 {
				p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
				if err := tr.InsertPoint(p, nextRef); err != nil {
					return false
				}
				model[nextRef] = p
				nextRef++
			} else {
				// Delete a random live ref.
				var ref int64
				for r := range model {
					ref = r
					break
				}
				if err := tr.DeletePoint(model[ref], ref); err != nil {
					return false
				}
				delete(model, ref)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if tr.Len() != int64(len(model)) {
			return false
		}
		count := 0
		ok := true
		tr.All(func(it Item) bool {
			count++
			if p, live := model[it.Ref]; !live || !p.Equal(it.Rect.Min) {
				ok = false
			}
			return true
		})
		return ok && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestNNConsistentWithSearchProperty: the nearest neighbor returned must
// actually be the closest indexed point (verified via All).
func TestNNConsistentWithSearchProperty(t *testing.T) {
	f := func(seed int64, qx, qy float64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := storage.NewBufferPool(storage.NewMemFile(512), 64)
		tr, err := New(pool, Config{PageSize: 512})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			if err := tr.InsertPoint(pts[i], int64(i)); err != nil {
				return false
			}
		}
		q := geom.Point{X: clampFinite(qx), Y: clampFinite(qy)}
		nn, err := tr.NearestNeighbor(q)
		if err != nil {
			return false
		}
		best := pts[0].DistSq(q)
		for _, p := range pts[1:] {
			if d := p.DistSq(q); d < best {
				best = d
			}
		}
		// Relative tolerance: squaring the reported sqrt loses precision
		// for far-away query points.
		return nn.Dist*nn.Dist <= best*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 100; trial++ {
		n := &Node{ID: 7, Level: rng.Intn(6)}
		count := rng.Intn(25)
		for i := 0; i < count; i++ {
			minX, minY := rng.NormFloat64()*1e3, rng.NormFloat64()*1e3
			n.Entries = append(n.Entries, Entry{
				Rect: geom.Rect{
					Min: geom.Point{X: minX, Y: minY},
					Max: geom.Point{X: minX + rng.Float64(), Y: minY + rng.Float64()},
				},
				Ref: rng.Int63() - rng.Int63(),
			})
		}
		buf := make([]byte, 1024)
		if err := encodeNode(n, buf); err != nil {
			t.Fatal(err)
		}
		got, err := decodeNode(7, buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Level != n.Level || got.ID != n.ID || len(got.Entries) != len(n.Entries) {
			t.Fatalf("header mismatch: %+v vs %+v", got, n)
		}
		for i := range n.Entries {
			if got.Entries[i] != n.Entries[i] {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, got.Entries[i], n.Entries[i])
			}
		}
	}
}

func TestNodeEncodeTooBig(t *testing.T) {
	n := &Node{ID: 1, Level: 0}
	for i := 0; i < 100; i++ {
		n.Entries = append(n.Entries, Entry{Rect: geom.Point{X: 0, Y: 0}.Rect()})
	}
	if err := encodeNode(n, make([]byte, 1024)); err == nil {
		t.Fatal("oversized node must not encode")
	}
}

func TestDecodeNodeBadMagic(t *testing.T) {
	buf := make([]byte, 1024)
	buf[0], buf[1] = 'X', 'Y'
	if _, err := decodeNode(3, buf); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

func TestDecodeNodeShortPage(t *testing.T) {
	if _, err := decodeNode(3, make([]byte, 4)); err == nil {
		t.Fatal("short page must be rejected")
	}
}

func TestDecodeNodeCountOverflow(t *testing.T) {
	buf := make([]byte, 64)
	buf[0], buf[1] = nodeMagic0, nodeMagic1
	buf[4] = 200 // count = 200, cannot fit 64 bytes
	if _, err := decodeNode(3, buf); err == nil {
		t.Fatal("overflowing count must be rejected")
	}
}

func TestMaxEntriesForPage(t *testing.T) {
	// 1 KB page: (1024-8)/40 = 25 entries fit; the paper's M=21 fits too.
	if got := maxEntriesForPage(1024); got != 25 {
		t.Errorf("maxEntriesForPage(1024) = %d, want 25", got)
	}
	if got := maxEntriesForPage(256); got != 6 {
		t.Errorf("maxEntriesForPage(256) = %d, want 6", got)
	}
}

func TestNodeMBR(t *testing.T) {
	n := &Node{Entries: []Entry{
		{Rect: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}},
		{Rect: geom.Rect{Min: geom.Point{X: 2, Y: -1}, Max: geom.Point{X: 3, Y: 0.5}}},
	}}
	want := geom.Rect{Min: geom.Point{X: 0, Y: -1}, Max: geom.Point{X: 3, Y: 1}}
	if got := n.MBR(); !got.Equal(want) {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	empty := &Node{}
	if !empty.MBR().IsEmpty() {
		t.Error("empty node MBR must be empty")
	}
}

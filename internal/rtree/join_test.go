package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// buildRectTree indexes small rectangles (not points) for the join tests.
func buildRectTree(t *testing.T, seed int64, n int, size float64) (*Tree, []geom.Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := storage.NewBufferPool(storage.NewMemFile(512), 256)
	tr, err := New(pool, Config{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rng.Float64(), rng.Float64()
		rects[i] = geom.Rect{
			Min: geom.Point{X: x, Y: y},
			Max: geom.Point{X: x + rng.Float64()*size, Y: y + rng.Float64()*size},
		}
		if err := tr.Insert(rects[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr, rects
}

func TestJoinIntersectingMatchesBruteForce(t *testing.T) {
	ta, ra := buildRectTree(t, 1, 400, 0.05)
	tb, rb := buildRectTree(t, 2, 350, 0.05)
	got := map[[2]int64]bool{}
	err := JoinIntersecting(ta, tb, func(p JoinPair) bool {
		key := [2]int64{p.A.Ref, p.B.Ref}
		if got[key] {
			t.Fatalf("pair %v reported twice", key)
		}
		got[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range ra {
		for j := range rb {
			if ra[i].Intersects(rb[j]) {
				want++
				if !got[[2]int64{int64(i), int64(j)}] {
					t.Fatalf("missing intersecting pair (%d, %d)", i, j)
				}
			}
		}
	}
	if len(got) != want {
		t.Fatalf("got %d pairs, want %d", len(got), want)
	}
}

func TestJoinIntersectingDifferentHeights(t *testing.T) {
	ta, ra := buildRectTree(t, 3, 15, 0.2)
	tb, rb := buildRectTree(t, 4, 3000, 0.01)
	if ta.Height() == tb.Height() {
		t.Fatal("test requires different heights")
	}
	count, err := CountIntersecting(ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range ra {
		for j := range rb {
			if ra[i].Intersects(rb[j]) {
				want++
			}
		}
	}
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	// Swapped orientation.
	count2, err := CountIntersecting(tb, ta)
	if err != nil {
		t.Fatal(err)
	}
	if count2 != want {
		t.Fatalf("swapped count = %d, want %d", count2, want)
	}
}

func TestJoinIntersectingEarlyStop(t *testing.T) {
	ta, _ := buildRectTree(t, 5, 500, 0.1)
	tb, _ := buildRectTree(t, 6, 500, 0.1)
	n := 0
	err := JoinIntersecting(ta, tb, func(JoinPair) bool {
		n++
		return n < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("visited %d pairs, want early stop at 7", n)
	}
}

func TestJoinIntersectingDisjointAndEmpty(t *testing.T) {
	ta, _ := buildRectTree(t, 7, 100, 0.05)
	// Shifted far away: no intersections, constant cost.
	pool := storage.NewBufferPool(storage.NewMemFile(512), 256)
	tb, err := New(pool, Config{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		x, y := 100+rng.Float64(), rng.Float64()
		r := geom.Rect{Min: geom.Point{X: x, Y: y}, Max: geom.Point{X: x + 0.01, Y: y + 0.01}}
		if err := tb.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	count, err := CountIntersecting(ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("disjoint join found %d pairs", count)
	}
	empty := newTestTree(t, Config{})
	if count, err := CountIntersecting(ta, empty); err != nil || count != 0 {
		t.Fatalf("empty join: count=%d err=%v", count, err)
	}
}

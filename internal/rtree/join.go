package rtree

import (
	"repro/internal/storage"
)

// JoinPair is one result of an intersection join.
type JoinPair struct {
	A, B Item
}

// JoinIntersecting reports every pair of data items (one from each tree)
// whose rectangles intersect — the classic R-tree spatial join of
// Brinkhoff, Kriegel & Seeger (SIGMOD 1993), which the paper cites as the
// origin of the fix-at-leaves treatment for trees of different heights.
// Sub-tree pairs whose MBRs do not intersect are pruned; trees of
// different heights are handled by descending the still-internal side
// once one side reaches its leaves (fix-at-leaves, the classic choice).
// fn may return false to stop early.
func JoinIntersecting(ta, tb *Tree, fn func(JoinPair) bool) error {
	if ta.RootID() == storage.InvalidPageID || tb.RootID() == storage.InvalidPageID {
		return nil
	}
	ba, err := ta.Bounds()
	if err != nil {
		return err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return err
	}
	if !ba.Intersects(bb) {
		return nil
	}
	_, err = joinNodes(ta, tb, ta.RootID(), tb.RootID(), fn)
	return err
}

// joinNodes recurses over an intersecting node pair; it returns false when
// fn requested an early stop.
func joinNodes(ta, tb *Tree, a, b storage.PageID, fn func(JoinPair) bool) (bool, error) {
	na, err := ta.ReadNode(a)
	if err != nil {
		return false, err
	}
	nb, err := tb.ReadNode(b)
	if err != nil {
		return false, err
	}
	switch {
	case na.IsLeaf() && nb.IsLeaf():
		for i := range na.Entries {
			ea := &na.Entries[i]
			for j := range nb.Entries {
				eb := &nb.Entries[j]
				if !ea.Rect.Intersects(eb.Rect) {
					continue
				}
				if !fn(JoinPair{
					A: Item{Rect: ea.Rect, Ref: ea.Ref},
					B: Item{Rect: eb.Rect, Ref: eb.Ref},
				}) {
					return false, nil
				}
			}
		}
		return true, nil
	case na.IsLeaf():
		// Fix-at-leaves: keep descending the internal side.
		for j := range nb.Entries {
			if !nb.Entries[j].Rect.Intersects(na.MBR()) {
				continue
			}
			cont, err := joinNodes(ta, tb, a, nb.Entries[j].Child(), fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	case nb.IsLeaf():
		for i := range na.Entries {
			if !na.Entries[i].Rect.Intersects(nb.MBR()) {
				continue
			}
			cont, err := joinNodes(ta, tb, na.Entries[i].Child(), b, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	default:
		for i := range na.Entries {
			ea := &na.Entries[i]
			for j := range nb.Entries {
				eb := &nb.Entries[j]
				if !ea.Rect.Intersects(eb.Rect) {
					continue
				}
				cont, err := joinNodes(ta, tb, ea.Child(), eb.Child(), fn)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
		return true, nil
	}
}

// CountIntersecting returns the number of intersecting item pairs.
func CountIntersecting(ta, tb *Tree) (int64, error) {
	var n int64
	err := JoinIntersecting(ta, tb, func(JoinPair) bool { n++; return true })
	return n, err
}

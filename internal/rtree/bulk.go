package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/storage"
)

// BulkLoad fills an empty tree with items using Sort-Tile-Recursive (STR)
// packing (Leutenegger, Lopez, Edgington; ICDE 1997). Nodes are packed to
// fill * MaxEntries entries (fill in (0, 1]); packed trees have much lower
// node overlap than insertion-built trees, which is one of the build
// ablations the benchmarks explore.
func (t *Tree) BulkLoad(items []Item, fill float64) error {
	return t.bulkLoad(items, fill, false)
}

// SortSTR orders items exactly as BulkLoad's leaf-level STR pass would:
// stable by ascending MBR center X, ties by center Y. BulkLoadSorted
// skips that sort when handed items in this order, so callers building
// many trees (the shard partitioner) can run the dominant O(n log n)
// CPU phase of every build in parallel goroutines while the
// page-writing phase stays sequential: SortSTR touches only the slice
// it is given — never a tree, a buffer pool or a node cache — so it is
// safe to call from any goroutine.
func SortSTR(items []Item) {
	sort.SliceStable(items, func(i, j int) bool {
		ci, cj := items[i].Rect.Center(), items[j].Rect.Center()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
}

// BulkLoadSorted is BulkLoad for items already in SortSTR order: the
// leaf-level X-sort is skipped, everything else — slab tiling, per-slab
// Y-sorts, upper-level packing, page writes — is identical, so
// BulkLoadSorted after SortSTR produces a tree byte-identical to
// BulkLoad on the same items. The order is not re-verified; handing it
// unsorted items builds a valid but badly clustered tree.
func (t *Tree) BulkLoadSorted(items []Item, fill float64) error {
	return t.bulkLoad(items, fill, true)
}

func (t *Tree) bulkLoad(items []Item, fill float64, presorted bool) error {
	if t.size != 0 || t.root != storage.InvalidPageID {
		return errors.New("rtree: BulkLoad requires an empty tree")
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("rtree: fill factor %g out of (0, 1]", fill)
	}
	if len(items) == 0 {
		return nil
	}
	for i := range items {
		if !items[i].Rect.Valid() {
			return fmt.Errorf("rtree: invalid rectangle %v at item %d", items[i].Rect, i)
		}
	}
	capacity := int(fill * float64(t.cfg.MaxEntries))
	if capacity < t.cfg.MinEntries {
		capacity = t.cfg.MinEntries
	}

	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect, Ref: it.Ref}
	}
	level := 0
	for {
		nodes, err := t.packLevel(entries, level, capacity, presorted && level == 0)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.root = nodes[0].ID
			t.height = level + 1
			break
		}
		next := make([]Entry, len(nodes))
		for i, n := range nodes {
			next[i] = Entry{Rect: n.MBR(), Ref: int64(n.ID)}
		}
		entries = next
		level++
	}
	t.size = int64(len(items))
	return t.writeMeta()
}

// packLevel tiles entries into nodes using STR: sort by center X, cut into
// vertical slabs, sort each slab by center Y, chop into nodes. Node sizes
// are pre-computed as an even distribution so that every node of a
// multi-node level respects the minimum occupancy m (a plain
// chop-into-runs-of-capacity leaves underfull tail nodes). Every produced
// node is written to its page. With presorted set the level's entries
// are already in SortSTR order (center X, tie Y) and the initial sort is
// skipped; the per-slab Y-sorts then mutate the given slice in place.
func (t *Tree) packLevel(entries []Entry, level, capacity int, presorted bool) ([]*Node, error) {
	n := len(entries)
	sizes := packSizes(n, capacity, t.cfg.MinEntries, t.cfg.MaxEntries)
	numNodes := len(sizes)
	//lint:ignore sqrtfree STR slab count is sqrt of the node count, not a distance comparison
	slabs := int(math.Ceil(math.Sqrt(float64(numNodes))))
	nodesPerSlab := (numNodes + slabs - 1) / slabs

	sorted := entries
	if !presorted {
		sorted = append([]Entry(nil), entries...)
		sort.SliceStable(sorted, func(i, j int) bool {
			ci, cj := sorted[i].Rect.Center(), sorted[j].Rect.Center()
			if ci.X != cj.X {
				return ci.X < cj.X
			}
			return ci.Y < cj.Y
		})
	}

	out := make([]*Node, 0, numNodes)
	next := 0 // next unconsumed entry in sorted
	for slabStart := 0; slabStart < numNodes; slabStart += nodesPerSlab {
		slabEnd := slabStart + nodesPerSlab
		if slabEnd > numNodes {
			slabEnd = numNodes
		}
		slabSize := 0
		for _, s := range sizes[slabStart:slabEnd] {
			slabSize += s
		}
		slab := sorted[next : next+slabSize]
		next += slabSize
		sort.SliceStable(slab, func(i, j int) bool {
			ci, cj := slab[i].Rect.Center(), slab[j].Rect.Center()
			if ci.Y != cj.Y {
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		off := 0
		for _, s := range sizes[slabStart:slabEnd] {
			node, err := t.allocNode(level)
			if err != nil {
				return nil, err
			}
			node.Entries = append([]Entry(nil), slab[off:off+s]...)
			off += s
			if err := t.writeNode(node); err != nil {
				return nil, err
			}
			out = append(out, node)
		}
	}
	return out, nil
}

// packSizes distributes n entries over nodes such that each node holds
// between m and M entries (a single node may hold fewer than m: it becomes
// the root), targeting the requested capacity.
func packSizes(n, capacity, m, M int) []int {
	if n <= capacity {
		return []int{n}
	}
	numNodes := (n + capacity - 1) / capacity
	// Shrinking the node count raises per-node occupancy above m; a level
	// with fewer than 2m entries cannot form two legal nodes and stays one
	// (possibly over-capacity but never over M, because n <= 2m-1 <= M).
	if maxNodes := n / m; numNodes > maxNodes {
		numNodes = maxNodes
	}
	if numNodes <= 1 {
		return []int{n}
	}
	base := n / numNodes
	extra := n % numNodes
	sizes := make([]int, numNodes)
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

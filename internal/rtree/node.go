// Package rtree implements a disk-based R*-tree (Beckmann, Kriegel,
// Schneider, Seeger; SIGMOD 1990) over the paged storage engine in
// internal/storage. It is the indexing substrate assumed by the paper: both
// point sets of a closest-pair query are stored in R*-trees whose nodes are
// disk pages, and every node visit is a (countable) page access.
//
// The package provides insertion with forced reinsertion, the R* node-split
// algorithm, deletion with tree condensation, STR bulk loading, range and
// nearest-neighbor queries, and the raw node access the closest-pair
// algorithms need to traverse two trees simultaneously.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Entry is one slot of an R-tree node: a rectangle plus a reference. In an
// internal node the reference is the page id of the child node and the
// rectangle is the child's MBR; in a leaf the reference is an opaque record
// id and the rectangle is the data object's MBR (a degenerate rectangle for
// point data).
type Entry struct {
	Rect geom.Rect
	Ref  int64
}

// Child returns the entry's reference as a page id (internal nodes only).
func (e Entry) Child() storage.PageID { return storage.PageID(e.Ref) }

// Node is the decoded form of one R-tree page.
type Node struct {
	// ID is the page this node was read from / will be written to.
	ID storage.PageID
	// Level is the node's height above the leaves: 0 for leaves.
	Level int
	// Entries are the node's slots, at most Config.MaxEntries many
	// (one more transiently, while an overflow is being treated).
	Entries []Entry
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of all entries.
func (n *Node) MBR() geom.Rect {
	r := geom.EmptyRect()
	for i := range n.Entries {
		r = r.Union(n.Entries[i].Rect)
	}
	return r
}

// Page layout (little endian):
//
//	offset 0: magic "Rn" (2 bytes)
//	offset 2: level  uint16
//	offset 4: count  uint16
//	offset 6: reserved (2 bytes)
//	offset 8: count entries, 40 bytes each:
//	          minX, minY, maxX, maxY float64; ref int64
const (
	nodeHeaderSize = 8
	entrySize      = 40
	nodeMagic0     = 'R'
	nodeMagic1     = 'n'
)

// maxEntriesForPage returns the largest node fan-out that fits a page.
func maxEntriesForPage(pageSize int) int {
	return (pageSize - nodeHeaderSize) / entrySize
}

// encodeNode serializes n into buf (which must be the tree's page size).
func encodeNode(n *Node, buf []byte) error {
	need := nodeHeaderSize + len(n.Entries)*entrySize
	if need > len(buf) {
		return fmt.Errorf("rtree: node with %d entries needs %d bytes, page is %d",
			len(n.Entries), need, len(buf))
	}
	if n.Level < 0 || n.Level > math.MaxUint16 {
		return fmt.Errorf("rtree: level %d out of range", n.Level)
	}
	for i := range buf {
		buf[i] = 0
	}
	buf[0], buf[1] = nodeMagic0, nodeMagic1
	binary.LittleEndian.PutUint16(buf[2:], uint16(n.Level))
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.Entries)))
	off := nodeHeaderSize
	for i := range n.Entries {
		e := &n.Entries[i]
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Min.X))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.Rect.Min.Y))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.Rect.Max.X))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.Rect.Max.Y))
		binary.LittleEndian.PutUint64(buf[off+32:], uint64(e.Ref))
		off += entrySize
	}
	return nil
}

// decodeNode parses a page into a Node. The returned node owns its entry
// slice; it does not alias buf.
func decodeNode(id storage.PageID, buf []byte) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rtree: page %d too small (%d bytes)", id, len(buf))
	}
	if buf[0] != nodeMagic0 || buf[1] != nodeMagic1 {
		return nil, fmt.Errorf("rtree: page %d is not an R-tree node (magic %q)",
			id, string(buf[:2]))
	}
	level := int(binary.LittleEndian.Uint16(buf[2:]))
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	if nodeHeaderSize+count*entrySize > len(buf) {
		return nil, fmt.Errorf("rtree: page %d count %d overflows page", id, count)
	}
	n := &Node{ID: id, Level: level, Entries: make([]Entry, count)}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		n.Entries[i] = Entry{
			Rect: geom.Rect{
				Min: geom.Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
				},
				Max: geom.Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
				},
			},
			Ref: int64(binary.LittleEndian.Uint64(buf[off+32:])),
		}
		off += entrySize
	}
	return n, nil
}

package rtree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Delete removes one data entry matching (rect, ref) exactly. It returns
// ErrNotFound when no such entry exists. Underfull nodes are condensed:
// the node is dissolved and its entries are reinserted at their level, as
// in Guttman's original CondenseTree.
func (t *Tree) Delete(r geom.Rect, ref int64) error {
	if t.root == storage.InvalidPageID {
		return ErrNotFound
	}
	ctx := &deleteCtx{}
	found, _, err := t.deleteAt(t.root, t.height-1, r, ref, ctx)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	t.size--

	// Shrink the root while it is an internal node with a single child.
	for {
		root, err := t.ReadNode(t.root)
		if err != nil {
			return err
		}
		if root.IsLeaf() {
			if len(root.Entries) == 0 && t.size == 0 {
				if err := t.freeNode(root.ID); err != nil {
					return err
				}
				t.root = storage.InvalidPageID
				t.height = 0
			}
			break
		}
		if len(root.Entries) != 1 {
			break
		}
		child := root.Entries[0].Child()
		if err := t.freeNode(root.ID); err != nil {
			return err
		}
		t.root = child
		t.height--
	}

	// Reinsert orphaned entries from dissolved nodes, deepest levels first
	// so that subtree entries find a tree tall enough to host them.
	for len(ctx.orphans) > 0 {
		// Pick the orphan with the highest level first.
		best := 0
		for i := 1; i < len(ctx.orphans); i++ {
			if ctx.orphans[i].level > ctx.orphans[best].level {
				best = i
			}
		}
		o := ctx.orphans[best]
		ctx.orphans = append(ctx.orphans[:best], ctx.orphans[best+1:]...)
		if err := t.reinsertOrphan(o); err != nil {
			return err
		}
	}
	return t.writeMeta()
}

// DeletePoint removes one point record.
func (t *Tree) DeletePoint(p geom.Point, ref int64) error {
	return t.Delete(p.Rect(), ref)
}

type deleteCtx struct {
	orphans []pendingInsert
}

// deleteAt removes (r, ref) from the subtree rooted at page id. It returns
// whether the entry was found and the node's resulting MBR.
func (t *Tree) deleteAt(id storage.PageID, level int, r geom.Rect, ref int64, ctx *deleteCtx) (bool, geom.Rect, error) {
	// readNodeMut, not ReadNode: n is edited in place below and must never
	// be a shared node-cache decode.
	n, err := t.readNodeMut(id)
	if err != nil {
		return false, geom.Rect{}, err
	}
	if n.Level != level {
		return false, geom.Rect{}, fmt.Errorf("rtree: page %d has level %d, expected %d",
			id, n.Level, level)
	}
	if n.IsLeaf() {
		for i := range n.Entries {
			if n.Entries[i].Ref == ref && n.Entries[i].Rect.Equal(r) {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				if err := t.writeNode(n); err != nil {
					return false, geom.Rect{}, err
				}
				return true, n.MBR(), nil
			}
		}
		return false, geom.Rect{}, nil
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.Contains(r) {
			continue
		}
		found, childMBR, err := t.deleteAt(n.Entries[i].Child(), level-1, r, ref, ctx)
		if err != nil {
			return false, geom.Rect{}, err
		}
		if !found {
			continue
		}
		child, err := t.ReadNode(n.Entries[i].Child())
		if err != nil {
			return false, geom.Rect{}, err
		}
		if len(child.Entries) < t.cfg.MinEntries {
			// Dissolve the underfull child and orphan its entries.
			for _, e := range child.Entries {
				ctx.orphans = append(ctx.orphans, pendingInsert{entry: e, level: child.Level})
			}
			if err := t.freeNode(child.ID); err != nil {
				return false, geom.Rect{}, err
			}
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
		} else {
			n.Entries[i].Rect = childMBR
		}
		if err := t.writeNode(n); err != nil {
			return false, geom.Rect{}, err
		}
		return true, n.MBR(), nil
	}
	return false, geom.Rect{}, nil
}

// reinsertOrphan puts an orphaned entry (possibly a whole subtree) back
// into the tree at its original level.
func (t *Tree) reinsertOrphan(o pendingInsert) error {
	if t.root == storage.InvalidPageID {
		if o.level == 0 {
			root, err := t.allocNode(0)
			if err != nil {
				return err
			}
			root.Entries = append(root.Entries, o.entry)
			if err := t.writeNode(root); err != nil {
				return err
			}
			t.root = root.ID
			t.height = 1
			return nil
		}
		// A subtree orphan becomes the root itself: the orphan entry was
		// destined for a node at level o.level, so it references a node at
		// level o.level-1, which as root gives height o.level.
		t.root = o.entry.Child()
		t.height = o.level
		return nil
	}
	if o.level > t.height {
		return fmt.Errorf("rtree: orphan level %d exceeds tree height %d", o.level, t.height)
	}
	if o.level == t.height {
		// The orphan needs a host node one level above the current root:
		// grow the tree with a new root holding the old root and the
		// orphan's subtree side by side.
		rootMBR, err := t.Bounds()
		if err != nil {
			return err
		}
		newRoot, err := t.allocNode(t.height)
		if err != nil {
			return err
		}
		newRoot.Entries = []Entry{
			{Rect: rootMBR, Ref: int64(t.root)},
			o.entry,
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		t.root = newRoot.ID
		t.height++
		return nil
	}
	ctx := &insertCtx{reinserted: make(map[int]bool)}
	if err := t.insertEntry(o.entry, o.level, ctx); err != nil {
		return err
	}
	for len(ctx.pending) > 0 {
		p := ctx.pending[0]
		ctx.pending = ctx.pending[1:]
		if err := t.insertEntry(p.entry, p.level, ctx); err != nil {
			return err
		}
	}
	return nil
}

package rtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func TestNodeCacheLRU(t *testing.T) {
	c := NewNodeCache(2, 1)
	if c.Capacity() != 2 {
		t.Fatalf("Capacity = %d, want 2", c.Capacity())
	}
	n1 := &Node{ID: 1, Level: 0}
	n2 := &Node{ID: 2, Level: 0}
	n3 := &Node{ID: 3, Level: 0}
	c.Add(n1)
	c.Add(n2)
	if got, ok := c.Get(1); !ok || got != n1 {
		t.Fatalf("Get(1) = %v, %v", got, ok)
	}
	// 2 is now the LRU victim: adding 3 must evict it, not 1.
	c.Add(n3)
	if _, ok := c.Get(2); ok {
		t.Fatal("page 2 should have been evicted")
	}
	if got, ok := c.Get(1); !ok || got != n1 {
		t.Fatalf("page 1 evicted by LRU order violation (got %v, %v)", got, ok)
	}
	if got, ok := c.Get(3); !ok || got != n3 {
		t.Fatalf("Get(3) = %v, %v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("Stats = %+v, want 3 hits 1 miss", st)
	}
	if st.HitRate() != 0.75 {
		t.Fatalf("HitRate = %g", st.HitRate())
	}
	c.Invalidate(3)
	if _, ok := c.Get(3); ok {
		t.Fatal("page 3 survived Invalidate")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Stats after reset = %+v", st)
	}
}

func TestNodeCacheSharding(t *testing.T) {
	c := NewNodeCache(64, 5) // rounds up to 8 shards
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	for id := storage.PageID(0); id < 100; id++ {
		c.Add(&Node{ID: id})
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

// treeItems collects the full (rect, ref) content of a tree via Search.
func treeItems(t *testing.T, tr *Tree) []Item {
	t.Helper()
	var items []Item
	if err := tr.All(func(it Item) bool { items = append(items, it); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Ref != items[j].Ref {
			return items[i].Ref < items[j].Ref
		}
		return items[i].Rect.Min.X < items[j].Rect.Min.X
	})
	return items
}

// warmCache reads every node of the tree so the cache holds the current
// version of each page.
func warmCache(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Walk(func(n *Node) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCacheInvalidation is the staleness property test: after warming
// the cache, every mutation (inserts, deletes, the reinsertion storms they
// trigger) must leave the cached view identical to an uncached tree built
// through the same history.
func TestNodeCacheInvalidation(t *testing.T) {
	cached := newTestTree(t, Config{PageSize: 256})
	cached.SetNodeCache(NewNodeCache(1024, 4))
	plain := newTestTree(t, Config{PageSize: 256})

	rng := rand.New(rand.NewSource(42))
	pts := randPoints(77, 600)
	live := map[int64]geom.Point{}
	apply := func(insert bool, p geom.Point, ref int64) {
		for _, tr := range []*Tree{cached, plain} {
			var err error
			if insert {
				err = tr.InsertPoint(p, ref)
			} else {
				err = tr.DeletePoint(p, ref)
			}
			if err != nil {
				t.Fatalf("insert=%v ref=%d: %v", insert, ref, err)
			}
		}
		if insert {
			live[ref] = p
		} else {
			delete(live, ref)
		}
	}

	for i, p := range pts[:400] {
		apply(true, p, int64(i))
	}
	// Warm the cache with the current tree, then mutate heavily: the cache
	// must never serve a pre-mutation node.
	warmCache(t, cached)
	for i, p := range pts[400:] {
		apply(true, p, int64(400+i))
		if rng.Intn(2) == 0 {
			// Delete a random live point.
			for ref, q := range live {
				apply(false, q, ref)
				break
			}
		}
		if i%50 == 0 {
			warmCache(t, cached)
		}
	}
	if err := cached.CheckInvariants(); err != nil {
		t.Fatalf("cached tree invariants: %v", err)
	}
	gotItems := treeItems(t, cached)
	wantItems := treeItems(t, plain)
	if len(gotItems) != len(live) {
		t.Fatalf("cached tree has %d items, want %d", len(gotItems), len(live))
	}
	if !reflect.DeepEqual(gotItems, wantItems) {
		t.Fatal("cached tree content diverged from uncached tree")
	}
	if st := cached.NodeCacheStats(); st.Hits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
}

// TestNodeCacheReadPathEquivalence compares every node served through the
// cache against a fresh decode of the same page.
func TestNodeCacheReadPathEquivalence(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 256})
	insertAll(t, tr, randPoints(5, 500))
	tr.SetNodeCache(NewNodeCache(512, 2)) // larger than the tree: later passes hit
	for pass := 0; pass < 3; pass++ {
		err := tr.Walk(func(n *Node) error {
			fresh, err := tr.readNodeMut(n.ID)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(n, fresh) {
				return fmt.Errorf("page %d: cached node differs from fresh decode", n.ID)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := tr.NodeCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected misses on the first pass and hits afterwards: %+v", st)
	}
}

// TestNodeCacheConcurrentReaders hammers ReadNode from many goroutines
// with a cache attached (run under -race in CI).
func TestNodeCacheConcurrentReaders(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 256})
	insertAll(t, tr, randPoints(6, 400))
	tr.SetNodeCache(NewNodeCache(32, 4))
	var ids []storage.PageID
	if err := tr.Walk(func(n *Node) error { ids = append(ids, n.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				id := ids[rng.Intn(len(ids))]
				n, err := tr.ReadNode(id)
				if err != nil {
					t.Errorf("ReadNode(%d): %v", id, err)
					return
				}
				if n.ID != id {
					t.Errorf("ReadNode(%d) returned node %d", id, n.ID)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestSetNodeCacheClears ensures re-attaching a cache cannot serve nodes
// cached under a previous attachment.
func TestSetNodeCacheClears(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(7, 50))
	c := NewNodeCache(16, 1)
	tr.SetNodeCache(c)
	warmCache(t, tr)
	if c.Len() == 0 {
		t.Fatal("cache not warmed")
	}
	tr.SetNodeCache(c)
	if c.Len() != 0 {
		t.Fatalf("SetNodeCache did not clear: %d entries", c.Len())
	}
	if tr.NodeCache() != c {
		t.Fatal("NodeCache accessor mismatch")
	}
	tr.SetNodeCache(nil)
	if tr.NodeCache() != nil {
		t.Fatal("detach failed")
	}
}

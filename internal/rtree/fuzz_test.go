package rtree

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

const fuzzPageSize = 1024

// FuzzNodeRoundTrip asserts the node codec is a lossless involution on
// every page image that decodes at all: decode -> encode canonicalizes,
// and from there encode and decode are exact mutual inverses
// (serialize -> deserialize -> serialize is byte-identical, including NaN
// payload bits in coordinates, which the codec moves through
// math.Float64bits untouched).
func FuzzNodeRoundTrip(f *testing.F) {
	seed := func(level int, entries []Entry) []byte {
		buf := make([]byte, fuzzPageSize)
		if err := encodeNode(&Node{ID: 7, Level: level, Entries: entries}, buf); err != nil {
			f.Fatal(err)
		}
		return buf
	}
	f.Add(seed(0, nil)) // empty leaf
	f.Add(seed(0, []Entry{
		{Rect: geom.Point{X: 0.25, Y: -4}.Rect(), Ref: 1},
		{Rect: geom.Point{X: math.Inf(1), Y: math.NaN()}.Rect(), Ref: -9},
	}))
	f.Add(seed(3, []Entry{
		{Rect: geom.Rect{Min: geom.Point{X: -1, Y: -2}, Max: geom.Point{X: 3, Y: 4}}, Ref: 42},
	}))
	f.Add([]byte{}) // too small: must be rejected, not crash

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzPageSize {
			data = data[:fuzzPageSize]
		}
		page := make([]byte, fuzzPageSize)
		copy(page, data)
		n, err := decodeNode(storage.PageID(3), page)
		if err != nil {
			return // malformed page rejected; nothing to round-trip
		}
		first := make([]byte, fuzzPageSize)
		if err := encodeNode(n, first); err != nil {
			t.Fatalf("decoded node does not re-encode: %v", err)
		}
		n2, err := decodeNode(storage.PageID(3), first)
		if err != nil {
			t.Fatalf("re-encoded page does not decode: %v", err)
		}
		if n2.Level != n.Level || len(n2.Entries) != len(n.Entries) {
			t.Fatalf("shape changed: level %d->%d entries %d->%d",
				n.Level, n2.Level, len(n.Entries), len(n2.Entries))
		}
		for i := range n.Entries {
			if !entriesBitEqual(n.Entries[i], n2.Entries[i]) {
				t.Fatalf("entry %d changed: %+v -> %+v", i, n.Entries[i], n2.Entries[i])
			}
		}
		second := make([]byte, fuzzPageSize)
		if err := encodeNode(n2, second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("serialize -> deserialize -> serialize is not byte-identical")
		}
	})
}

// entriesBitEqual compares entries at the bit level, so NaN coordinates
// compare by payload instead of always differing.
func entriesBitEqual(a, b Entry) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Ref == b.Ref &&
		eq(a.Rect.Min.X, b.Rect.Min.X) && eq(a.Rect.Min.Y, b.Rect.Min.Y) &&
		eq(a.Rect.Max.X, b.Rect.Max.X) && eq(a.Rect.Max.Y, b.Rect.Max.Y)
}

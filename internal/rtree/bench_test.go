package rtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func BenchmarkInsert(b *testing.B) {
	pts := randPoints(1, b.N)
	pool := storage.NewBufferPool(storage.NewMemFile(1024), 512)
	tr, err := New(pool, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.InsertPoint(pts[i], int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoadSTR(b *testing.B) {
	pts := randPoints(2, 20000)
	items := itemsFromPoints(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := storage.NewBufferPool(storage.NewMemFile(1024), 512)
		tr, err := New(pool, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(items, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemFile(1024), 4096)
	tr, err := New(pool, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range randPoints(3, 20000) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	query := geom.Rect{Min: geom.Point{X: 0.4, Y: 0.4}, Max: geom.Point{X: 0.6, Y: 0.6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := tr.Search(query, func(Item) bool { count++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemFile(1024), 4096)
	tr, err := New(pool, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range randPoints(4, 20000) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Point{X: float64(i%100) / 100, Y: float64(i%97) / 97}
		if _, err := tr.NearestNeighbors(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

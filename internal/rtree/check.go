package rtree

import (
	"fmt"

	"repro/internal/storage"
)

// CheckInvariants validates the structural invariants of the tree and
// returns the first violation found. It is used by the test suite and by
// tooling; it reads every node, so it disturbs buffer statistics.
//
// Checked invariants:
//   - the root sits at level Height-1 and every child is one level below
//     its parent (the tree is height-balanced with all leaves at level 0);
//   - every internal entry's rectangle is exactly the MBR of its child;
//   - every node except the root holds between MinEntries and MaxEntries
//     entries; the root holds at least one (two or more when internal);
//   - no node page is referenced twice;
//   - the number of data entries equals Len().
func (t *Tree) CheckInvariants() error {
	if t.root == storage.InvalidPageID {
		if t.height != 0 || t.size != 0 {
			return fmt.Errorf("rtree: empty root but height=%d size=%d", t.height, t.size)
		}
		return nil
	}
	seen := make(map[storage.PageID]bool)
	var dataCount int64
	if err := t.checkNode(t.root, t.height-1, seen, &dataCount); err != nil {
		return err
	}
	if dataCount != t.size {
		return fmt.Errorf("rtree: size %d but %d data entries found", t.size, dataCount)
	}
	return nil
}

func (t *Tree) checkNode(id storage.PageID, level int, seen map[storage.PageID]bool, dataCount *int64) error {
	if seen[id] {
		return fmt.Errorf("rtree: page %d referenced twice", id)
	}
	seen[id] = true
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Level != level {
		return fmt.Errorf("rtree: page %d at level %d, expected %d", id, n.Level, level)
	}
	isRoot := id == t.root
	if isRoot {
		if len(n.Entries) < 1 {
			return fmt.Errorf("rtree: root page %d is empty", id)
		}
		if !n.IsLeaf() && len(n.Entries) < 2 {
			return fmt.Errorf("rtree: internal root page %d has %d entries", id, len(n.Entries))
		}
	} else if len(n.Entries) < t.cfg.MinEntries {
		return fmt.Errorf("rtree: page %d underfull: %d < %d", id, len(n.Entries), t.cfg.MinEntries)
	}
	if len(n.Entries) > t.cfg.MaxEntries {
		return fmt.Errorf("rtree: page %d overfull: %d > %d", id, len(n.Entries), t.cfg.MaxEntries)
	}
	for i := range n.Entries {
		e := n.Entries[i]
		if !e.Rect.Valid() {
			return fmt.Errorf("rtree: page %d entry %d has invalid rect %v", id, i, e.Rect)
		}
		if n.IsLeaf() {
			*dataCount++
			continue
		}
		child, err := t.ReadNode(e.Child())
		if err != nil {
			return err
		}
		if !child.MBR().Equal(e.Rect) {
			return fmt.Errorf("rtree: page %d entry %d rect %v != child %d MBR %v",
				id, i, e.Rect, child.ID, child.MBR())
		}
		if err := t.checkNode(e.Child(), level-1, seen, dataCount); err != nil {
			return err
		}
	}
	return nil
}

// NodeCount returns the number of nodes per level, leaf level first. It is
// used by tests and by the benchmark harness to report tree shapes.
func (t *Tree) NodeCount() ([]int, error) {
	if t.height == 0 {
		return nil, nil
	}
	counts := make([]int, t.height)
	err := t.Walk(func(n *Node) error {
		if n.Level < 0 || n.Level >= len(counts) {
			return fmt.Errorf("rtree: node level %d out of range", n.Level)
		}
		counts[n.Level]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

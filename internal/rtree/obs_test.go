package rtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/storage"
)

// recordTracer captures events for assertions.
type recordTracer struct{ events []obs.Event }

func (r *recordTracer) Event(e obs.Event) { r.events = append(r.events, e) }

// TestReadNodeCacheTracing checks that ReadNode emits cache_miss/cache_hit
// events with the page id, and only while a cache is attached.
func TestReadNodeCacheTracing(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemFile(1024), 8)
	tr, err := New(pool, Config{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := geom.Point{X: float64(i % 10), Y: float64(i / 10)}
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rec := &recordTracer{}
	tr.SetTracer(rec)

	// No cache attached: no cache events regardless of tracer.
	if _, err := tr.ReadNode(tr.RootID()); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 0 {
		t.Fatalf("got %d events without a cache", len(rec.events))
	}

	tr.SetNodeCache(NewNodeCache(16, 1))
	if _, err := tr.ReadNode(tr.RootID()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadNode(tr.RootID()); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 2 {
		t.Fatalf("got %d events, want miss+hit", len(rec.events))
	}
	if rec.events[0].Kind != obs.EvCacheMiss || rec.events[1].Kind != obs.EvCacheHit {
		t.Fatalf("events = %v, %v; want cache_miss, cache_hit", rec.events[0].Kind, rec.events[1].Kind)
	}
	for _, e := range rec.events {
		if e.N != int64(tr.RootID()) {
			t.Errorf("event carries page %d, want %d", e.N, tr.RootID())
		}
	}
}

// TestCacheTraceDisabledZeroAlloc pins the nil-tracer fast path of the
// ReadNode hook.
func TestCacheTraceDisabledZeroAlloc(t *testing.T) {
	tr := &Tree{}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.traceCacheEvent(obs.EvCacheHit, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled cache-trace path allocates %v per op, want 0", allocs)
	}
}

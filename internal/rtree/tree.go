package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Config fixes the physical parameters of a tree. The defaults reproduce
// the experimental setup of the paper: 1 KB pages giving an R*-tree node
// capacity of M = 21 with minimum occupancy m = M/3 = 7 (a reasonable
// choice according to Beckmann et al.).
type Config struct {
	// PageSize is the page size in bytes. Default 1024.
	PageSize int
	// MaxEntries is the node capacity M. Default 21. It must fit the page.
	MaxEntries int
	// MinEntries is the minimum occupancy m, 2 <= m <= M/2. Default M/3.
	MinEntries int
	// ReinsertFraction is the share of entries removed on the first
	// overflow per level per insertion (the R* "p" parameter).
	// Default 0.30.
	ReinsertFraction float64
}

// DefaultConfig returns the paper's physical setup.
func DefaultConfig() Config {
	return Config{PageSize: 1024, MaxEntries: 21, MinEntries: 7, ReinsertFraction: 0.30}
}

func (c *Config) fillDefaults() {
	if c.PageSize == 0 {
		c.PageSize = 1024
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 21
		if fit := maxEntriesForPage(c.PageSize); fit < 21 {
			c.MaxEntries = fit
		}
	}
	if c.MinEntries == 0 {
		c.MinEntries = c.MaxEntries / 3
		if c.MinEntries < 2 {
			c.MinEntries = 2
		}
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.30
	}
}

func (c Config) validate() error {
	if c.PageSize < nodeHeaderSize+2*entrySize {
		return fmt.Errorf("rtree: page size %d too small", c.PageSize)
	}
	if c.MaxEntries < 4 {
		return fmt.Errorf("rtree: MaxEntries %d < 4", c.MaxEntries)
	}
	if c.MaxEntries > maxEntriesForPage(c.PageSize) {
		return fmt.Errorf("rtree: MaxEntries %d does not fit page size %d (max %d)",
			c.MaxEntries, c.PageSize, maxEntriesForPage(c.PageSize))
	}
	if c.MinEntries < 2 || c.MinEntries > c.MaxEntries/2 {
		return fmt.Errorf("rtree: MinEntries %d out of range [2, %d]",
			c.MinEntries, c.MaxEntries/2)
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.45 {
		return fmt.Errorf("rtree: ReinsertFraction %g out of range [0, 0.45]",
			c.ReinsertFraction)
	}
	return nil
}

// Item is a data record stored in the tree: the object's MBR plus the
// caller's record id.
type Item struct {
	Rect geom.Rect
	Ref  int64
}

// Tree is a disk-based R*-tree. A Tree is not safe for concurrent mutation;
// concurrent read-only use is safe if the underlying pool is.
type Tree struct {
	pool *storage.BufferPool
	cfg  Config

	meta     storage.PageID
	root     storage.PageID
	height   int   // number of levels; 0 for an empty tree
	size     int64 // number of data entries
	freeHead storage.PageID

	scratch []byte // page-size encode buffer

	// cache, when non-nil, is the decoded-node cache consulted by ReadNode
	// (see NodeCache for the consistency contract). nil by default: the
	// cache changes which reads reach the buffer pool, so the paper's
	// disk-access experiments leave it off.
	cache *NodeCache

	// tracer, when non-nil, receives cache hit/miss events from ReadNode.
	// Set it before concurrent use (same set-before-use contract as
	// SetNodeCache); nil — the default — costs one pointer comparison.
	tracer obs.Tracer
}

// ErrNotFound is returned by operations that reference a missing record.
var ErrNotFound = errors.New("rtree: entry not found")

// metaMagic identifies a tree meta page.
var metaMagic = [8]byte{'R', 'T', 'm', 'e', 't', 'a', '0', '1'}

// New creates an empty tree on pool. The pool's page file must be empty;
// page 0 becomes the tree's meta page.
func New(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pool.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("rtree: pool page size %d != config page size %d",
			pool.PageSize(), cfg.PageSize)
	}
	if pool.File().NumPages() != 0 {
		return nil, errors.New("rtree: New requires an empty page file")
	}
	metaID, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		pool:     pool,
		cfg:      cfg,
		meta:     metaID,
		root:     storage.InvalidPageID,
		freeHead: storage.InvalidPageID,
		scratch:  make([]byte, cfg.PageSize),
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from pool (page 0 must be its meta page).
func Open(pool *storage.BufferPool) (*Tree, error) {
	buf, err := pool.Get(0)
	if err != nil {
		return nil, fmt.Errorf("rtree: read meta page: %w", err)
	}
	var magic [8]byte
	copy(magic[:], buf)
	if magic != metaMagic {
		return nil, fmt.Errorf("rtree: page 0 is not a tree meta page")
	}
	cfg := Config{
		PageSize:   int(binary.LittleEndian.Uint32(buf[8:])),
		MaxEntries: int(binary.LittleEndian.Uint32(buf[12:])),
		MinEntries: int(binary.LittleEndian.Uint32(buf[16:])),
	}
	cfg.ReinsertFraction = float64(binary.LittleEndian.Uint32(buf[20:])) / 1e6
	if cfg.PageSize != pool.PageSize() {
		return nil, fmt.Errorf("rtree: stored page size %d != pool page size %d",
			cfg.PageSize, pool.PageSize())
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		pool:     pool,
		cfg:      cfg,
		meta:     0,
		root:     storage.PageID(int64(binary.LittleEndian.Uint64(buf[24:]))),
		height:   int(int64(binary.LittleEndian.Uint64(buf[32:]))),
		size:     int64(binary.LittleEndian.Uint64(buf[40:])),
		freeHead: storage.PageID(int64(binary.LittleEndian.Uint64(buf[48:]))),
		scratch:  make([]byte, cfg.PageSize),
	}
	return t, nil
}

// writeMeta persists the tree header to the meta page.
func (t *Tree) writeMeta() error {
	buf := t.scratch
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, metaMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.cfg.PageSize))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.cfg.MaxEntries))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.cfg.MinEntries))
	binary.LittleEndian.PutUint32(buf[20:], uint32(t.cfg.ReinsertFraction*1e6))
	binary.LittleEndian.PutUint64(buf[24:], uint64(int64(t.root)))
	binary.LittleEndian.PutUint64(buf[32:], uint64(int64(t.height)))
	binary.LittleEndian.PutUint64(buf[40:], uint64(t.size))
	binary.LittleEndian.PutUint64(buf[48:], uint64(int64(t.freeHead)))
	return t.pool.Write(t.meta, buf)
}

// Flush persists the tree header; node pages are written through as they
// change, so after Flush the page file is a complete image of the tree.
func (t *Tree) Flush() error { return t.writeMeta() }

// Config returns the tree's physical configuration.
func (t *Tree) Config() Config { return t.cfg }

// Pool returns the tree's buffer pool (the instrument that counts the
// paper's disk accesses).
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Len returns the number of data entries.
func (t *Tree) Len() int64 { return t.size }

// Height returns the number of levels (0 for an empty tree; 1 when the
// root is a leaf). The paper's h=4 / h=5 configurations correspond to
// Height() == 4 and 5.
func (t *Tree) Height() int { return t.height }

// RootID returns the page id of the root node, or storage.InvalidPageID
// for an empty tree.
func (t *Tree) RootID() storage.PageID { return t.root }

// Bounds returns the MBR of the whole data set (the root MBR), or an empty
// rectangle for an empty tree.
func (t *Tree) Bounds() (geom.Rect, error) {
	if t.root == storage.InvalidPageID {
		return geom.EmptyRect(), nil
	}
	root, err := t.ReadNode(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	return root.MBR(), nil
}

// SetNodeCache attaches (or, with nil, detaches) a decoded-node cache that
// ReadNode consults before the buffer pool. The cache must not be shared
// between trees. Attaching clears the cache so it cannot serve nodes from
// a previous attachment.
func (t *Tree) SetNodeCache(c *NodeCache) {
	if c != nil {
		c.Clear()
	}
	t.cache = c
}

// NodeCache returns the attached decoded-node cache, nil when none is.
func (t *Tree) NodeCache() *NodeCache { return t.cache }

// SetTracer attaches (or, with nil, detaches) a tracer receiving cache
// hit/miss events from ReadNode. The events carry no span id: node reads
// outlive any single query span, and the tree does not know which query a
// read belongs to. Like SetNodeCache, set it before concurrent readers
// start.
func (t *Tree) SetTracer(tr obs.Tracer) { t.tracer = tr }

// traceCacheEvent emits a decoded-node cache lookup outcome; the nil
// guard keeps the untraced ReadNode path allocation-free.
func (t *Tree) traceCacheEvent(kind obs.EventKind, id storage.PageID) {
	if t.tracer == nil {
		return
	}
	t.tracer.Event(obs.Event{Kind: kind, N: int64(id)})
}

// NodeCacheStats snapshots the attached cache's hit/miss counters (zero
// when no cache is attached).
func (t *Tree) NodeCacheStats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return t.cache.Stats()
}

// ReadNode fetches and decodes the node stored at page id. With a node
// cache attached a hit returns the already-decoded node and touches no
// page at all; otherwise each call goes through the buffer pool and
// therefore counts as a page access on a miss. Decoding happens under the
// pool's shard lock (BufferPool.View), so ReadNode is safe for concurrent
// readers: the decoded Node owns its entries, never aliases the pooled
// page buffer, and is treated as immutable by every read path (the
// mutating paths use readNodeMut).
func (t *Tree) ReadNode(id storage.PageID) (*Node, error) {
	c := t.cache
	if c != nil {
		if n, ok := c.Get(id); ok {
			t.traceCacheEvent(obs.EvCacheHit, id)
			return n, nil
		}
		t.traceCacheEvent(obs.EvCacheMiss, id)
	}
	n, err := t.readNodeMut(id)
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.Add(n)
	}
	return n, nil
}

// readNodeMut fetches and decodes a private copy of the node stored at
// page id, bypassing the node cache in both directions. The mutating paths
// (insert, delete, reinsertion) use it so in-place edits never touch a
// cached — and therefore shared and immutable — node.
func (t *Tree) readNodeMut(id storage.PageID) (*Node, error) {
	var n *Node
	err := t.pool.View(id, func(buf []byte) error {
		var derr error
		n, derr = decodeNode(id, buf)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// writeNode encodes and stores a node at its page, invalidating any cached
// decode of the page.
func (t *Tree) writeNode(n *Node) error {
	if err := encodeNode(n, t.scratch); err != nil {
		return err
	}
	if err := t.pool.Write(n.ID, t.scratch); err != nil {
		return err
	}
	if t.cache != nil {
		t.cache.Invalidate(n.ID)
	}
	return nil
}

// Free-page layout: magic "Fr" at offset 0, next free page id at offset 8.
// Freed node pages form a singly-linked list headed by Tree.freeHead so
// deletions do not leak pages.
const (
	freeMagic0 = 'F'
	freeMagic1 = 'r'
)

// allocNode creates a node at the given level on a recycled or fresh page.
func (t *Tree) allocNode(level int) (*Node, error) {
	if t.freeHead != storage.InvalidPageID {
		id := t.freeHead
		buf, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		if buf[0] != freeMagic0 || buf[1] != freeMagic1 {
			return nil, fmt.Errorf("rtree: free-list page %d is not free", id)
		}
		t.freeHead = storage.PageID(int64(binary.LittleEndian.Uint64(buf[8:])))
		return &Node{ID: id, Level: level}, nil
	}
	id, err := t.pool.Allocate()
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, Level: level}, nil
}

// freeNode returns a node page to the tree's free list.
func (t *Tree) freeNode(id storage.PageID) error {
	buf := t.scratch
	for i := range buf {
		buf[i] = 0
	}
	buf[0], buf[1] = freeMagic0, freeMagic1
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(t.freeHead)))
	if err := t.pool.Write(id, buf); err != nil {
		return err
	}
	if t.cache != nil {
		t.cache.Invalidate(id)
	}
	t.freeHead = id
	return nil
}

// Search visits every data entry whose rectangle intersects query, invoking
// fn for each. Traversal stops early when fn returns false.
func (t *Tree) Search(query geom.Rect, fn func(Item) bool) error {
	if t.root == storage.InvalidPageID {
		return nil
	}
	_, err := t.search(t.root, query, fn)
	return err
}

func (t *Tree) search(id storage.PageID, query geom.Rect, fn func(Item) bool) (bool, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return false, err
	}
	for i := range n.Entries {
		e := n.Entries[i]
		if !e.Rect.Intersects(query) {
			continue
		}
		if n.IsLeaf() {
			if !fn(Item{Rect: e.Rect, Ref: e.Ref}) {
				return false, nil
			}
			continue
		}
		cont, err := t.search(e.Child(), query, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// All visits every data entry in the tree.
func (t *Tree) All(fn func(Item) bool) error {
	if t.root == storage.InvalidPageID {
		return nil
	}
	b, err := t.Bounds()
	if err != nil {
		return err
	}
	return t.Search(b, fn)
}

// Walk visits every node of the tree in depth-first order (used by
// integrity checks and tooling).
func (t *Tree) Walk(fn func(n *Node) error) error {
	if t.root == storage.InvalidPageID {
		return nil
	}
	return t.walk(t.root, fn)
}

func (t *Tree) walk(id storage.PageID, fn func(n *Node) error) error {
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if err := fn(n); err != nil {
		return err
	}
	if n.IsLeaf() {
		return nil
	}
	for i := range n.Entries {
		if err := t.walk(n.Entries[i].Child(), fn); err != nil {
			return err
		}
	}
	return nil
}

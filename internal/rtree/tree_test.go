package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// newTestTree builds an empty tree on a fresh in-memory pool.
func newTestTree(t testing.TB, cfg Config) *Tree {
	t.Helper()
	cfg.fillDefaults()
	pool := storage.NewBufferPool(storage.NewMemFile(cfg.PageSize), 1024)
	tr, err := New(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randPoints generates n deterministic pseudo-random points in [0,1)^2.
func randPoints(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func insertAll(t testing.TB, tr *Tree, pts []geom.Point) {
	t.Helper()
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}, {X: 0.5, Y: 0.5}, {X: 0.2, Y: 0.8}}
	insertAll(t, tr, pts)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d, want 1 (root leaf)", tr.Height())
	}
	var got []int64
	err := tr.Search(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 0.6, Y: 1}}, func(it Item) bool {
		got = append(got, it.Ref)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tr := newTestTree(t, Config{})
	bad := geom.Rect{Min: geom.Point{X: 1, Y: 0}, Max: geom.Point{X: 0, Y: 1}}
	if err := tr.Insert(bad, 0); err == nil {
		t.Fatal("inserting an inverted rect must fail")
	}
	if err := tr.Insert(geom.EmptyRect(), 0); err == nil {
		t.Fatal("inserting an empty rect must fail")
	}
}

func TestInsertManyInvariants(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(1, 3000)
	insertAll(t, tr, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if h := tr.Height(); h < 2 {
		t.Fatalf("Height = %d, want >= 2", h)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(2, 2000)
	insertAll(t, tr, pts)
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 50; q++ {
		x, y := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*0.3, rng.Float64()*0.3
		query := geom.Rect{Min: geom.Point{X: x, Y: y}, Max: geom.Point{X: x + w, Y: y + h}}
		want := map[int64]bool{}
		for i, p := range pts {
			if query.ContainsPoint(p) {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		err := tr.Search(query, func(it Item) bool {
			got[it.Ref] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
		}
		for ref := range want {
			if !got[ref] {
				t.Fatalf("query %v: missing ref %d", query, ref)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(4, 500))
	count := 0
	err := tr.Search(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}, func(Item) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("visited %d, want early stop at 10", count)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(5, 777)
	insertAll(t, tr, pts)
	seen := map[int64]bool{}
	if err := tr.All(func(it Item) bool { seen[it.Ref] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(pts) {
		t.Fatalf("All visited %d, want %d", len(seen), len(pts))
	}
}

func TestHeightMatchesPaperSetup(t *testing.T) {
	// With the paper's configuration (M=21, m=7), 20K uniform points build
	// a 4-level R*-tree and 80K points a 5-level one (Section 4.2).
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := newTestTree(t, DefaultConfig())
	insertAll(t, tr, randPoints(6, 20000))
	if h := tr.Height(); h != 4 {
		t.Errorf("20K-point height = %d, paper has 4", h)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := newTestTree(t, Config{})
	p := geom.Point{X: 0.5, Y: 0.5}
	for i := 0; i < 100; i++ {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.Search(p.Rect(), func(Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("found %d duplicates, want 100", count)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := newTestTree(t, Config{})
	if err := tr.Search(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}},
		func(Item) bool { t.Fatal("unexpected visit"); return true }); err != nil {
		t.Fatal(err)
	}
	b, err := tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsEmpty() {
		t.Fatalf("Bounds = %v, want empty", b)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsCoverAllPoints(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(7, 1500)
	insertAll(t, tr, pts)
	b, err := tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !b.ContainsPoint(p) {
			t.Fatalf("bounds %v does not contain %v", b, p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemFile(1024), 16)
	if _, err := New(pool, Config{PageSize: 1024, MaxEntries: 50, MinEntries: 7}); err == nil {
		t.Error("M=50 must not fit a 1KB page")
	}
	if _, err := New(pool, Config{PageSize: 1024, MaxEntries: 20, MinEntries: 15}); err == nil {
		t.Error("m > M/2 must be rejected")
	}
	if _, err := New(pool, Config{PageSize: 512, MaxEntries: 8, MinEntries: 3,
		ReinsertFraction: 0.9}); err == nil {
		t.Error("reinsert fraction 0.9 must be rejected")
	}
	// Pool page size mismatch.
	if _, err := New(pool, Config{PageSize: 2048, MaxEntries: 20, MinEntries: 6}); err == nil {
		t.Error("page size mismatch must be rejected")
	}
}

func TestNewRequiresEmptyFile(t *testing.T) {
	file := storage.NewMemFile(1024)
	if _, err := file.Allocate(); err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(file, 16)
	if _, err := New(pool, Config{}); err == nil {
		t.Fatal("New on non-empty file must fail")
	}
}

func TestNodeCount(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(8, 2000))
	counts, err := tr.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != tr.Height() {
		t.Fatalf("levels = %d, height = %d", len(counts), tr.Height())
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("root level count = %d", counts[len(counts)-1])
	}
	for lvl := 0; lvl+1 < len(counts); lvl++ {
		if counts[lvl] <= counts[lvl+1] {
			t.Fatalf("level %d (%d nodes) not larger than level %d (%d nodes)",
				lvl, counts[lvl], lvl+1, counts[lvl+1])
		}
	}
}

func TestDifferentPageSizes(t *testing.T) {
	for _, ps := range []int{256, 512, 1024, 4096} {
		cfg := Config{PageSize: ps}
		tr := newTestTree(t, cfg)
		insertAll(t, tr, randPoints(9, 800))
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("page size %d: %v", ps, err)
		}
	}
}

func TestConfigAccessorAndWalk(t *testing.T) {
	tr := newTestTree(t, Config{})
	cfg := tr.Config()
	if cfg.MaxEntries != 21 || cfg.MinEntries != 7 || cfg.PageSize != 1024 {
		t.Errorf("Config = %+v", cfg)
	}
	insertAll(t, tr, randPoints(70, 500))
	nodes := 0
	leafEntries := 0
	err := tr.Walk(func(n *Node) error {
		nodes++
		if n.IsLeaf() {
			leafEntries += len(n.Entries)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 0
	for _, c := range counts {
		wantNodes += c
	}
	if nodes != wantNodes {
		t.Errorf("Walk visited %d nodes, NodeCount says %d", nodes, wantNodes)
	}
	if leafEntries != 500 {
		t.Errorf("Walk saw %d leaf entries, want 500", leafEntries)
	}
}

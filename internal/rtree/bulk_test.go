package rtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func itemsFromPoints(pts []geom.Point) []Item {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: p.Rect(), Ref: int64(i)}
	}
	return items
}

func TestBulkLoadBasic(t *testing.T) {
	tr := newTestTree(t, Config{})
	pts := randPoints(20, 5000)
	if err := tr.BulkLoad(itemsFromPoints(pts), 1.0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	if err := tr.All(func(it Item) bool { seen[it.Ref] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5000 {
		t.Fatalf("All visited %d", len(seen))
	}
}

func TestBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 21, 22, 100} {
		tr := newTestTree(t, Config{})
		pts := randPoints(21, n)
		if err := tr.BulkLoad(itemsFromPoints(pts), 1.0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != int64(n) {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	full := newTestTree(t, Config{})
	if err := full.BulkLoad(itemsFromPoints(randPoints(22, 4000)), 1.0); err != nil {
		t.Fatal(err)
	}
	loose := newTestTree(t, Config{})
	if err := loose.BulkLoad(itemsFromPoints(randPoints(22, 4000)), 0.7); err != nil {
		t.Fatal(err)
	}
	fc, err := full.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	lc, err := loose.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	if lc[0] <= fc[0] {
		t.Errorf("fill 0.7 leaves (%d) must outnumber fill 1.0 leaves (%d)", lc[0], fc[0])
	}
	if err := loose.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := newTestTree(t, Config{})
	insertAll(t, tr, randPoints(23, 10))
	if err := tr.BulkLoad(itemsFromPoints(randPoints(23, 10)), 1.0); err == nil {
		t.Fatal("BulkLoad on non-empty tree must fail")
	}
}

func TestBulkLoadRejectsBadFill(t *testing.T) {
	for _, fill := range []float64{-0.1, 0, 1.5} {
		tr := newTestTree(t, Config{})
		if err := tr.BulkLoad(itemsFromPoints(randPoints(24, 10)), fill); err == nil {
			t.Fatalf("fill %g must be rejected", fill)
		}
	}
}

func TestBulkLoadMatchesInsertResults(t *testing.T) {
	// The two build paths must index the same content (query equivalence).
	pts := randPoints(25, 2000)
	bulk := newTestTree(t, Config{})
	if err := bulk.BulkLoad(itemsFromPoints(pts), 1.0); err != nil {
		t.Fatal(err)
	}
	ins := newTestTree(t, Config{})
	insertAll(t, ins, pts)
	query := geom.Rect{Min: geom.Point{X: 0.2, Y: 0.2}, Max: geom.Point{X: 0.7, Y: 0.6}}
	collect := func(tr *Tree) map[int64]bool {
		out := map[int64]bool{}
		if err := tr.Search(query, func(it Item) bool { out[it.Ref] = true; return true }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(bulk), collect(ins)
	if len(a) != len(b) {
		t.Fatalf("bulk found %d, insert found %d", len(a), len(b))
	}
	for ref := range a {
		if !b[ref] {
			t.Fatalf("ref %d missing from insert-built tree", ref)
		}
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	// STR-packed trees must use no more pages than insertion-built ones.
	pts := randPoints(26, 5000)
	bulk := newTestTree(t, Config{})
	if err := bulk.BulkLoad(itemsFromPoints(pts), 1.0); err != nil {
		t.Fatal(err)
	}
	ins := newTestTree(t, Config{})
	insertAll(t, ins, pts)
	bp := bulk.Pool().File().NumPages()
	ip := ins.Pool().File().NumPages()
	if bp >= ip {
		t.Errorf("bulk pages %d >= insert pages %d", bp, ip)
	}
}

func TestBulkLoadInvalidItem(t *testing.T) {
	tr := newTestTree(t, Config{})
	items := []Item{{Rect: geom.EmptyRect(), Ref: 0}}
	if err := tr.BulkLoad(items, 1.0); err == nil {
		t.Fatal("BulkLoad with invalid rect must fail")
	}
}

func TestOpenPersistedTree(t *testing.T) {
	// Build on a MemFile, then reopen from the same file: the tree must be
	// fully reconstructable from pages alone.
	file := storage.NewMemFile(1024)
	pool := storage.NewBufferPool(file, 64)
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pts := randPoints(27, 3000)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(storage.NewBufferPool(file, 64))
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() || re.Height() != tr.Height() || re.RootID() != tr.RootID() {
		t.Fatalf("reopened tree differs: len %d/%d height %d/%d root %d/%d",
			re.Len(), tr.Len(), re.Height(), tr.Height(), re.RootID(), tr.RootID())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mutations must keep working after reopen (free list, meta, etc.).
	if err := re.DeletePoint(pts[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := re.InsertPoint(geom.Point{X: 0.42, Y: 0.42}, 99999); err != nil {
		t.Fatal(err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	file := storage.NewMemFile(1024)
	if _, err := file.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(storage.NewBufferPool(file, 4)); err == nil {
		t.Fatal("Open on a garbage page 0 must fail")
	}
}

package rtree

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// NodeCache is a sharded LRU cache of decoded nodes, keyed by page id and
// sitting above the buffer pool: a hit hands back an already-decoded *Node
// and skips BufferPool.View, decodeNode and the entry allocation entirely.
// It trades exact disk-access accounting for speed, so it is opt-in
// (Tree.SetNodeCache); hits and misses are counted separately from the
// pool's counters, keeping the paper's access numbers honest.
//
// Consistency contract: cached nodes are immutable. Query paths treat a
// *Node from ReadNode as read-only (they already had to — decoded nodes
// are shared between concurrent readers), while the mutating paths (insert,
// delete, reinsertion) decode fresh copies via readNodeMut and every
// writeNode/freeNode invalidates the page's cache entry. Tree mutation is
// single-goroutine by the Tree's own contract; concurrent readers during
// read-only use see a consistent cache because Get/Add take the shard lock.
type NodeCache struct {
	shards []nodeCacheShard
	mask   uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// CacheStats counts decoded-node cache lookups.
type CacheStats struct {
	Hits, Misses int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - prev.Hits, Misses: s.Misses - prev.Misses}
}

// Lookups returns the total number of cache consultations.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns Hits / Lookups, 0 when the cache was never consulted.
func (s CacheStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

type nodeCacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[storage.PageID]*nodeCacheEntry
	// Intrusive LRU list: head is most recently used, tail the eviction
	// victim.
	head, tail *nodeCacheEntry
}

type nodeCacheEntry struct {
	node       *Node
	prev, next *nodeCacheEntry
}

// NewNodeCache returns a cache holding up to capacity decoded nodes, split
// over the given number of lock-striped shards (rounded up to a power of
// two; values < 1 mean one shard). Each shard holds capacity/shards nodes,
// at least one.
func NewNodeCache(capacity, shards int) *NodeCache {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &NodeCache{shards: make([]nodeCacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].entries = make(map[storage.PageID]*nodeCacheEntry, per)
	}
	return c
}

func (c *NodeCache) shardFor(id storage.PageID) *nodeCacheShard {
	return &c.shards[uint64(id)&c.mask]
}

// Get returns the cached node for a page id, counting the lookup. The
// returned node is shared and must be treated as read-only.
func (c *NodeCache) Get(id storage.PageID) (*Node, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	e, ok := s.entries[id]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.node, true
}

// Add caches a freshly decoded node, evicting the shard's LRU entry when
// the shard is full. The caller must not mutate n afterwards.
func (c *NodeCache) Add(n *Node) {
	s := c.shardFor(n.ID)
	s.mu.Lock()
	if e, ok := s.entries[n.ID]; ok {
		e.node = n
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.entries) >= s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.node.ID)
	}
	e := &nodeCacheEntry{node: n}
	s.entries[n.ID] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Invalidate drops the cache entry for a page id, if present. Every write
// to a node page (writeNode, freeNode) must invalidate, so a reader after
// the write decodes the new bytes.
func (c *NodeCache) Invalidate(id storage.PageID) {
	s := c.shardFor(id)
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		s.unlink(e)
		delete(s.entries, id)
	}
	s.mu.Unlock()
}

// Clear drops every cached node (the node-level analogue of dropping the
// buffer pool's pages). Counters are unaffected; see ResetStats.
func (c *NodeCache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[storage.PageID]*nodeCacheEntry, s.capacity)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// ResetStats zeroes the hit/miss counters.
func (c *NodeCache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
}

// Stats snapshots the hit/miss counters.
func (c *NodeCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of cached nodes.
func (c *NodeCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Capacity returns the total node capacity over all shards.
func (c *NodeCache) Capacity() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].capacity
	}
	return total
}

func (s *nodeCacheShard) pushFront(e *nodeCacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *nodeCacheShard) unlink(e *nodeCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *nodeCacheShard) moveToFront(e *nodeCacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// splitNode performs the R* split of an overfull node (M+1 entries): choose
// the split axis by minimum margin sum over all candidate distributions,
// then the distribution on that axis with minimum overlap between the two
// groups (ties: minimum total area). The first group stays in n; the second
// moves to a freshly allocated sibling at the same level. Both nodes are
// written before returning.
func (t *Tree) splitNode(n *Node) (*Node, error) {
	g1, g2 := chooseSplit(n.Entries, t.cfg.MinEntries)
	sibling, err := t.allocNode(n.Level)
	if err != nil {
		return nil, err
	}
	n.Entries = g1
	sibling.Entries = g2
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(sibling); err != nil {
		return nil, err
	}
	return sibling, nil
}

// chooseSplit partitions entries (len M+1) into two groups of at least m
// entries each, following the R* axis/distribution selection.
func chooseSplit(entries []Entry, m int) (g1, g2 []Entry) {
	sorted := bestSplitAxisSort(entries, m)
	k := bestDistribution(sorted, m)
	split := m - 1 + k // entries [0:split) vs [split:), both groups >= m
	g1 = append([]Entry(nil), sorted[:split]...)
	g2 = append([]Entry(nil), sorted[split:]...)
	return g1, g2
}

// axisSorts returns the candidate sorted orders for one axis: by lower
// value then by upper value.
func axisSorts(entries []Entry, axis int) [2][]Entry {
	byMin := append([]Entry(nil), entries...)
	byMax := append([]Entry(nil), entries...)
	lo := func(e Entry) float64 {
		if axis == 0 {
			return e.Rect.Min.X
		}
		return e.Rect.Min.Y
	}
	hi := func(e Entry) float64 {
		if axis == 0 {
			return e.Rect.Max.X
		}
		return e.Rect.Max.Y
	}
	sort.SliceStable(byMin, func(i, j int) bool {
		if lo(byMin[i]) != lo(byMin[j]) {
			return lo(byMin[i]) < lo(byMin[j])
		}
		return hi(byMin[i]) < hi(byMin[j])
	})
	sort.SliceStable(byMax, func(i, j int) bool {
		if hi(byMax[i]) != hi(byMax[j]) {
			return hi(byMax[i]) < hi(byMax[j])
		}
		return lo(byMax[i]) < lo(byMax[j])
	})
	return [2][]Entry{byMin, byMax}
}

// marginSum computes the R* "goodness" value S for one sorted order: the
// sum of the two groups' margins over every legal distribution.
func marginSum(sorted []Entry, m int) float64 {
	maxK := len(sorted) - 2*m + 1 // k = 1..maxK
	if maxK < 1 {
		return math.Inf(1)
	}
	// Prefix and suffix MBRs allow O(n) evaluation of all distributions.
	prefix := prefixMBRs(sorted)
	suffix := suffixMBRs(sorted)
	var s float64
	for k := 1; k <= maxK; k++ {
		split := m - 1 + k
		s += prefix[split-1].Margin() + suffix[split].Margin()
	}
	return s
}

// bestSplitAxisSort evaluates both sort orders on both axes and returns the
// sorted order belonging to the axis with the minimum margin sum. Within
// the winning axis the order with smaller margin sum is kept, so
// bestDistribution only needs to scan a single order.
func bestSplitAxisSort(entries []Entry, m int) []Entry {
	best := []Entry(nil)
	bestS := math.Inf(1)
	bestAxisSum := math.Inf(1)
	for axis := 0; axis < 2; axis++ {
		sorts := axisSorts(entries, axis)
		s0 := marginSum(sorts[0], m)
		s1 := marginSum(sorts[1], m)
		axisSum := s0 + s1
		if axisSum < bestAxisSum {
			bestAxisSum = axisSum
			if s0 <= s1 {
				best, bestS = sorts[0], s0
			} else {
				best, bestS = sorts[1], s1
			}
		} else if axisSum == bestAxisSum {
			// Tie between axes: keep the individual order with smaller S.
			if s0 < bestS {
				best, bestS = sorts[0], s0
			}
			if s1 < bestS {
				best, bestS = sorts[1], s1
			}
		}
	}
	return best
}

// bestDistribution returns the k (1-based distribution index) minimizing
// group overlap, with ties broken by total area, for the given sorted
// order. The split point is at index m-1+k.
func bestDistribution(sorted []Entry, m int) int {
	prefix := prefixMBRs(sorted)
	suffix := suffixMBRs(sorted)
	maxK := len(sorted) - 2*m + 1
	bestK := 1
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		split := m - 1 + k
		bb1 := prefix[split-1]
		bb2 := suffix[split]
		ov := bb1.OverlapArea(bb2)
		area := bb1.Area() + bb2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	return bestK
}

// prefixMBRs[i] is the MBR of sorted[0..i].
func prefixMBRs(sorted []Entry) []geom.Rect {
	out := make([]geom.Rect, len(sorted))
	acc := geom.EmptyRect()
	for i, e := range sorted {
		acc = acc.Union(e.Rect)
		out[i] = acc
	}
	return out
}

// suffixMBRs[i] is the MBR of sorted[i..].
func suffixMBRs(sorted []Entry) []geom.Rect {
	out := make([]geom.Rect, len(sorted))
	acc := geom.EmptyRect()
	for i := len(sorted) - 1; i >= 0; i-- {
		acc = acc.Union(sorted[i].Rect)
		out[i] = acc
	}
	return out
}

package rtree

import (
	"container/heap"
	"fmt"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	Item
	// Dist is the Euclidean distance from the query point to the item's
	// rectangle (to the point itself for point data).
	Dist float64
}

// nnItem is a priority-queue element of the best-first NN search: either a
// node (to be expanded) or a data item (a candidate result).
type nnItem struct {
	distSq float64
	isData bool
	node   storage.PageID // when !isData
	item   Item           // when isData
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].distSq < q[j].distSq }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestNeighbors returns the k data items closest to q in ascending
// Euclidean distance order, using the best-first (priority queue)
// traversal of Hjaltason & Samet with the MINDIST lower bound of
// Roussopoulos et al. Fewer than k items are returned when the tree holds
// fewer records.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]Neighbor, error) {
	return t.NearestNeighborsMetric(q, k, geom.L2())
}

// NearestNeighborsMetric is NearestNeighbors under an arbitrary Minkowski
// metric: the MINDIST lower bound is computed under the same metric, which
// preserves the best-first pruning argument.
func (t *Tree) NearestNeighborsMetric(q geom.Point, k int, m geom.Metric) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rtree: k must be positive, got %d", k)
	}
	if t.root == storage.InvalidPageID {
		return nil, nil
	}
	pq := &nnQueue{{distSq: 0, node: t.root}}
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(nnItem)
		if it.isData {
			out = append(out, Neighbor{Item: it.item, Dist: m.KeyToDist(it.distSq)})
			continue
		}
		n, err := t.ReadNode(it.node)
		if err != nil {
			return nil, err
		}
		for i := range n.Entries {
			e := n.Entries[i]
			d := m.PointRectMinKey(q, e.Rect)
			if n.IsLeaf() {
				heap.Push(pq, nnItem{distSq: d, isData: true, item: Item{Rect: e.Rect, Ref: e.Ref}})
			} else {
				heap.Push(pq, nnItem{distSq: d, node: e.Child()})
			}
		}
	}
	return out, nil
}

// NearestNeighbor returns the single closest item to q, or ErrNotFound for
// an empty tree.
func (t *Tree) NearestNeighbor(q geom.Point) (Neighbor, error) {
	nn, err := t.NearestNeighbors(q, 1)
	if err != nil {
		return Neighbor{}, err
	}
	if len(nn) == 0 {
		return Neighbor{}, ErrNotFound
	}
	return nn[0], nil
}

package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := Uniform(42, 1000)
	b := Uniform(42, 1000)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Uniform is not deterministic")
		}
		if a[i].X < 0 || a[i].X >= 1 || a[i].Y < 0 || a[i].Y >= 1 {
			t.Fatalf("point %v outside unit workspace", a[i])
		}
	}
	c := Uniform(43, 1000)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d identical points", same)
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	pts := Uniform(7, 40000)
	// 4x4 grid cells should each hold ~1/16 of the mass.
	var cells [16]int
	for _, p := range pts {
		cx := int(p.X * 4)
		cy := int(p.Y * 4)
		cells[cy*4+cx]++
	}
	for i, c := range cells {
		frac := float64(c) / 40000
		if math.Abs(frac-1.0/16) > 0.01 {
			t.Errorf("cell %d holds fraction %.4f, want ~0.0625", i, frac)
		}
	}
}

func TestClusteredDeterministicAndInRange(t *testing.T) {
	a := Clustered(1, 5000)
	b := Clustered(1, 5000)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Clustered is not deterministic")
		}
		if a[i].X < 0 || a[i].X >= 1 || a[i].Y < 0 || a[i].Y >= 1 {
			t.Fatalf("point %v outside unit workspace", a[i])
		}
	}
}

func TestClusteredIsSkewed(t *testing.T) {
	// The clustered set must be far from uniform: measured on a 16x16
	// grid, the most populated cells should hold a large multiple of the
	// uniform share, and many cells should be (nearly) empty.
	pts := Clustered(2, 30000)
	var cells [256]int
	for _, p := range pts {
		cx := int(p.X * 16)
		cy := int(p.Y * 16)
		cells[cy*16+cx]++
	}
	uniformShare := 30000 / 256
	maxCell, empty := 0, 0
	for _, c := range cells {
		if c > maxCell {
			maxCell = c
		}
		if c < uniformShare/10 {
			empty++
		}
	}
	if maxCell < 4*uniformShare {
		t.Errorf("max cell %d not clustered enough (uniform share %d)", maxCell, uniformShare)
	}
	if empty < 50 {
		t.Errorf("only %d near-empty cells; data not skewed enough", empty)
	}
}

func TestRealCardinality(t *testing.T) {
	r := Real()
	if len(r) != RealCardinality {
		t.Fatalf("Real() has %d points, want %d", len(r), RealCardinality)
	}
	// Must be stable across calls (fixed seed).
	r2 := Real()
	for i := range r {
		if !r[i].Equal(r2[i]) {
			t.Fatal("Real() is not deterministic")
		}
	}
}

func TestPlaceWithOverlap(t *testing.T) {
	pts := Uniform(3, 2000)
	for _, portion := range []float64{0, 0.25, 0.5, 1.0} {
		placed, err := PlaceWithOverlap(pts, portion)
		if err != nil {
			t.Fatal(err)
		}
		// The placed workspace is [1-portion, 2-portion) x [0,1): overlap
		// with [0,1)^2 has width exactly `portion`.
		ws := geom.Rect{
			Min: geom.Point{X: 1 - portion, Y: 0},
			Max: geom.Point{X: 2 - portion, Y: 1},
		}
		unit := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}
		if got := ws.OverlapArea(unit); math.Abs(got-portion) > 1e-12 {
			t.Errorf("portion %g: workspace overlap area = %g", portion, got)
		}
		for i, p := range placed {
			if !ws.ContainsPoint(p) {
				t.Fatalf("portion %g: point %v outside workspace %v", portion, p, ws)
			}
			if math.Abs(p.Y-pts[i].Y) > 0 {
				t.Fatal("placement must only slide along x")
			}
		}
	}
	if _, err := PlaceWithOverlap(pts, -0.1); err == nil {
		t.Error("negative portion must fail")
	}
	if _, err := PlaceWithOverlap(pts, 1.1); err == nil {
		t.Error("portion > 1 must fail")
	}
}

func TestOverlapSchedules(t *testing.T) {
	for _, o := range append(Overlaps(), OverlapSweep()...) {
		if o < 0 || o > 1 {
			t.Errorf("schedule overlap %g out of range", o)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(4, 500)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Equal(pts[i]) {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestCSVComments(t *testing.T) {
	in := "# header\n\n 1.5 , 2.5 \n3,4\n"
	got, err := ReadPoints(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(geom.Point{X: 1.5, Y: 2.5}) || !got[1].Equal(geom.Point{X: 3, Y: 4}) {
		t.Fatalf("parsed %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	for _, in := range []string{"nocomma\n", "x,1\n", "1,y\n"} {
		if _, err := ReadPoints(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q must fail", in)
		}
	}
}

func TestSaveLoadPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	pts := Clustered(5, 200)
	if err := SavePoints(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("loaded %d, want %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Equal(pts[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
	if _, err := LoadPoints(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file must fail")
	}
}

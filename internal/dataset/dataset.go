// Package dataset generates the workloads of the paper's experimental
// study (Section 4): uniform ("random") point sets of 20K-80K points, a
// 62,536-point clustered set standing in for the Sequoia 2000 California
// sites (see DESIGN.md for the substitution rationale), and workspace
// placement that realizes an exact portion of overlap between the two data
// sets' workspaces.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// RealCardinality is the cardinality of the paper's real data set (the
// Sequoia California sites) and of its uniform control set.
const RealCardinality = 62536

// Uniform returns n points uniformly distributed in the unit workspace
// [0,1) x [0,1), deterministically from seed.
func Uniform(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// Clustered returns n points in the unit workspace arranged in Gaussian
// clusters with power-law populations strung along a diagonal band — a
// synthetic stand-in for the Sequoia California site data: strongly
// non-uniform, with dense urban-like cores and large empty regions, so
// that R*-tree node rectangles are frequently disjoint even when two such
// workspaces fully overlap (the property Section 4.3.2 attributes to the
// real data).
func Clustered(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 60
	type cluster struct {
		center geom.Point
		sigma  float64
		weight float64
	}
	cs := make([]cluster, clusters)
	var total float64
	for i := range cs {
		// Centers along a noisy diagonal band (California's population
		// spine runs roughly NW-SE); weights follow a power law so a few
		// clusters dominate, like metropolitan areas.
		t := rng.Float64()
		cs[i] = cluster{
			center: geom.Point{
				X: clamp01(t + rng.NormFloat64()*0.12),
				Y: clamp01(1 - t + rng.NormFloat64()*0.12),
			},
			sigma:  0.004 + rng.Float64()*0.05,
			weight: math.Pow(rng.Float64(), 3) + 0.02,
		}
		total += cs[i].weight
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		// 5% background noise, 95% cluster members.
		if rng.Float64() < 0.05 {
			pts = append(pts, geom.Point{X: rng.Float64(), Y: rng.Float64()})
			continue
		}
		r := rng.Float64() * total
		var c cluster
		for i := range cs {
			if r < cs[i].weight {
				c = cs[i]
				break
			}
			r -= cs[i].weight
		}
		if c.sigma == 0 { // numeric fallthrough safety
			c = cs[len(cs)-1]
		}
		p := geom.Point{
			X: c.center.X + rng.NormFloat64()*c.sigma,
			Y: c.center.Y + rng.NormFloat64()*c.sigma,
		}
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			continue
		}
		pts = append(pts, p)
	}
	return pts
}

func clamp01(v float64) float64 {
	return math.Max(0.05, math.Min(0.95, v))
}

// Real returns the reproduction's stand-in for the paper's real data set:
// the clustered generator at the Sequoia cardinality, with a fixed seed so
// every experiment sees the same "real" data.
func Real() []geom.Point {
	return Clustered(62536, RealCardinality)
}

// PlaceWithOverlap translates a unit-workspace point set so that its
// workspace overlaps the unit workspace [0,1)^2 of the first set by the
// given portion (0 = adjacent/disjoint workspaces, 1 = fully overlapping),
// sliding along the x axis as in the paper's experiments. The portion is
// the fraction of each workspace's area shared with the other.
func PlaceWithOverlap(pts []geom.Point, portion float64) ([]geom.Point, error) {
	if portion < 0 || portion > 1 {
		return nil, fmt.Errorf("dataset: overlap portion %g out of [0, 1]", portion)
	}
	dx := 1 - portion
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Add(dx, 0)
	}
	return out, nil
}

// Overlaps returns the overlap portions the paper explores most often.
func Overlaps() []float64 {
	return []float64{0, 0.33, 0.5, 0.67, 1.0}
}

// OverlapSweep returns the fine-grained overlap schedule of the threshold
// experiments (Figures 5 and 8).
func OverlapSweep() []float64 {
	return []float64{0, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0}
}

package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// WritePoints writes points as "x,y" CSV lines.
func WritePoints(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%.17g,%.17g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints parses "x,y" CSV lines (blank lines and #-comments ignored).
func ReadPoints(r io.Reader) ([]geom.Point, error) {
	var pts []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			return nil, fmt.Errorf("dataset: line %d: expected \"x,y\", got %q", lineNo, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(line[:comma]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(line[comma+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y: %w", lineNo, err)
		}
		pts = append(pts, geom.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// SavePoints writes points to a CSV file.
func SavePoints(path string, pts []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePoints(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPoints reads points from a CSV file.
func LoadPoints(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPoints(f)
}

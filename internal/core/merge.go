package core

import "repro/internal/geom"

// MergeTopK folds several partial K-CPQ result lists — one per shard
// pair in the scatter-gather executor — into the global top K, sorted
// ascending, exactly as one monolithic query over the union would
// return them.
//
// Bit-identity matters here: a Pair's Dist is metric.KeyToDist of the
// squared key the leaf scan computed, and DistToKey(KeyToDist(x)) is
// not bit-stable under L2 (sqrt, then square). The merge therefore
// never round-trips through Dist. It reconstructs each pair's key with
// metric.Key(P, Q) — for the point data sets the shard partitioner
// splits, the identical arithmetic Metric.MinMinKey performed on the
// degenerate point rects during the original leaf scan — then offers
// the pairs into a fresh K-heap and re-emits through the same
// sorted-order comparator and KeyToDist conversion as an ordinary
// query. Distances and tie order come out bit-identical to the
// unsharded join's.
func MergeTopK(metric geom.Metric, k int, parts ...[]Pair) []Pair {
	h := newKHeap(k)
	for _, part := range parts {
		for i := range part {
			p := &part[i]
			d := metric.Key(p.P, p.Q)
			if !h.wouldAccept(d) {
				continue
			}
			h.offer(kPair{
				distSq: d,
				p:      [2]float64{p.P.X, p.P.Y},
				q:      [2]float64{p.Q.X, p.Q.Y},
				refP:   p.RefP,
				refQ:   p.RefQ,
			})
		}
	}
	ks := h.sorted()
	out := make([]Pair, len(ks))
	for i, kp := range ks {
		out[i] = Pair{
			P:    geom.Point{X: kp.p[0], Y: kp.p[1]},
			Q:    geom.Point{X: kp.q[0], Y: kp.q[1]},
			RefP: kp.refP,
			RefQ: kp.refQ,
			Dist: metric.KeyToDist(kp.distSq),
		}
	}
	return out
}

package core

import "repro/internal/obs"

// pairHeap is the main structure of the Heap algorithm (Section 3.5): a
// binary min-heap of node pairs ordered by ascending MINMINDIST, with the
// tie strategy's key as a secondary criterion. Unlike the priority queue
// of Hjaltason & Samet it only ever holds node/node pairs, which keeps it
// small enough to reside entirely in main memory.
type pairHeap struct {
	pairs []nodePair
}

func (h *pairHeap) Len() int { return len(h.pairs) }

func (h *pairHeap) push(p nodePair) {
	h.pairs = append(h.pairs, p)
	h.siftUp(len(h.pairs) - 1)
}

func (h *pairHeap) pop() nodePair {
	top := h.pairs[0]
	last := len(h.pairs) - 1
	h.pairs[0] = h.pairs[last]
	h.pairs = h.pairs[:last]
	h.siftDown(0)
	return top
}

func (h *pairHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.pairs[i].less(&h.pairs[parent]) {
			return
		}
		h.pairs[i], h.pairs[parent] = h.pairs[parent], h.pairs[i]
		i = parent
	}
}

func (h *pairHeap) siftDown(i int) {
	n := len(h.pairs)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.pairs[l].less(&h.pairs[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.pairs[r].less(&h.pairs[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.pairs[i], h.pairs[smallest] = h.pairs[smallest], h.pairs[i]
		i = smallest
	}
}

// runHeap drives the iterative Heap algorithm from the given root pair:
// pop the pair with the smallest MINMINDIST, stop as soon as it exceeds T
// (everything still queued is at least as far), otherwise process it and
// enqueue its surviving sub-pairs.
func (j *join) runHeap(root nodePair) error {
	h := &pairHeap{}
	if root.minminSq <= j.T() {
		h.push(root)
	}
	for h.Len() > 0 {
		if j.stats.observeQueueLen(h.Len()) {
			j.traceHighWater(h.Len())
		}
		p := h.pop()
		if p.minminSq > j.T() {
			// CP5: the heap is ordered, so no queued pair can qualify.
			break
		}
		na, nb, err := j.readPair(p)
		if err != nil {
			return err
		}
		if na.IsLeaf() && nb.IsLeaf() {
			j.scanLeaves(na, nb)
			j.traceBound(obs.SourceKHeap)
			continue
		}
		subs := j.expand(p, na, nb) // also tightens T
		T := j.T()
		for _, sp := range subs {
			if sp.minminSq > T {
				j.stats.subPairsPruned.Add(1)
				continue
			}
			h.push(sp)
		}
	}
	return nil
}

package core

import (
	"context"

	"repro/internal/obs"
)

// pairHeap is the main structure of the Heap algorithm (Section 3.5): a
// binary min-heap of node pairs ordered by ascending MINMINDIST, with the
// tie strategy's key as a secondary criterion. Unlike the priority queue
// of Hjaltason & Samet it only ever holds node/node pairs, which keeps it
// small enough to reside entirely in main memory.
type pairHeap struct {
	pairs []nodePair
}

func (h *pairHeap) Len() int { return len(h.pairs) }

func (h *pairHeap) push(p nodePair) {
	h.pairs = append(h.pairs, p)
	h.siftUp(len(h.pairs) - 1)
}

func (h *pairHeap) pop() nodePair {
	top := h.pairs[0]
	last := len(h.pairs) - 1
	h.pairs[0] = h.pairs[last]
	h.pairs = h.pairs[:last]
	h.siftDown(0)
	return top
}

func (h *pairHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.pairs[i].less(&h.pairs[parent]) {
			return
		}
		h.pairs[i], h.pairs[parent] = h.pairs[parent], h.pairs[i]
		i = parent
	}
}

func (h *pairHeap) siftDown(i int) {
	n := len(h.pairs)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.pairs[l].less(&h.pairs[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.pairs[r].less(&h.pairs[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.pairs[i], h.pairs[smallest] = h.pairs[smallest], h.pairs[i]
		i = smallest
	}
}

// popBatch pops pairs in ascending order while the top pair's key does not
// exceed limit, up to max pairs, appending them to dst. The caller
// guarantees the initial top qualifies, so a batch is never empty.
func (h *pairHeap) popBatch(dst []nodePair, max int, limit float64) []nodePair {
	for len(dst) < max && len(h.pairs) > 0 && h.pairs[0].minminSq <= limit {
		dst = append(dst, h.pop())
	}
	return dst
}

// heapBatchSlack and heapBatchCap shape the batched dequeue
// (Options.BatchExpand): one heap operation claims every pair whose key is
// within a 1/16 relative band of the current minimum, at most heapBatchCap
// of them. The band keeps the processing order near best-first; the cap
// bounds how far a stale batch can run ahead of a tightening T.
const (
	heapBatchSlack = 1 + 1.0/16
	heapBatchCap   = 16
)

// runHeap drives the iterative Heap algorithm from the given root pair:
// pop the pair with the smallest MINMINDIST, stop as soon as it exceeds T
// (everything still queued is at least as far), otherwise process it and
// enqueue its surviving sub-pairs. With Options.BatchExpand the pop
// dequeues a batch of near-minimal pairs per heap operation; every batch
// member is still re-checked against T before processing, so the result
// set is unchanged (only the processing order, and with it the disk access
// count, may deviate slightly from strict best-first).
//
// Cancellation: the stride-gated poll runs once per dequeued pair, so a
// cancelled context unwinds within cancelStride pairs regardless of
// batching.
func (j *join) runHeap(ctx context.Context, root nodePair) error {
	h := &pairHeap{}
	if root.minminSq <= j.T() {
		h.push(root)
	}
	var batch, subs []nodePair // reused across iterations; push copies
	for h.Len() > 0 {
		if j.stats.observeQueueLen(h.Len()) {
			j.traceHighWater(h.Len())
		}
		if h.pairs[0].minminSq > j.T() {
			// CP5: the heap is ordered, so no queued pair can qualify.
			break
		}
		if j.opts.BatchExpand {
			limit := h.pairs[0].minminSq * heapBatchSlack
			if t := j.T(); limit > t {
				limit = t
			}
			batch = h.popBatch(batch[:0], heapBatchCap, limit)
			j.stats.heapBatches.Add(1)
			j.stats.heapBatchPairs.Add(int64(len(batch)))
			j.traceHeapBatch(len(batch))
		} else {
			batch = append(batch[:0], h.pop())
		}
		for _, p := range batch {
			// The poll sits in the per-pair loop (not only the outer heap
			// loop) so cancellation latency is bounded in pairs processed,
			// not in batches; the stride gate keeps it off the hot path.
			if err := j.cancel.poll(ctx); err != nil {
				return err
			}
			if p.minminSq > j.T() {
				// T tightened while the batch was in flight; later batch
				// members may still qualify, so skip rather than break.
				continue
			}
			na, nb, err := j.readPair(p)
			if err != nil {
				return err
			}
			if na.IsLeaf() && nb.IsLeaf() {
				j.scanLeaves(na, nb)
				j.traceBound(obs.SourceKHeap)
				continue
			}
			subs = j.expandInto(p, na, nb, subs[:0]) // also tightens T
			for _, sp := range subs {
				h.push(sp)
			}
		}
	}
	return nil
}

package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSelfKCPMatchesBruteForce(t *testing.T) {
	ps := uniformPoints(2100, 600, 0)
	tr := buildTree(t, ps, 256)
	for _, k := range []int{1, 2, 10, 100} {
		got, stats, err := SelfKClosestPairs(tr, k, DefaultOptions(Heap))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := BruteForceSelfKCP(ps, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("k=%d pair %d: dist %.12g, want %.12g",
					k, i, got[i].Dist, want[i].Dist)
			}
			if got[i].RefP == got[i].RefQ {
				t.Fatalf("k=%d pair %d: self pair %+v", k, i, got[i])
			}
		}
		if stats.Accesses() <= 0 {
			t.Errorf("k=%d: no accesses recorded", k)
		}
	}
}

func TestSelfKCPNoDuplicateUnorderedPairs(t *testing.T) {
	ps := uniformPoints(2200, 300, 0)
	tr := buildTree(t, ps, 256)
	got, _, err := SelfKClosestPairs(tr, 80, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]bool{}
	for _, p := range got {
		key := [2]int64{p.RefP, p.RefQ}
		if p.RefP > p.RefQ {
			key = [2]int64{p.RefQ, p.RefP}
		}
		if seen[key] {
			t.Fatalf("unordered pair %v reported twice", key)
		}
		seen[key] = true
	}
}

func TestSelfKCPKPruningVariants(t *testing.T) {
	ps := uniformPoints(2250, 500, 0)
	tr := buildTree(t, ps, 256)
	for _, kp := range []KPruning{KPruneMaxMax, KPruneHeapTop} {
		opts := DefaultOptions(Heap)
		opts.KPrune = kp
		got, _, err := SelfKClosestPairs(tr, 40, opts)
		if err != nil {
			t.Fatalf("%v: %v", kp, err)
		}
		want := BruteForceSelfKCP(ps, 40)
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%v pair %d: dist %.12g, want %.12g", kp, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestSelfCPErrors(t *testing.T) {
	single := buildTree(t, []geom.Point{{X: 1, Y: 1}}, 256)
	if _, _, err := SelfClosestPair(single, DefaultOptions(Heap)); err == nil {
		t.Error("self-CP on a single point must fail")
	}
	tr := buildTree(t, uniformPoints(2300, 10, 0), 256)
	if _, _, err := SelfKClosestPairs(tr, 0, DefaultOptions(Heap)); err == nil {
		t.Error("k=0 must be rejected")
	}
}

func TestSelfCPWithDuplicatePoints(t *testing.T) {
	// Two coincident (distinct-ref) points: the closest pair has distance 0.
	ps := append(uniformPoints(2400, 50, 0), geom.Point{X: 0.3, Y: 0.3}, geom.Point{X: 0.3, Y: 0.3})
	tr := buildTree(t, ps, 256)
	pair, _, err := SelfClosestPair(tr, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if pair.Dist != 0 {
		t.Fatalf("dist = %g, want 0", pair.Dist)
	}
	if pair.RefP == pair.RefQ {
		t.Fatalf("self pair returned: %+v", pair)
	}
}

func TestSemiCPMatchesBruteForce(t *testing.T) {
	ps := uniformPoints(2500, 200, 0)
	qs := uniformPoints(2600, 300, 0.4)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	got, stats, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForceSemiCP(ps, qs)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	// Each P point appears exactly once, with its true nearest distance.
	seen := map[int64]bool{}
	for i := range got {
		if seen[got[i].RefP] {
			t.Fatalf("P ref %d appears twice", got[i].RefP)
		}
		seen[got[i].RefP] = true
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
	}
	if stats.Accesses() <= 0 {
		t.Error("no accesses recorded")
	}
}

func TestSemiCPAsymmetry(t *testing.T) {
	// Semi-CPQ is directional: |result| = |P| regardless of |Q|.
	ps := uniformPoints(2700, 50, 0)
	qs := uniformPoints(2800, 500, 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	ab, _, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	ba, _, err := SemiClosestPairs(tb, ta, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 50 || len(ba) != 500 {
		t.Fatalf("sizes = %d, %d; want 50, 500", len(ab), len(ba))
	}
}

func TestSemiCPEmpty(t *testing.T) {
	empty := buildTree(t, nil, 256)
	tr := buildTree(t, uniformPoints(2900, 10, 0), 256)
	if _, _, err := SemiClosestPairs(empty, tr, DefaultOptions(Heap)); err == nil {
		t.Error("empty P must fail")
	}
	if _, _, err := SemiClosestPairs(tr, empty, DefaultOptions(Heap)); err == nil {
		t.Error("empty Q must fail")
	}
}

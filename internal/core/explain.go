package core

import "repro/internal/obs/explain"

// ExplainStats renders the work counters in the explain snapshot's
// canonical form, shared by the shard executor (per-join rows) and the
// facade (query totals).
func (s Stats) ExplainStats() explain.Stats {
	return explain.Stats{
		Accesses:           s.Accesses(),
		ReadsP:             s.IOP.Reads,
		ReadsQ:             s.IOQ.Reads,
		BufferHits:         s.IOP.Hits + s.IOQ.Hits,
		NodePairsProcessed: s.NodePairsProcessed,
		SubPairsGenerated:  s.SubPairsGenerated,
		SubPairsPruned:     s.SubPairsPruned,
		PointPairsCompared: s.PointPairsCompared,
		MaxQueueSize:       s.MaxQueueSize,
		NodeCacheHits:      s.NodeCacheHits,
		NodeCacheMisses:    s.NodeCacheMisses,
	}
}

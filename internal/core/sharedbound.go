package core

import "math"

// SharedBound is a tighten-only pruning bound shared across cooperating
// joins. The shard scatter-gather executor injects one (via
// Options.SharedBound) into every shard-pair join it dispatches, so a
// tight pair found inside one tile immediately prunes the traversal of
// every other tile — the cross-join analogue of the parallel engine's
// per-query atomic bound.
//
// The value is a distance key (squared under L2), the same unit as the
// engine's internal bound T. Only sound global upper bounds may be
// published: the K-heap threshold of a full heap (K real point pairs at
// most that far apart exist) and the auxiliary MINMAXDIST/MAXMAXDIST
// bound (Inequalities 1–2 guarantee the required point pairs exist).
// Both remain sound across shard boundaries because every shard-pair
// point pair is also a point pair of the global product.
//
// All methods are nil-safe: a nil *SharedBound loads +Inf and ignores
// tightens, so unsharded queries pay one nil check and nothing else.
type SharedBound struct {
	b atomicMinFloat64
}

// NewSharedBound returns a shared bound initialized to +Inf (no pruning
// information yet).
func NewSharedBound() *SharedBound {
	sb := &SharedBound{}
	sb.reset()
	return sb
}

// reset initializes the bound to +Inf. It exists so the +Inf store —
// the one write that is not a CAS-min — stays inside the bound type's
// own methods, where the boundmono check allows it.
func (s *SharedBound) reset() {
	s.b.store(math.Inf(1))
}

// Load returns the current bound (squared); +Inf on a nil receiver or
// when no tighten has landed yet.
func (s *SharedBound) Load() float64 {
	if s == nil {
		return math.Inf(1)
	}
	return s.b.load()
}

// Tighten lowers the bound to v if v is smaller (CAS-min). It returns
// the previous value and whether v became the new bound. A nil receiver
// ignores the call.
func (s *SharedBound) Tighten(v float64) (old float64, ok bool) {
	if s == nil {
		return math.Inf(1), false
	}
	return s.b.tighten(v)
}

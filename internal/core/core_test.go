package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sortx"
	"repro/internal/storage"
)

// buildTree indexes pts (ref = index) in a fresh tree. A small page size
// keeps test trees deep so the traversal logic is exercised on several
// levels with modest point counts.
func buildTree(t testing.TB, pts []geom.Point, pageSize int) *rtree.Tree {
	t.Helper()
	// Capacity 0: every page read counts, as in the paper's B=0 setup.
	pool := storage.NewBufferPool(storage.NewMemFile(pageSize), 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// uniformPoints generates n points in [x0, x0+1) x [0, 1).
func uniformPoints(seed int64, n int, x0 float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// checkAgainstBrute verifies got against the brute-force K-CP result:
// distances must agree (pairs themselves may differ under ties), each pair
// must reference real input points, and the reported distance must be the
// true distance of the reported points.
func checkAgainstBrute(t *testing.T, got []Pair, ps, qs []geom.Point, k int) {
	t.Helper()
	want := BruteForceKCP(ps, qs, k)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
		if got[i].RefP < 0 || int(got[i].RefP) >= len(ps) ||
			got[i].RefQ < 0 || int(got[i].RefQ) >= len(qs) {
			t.Fatalf("pair %d: refs out of range: %+v", i, got[i])
		}
		if !ps[got[i].RefP].Equal(got[i].P) || !qs[got[i].RefQ].Equal(got[i].Q) {
			t.Fatalf("pair %d: reported points do not match refs: %+v", i, got[i])
		}
		if math.Abs(got[i].P.Dist(got[i].Q)-got[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: inconsistent distance: %+v", i, got[i])
		}
	}
	// Ascending order.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist-1e-12 {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

func TestAllAlgorithms1CP(t *testing.T) {
	for _, overlap := range []float64{0, 0.5, 1.0} {
		ps := uniformPoints(100, 700, 0)
		qs := uniformPoints(200, 600, 1-overlap)
		ta := buildTree(t, ps, 256)
		tb := buildTree(t, qs, 256)
		for _, alg := range Algorithms() {
			pair, stats, err := ClosestPair(ta, tb, DefaultOptions(alg))
			if err != nil {
				t.Fatalf("%v overlap %g: %v", alg, overlap, err)
			}
			checkAgainstBrute(t, []Pair{pair}, ps, qs, 1)
			if stats.Accesses() <= 0 {
				t.Errorf("%v: no accesses recorded", alg)
			}
		}
	}
}

func TestAllAlgorithmsKCP(t *testing.T) {
	ps := uniformPoints(300, 500, 0)
	qs := uniformPoints(400, 450, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range Algorithms() {
		for _, k := range []int{1, 2, 5, 17, 100, 1000} {
			got, _, err := KClosestPairs(ta, tb, k, DefaultOptions(alg))
			if err != nil {
				t.Fatalf("%v k=%d: %v", alg, k, err)
			}
			checkAgainstBrute(t, got, ps, qs, k)
		}
	}
}

func TestKLargerThanAllPairs(t *testing.T) {
	ps := uniformPoints(500, 8, 0)
	qs := uniformPoints(600, 7, 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range Algorithms() {
		got, _, err := KClosestPairs(ta, tb, 1000, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != 56 {
			t.Fatalf("%v: got %d pairs, want all 56", alg, len(got))
		}
		checkAgainstBrute(t, got, ps, qs, 1000)
	}
}

func TestTieStrategiesCorrect(t *testing.T) {
	// Grid data maximizes exact MINMINDIST ties.
	var ps, qs []geom.Point
	for x := 0; x < 15; x++ {
		for y := 0; y < 15; y++ {
			ps = append(ps, geom.Point{X: float64(x), Y: float64(y)})
			qs = append(qs, geom.Point{X: float64(x) + 0.25, Y: float64(y) + 0.25})
		}
	}
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range []Algorithm{SortedDistances, Heap} {
		for _, tie := range append(TieStrategies(), TieNone) {
			opts := DefaultOptions(alg)
			opts.Tie = tie
			got, _, err := KClosestPairs(ta, tb, 50, opts)
			if err != nil {
				t.Fatalf("%v %v: %v", alg, tie, err)
			}
			checkAgainstBrute(t, got, ps, qs, 50)
		}
	}
}

func TestDifferentHeights(t *testing.T) {
	// 40 points (height 2 at page size 256) versus 4000 (height >= 4).
	ps := uniformPoints(700, 40, 0)
	qs := uniformPoints(800, 4000, 0.3)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	if ta.Height() == tb.Height() {
		t.Fatalf("test requires different heights, got %d and %d", ta.Height(), tb.Height())
	}
	for _, alg := range Algorithms() {
		for _, hs := range []HeightStrategy{FixAtRoot, FixAtLeaves} {
			opts := DefaultOptions(alg)
			opts.Height = hs
			for _, k := range []int{1, 25} {
				got, _, err := KClosestPairs(ta, tb, k, opts)
				if err != nil {
					t.Fatalf("%v %v k=%d: %v", alg, hs, k, err)
				}
				checkAgainstBrute(t, got, ps, qs, k)
				// Symmetric orientation: taller tree first.
				got2, _, err := KClosestPairs(tb, ta, k, opts)
				if err != nil {
					t.Fatalf("%v %v k=%d swapped: %v", alg, hs, k, err)
				}
				for i := range got2 {
					if math.Abs(got2[i].Dist-got[i].Dist) > 1e-9 {
						t.Fatalf("%v %v: swapped orientation diverges at %d", alg, hs, i)
					}
				}
			}
		}
	}
}

func TestKPruningVariants(t *testing.T) {
	ps := uniformPoints(900, 800, 0)
	qs := uniformPoints(901, 800, 0.8)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range []Algorithm{Simple, SortedDistances, Heap} {
		for _, kp := range []KPruning{KPruneMaxMax, KPruneHeapTop} {
			opts := DefaultOptions(alg)
			opts.KPrune = kp
			got, _, err := KClosestPairs(ta, tb, 60, opts)
			if err != nil {
				t.Fatalf("%v %v: %v", alg, kp, err)
			}
			checkAgainstBrute(t, got, ps, qs, 60)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	ps := uniformPoints(1000, 10, 0)
	ta := buildTree(t, ps, 256)
	empty := buildTree(t, nil, 256)

	if _, _, err := ClosestPair(ta, empty, DefaultOptions(Heap)); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty Q: err = %v", err)
	}
	if _, _, err := ClosestPair(empty, ta, DefaultOptions(Heap)); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty P: err = %v", err)
	}
	if _, _, err := KClosestPairs(ta, ta, 0, DefaultOptions(Heap)); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, _, err := KClosestPairs(ta, ta, -1, DefaultOptions(Heap)); err == nil {
		t.Error("negative k must be rejected")
	}
	bad := DefaultOptions(Heap)
	bad.Algorithm = Algorithm(42)
	if _, _, err := KClosestPairs(ta, ta, 1, bad); err == nil {
		t.Error("invalid algorithm must be rejected")
	}
}

func TestSinglePointTrees(t *testing.T) {
	ta := buildTree(t, []geom.Point{{X: 0, Y: 0}}, 256)
	tb := buildTree(t, []geom.Point{{X: 3, Y: 4}}, 256)
	for _, alg := range Algorithms() {
		pair, _, err := ClosestPair(ta, tb, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if math.Abs(pair.Dist-5) > 1e-12 {
			t.Fatalf("%v: dist = %g, want 5", alg, pair.Dist)
		}
	}
}

func TestIdenticalDataSets(t *testing.T) {
	// P == Q as separate trees: the closest pair has distance zero.
	ps := uniformPoints(1100, 300, 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, ps, 256)
	for _, alg := range Algorithms() {
		pair, _, err := ClosestPair(ta, tb, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if pair.Dist != 0 {
			t.Fatalf("%v: dist = %g, want 0", alg, pair.Dist)
		}
		got, _, err := KClosestPairs(ta, tb, 10, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkAgainstBrute(t, got, ps, ps, 10)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	// Many coincident points stress tie handling everywhere.
	rng := rand.New(rand.NewSource(1200))
	var ps, qs []geom.Point
	for i := 0; i < 200; i++ {
		p := geom.Point{X: float64(rng.Intn(5)), Y: float64(rng.Intn(5))}
		ps = append(ps, p)
		qs = append(qs, geom.Point{X: p.X + 0.5, Y: p.Y})
	}
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range Algorithms() {
		got, _, err := KClosestPairs(ta, tb, 40, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkAgainstBrute(t, got, ps, qs, 40)
	}
}

func TestSortMethodsAllCorrect(t *testing.T) {
	ps := uniformPoints(1300, 400, 0)
	qs := uniformPoints(1400, 400, 0.7)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, m := range sortx.Methods() {
		opts := DefaultOptions(SortedDistances)
		opts.Sort = m
		got, _, err := KClosestPairs(ta, tb, 20, opts)
		if err != nil {
			t.Fatalf("sort method %v: %v", m, err)
		}
		checkAgainstBrute(t, got, ps, qs, 20)
	}
}

func TestPaperDefaultConfigTrees(t *testing.T) {
	// Sanity on the paper's physical setup (1 KB pages, M=21).
	ps := uniformPoints(1500, 3000, 0)
	qs := uniformPoints(1600, 3000, 0.5)
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)
	for _, alg := range []Algorithm{Exhaustive, Simple, SortedDistances, Heap} {
		got, _, err := KClosestPairs(ta, tb, 10, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkAgainstBrute(t, got, ps, qs, 10)
	}
}

func TestPruningReducesWork(t *testing.T) {
	// On disjoint workspaces the pruning chain of the paper must hold on
	// node-pair work: Naive >= EXH >= (roughly) STD and HEAP.
	ps := uniformPoints(1700, 1500, 0)
	qs := uniformPoints(1800, 1500, 0) // x0 = 1-0 = adjacent workspaces
	for i := range qs {
		qs[i].X += 1
	}
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)
	work := map[Algorithm]int64{}
	for _, alg := range Algorithms() {
		_, stats, err := ClosestPair(ta, tb, DefaultOptions(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		work[alg] = stats.NodePairsProcessed
	}
	if work[Exhaustive] > work[Naive] {
		t.Errorf("EXH processed %d pairs, Naive %d", work[Exhaustive], work[Naive])
	}
	if work[SortedDistances] > work[Exhaustive] {
		t.Errorf("STD processed %d pairs, EXH %d", work[SortedDistances], work[Exhaustive])
	}
	if work[Heap] > work[Exhaustive] {
		t.Errorf("HEAP processed %d pairs, EXH %d", work[Heap], work[Exhaustive])
	}
	if work[Heap] > work[Naive]/4 {
		t.Errorf("HEAP (%d) should be far below Naive (%d) on disjoint data",
			work[Heap], work[Naive])
	}
}

func TestStatsPopulated(t *testing.T) {
	ps := uniformPoints(1900, 500, 0)
	qs := uniformPoints(2000, 500, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	_, stats, err := KClosestPairs(ta, tb, 5, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses() <= 0 || stats.IOP.Reads <= 0 || stats.IOQ.Reads <= 0 {
		t.Errorf("accesses not recorded: %v", stats)
	}
	if stats.NodePairsProcessed <= 0 || stats.SubPairsGenerated <= 0 ||
		stats.PointPairsCompared <= 0 {
		t.Errorf("work counters not recorded: %v", stats)
	}
	if stats.MaxQueueSize <= 0 {
		t.Errorf("HEAP queue size not recorded: %v", stats)
	}
	if s := stats.String(); s == "" {
		t.Error("empty stats String")
	}
}

package core

import (
	"math"
	"sync"

	"repro/internal/rtree"
)

// This file implements the grid-hash leaf scan (Options.LeafScanGrid), the
// uniform-grid technique of the optimized planar closest-pair literature
// applied to step CP3. One leaf's points are hashed into a uniform grid
// whose cell side tracks the current pruning distance δ = KeyToDist(T);
// each point of the other leaf then probes only the 3×3 neighborhood of
// its own cell. Any pair within δ differs by at most δ <= side on each
// axis, so its two points land in the same or adjacent cells (see
// gridSlack for why that survives floating-point bucketing) — the probe
// misses no qualifying pair, and every surfaced candidate is still
// evaluated exactly, so the K-heap ends up with the same result set as the
// brute and plane-sweep scans.
//
// When δ shrinks during the scan (the heap threshold tightened), the grid
// is NOT rebuilt immediately: oversized cells only surface extra
// candidates, never lose one. Only when δ drops below half the cell side
// (gridRebucketFactor) does the scan re-bucket with the smaller side — the
// hysteresis bounds rebuilds to O(log) per scan while keeping the probe
// neighborhoods dense.
//
// The grid needs a finite positive δ and point entries; otherwise it falls
// back to the plane sweep (no bound yet means no cell side, and MBR
// entries can exceed a cell). Cell coordinates are int32 and packed into
// one uint64 key for the open-addressed cell table; leaves whose
// coordinate magnitude exceeds 2^30 cells fall back as well, which also
// caps the rounding error in the adjacency argument.

const (
	// gridSlack inflates the cell side over δ. Two points within δ on an
	// axis then satisfy |ax - bx| <= side/1.001, and for cell indices
	// below 2^30 the floating-point division error when bucketing is under
	// ~5e-7 cells — far less than the 1e-3 margin — so the computed floor
	// cells provably differ by at most 1.
	gridSlack = 1.001
	// gridRebucketFactor is the δ-hysteresis: the grid is rebuilt only
	// once δ drops below this fraction of the current cell side.
	gridRebucketFactor = 0.5
	// gridMaxCoordCells caps |coordinate| / side so cell indices fit int32
	// with margin and the gridSlack adjacency argument holds.
	gridMaxCoordCells = float64(1 << 30)
)

// gridScratch is one leaf scan's pooled grid state: an open-addressed cell
// table (slotKey/slotHead, power-of-two sized, linear probing) over
// per-entry chain links (next). All slices grow in place, so a warm scan
// allocates nothing.
type gridScratch struct {
	slotKey  []uint64
	slotHead []int32
	next     []int32
	mask     uint64
	inv      float64 // 1 / side of the current bucketing
}

var gridPool = sync.Pool{New: func() any { return new(gridScratch) }}

// growI32 resizes a scratch slice to n elements, reusing capacity.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growU64 resizes a scratch slice to n elements, reusing capacity.
func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// gridPack packs a cell coordinate pair into one injective uint64 key.
func gridPack(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// gridHash mixes a packed cell key for the open-addressed table
// (Fibonacci multiplier, high bits folded down so masking keeps entropy).
func gridHash(k uint64) uint64 {
	k *= 0x9E3779B97F4A7C15
	return k ^ (k >> 32)
}

// build hashes the entries' points into the cell table with the given
// cell side. Entries must be points with in-range cell coordinates (the
// caller checks both before building).
func (g *gridScratch) build(entries []rtree.Entry, side float64) {
	n := len(entries)
	g.next = growI32(g.next, n)
	size := 64
	for size < 2*n {
		size <<= 1
	}
	g.slotKey = growU64(g.slotKey, size)
	g.slotHead = growI32(g.slotHead, size)
	for i := range g.slotHead {
		g.slotHead[i] = -1
	}
	g.mask = uint64(size - 1)
	g.inv = 1 / side
	for i := range entries {
		cx := int32(math.Floor(entries[i].Rect.Min.X * g.inv))
		cy := int32(math.Floor(entries[i].Rect.Min.Y * g.inv))
		k := gridPack(cx, cy)
		s := gridHash(k) & g.mask
		for {
			if g.slotHead[s] < 0 {
				g.slotKey[s] = k
				g.next[i] = -1
				g.slotHead[s] = int32(i)
				break
			}
			if g.slotKey[s] == k {
				g.next[i] = g.slotHead[s]
				g.slotHead[s] = int32(i)
				break
			}
			s = (s + 1) & g.mask
		}
	}
}

// probe returns the head entry index of the chain bucketed under cell
// (cx, cy), -1 when the cell is empty.
func (g *gridScratch) probe(cx, cy int32) int32 {
	k := gridPack(cx, cy)
	s := gridHash(k) & g.mask
	for {
		h := g.slotHead[s]
		if h < 0 || g.slotKey[s] == k {
			return h
		}
		s = (s + 1) & g.mask
	}
}

// entriesArePoints reports whether every entry is a degenerate (point)
// rectangle — the only shape the grid buckets soundly.
func entriesArePoints(entries []rtree.Entry) bool {
	for i := range entries {
		r := &entries[i].Rect
		if r.Min.X != r.Max.X || r.Min.Y != r.Max.Y {
			return false
		}
	}
	return true
}

// maxAbsCoord returns the largest coordinate magnitude of both leaves.
func maxAbsCoord(na, nb *rtree.Node) float64 {
	mx := 0.0
	for _, n := range []*rtree.Node{na, nb} {
		for i := range n.Entries {
			r := &n.Entries[i].Rect
			if v := math.Abs(r.Min.X); v > mx {
				mx = v
			}
			if v := math.Abs(r.Min.Y); v > mx {
				mx = v
			}
		}
	}
	return mx
}

// gridSideUsable reports whether a cell side is safe to bucket with: the
// side and its reciprocal must be finite and positive, and every
// coordinate must land within the int32 cell range with margin.
func gridSideUsable(side, maxAbs float64) bool {
	if !(side > 0) || math.IsInf(side, 1) {
		return false
	}
	inv := 1 / side
	if math.IsInf(inv, 1) || !(maxAbs*inv < gridMaxCoordCells) {
		return false
	}
	return true
}

// scanLeavesGrid is the grid-hash CP3. It hashes nb's points into a
// δ-sized grid, probes the 3×3 neighborhood for each point of na, counts
// exactly the candidate pairs evaluated in Stats.PointPairsCompared, and
// returns the smallest distance (squared) the heap accepted (+Inf if
// none), like the other scans. Without a usable finite bound, or with
// non-point entries or out-of-range coordinates, it delegates to the
// plane sweep.
func (j *join) scanLeavesGrid(na, nb *rtree.Node, kh *kHeap, extBound float64) float64 {
	T := extBound
	if th := kh.threshold(); th < T {
		T = th
	}
	if !(T > 0) || math.IsInf(T, 1) ||
		!entriesArePoints(na.Entries) || !entriesArePoints(nb.Entries) {
		return j.scanLeavesSweep(na, nb, kh, extBound)
	}
	maxAbs := maxAbsCoord(na, nb)
	side := j.metric.KeyToDist(T) * gridSlack
	if !gridSideUsable(side, maxAbs) {
		return j.scanLeavesSweep(na, nb, kh, extBound)
	}

	g := gridPool.Get().(*gridScratch)
	g.build(nb.Entries, side)
	// rebucketKey is the hysteresis trigger in key space, so the per-point
	// check costs one comparison and no KeyToDist round trip.
	rebucketKey := j.metric.DistToKey(side * gridRebucketFactor)
	minAccepted := math.Inf(1)
	var compared, probes, rebuckets int64
	for i := range na.Entries {
		ea := &na.Entries[i]
		if th := kh.threshold(); th < T {
			T = th
		}
		if T < rebucketKey {
			// δ shrank past the hysteresis: re-bucket with the tighter
			// side (unless the smaller cells would overflow the
			// coordinate range — the oversized grid stays sound).
			if ns := j.metric.KeyToDist(T) * gridSlack; gridSideUsable(ns, maxAbs) {
				side = ns
				g.build(nb.Entries, side)
				rebucketKey = j.metric.DistToKey(side * gridRebucketFactor)
				rebuckets++
				j.traceGridRebucket(len(nb.Entries))
			} else {
				rebucketKey = 0 // stop retrying a side that cannot shrink
			}
		}
		cx := int32(math.Floor(ea.Rect.Min.X * g.inv))
		cy := int32(math.Floor(ea.Rect.Min.Y * g.inv))
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				probes++
				for bi := g.probe(cx+dx, cy+dy); bi >= 0; bi = g.next[bi] {
					eb := &nb.Entries[bi]
					compared++
					d := j.metric.MinMinKey(ea.Rect, eb.Rect)
					if !kh.wouldAccept(d) {
						continue
					}
					kh.offer(kPair{
						distSq: d,
						p:      [2]float64{ea.Rect.Min.X, ea.Rect.Min.Y},
						q:      [2]float64{eb.Rect.Min.X, eb.Rect.Min.Y},
						refP:   ea.Ref,
						refQ:   eb.Ref,
					})
					if d < minAccepted {
						minAccepted = d
					}
				}
			}
		}
	}
	j.stats.pointPairsCompared.Add(compared)
	j.stats.gridCellsProbed.Add(probes)
	if rebuckets > 0 {
		j.stats.gridRebuckets.Add(rebuckets)
	}
	j.traceGridPruned(int64(len(na.Entries)*len(nb.Entries)) - compared)
	gridPool.Put(g)
	return minAccepted
}

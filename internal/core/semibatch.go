package core

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// SemiClosestPairsBatched answers the same semi-CPQ as SemiClosestPairs —
// for each point of the first tree, its nearest point in the second — but
// with a batched traversal instead of one nearest-neighbor search per
// point: the P-tree's leaves are visited once, and for each leaf a single
// best-first search over the Q-tree serves all of the leaf's points
// simultaneously, pruned by the leaf's worst unresolved best-so-far
// distance. On clustered data this shares most Q-node reads among the
// ~M points of a P leaf, cutting disk accesses substantially (see the
// "semi" benchmark for the comparison).
//
// SemiClosestPairsBatched is the non-cancellable shim over
// SemiClosestPairsBatchedContext.
func SemiClosestPairsBatched(ta, tb *rtree.Tree, opts Options) ([]Pair, Stats, error) {
	return SemiClosestPairsBatchedContext(context.Background(), ta, tb, opts)
}

// SemiClosestPairsBatchedContext is SemiClosestPairsBatched under a
// context; see KClosestPairsContext for the cancellation contract.
func SemiClosestPairsBatchedContext(ctx context.Context, ta, tb *rtree.Tree, opts Options) ([]Pair, Stats, error) {
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return nil, Stats{}, ErrEmptyInput
	}
	startA := ta.Pool().Stats()
	startB := tb.Pool().Stats()

	s := &semiBatch{tb: tb, metric: opts.Metric}
	out := make([]Pair, 0, ta.Len())
	if err := s.walkLeaves(ctx, ta, ta.RootID(), &out); err != nil {
		return nil, Stats{}, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RefP < out[j].RefP
	})
	if ta.Pool() == tb.Pool() {
		s.stats.IOP = ta.Pool().Stats().Sub(startA)
	} else {
		s.stats.IOP = ta.Pool().Stats().Sub(startA)
		s.stats.IOQ = tb.Pool().Stats().Sub(startB)
	}
	return out, s.stats, nil
}

type semiBatch struct {
	tb     *rtree.Tree
	metric geom.Metric
	stats  Stats
	cancel cancelGate
}

// walkLeaves visits every leaf of the P-tree in depth-first order. The
// poll at the top makes each visit a cancellation point, covering both
// the child loop below and resolveLeaf's best-first loop.
func (s *semiBatch) walkLeaves(ctx context.Context, ta *rtree.Tree, id storage.PageID, out *[]Pair) error {
	if err := s.cancel.poll(ctx); err != nil {
		return err
	}
	n, err := ta.ReadNode(id)
	if err != nil {
		return err
	}
	if n.IsLeaf() {
		return s.resolveLeaf(ctx, n, out)
	}
	for i := range n.Entries {
		if err := s.walkLeaves(ctx, ta, n.Entries[i].Child(), out); err != nil {
			return err
		}
	}
	return nil
}

// batchItem is a Q-subtree candidate keyed by MINDIST to the P-leaf MBR —
// a lower bound on its distance to every point of the leaf.
type batchItem struct {
	key  float64
	page storage.PageID
}

type batchQueue []batchItem

func (q batchQueue) Len() int            { return len(q) }
func (q batchQueue) Less(i, j int) bool  { return q[i].key < q[j].key }
func (q batchQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *batchQueue) Push(x interface{}) { *q = append(*q, x.(batchItem)) }
func (q *batchQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// resolveLeaf finds the Q-nearest neighbor of every point in one P leaf
// with a single best-first search over the Q-tree.
func (s *semiBatch) resolveLeaf(ctx context.Context, leaf *rtree.Node, out *[]Pair) error {
	pts := make([]geom.Point, len(leaf.Entries))
	refs := make([]int64, len(leaf.Entries))
	bestKey := make([]float64, len(leaf.Entries))
	bestPt := make([]geom.Point, len(leaf.Entries))
	bestRef := make([]int64, len(leaf.Entries))
	for i := range leaf.Entries {
		pts[i] = leaf.Entries[i].Rect.Min
		refs[i] = leaf.Entries[i].Ref
		bestKey[i] = math.Inf(1)
	}
	leafMBR := leaf.MBR()

	// worst returns the largest unresolved best-so-far key: a Q subtree
	// whose MINDIST to the leaf MBR exceeds it cannot improve any point.
	worst := func() float64 {
		w := 0.0
		for _, k := range bestKey {
			if k > w {
				w = k
			}
		}
		return w
	}

	pq := &batchQueue{{key: 0, page: s.tb.RootID()}}
	for pq.Len() > 0 {
		if err := s.cancel.poll(ctx); err != nil {
			return err
		}
		it := heap.Pop(pq).(batchItem)
		if it.key > worst() {
			break
		}
		n, err := s.tb.ReadNode(it.page)
		if err != nil {
			return err
		}
		s.stats.NodePairsProcessed++
		if n.IsLeaf() {
			for qi := range n.Entries {
				q := n.Entries[qi].Rect.Min
				for pi := range pts {
					s.stats.PointPairsCompared++
					if k := s.metric.Key(pts[pi], q); k < bestKey[pi] {
						bestKey[pi] = k
						bestPt[pi] = q
						bestRef[pi] = n.Entries[qi].Ref
					}
				}
			}
			continue
		}
		w := worst()
		for i := range n.Entries {
			key := s.metric.MinMinKey(leafMBR, n.Entries[i].Rect)
			s.stats.SubPairsGenerated++
			if key > w {
				s.stats.SubPairsPruned++
				continue
			}
			heap.Push(pq, batchItem{key: key, page: n.Entries[i].Child()})
		}
	}

	for i := range pts {
		*out = append(*out, Pair{
			P:    pts[i],
			Q:    bestPt[i],
			RefP: refs[i],
			RefQ: bestRef[i],
			Dist: s.metric.KeyToDist(bestKey[i]),
		})
	}
	return nil
}

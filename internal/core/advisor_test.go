package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestAdviseDisjointWorkspaces(t *testing.T) {
	ta := buildTree(t, uniformPoints(6000, 200, 0), 256)
	tb := buildTree(t, uniformPoints(6100, 200, 3), 256)
	for _, buffer := range []int{0, 128} {
		a, err := Advise(ta, tb, buffer)
		if err != nil {
			t.Fatal(err)
		}
		if a.Algorithm != SortedDistances {
			t.Errorf("buffer %d: got %v, want STD for disjoint workspaces", buffer, a.Algorithm)
		}
		if a.Overlap > 0.05 {
			t.Errorf("measured overlap %g for disjoint workspaces", a.Overlap)
		}
		if a.Reason == "" || a.Options.Algorithm != a.Algorithm {
			t.Errorf("inconsistent advice: %+v", a)
		}
	}
}

func TestAdviseOverlappingWorkspaces(t *testing.T) {
	ta := buildTree(t, uniformPoints(6200, 300, 0), 256)
	tb := buildTree(t, uniformPoints(6300, 300, 0.2), 256)

	zero, err := Advise(ta, tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Algorithm != Heap {
		t.Errorf("B=0: got %v, want HEAP", zero.Algorithm)
	}
	small, err := Advise(ta, tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.Algorithm != Heap {
		t.Errorf("B=4: got %v, want HEAP", small.Algorithm)
	}
	big, err := Advise(ta, tb, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big.Algorithm != SortedDistances {
		t.Errorf("B=64: got %v, want STD", big.Algorithm)
	}
	if !strings.Contains(big.Reason, "overlap") {
		t.Errorf("reason should mention overlap: %q", big.Reason)
	}
}

func TestAdvisedPlanIsValidAndCompetitive(t *testing.T) {
	// The advised plan must run correctly and, on its target regime, be no
	// worse than the exhaustive baseline.
	ps := uniformPoints(6400, 1000, 0)
	qs := uniformPoints(6500, 1000, 1) // adjacent (0% overlap)
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)
	a, err := Advise(ta, tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, advStats, err := KClosestPairs(ta, tb, 5, a.Options)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, got, ps, qs, 5)
	_, exhStats, err := KClosestPairs(ta, tb, 5, DefaultOptions(Exhaustive))
	if err != nil {
		t.Fatal(err)
	}
	if advStats.Accesses() > exhStats.Accesses() {
		t.Errorf("advised plan cost %d > EXH cost %d", advStats.Accesses(), exhStats.Accesses())
	}
}

func TestWorkspaceOverlap(t *testing.T) {
	unit := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}
	cases := []struct {
		b    geom.Rect
		want float64
	}{
		{geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}, 1},
		{geom.Rect{Min: geom.Point{X: 0.5, Y: 0}, Max: geom.Point{X: 1.5, Y: 1}}, 0.5},
		{geom.Rect{Min: geom.Point{X: 2, Y: 0}, Max: geom.Point{X: 3, Y: 1}}, 0},
		// Contained smaller workspace: fully overlapped.
		{geom.Rect{Min: geom.Point{X: 0.25, Y: 0.25}, Max: geom.Point{X: 0.75, Y: 0.75}}, 1},
	}
	for _, c := range cases {
		if got := workspaceOverlap(unit, c.b); got != c.want {
			t.Errorf("workspaceOverlap(unit, %v) = %g, want %g", c.b, got, c.want)
		}
		if got := workspaceOverlap(c.b, unit); got != c.want {
			t.Errorf("workspaceOverlap(%v, unit) = %g, want %g", c.b, got, c.want)
		}
	}
	if workspaceOverlap(geom.EmptyRect(), unit) != 0 {
		t.Error("empty workspace must overlap by 0")
	}
	// Degenerate point workspaces.
	p := geom.Point{X: 0.5, Y: 0.5}.Rect()
	if workspaceOverlap(p, unit) != 1 {
		t.Error("contained point workspace must overlap by 1")
	}
}

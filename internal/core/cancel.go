package core

import "context"

// cancelStride is how many traversal steps pass between two looks at the
// context. It must be a power of two: the gate tests a mask, which costs
// one increment and one branch per step — cheap enough that the hot loops
// (heap pops, recursive expansions, best-first dequeues) stay within noise
// of the context-free PR6 baseline (the "ctxflow" benchmark experiment
// gates this at <= 1%). 1024 steps bound the cancellation latency to a few
// node reads' worth of work, far below human-visible deadlines.
const cancelStride = 1024

// cancelGate is a stride-gated context poll shared by the sequential
// traversal drivers. Each driver owns one gate (the zero value is ready to
// use) and calls poll once per loop step; only every cancelStride-th call
// actually touches the context. The cpqlint cancelpoll check summarizes
// poll as a cancellation point, so a loop that calls it is proven
// interruptible.
type cancelGate struct {
	steps uint32
}

// poll counts one traversal step and, every cancelStride steps, reports
// the context's error so the enclosing loop can unwind. The off-stride
// path returns before reading the context at all.
func (g *cancelGate) poll(ctx context.Context) error {
	g.steps++
	if g.steps&(cancelStride-1) != 0 {
		return nil
	}
	return ctx.Err()
}

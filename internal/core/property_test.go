package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/sortx"
)

// TestRandomizedConfigurationsProperty drives random query configurations
// (data sizes, overlap, algorithm, options, K) against the brute-force
// oracle. It is the broadest correctness net in the package.
func TestRandomizedConfigurationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		np := 2 + rng.Intn(300)
		nq := 2 + rng.Intn(300)
		offset := rng.Float64() * 2
		ps := uniformPoints(rng.Int63(), np, 0)
		qs := uniformPoints(rng.Int63(), nq, offset)
		ta := buildTree(t, ps, 256)
		tb := buildTree(t, qs, 256)

		alg := Algorithms()[rng.Intn(5)]
		opts := Options{
			Algorithm: alg,
			Tie:       TieStrategy(rng.Intn(6)),
			Height:    HeightStrategy(rng.Intn(2)),
			Sort:      sortx.Methods()[rng.Intn(6)],
			KPrune:    KPruning(rng.Intn(2)),
		}
		k := 1 + rng.Intn(np*nq)
		if k > 2000 {
			k = 2000
		}
		got, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatalf("trial %d (%v k=%d): %v", trial, opts, k, err)
		}
		want := BruteForceKCP(ps, qs, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v k=%d): got %d pairs, want %d",
				trial, opts, k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d (%v k=%d) pair %d: dist %.12g, want %.12g",
					trial, opts, k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// TestKHeapProperty checks the K-heap against a sort-based model using
// testing/quick-generated inputs.
func TestKHeapProperty(t *testing.T) {
	f := func(dists []float64, kRaw uint8) bool {
		k := int(kRaw)%20 + 1
		h := newKHeap(k)
		for i, d := range dists {
			d = math.Abs(d)
			if math.IsInf(d, 0) || math.IsNaN(d) {
				d = float64(i)
			}
			h.offer(kPair{distSq: d, refP: int64(i)})
		}
		out := h.sorted()
		// Model: sort all, keep first k.
		want := append([]float64(nil), nil...)
		for i, d := range dists {
			d = math.Abs(d)
			if math.IsInf(d, 0) || math.IsNaN(d) {
				d = float64(i)
			}
			want = append(want, d)
		}
		if len(out) != min(k, len(want)) {
			return false
		}
		sortFloats(want)
		for i := range out {
			if out[i].distSq != want[i] {
				return false
			}
		}
		// Threshold is the k-th smallest once full, +Inf otherwise.
		if len(want) >= k {
			if h.threshold() != want[k-1] {
				return false
			}
		} else if !math.IsInf(h.threshold(), 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestTieKeyProperties verifies structural properties of the tie keys.
func TestTieKeyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3100))
	randRect := func() geom.Rect {
		x, y := rng.Float64()*10, rng.Float64()*10
		return geom.Rect{
			Min: geom.Point{X: x, Y: y},
			Max: geom.Point{X: x + rng.Float64()*3, Y: y + rng.Float64()*3},
		}
	}
	for i := 0; i < 500; i++ {
		a, b := randRect(), randRect()
		// T2's key equals MINMAXDIST^2.
		if got, want := tieKeyFor(Tie2, geom.L2(), a, b, 1, 1), geom.MinMaxDistSq(a, b); got != want {
			t.Fatalf("T2 key = %g, want %g", got, want)
		}
		// T3 prefers larger area sums: growing one rect must not increase
		// the key.
		bigger := geom.Rect{Min: a.Min, Max: geom.Point{X: a.Max.X + 1, Y: a.Max.Y + 1}}
		if tieKeyFor(Tie3, geom.L2(), bigger, b, 1, 1) >= tieKeyFor(Tie3, geom.L2(), a, b, 1, 1) {
			t.Fatal("T3 key must decrease for larger areas")
		}
		// T5 prefers larger intersections: disjoint rects have key 0,
		// overlapping ones negative.
		if tieKeyFor(Tie5, geom.L2(), a, a, 1, 1) >= 0 && a.Area() > 0 {
			t.Fatal("T5 self key must be negative for non-degenerate rects")
		}
		// TieNone is always 0.
		if tieKeyFor(TieNone, geom.L2(), a, b, 1, 1) != 0 {
			t.Fatal("TieNone key must be 0")
		}
	}
}

// TestBoundIsAlwaysSound: after any query, the reported K-th distance must
// never exceed the auxiliary bound the traversal ended with (the bound is
// an upper bound on the K-th closest distance).
func TestBoundIsAlwaysSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3200))
	for trial := 0; trial < 20; trial++ {
		ps := uniformPoints(rng.Int63(), 100+rng.Intn(200), 0)
		qs := uniformPoints(rng.Int63(), 100+rng.Intn(200), rng.Float64())
		ta := buildTree(t, ps, 256)
		tb := buildTree(t, qs, 256)
		k := 1 + rng.Intn(50)
		j, err := newJoin(ta, tb, k, DefaultOptions(Heap))
		if err != nil {
			t.Fatal(err)
		}
		root, err := j.rootPair()
		if err != nil {
			t.Fatal(err)
		}
		if err := j.runHeap(context.Background(), root); err != nil {
			t.Fatal(err)
		}
		res := j.results()
		if len(res) == int(k) {
			kth := res[len(res)-1].Dist
			if kth*kth > j.bound+1e-9 {
				t.Fatalf("trial %d: k-th dist^2 %g exceeds bound %g",
					trial, kth*kth, j.bound)
			}
		}
	}
}

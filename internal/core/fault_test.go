package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildFaultTree indexes pts on a FaultFile so read failures can be
// injected mid-query.
func buildFaultTree(t *testing.T, pts []geom.Point) (*rtree.Tree, *storage.FaultFile) {
	t.Helper()
	ff := storage.NewFaultFile(storage.NewMemFile(256))
	pool := storage.NewBufferPool(ff, 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr, ff
}

// TestQueriesSurfaceInjectedReadErrors: every algorithm must propagate a
// mid-traversal page read failure instead of panicking or returning
// partial results silently.
func TestQueriesSurfaceInjectedReadErrors(t *testing.T) {
	ps := uniformPoints(7000, 500, 0)
	qs := uniformPoints(7100, 500, 0.5)
	ta, fa := buildFaultTree(t, ps)
	tb, _ := buildFaultTree(t, qs)

	for _, alg := range Algorithms() {
		// Let a handful of reads through, then fail.
		fa.FailReadAfter(3)
		_, _, err := KClosestPairs(ta, tb, 10, DefaultOptions(alg))
		if !errors.Is(err, storage.ErrInjected) {
			t.Errorf("%v: err = %v, want ErrInjected", alg, err)
		}
		fa.FailReadAfter(-1)
	}

	// Self-CPQ.
	fa.FailReadAfter(2)
	if _, _, err := SelfKClosestPairs(ta, 5, DefaultOptions(Heap)); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("self: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// Semi-CPQ.
	fa.FailReadAfter(2)
	if _, _, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap)); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("semi: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// Range join.
	fa.FailReadAfter(2)
	if _, err := WithinDistance(ta, tb, 0.5, DefaultOptions(Heap), func(Pair) bool { return true }); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("range: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// After disarming, the query works again (no corrupted state).
	got, _, err := KClosestPairs(ta, tb, 5, DefaultOptions(Heap))
	if err != nil {
		t.Fatalf("recovery query failed: %v", err)
	}
	checkAgainstBrute(t, got, ps, qs, 5)
}

// TestCancelledQueriesReturnCtxErr is the cancellation analogue of the
// injected-read test above: a context that fires mid-join must surface
// context.Canceled from the sequential HEAP driver, the parallel engine
// and the recursive STD algorithm, leak no goroutines, and leave the
// trees reusable (every buffer-pool pin released) for a follow-up query.
//
// The context is cancelled before the call, so the error can only come
// out of a traversal-loop poll — which, because polls are stride-gated,
// also proves the workload drives each loop past cancelStride steps (a
// precondition the test checks explicitly against the uncancelled run's
// node-pair counter).
func TestCancelledQueriesReturnCtxErr(t *testing.T) {
	ps := uniformPoints(7400, 3000, 0)
	qs := uniformPoints(7500, 3000, 0) // full overlap: maximal frontier work
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	const k = 2000

	par8 := DefaultOptions(Heap)
	par8.Parallelism = 8
	modes := []struct {
		name string
		opts Options
	}{
		{"heap-seq", DefaultOptions(Heap)},
		{"heap-par8", par8},
		{"std-recursive", DefaultOptions(SortedDistances)},
	}

	// Precondition: the sequential drivers must take well over one poll
	// stride's worth of steps, or a pre-cancelled context could never be
	// observed and the query would "pass" by completing normally.
	_, stats, err := KClosestPairs(ta, tb, k, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodePairsProcessed < 2*cancelStride {
		t.Fatalf("workload too small to exercise the stride gate: %d node pairs, need >= %d",
			stats.NodePairsProcessed, 2*cancelStride)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			_, _, err := KClosestPairsContext(ctx, ta, tb, k, m.opts)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled", err)
			}
		})
	}

	// Everything spawned by the cancelled runs (workers, the Done
	// watcher) must be joined, not abandoned. Settle briefly: exiting
	// goroutines are observable slightly after their spawner returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked by cancelled queries: %d before, %d after", before, after)
	}

	// The trees must be fully usable afterwards: an unbalanced pin or a
	// poisoned pool would corrupt this follow-up query.
	got, _, err := KClosestPairs(ta, tb, 5, DefaultOptions(Heap))
	if err != nil {
		t.Fatalf("follow-up query failed: %v", err)
	}
	checkAgainstBrute(t, got, ps, qs, 5)
}

// TestContextNeutralWhenNotCancelled pins the acceptance contract of the
// context threading: under a live but never-cancelled context, results
// and every paper counter must be byte-identical to the Background shim.
func TestContextNeutralWhenNotCancelled(t *testing.T) {
	ps := uniformPoints(7600, 1500, 0)
	qs := uniformPoints(7700, 1500, 0.3)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	for _, alg := range []Algorithm{Heap, SortedDistances} {
		base, baseStats, err := KClosestPairs(ta, tb, 64, DefaultOptions(alg))
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := KClosestPairsContext(ctx, ta, tb, 64, DefaultOptions(alg))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("%v: %d pairs under context, %d under shim", alg, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Errorf("%v: pair %d differs under context: %+v vs %+v", alg, i, got[i], base[i])
			}
		}
		if gotStats != baseStats {
			t.Errorf("%v: stats differ under context:\n%+v\nvs shim\n%+v", alg, gotStats, baseStats)
		}
	}
}

// TestInsertSurfacesInjectedWriteErrors: tree mutation must propagate
// write failures.
func TestInsertSurfacesInjectedWriteErrors(t *testing.T) {
	ff := storage.NewFaultFile(storage.NewMemFile(256))
	pool := storage.NewBufferPool(ff, 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range uniformPoints(7200, 50, 0) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ff.FailWriteAfter(0)
	failed := false
	for i, p := range uniformPoints(7300, 50, 0) {
		if err := tr.InsertPoint(p, int64(100+i)); err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("insertions kept succeeding with failing writes")
	}
}

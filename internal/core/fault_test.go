package core

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildFaultTree indexes pts on a FaultFile so read failures can be
// injected mid-query.
func buildFaultTree(t *testing.T, pts []geom.Point) (*rtree.Tree, *storage.FaultFile) {
	t.Helper()
	ff := storage.NewFaultFile(storage.NewMemFile(256))
	pool := storage.NewBufferPool(ff, 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr, ff
}

// TestQueriesSurfaceInjectedReadErrors: every algorithm must propagate a
// mid-traversal page read failure instead of panicking or returning
// partial results silently.
func TestQueriesSurfaceInjectedReadErrors(t *testing.T) {
	ps := uniformPoints(7000, 500, 0)
	qs := uniformPoints(7100, 500, 0.5)
	ta, fa := buildFaultTree(t, ps)
	tb, _ := buildFaultTree(t, qs)

	for _, alg := range Algorithms() {
		// Let a handful of reads through, then fail.
		fa.FailReadAfter(3)
		_, _, err := KClosestPairs(ta, tb, 10, DefaultOptions(alg))
		if !errors.Is(err, storage.ErrInjected) {
			t.Errorf("%v: err = %v, want ErrInjected", alg, err)
		}
		fa.FailReadAfter(-1)
	}

	// Self-CPQ.
	fa.FailReadAfter(2)
	if _, _, err := SelfKClosestPairs(ta, 5, DefaultOptions(Heap)); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("self: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// Semi-CPQ.
	fa.FailReadAfter(2)
	if _, _, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap)); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("semi: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// Range join.
	fa.FailReadAfter(2)
	if _, err := WithinDistance(ta, tb, 0.5, DefaultOptions(Heap), func(Pair) bool { return true }); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("range: err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// After disarming, the query works again (no corrupted state).
	got, _, err := KClosestPairs(ta, tb, 5, DefaultOptions(Heap))
	if err != nil {
		t.Fatalf("recovery query failed: %v", err)
	}
	checkAgainstBrute(t, got, ps, qs, 5)
}

// TestInsertSurfacesInjectedWriteErrors: tree mutation must propagate
// write failures.
func TestInsertSurfacesInjectedWriteErrors(t *testing.T) {
	ff := storage.NewFaultFile(storage.NewMemFile(256))
	pool := storage.NewBufferPool(ff, 0)
	tr, err := rtree.New(pool, rtree.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range uniformPoints(7200, 50, 0) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ff.FailWriteAfter(0)
	failed := false
	for i, p := range uniformPoints(7300, 50, 0) {
		if err := tr.InsertPoint(p, int64(100+i)); err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("insertions kept succeeding with failing writes")
	}
}

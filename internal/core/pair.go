package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Pair is one result of a closest-pair query: a point from each data set,
// their record ids, and their Euclidean distance.
type Pair struct {
	P, Q       geom.Point
	RefP, RefQ int64
	Dist       float64
}

// String implements fmt.Stringer.
func (p Pair) String() string {
	return fmt.Sprintf("(%v #%d, %v #%d) dist=%g", p.P, p.RefP, p.Q, p.RefQ, p.Dist)
}

// nodePair is a candidate pair of subtrees during traversal: one node (or
// the root) from each tree, with the metrics driving pruning and ordering.
// Node pairs may sit at different levels while the two trees have
// different heights.
type nodePair struct {
	a, b     storage.PageID
	ra, rb   geom.Rect
	la, lb   int // levels (0 = leaf)
	minminSq float64
	tieKey   float64 // lower is "process first"; 0 when ties are disabled
}

// less orders node pairs for the STD sort and the HEAP priority queue:
// ascending MINMINDIST, with exact ties broken by the tie strategy's key.
// The pointer receiver matters on the hot path: a nodePair is ~11 words,
// and the sift loops compare far more often than they swap, so the fast
// path is two float64 loads and one comparison with no struct copying (the
// tie key is consulted only on exact MINMINDIST equality, which is rare
// with float64 distance keys).
func (p *nodePair) less(q *nodePair) bool {
	if p.minminSq < q.minminSq {
		return true
	}
	if p.minminSq > q.minminSq {
		return false
	}
	return p.tieKey < q.tieKey
}

// tieKeyFor computes the tie-break key of a candidate pair. Lower keys are
// processed first, so "largest X wins" strategies negate X. rootAreaA and
// rootAreaB normalize T1's areas as the paper prescribes (percent of the
// relevant root's area).
func tieKeyFor(strategy TieStrategy, m geom.Metric, ra, rb geom.Rect, rootAreaA, rootAreaB float64) float64 {
	switch strategy {
	case TieNone:
		return 0
	case Tie1:
		relA, relB := 0.0, 0.0
		if rootAreaA > 0 {
			relA = ra.Area() / rootAreaA
		}
		if rootAreaB > 0 {
			relB = rb.Area() / rootAreaB
		}
		return -math.Max(relA, relB)
	case Tie2:
		return m.MinMaxKey(ra, rb)
	case Tie3:
		return -(ra.Area() + rb.Area())
	case Tie4:
		return ra.Union(rb).Area() - ra.Area() - rb.Area()
	case Tie5:
		return -ra.OverlapArea(rb)
	default:
		return 0
	}
}

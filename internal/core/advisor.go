package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Advice is a recommended query plan for a closest-pair query.
type Advice struct {
	// Algorithm is the recommended CPQ algorithm.
	Algorithm Algorithm
	// LeafScan is the recommended leaf-pair scanning strategy, chosen by
	// the analytical cost model from the leaf fan-out and the expected
	// pruning distance (see AdviseLeafScan).
	LeafScan LeafScan
	// Options is a complete option set embodying the recommendation.
	Options Options
	// Overlap is the measured portion of workspace overlap that drove the
	// decision.
	Overlap float64
	// Reason explains the choice in the paper's terms.
	Reason string
}

// Advise encodes the paper's experimental guidelines (Sections 4.4 and
// 5.3) as an optimizer rule: measure the workspace overlap of the two
// trees and, together with the buffer size available to the query, pick
// the algorithm the study found most robust for that regime.
//
//   - Disjoint or barely overlapping workspaces: STD and HEAP are both
//     excellent; STD is returned since it also exploits any buffer.
//   - Overlapping workspaces with no or a tiny buffer (B <= 4 pages):
//     HEAP — it wins at zero buffer and is insensitive to small buffers.
//   - Overlapping workspaces with a reasonable buffer (B > 4): STD — the
//     paper found HEAP's buffer insensitivity lets STD overtake it.
func Advise(ta, tb *rtree.Tree, bufferPages int) (Advice, error) {
	ba, err := ta.Bounds()
	if err != nil {
		return Advice{}, err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return Advice{}, err
	}
	overlap := workspaceOverlap(ba, bb)

	var alg Algorithm
	var reason string
	switch {
	case overlap <= 0.05:
		alg = SortedDistances
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% (<= 5%%): the non-exhaustive algorithms win by up to an order of magnitude; STD also exploits any buffer", overlap*100)
	case bufferPages <= 4:
		alg = Heap
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% and the buffer is %d pages (<= 4): HEAP is the most efficient choice at zero/small buffers", overlap*100, bufferPages)
	default:
		alg = SortedDistances
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% and the buffer is %d pages (> 4): STD outperforms the buffer-insensitive HEAP", overlap*100, bufferPages)
	}
	adv := Advice{
		Algorithm: alg,
		Options:   DefaultOptions(alg),
		Overlap:   overlap,
		Reason:    reason,
	}
	if ls, why, err := AdviseLeafScan(ta, tb, 1); err == nil {
		adv.LeafScan = ls
		adv.Options.LeafScan = ls
		adv.Reason += "; leaf scan: " + why
	}
	return adv, nil
}

// AdviseLeafScan recommends the leaf scanning strategy (step CP3) for a
// K-closest-pair query over the two trees, using the analytical cost
// model: the measured workspace overlap and the trees' cardinalities fix
// the expected pruning distance d_K, whose ratio to the expected leaf side
// decides between the grid, the plane sweep and the brute scan (see
// costmodel.RecommendLeafScan for the full rationale). The returned string
// explains the choice.
func AdviseLeafScan(ta, tb *rtree.Tree, k int) (LeafScan, string, error) {
	ba, err := ta.Bounds()
	if err != nil {
		return LeafScanSweep, "", err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return LeafScanSweep, "", err
	}
	fanout := 0.7 * float64(ta.Config().MaxEntries+tb.Config().MaxEntries) / 2
	choice, why, err := costmodel.RecommendLeafScan(costmodel.Params{
		NA:      int(ta.Len()),
		NB:      int(tb.Len()),
		Overlap: workspaceOverlap(ba, bb),
		K:       k,
		Fanout:  fanout,
	})
	if err != nil {
		return LeafScanSweep, "", err
	}
	switch choice {
	case costmodel.ChooseBrute:
		return LeafScanBrute, why, nil
	case costmodel.ChooseGrid:
		return LeafScanGrid, why, nil
	default:
		return LeafScanSweep, why, nil
	}
}

// AdviseLeafScanDecision is AdviseLeafScan with the costmodel's full
// decision record (choice, reason and model inputs) for EXPLAIN output.
func AdviseLeafScanDecision(ta, tb *rtree.Tree, k int) (LeafScan, costmodel.Decision, error) {
	ba, err := ta.Bounds()
	if err != nil {
		return LeafScanSweep, costmodel.Decision{}, err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return LeafScanSweep, costmodel.Decision{}, err
	}
	fanout := 0.7 * float64(ta.Config().MaxEntries+tb.Config().MaxEntries) / 2
	choice, dec, err := costmodel.RecommendLeafScanDecision(costmodel.Params{
		NA:      int(ta.Len()),
		NB:      int(tb.Len()),
		Overlap: workspaceOverlap(ba, bb),
		K:       k,
		Fanout:  fanout,
	})
	if err != nil {
		return LeafScanSweep, costmodel.Decision{}, err
	}
	switch choice {
	case costmodel.ChooseBrute:
		return LeafScanBrute, dec, nil
	case costmodel.ChooseGrid:
		return LeafScanGrid, dec, nil
	default:
		return LeafScanSweep, dec, nil
	}
}

// workspaceOverlap returns the portion of overlap between two workspaces:
// the intersection area divided by the smaller workspace area (1.0 when
// one workspace is contained in the other; 0 for disjoint workspaces).
// Degenerate (zero-area) workspaces fall back to an intersect test.
func workspaceOverlap(a, b geom.Rect) float64 {
	if a.IsEmpty() || b.IsEmpty() {
		return 0
	}
	inter := a.OverlapArea(b)
	smaller := a.Area()
	if ba := b.Area(); ba < smaller {
		smaller = ba
	}
	if smaller == 0 {
		if a.Intersects(b) {
			return 1
		}
		return 0
	}
	return inter / smaller
}

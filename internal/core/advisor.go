package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Advice is a recommended query plan for a closest-pair query.
type Advice struct {
	// Algorithm is the recommended CPQ algorithm.
	Algorithm Algorithm
	// Options is a complete option set embodying the recommendation.
	Options Options
	// Overlap is the measured portion of workspace overlap that drove the
	// decision.
	Overlap float64
	// Reason explains the choice in the paper's terms.
	Reason string
}

// Advise encodes the paper's experimental guidelines (Sections 4.4 and
// 5.3) as an optimizer rule: measure the workspace overlap of the two
// trees and, together with the buffer size available to the query, pick
// the algorithm the study found most robust for that regime.
//
//   - Disjoint or barely overlapping workspaces: STD and HEAP are both
//     excellent; STD is returned since it also exploits any buffer.
//   - Overlapping workspaces with no or a tiny buffer (B <= 4 pages):
//     HEAP — it wins at zero buffer and is insensitive to small buffers.
//   - Overlapping workspaces with a reasonable buffer (B > 4): STD — the
//     paper found HEAP's buffer insensitivity lets STD overtake it.
func Advise(ta, tb *rtree.Tree, bufferPages int) (Advice, error) {
	ba, err := ta.Bounds()
	if err != nil {
		return Advice{}, err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return Advice{}, err
	}
	overlap := workspaceOverlap(ba, bb)

	var alg Algorithm
	var reason string
	switch {
	case overlap <= 0.05:
		alg = SortedDistances
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% (<= 5%%): the non-exhaustive algorithms win by up to an order of magnitude; STD also exploits any buffer", overlap*100)
	case bufferPages <= 4:
		alg = Heap
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% and the buffer is %d pages (<= 4): HEAP is the most efficient choice at zero/small buffers", overlap*100, bufferPages)
	default:
		alg = SortedDistances
		reason = fmt.Sprintf(
			"workspaces overlap by %.1f%% and the buffer is %d pages (> 4): STD outperforms the buffer-insensitive HEAP", overlap*100, bufferPages)
	}
	return Advice{
		Algorithm: alg,
		Options:   DefaultOptions(alg),
		Overlap:   overlap,
		Reason:    reason,
	}, nil
}

// workspaceOverlap returns the portion of overlap between two workspaces:
// the intersection area divided by the smaller workspace area (1.0 when
// one workspace is contained in the other; 0 for disjoint workspaces).
// Degenerate (zero-area) workspaces fall back to an intersect test.
func workspaceOverlap(a, b geom.Rect) float64 {
	if a.IsEmpty() || b.IsEmpty() {
		return 0
	}
	inter := a.OverlapArea(b)
	smaller := a.Area()
	if ba := b.Area(); ba < smaller {
		smaller = ba
	}
	if smaller == 0 {
		if a.Intersects(b) {
			return 1
		}
		return 0
	}
	return inter / smaller
}

package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// TestGridBruteEquivalence is the grid leaf-scan property test, mirroring
// TestSweepBruteEquivalence: for every algorithm, tie strategy, data
// distribution and several K, the grid and brute scans must return
// identical result distances, the grid must never evaluate more point
// pairs than the brute scan, and both must match the brute-force oracle.
func TestGridBruteEquivalence(t *testing.T) {
	type workload struct {
		name   string
		ps, qs []geom.Point
	}
	workloads := []workload{
		{"uniform", dataset.Uniform(7, 400), shiftPoints(dataset.Uniform(8, 360), 0.5)},
		{"clustered", dataset.Clustered(9, 400), shiftPoints(dataset.Clustered(10, 360), 0.25)},
	}
	ties := append([]TieStrategy{TieNone}, TieStrategies()...)
	for _, wl := range workloads {
		ta := buildTree(t, wl.ps, 256)
		tb := buildTree(t, wl.qs, 256)
		for _, alg := range Algorithms() {
			for _, tie := range ties {
				for _, k := range []int{1, 10, 100} {
					opts := DefaultOptions(alg)
					opts.Tie = tie
					opts.LeafScan = LeafScanBrute
					brutePairs, bruteStats, err := KClosestPairs(ta, tb, k, opts)
					if err != nil {
						t.Fatalf("%s %v %v k=%d brute: %v", wl.name, alg, tie, k, err)
					}
					opts.LeafScan = LeafScanGrid
					gridPairs, gridStats, err := KClosestPairs(ta, tb, k, opts)
					if err != nil {
						t.Fatalf("%s %v %v k=%d grid: %v", wl.name, alg, tie, k, err)
					}
					if len(gridPairs) != len(brutePairs) {
						t.Fatalf("%s %v %v k=%d: grid returned %d pairs, brute %d",
							wl.name, alg, tie, k, len(gridPairs), len(brutePairs))
					}
					for i := range gridPairs {
						if gridPairs[i].Dist != brutePairs[i].Dist {
							t.Fatalf("%s %v %v k=%d: pair %d dist grid=%.17g brute=%.17g",
								wl.name, alg, tie, k, i, gridPairs[i].Dist, brutePairs[i].Dist)
						}
					}
					if gridStats.PointPairsCompared > bruteStats.PointPairsCompared {
						t.Fatalf("%s %v %v k=%d: grid evaluated %d point pairs, brute %d",
							wl.name, alg, tie, k,
							gridStats.PointPairsCompared, bruteStats.PointPairsCompared)
					}
					checkAgainstBrute(t, gridPairs, wl.ps, wl.qs, k)
				}
			}
		}
	}
}

// TestGridCounterParity pins the acceptance criterion that the grid scan
// and the batched kernel leave the paper's cost counters — disk accesses
// and node pairs processed — exactly where the sweep/legacy path put them
// at Parallelism 1: they change how leaf points are compared, never which
// nodes are read.
func TestGridCounterParity(t *testing.T) {
	ps := dataset.Uniform(41, 1200)
	qs := dataset.Uniform(42, 1100)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range Algorithms() {
		for _, k := range []int{1, 100} {
			opts := DefaultOptions(alg)
			opts.LeafScan = LeafScanSweep
			opts.Expand = ExpandLegacy
			_, want, err := KClosestPairs(ta, tb, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.LeafScan = LeafScanGrid
			opts.Expand = ExpandBatched
			_, got, err := KClosestPairs(ta, tb, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Accesses() != want.Accesses() || got.NodePairsProcessed != want.NodePairsProcessed {
				t.Fatalf("%v k=%d: grid+kernel counters (accesses %d, node pairs %d) deviate from legacy sweep (%d, %d)",
					alg, k, got.Accesses(), got.NodePairsProcessed,
					want.Accesses(), want.NodePairsProcessed)
			}
			if got.SubPairsGenerated != want.SubPairsGenerated ||
				got.SubPairsPruned != want.SubPairsPruned {
				t.Fatalf("%v k=%d: sub-pair counters (%d gen, %d pruned) deviate from legacy (%d, %d)",
					alg, k, got.SubPairsGenerated, got.SubPairsPruned,
					want.SubPairsGenerated, want.SubPairsPruned)
			}
			if alg == Heap && k == 100 && got.GridCellsProbed == 0 {
				t.Fatalf("%v k=%d: grid scan probed no cells", alg, k)
			}
		}
	}
}

// TestGridMetrics exercises the grid's cell side and rebucketing under
// every supported metric (the side is metric-dependent via KeyToDist: δ
// from d^2 keys for L2, d for L1/Linf, d^p for general Lp).
func TestGridMetrics(t *testing.T) {
	ps := dataset.Uniform(31, 300)
	qs := dataset.Uniform(32, 280)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	l3, err := geom.Lp(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []geom.Metric{geom.L2(), geom.L1(), geom.LInf(), l3} {
		for _, alg := range []Algorithm{SortedDistances, Heap} {
			opts := DefaultOptions(alg)
			opts.Metric = m
			opts.LeafScan = LeafScanBrute
			want, _, err := KClosestPairs(ta, tb, 20, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.LeafScan = LeafScanGrid
			got, gridStats, err := KClosestPairs(ta, tb, 20, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v %v: got %d pairs, want %d", m, alg, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("%v %v pair %d: dist %.17g, want %.17g",
						m, alg, i, got[i].Dist, want[i].Dist)
				}
			}
			if gridStats.PointPairsCompared <= 0 {
				t.Fatalf("%v %v: no point pairs counted", m, alg)
			}
		}
	}
}

// TestGridParallelEquivalence runs the grid scan under the parallel HEAP
// engine (which also exercises the heap-batch consumption path): same
// distances as the sequential brute scan.
func TestGridParallelEquivalence(t *testing.T) {
	ps := dataset.Uniform(21, 900)
	qs := dataset.Uniform(22, 800)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, k := range []int{1, 25, 100} {
		opts := DefaultOptions(Heap)
		opts.LeafScan = LeafScanBrute
		want, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.LeafScan = LeafScanGrid
		opts.Parallelism = 4
		got, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d pair %d: dist %.17g, want %.17g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// TestBatchExpandEquivalence runs the sequential HEAP algorithm with
// batched heap dequeues: the result distances must match the strict
// best-first run exactly (every batch member is re-checked against the
// bound before processing).
func TestBatchExpandEquivalence(t *testing.T) {
	ps := dataset.Clustered(51, 800)
	qs := dataset.Clustered(52, 700)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, k := range []int{1, 10, 100} {
		opts := DefaultOptions(Heap)
		want, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.BatchExpand = true
		got, stats, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d pair %d: dist %.17g, want %.17g", k, i, got[i].Dist, want[i].Dist)
			}
		}
		if stats.HeapBatches <= 0 || stats.HeapBatchPairs < stats.HeapBatches {
			t.Fatalf("k=%d: implausible heap batch counters: %d batches, %d pairs",
				k, stats.HeapBatches, stats.HeapBatchPairs)
		}
	}
}

// TestGridScratchZeroAlloc pins the steady-state allocation discipline of
// the grid scan's pooled scratch: once warm, build and probe allocate
// nothing.
func TestGridScratchZeroAlloc(t *testing.T) {
	pts := dataset.Uniform(61, 64)
	entries := make([]rtree.Entry, len(pts))
	for i, p := range pts {
		entries[i] = rtree.Entry{Rect: geom.Rect{Min: p, Max: p}, Ref: int64(i)}
	}
	g := new(gridScratch)
	g.build(entries, 0.05) // warm: grows every slice to capacity
	allocs := testing.AllocsPerRun(100, func() {
		g.build(entries, 0.05)
		for cx := int32(-1); cx <= 1; cx++ {
			for cy := int32(-1); cy <= 1; cy++ {
				for bi := g.probe(cx, cy); bi >= 0; bi = g.next[bi] {
					_ = entries[bi]
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm grid build+probe allocates %v per op, want 0", allocs)
	}
}

// TestKernelScratchZeroAlloc pins the same discipline for the batched
// expansion kernel's SoA scratch: warm fills and key-buffer growth reuse
// capacity.
func TestKernelScratchZeroAlloc(t *testing.T) {
	pts := dataset.Uniform(62, 32)
	entries := make([]rtree.Entry, len(pts))
	for i, p := range pts {
		entries[i] = rtree.Entry{Rect: geom.Rect{Min: p, Max: p}, Ref: int64(i)}
	}
	sc := new(kernelScratch)
	n := len(entries) * len(entries)
	sc.fillA(entries)
	sc.fillB(entries)
	sc.keys = growF64(sc.keys, n)
	sc.maxmax = growF64(sc.maxmax, n)
	allocs := testing.AllocsPerRun(100, func() {
		sc.fillA(entries)
		sc.fillB(entries)
		sc.keys = growF64(sc.keys, n)
		sc.maxmax = growF64(sc.maxmax, n)
	})
	if allocs != 0 {
		t.Fatalf("warm kernel scratch fill allocates %v per op, want 0", allocs)
	}
}

// FuzzGridCells fuzzes the grid's soundness invariant: for any two points
// within δ of each other (per axis) and any usable cell side derived from
// δ, the bucketed cell coordinates differ by at most 1 on each axis — the
// 3×3 probe neighborhood misses no qualifying pair.
func FuzzGridCells(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)                     // δ = 0: must be rejected as unusable
	f.Add(0.5, 0.5, 0.5, 0.5, 1e-9)                    // coincident points, tiny δ
	f.Add(5e-324, 0.0, 0.0, 5e-324, 1e-300)            // denormal coordinates and δ
	f.Add(0.25, 0.75, 0.26, 0.74, 0.02)                // ordinary near pair
	f.Add(-1e9, 1e9, -1e9+0.1, 1e9-0.1, 0.5)           // large magnitudes near the 2^30 cap
	f.Add(1.0, 1.0, math.Nextafter(1, 2), 1.0, 5e-324) // adjacent representables
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, delta float64) {
		for _, v := range []float64{ax, ay, bx, by, delta} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if delta < 0 {
			delta = -delta
		}
		side := delta * gridSlack
		maxAbs := math.Max(math.Max(math.Abs(ax), math.Abs(ay)),
			math.Max(math.Abs(bx), math.Abs(by)))
		if !gridSideUsable(side, maxAbs) {
			// The scan falls back to the sweep for these; nothing to check.
			t.Skip()
		}
		if math.Abs(ax-bx) > delta || math.Abs(ay-by) > delta {
			t.Skip()
		}
		inv := 1 / side
		cax := int32(math.Floor(ax * inv))
		cay := int32(math.Floor(ay * inv))
		cbx := int32(math.Floor(bx * inv))
		cby := int32(math.Floor(by * inv))
		if dx := cax - cbx; dx < -1 || dx > 1 {
			t.Fatalf("x cells %d and %d not adjacent for |%g-%g| <= %g, side %g",
				cax, cbx, ax, bx, delta, side)
		}
		if dy := cay - cby; dy < -1 || dy > 1 {
			t.Fatalf("y cells %d and %d not adjacent for |%g-%g| <= %g, side %g",
				cay, cby, ay, by, delta, side)
		}
	})
}

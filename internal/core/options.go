// Package core implements the paper's contribution: five algorithms for
// 1-CPQ and K-CPQ over two R*-trees (Naive, Exhaustive, Simple recursive,
// Sorted Distances recursive, and the iterative Heap algorithm), together
// with the tie-break heuristics T1-T5, the fix-at-leaves / fix-at-root
// strategies for trees of different heights, and the K-extension pruning
// rules. The self-CPQ and semi-CPQ variants sketched in the paper's
// future-work section are implemented as well.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sortx"
)

// Algorithm selects one of the paper's five CPQ algorithms (Section 3).
type Algorithm int

const (
	// Naive recurses through every pair of subtrees with no pruning at all
	// (Section 3.1). It exists as a correctness baseline; the paper
	// excludes it from the experiments for obvious cost reasons.
	Naive Algorithm = iota
	// Exhaustive (EXH) prunes subtree pairs whose MINMINDIST exceeds the
	// best distance found so far (Section 3.2, Inequality 1).
	Exhaustive
	// Simple (SIM) additionally tightens the pruning bound with
	// MINMAXDIST before descending (Section 3.3, Inequality 2).
	Simple
	// SortedDistances (STD) additionally processes candidate pairs in
	// ascending MINMINDIST order (Section 3.4).
	SortedDistances
	// Heap (HEAP) is the iterative algorithm: a global min-heap of node
	// pairs keyed by MINMINDIST replaces recursion (Section 3.5).
	Heap
)

// Algorithms lists the five algorithms in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{Naive, Exhaustive, Simple, SortedDistances, Heap}
}

// String implements fmt.Stringer, using the paper's abbreviations.
func (a Algorithm) String() string {
	switch a {
	case Naive:
		return "NAIVE"
	case Exhaustive:
		return "EXH"
	case Simple:
		return "SIM"
	case SortedDistances:
		return "STD"
	case Heap:
		return "HEAP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// TieStrategy picks the node pair to process first among pairs with equal
// MINMINDIST in the STD and HEAP algorithms (Section 3.6). T1 is the
// paper's experimental winner and the default.
type TieStrategy int

const (
	// TieNone keeps the order produced by the sort or heap.
	TieNone TieStrategy = iota
	// Tie1 prefers the pair containing the largest MBR, with MBR area
	// expressed as a fraction of the area of the relevant tree's root MBR.
	Tie1
	// Tie2 prefers the pair with the smallest MINMAXDIST between its
	// elements.
	Tie2
	// Tie3 prefers the pair with the largest sum of the two MBR areas.
	Tie3
	// Tie4 prefers the pair with the smallest dead space: the area of the
	// MBR embedding both elements minus the areas of the elements.
	Tie4
	// Tie5 prefers the pair with the largest intersection area between
	// its two elements.
	Tie5
)

// TieStrategies lists T1-T5 (TieNone excluded).
func TieStrategies() []TieStrategy {
	return []TieStrategy{Tie1, Tie2, Tie3, Tie4, Tie5}
}

// String implements fmt.Stringer.
func (t TieStrategy) String() string {
	switch t {
	case TieNone:
		return "none"
	case Tie1:
		return "T1"
	case Tie2:
		return "T2"
	case Tie3:
		return "T3"
	case Tie4:
		return "T4"
	case Tie5:
		return "T5"
	default:
		return fmt.Sprintf("TieStrategy(%d)", int(t))
	}
}

// HeightStrategy governs the treatment of trees with different heights
// (Section 3.7).
type HeightStrategy int

const (
	// FixAtRoot stops descending in the shorter tree until the traversal
	// reaches a pair of nodes at the same level; the paper found it the
	// better choice for SIM and HEAP (Section 4.2) and it is the default.
	FixAtRoot HeightStrategy = iota
	// FixAtLeaves descends both trees simultaneously and fixes the
	// shorter tree once its leaves are reached — the classic spatial-join
	// treatment.
	FixAtLeaves
)

// String implements fmt.Stringer.
func (h HeightStrategy) String() string {
	switch h {
	case FixAtRoot:
		return "fix-at-root"
	case FixAtLeaves:
		return "fix-at-leaves"
	default:
		return fmt.Sprintf("HeightStrategy(%d)", int(h))
	}
}

// LeafScan selects how a pair of leaves is scanned for candidate point
// pairs (step CP3). The plane-sweep scan is the default; the brute scan is
// kept selectable for A/B comparisons (EXPERIMENTS.md, "leaf-scan A/B").
type LeafScan int

const (
	// LeafScanSweep sorts both leaves' entries by ascending low x
	// coordinate and merge-walks them, evaluating only pairs whose x-gap
	// distance is within the current pruning bound T. It evaluates a
	// subset of the brute scan's pairs and produces the same result set.
	// This is the default (zero value).
	LeafScanSweep LeafScan = iota
	// LeafScanBrute evaluates all n*m entry pairs of the two leaves — the
	// paper's original formulation of CP3.
	LeafScanBrute
	// LeafScanGrid hashes one leaf's points into a uniform grid whose cell
	// side tracks the current pruning bound δ (re-bucketing when δ shrinks
	// past a hysteresis factor) and probes at most the 3×3 neighborhood of
	// each point of the other leaf, so only pairs that can possibly be
	// within δ are evaluated. It produces the same result set as the other
	// scans and falls back to the plane sweep when no finite bound is
	// available yet or the leaves hold non-point entries (see grid.go).
	LeafScanGrid
)

// LeafScans lists the leaf scanning strategies.
func LeafScans() []LeafScan {
	return []LeafScan{LeafScanSweep, LeafScanBrute, LeafScanGrid}
}

// String implements fmt.Stringer.
func (l LeafScan) String() string {
	switch l {
	case LeafScanSweep:
		return "sweep"
	case LeafScanBrute:
		return "brute"
	case LeafScanGrid:
		return "grid"
	default:
		return fmt.Sprintf("LeafScan(%d)", int(l))
	}
}

// ExpandStrategy selects how a node pair's candidate sub-pairs and their
// MBR metrics are computed during expansion.
type ExpandStrategy int

const (
	// ExpandBatched copies the child MBRs into flat scratch arrays
	// (structure-of-arrays layout) and computes all pairwise MINMINDIST
	// values in one tight loop, materialising only the sub-pairs that
	// survive the pruning bound (kernel.go). It produces exactly the same
	// sub-pairs, bounds and counters as ExpandLegacy and is the default
	// (zero value).
	ExpandBatched ExpandStrategy = iota
	// ExpandLegacy computes per-entry metrics through the generic rect
	// calls, materialising every candidate sub-pair before filtering. Kept
	// selectable for A/B comparisons (EXPERIMENTS.md, "expansion kernel
	// A/B").
	ExpandLegacy
)

// ExpandStrategies lists the expansion strategies.
func ExpandStrategies() []ExpandStrategy {
	return []ExpandStrategy{ExpandBatched, ExpandLegacy}
}

// String implements fmt.Stringer.
func (e ExpandStrategy) String() string {
	switch e {
	case ExpandBatched:
		return "batched"
	case ExpandLegacy:
		return "legacy"
	default:
		return fmt.Sprintf("ExpandStrategy(%d)", int(e))
	}
}

// KPruning selects how the pruning bound T is tightened for K > 1, where
// Inequality 2 (MINMAXDIST) no longer applies (Section 3.8).
type KPruning int

const (
	// KPruneMaxMax reconstructs the technical-report variant: candidate
	// pairs sorted by ascending MAXMAXDIST update T once the guaranteed
	// number of enclosed point pairs reaches K (right part of
	// Inequality 1). This is the default.
	KPruneMaxMax KPruning = iota
	// KPruneHeapTop relies solely on the distance at the top of the
	// K-heap once it is full (the simple modification in Section 3.8).
	KPruneHeapTop
)

// String implements fmt.Stringer.
func (k KPruning) String() string {
	switch k {
	case KPruneMaxMax:
		return "maxmaxdist"
	case KPruneHeapTop:
		return "heap-top"
	default:
		return fmt.Sprintf("KPruning(%d)", int(k))
	}
}

// Options configures a closest-pair query. The zero Algorithm is Naive,
// so set Algorithm explicitly; DefaultOptions returns the paper's
// preferred configuration (T1 ties, fix-at-root, merge sort) for a given
// algorithm.
type Options struct {
	// Algorithm selects the CPQ algorithm.
	Algorithm Algorithm
	// Tie is the tie-break strategy for STD and HEAP. DefaultOptions sets
	// Tie1, the paper's winner; the zero value keeps sort/heap order.
	Tie TieStrategy
	// Height is the different-heights treatment (default FixAtRoot).
	Height HeightStrategy
	// Sort is the sorting method used by STD (default MergeSort, the
	// authors' choice in footnote 2).
	Sort sortx.Method
	// KPrune selects the K > 1 pruning rule (default KPruneMaxMax).
	KPrune KPruning
	// LeafScan selects the leaf-pair scanning strategy (default
	// LeafScanSweep). All strategies produce the same result set; they
	// differ only in how many point pairs are evaluated
	// (Stats.PointPairsCompared).
	LeafScan LeafScan
	// Expand selects the expansion kernel (default ExpandBatched). Both
	// strategies produce identical sub-pairs, bounds and counters; the
	// batched kernel just computes them faster.
	Expand ExpandStrategy
	// BatchExpand, when true, lets the sequential HEAP algorithm dequeue
	// node-pair batches (all pairs within a small factor of the current
	// minimum MINMINDIST key, capped) per heap operation, amortising
	// sift-down traffic. Results are identical — every dequeued pair is
	// still checked against T — but the processing order deviates slightly
	// from strict best-first, so disk access counts may differ from the
	// paper's sequential algorithm; it therefore defaults to off. The
	// parallel engine always consumes batches.
	BatchExpand bool
	// Metric is the Minkowski distance metric (default Euclidean). The
	// paper's methods adapt to any Minkowski metric (Section 2.1); all
	// MBR bounds (MINMINDIST, MINMAXDIST, MAXMAXDIST) are computed under
	// the same metric, preserving every pruning argument.
	Metric geom.Metric
	// Tracer, when non-nil, receives a per-query span of typed events
	// (node expansions, bound tightenings, heap high-water marks, worker
	// steals; see the obs event taxonomy). nil — the default — disables
	// tracing entirely: every emission site sits behind one nil check and
	// allocates nothing.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives one cost record per completed query
	// (latency, accesses, K-th distance, cache counters). Recording
	// happens at query completion only, never inside the traversal.
	Metrics *obs.EngineMetrics
	// SlowLog, when non-nil, aggregates per-query cost reports and writes
	// queries slower than its threshold as JSON lines.
	SlowLog *obs.SlowQueryLog
	// SharedBound, when non-nil, couples this query to other in-flight
	// joins through an external tighten-only pruning bound (the shard
	// executor's broadcast bound, DESIGN.md §13). The join prunes against
	// min(T, SharedBound.Load()) and publishes its own sound global upper
	// bounds back through Tighten, so a tight pair found by any
	// cooperating join prunes all the others. nil — the default — keeps
	// the query self-contained and byte-identical to earlier PRs.
	SharedBound *SharedBound
	// Trace is the parent trace context for this query's span. The zero
	// value — the default — opens a fresh root trace, so standalone queries
	// behave exactly as before; the shard executor sets it to its own query
	// span's context (propagated through Transport.Join) so per-shard join
	// spans correlate with the gather-side span even across a process
	// boundary. Ignored when Tracer is nil.
	Trace obs.TraceContext
	// Parallelism is the number of worker goroutines for the HEAP
	// algorithm. 0 and 1 run the paper's sequential algorithm (the zero
	// value keeps every existing call byte-identical, including disk
	// access counts); N > 1 runs N workers over a shared frontier with an
	// atomically tightened pruning bound; AutoParallelism (-1) uses
	// runtime.GOMAXPROCS(0). The recursive algorithms (Naive, EXH, SIM,
	// STD) ignore the knob: their pruning depends on depth-first T
	// evolution and stays sequential. Parallel runs return the same K
	// distances as sequential ones, but disk access counts may vary
	// slightly run to run (see DESIGN.md, "Parallel execution").
	Parallelism int
}

// AutoParallelism selects runtime.GOMAXPROCS(0) workers for the HEAP
// algorithm.
const AutoParallelism = -1

// workers resolves the Parallelism knob to a concrete worker count.
func (o Options) workers() int {
	switch {
	case o.Parallelism == AutoParallelism:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism <= 1:
		return 1
	default:
		return o.Parallelism
	}
}

// DefaultOptions returns the paper's preferred configuration for the given
// algorithm.
func DefaultOptions(a Algorithm) Options {
	return Options{Algorithm: a, Tie: Tie1, Height: FixAtRoot, Sort: sortx.Merge}
}

func (o Options) validate() error {
	switch o.Algorithm {
	case Naive, Exhaustive, Simple, SortedDistances, Heap:
	default:
		return fmt.Errorf("core: unknown algorithm %d", int(o.Algorithm))
	}
	switch o.Tie {
	case TieNone, Tie1, Tie2, Tie3, Tie4, Tie5:
	default:
		return fmt.Errorf("core: unknown tie strategy %d", int(o.Tie))
	}
	switch o.Height {
	case FixAtRoot, FixAtLeaves:
	default:
		return fmt.Errorf("core: unknown height strategy %d", int(o.Height))
	}
	switch o.KPrune {
	case KPruneMaxMax, KPruneHeapTop:
	default:
		return fmt.Errorf("core: unknown K pruning rule %d", int(o.KPrune))
	}
	switch o.LeafScan {
	case LeafScanSweep, LeafScanBrute, LeafScanGrid:
	default:
		return fmt.Errorf("core: unknown leaf scan strategy %d", int(o.LeafScan))
	}
	switch o.Expand {
	case ExpandBatched, ExpandLegacy:
	default:
		return fmt.Errorf("core: unknown expand strategy %d", int(o.Expand))
	}
	if o.Parallelism < AutoParallelism {
		return fmt.Errorf("core: invalid parallelism %d", o.Parallelism)
	}
	return nil
}

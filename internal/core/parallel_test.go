package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/storage"
)

// distances extracts the (sorted) result distances of a K-CPQ run.
func distances(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p.Dist
	}
	return out
}

// sameDistances asserts two runs produced exactly the same distance
// multiset. The K smallest distances of a point-pair population are
// unique (unlike the pair sets, which may differ under exact ties), and
// every path computes them with the same float64 operations, so exact
// equality is required, not a tolerance.
func sameDistances(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: distance %d = %.17g, want %.17g", label, i, got[i], want[i])
		}
	}
}

// TestParallelMatchesSequential is the parallel-equivalence property test:
// across K, tie strategies, height strategies and data distributions, the
// parallel HEAP engine must return exactly the same K distances as the
// sequential HEAP and STD algorithms (the pair sets are equally valid
// instances under ties; checkAgainstBrute validates the instance).
func TestParallelMatchesSequential(t *testing.T) {
	type data struct {
		name   string
		ps, qs []geom.Point
	}
	uni := uniformPoints(4100, 900, 0)
	uniQ := uniformPoints(4200, 800, 0.25)
	clu := dataset.Clustered(4300, 900)
	cluQ := dataset.Clustered(4400, 800)
	datasets := []data{
		{"uniform", uni, uniQ},
		{"clustered", clu, cluQ},
	}

	for _, d := range datasets {
		// Different page sizes give the two trees different heights, so
		// both height strategies do real work.
		ta := buildTree(t, d.ps, 256)
		tb := buildTree(t, d.qs, 512)
		if ta.Height() == tb.Height() {
			t.Fatalf("%s: want different tree heights, got %d and %d",
				d.name, ta.Height(), tb.Height())
		}
		for _, k := range []int{1, 10, 100} {
			for _, height := range []HeightStrategy{FixAtRoot, FixAtLeaves} {
				for _, tie := range TieStrategies() {
					opts := DefaultOptions(Heap)
					opts.Tie = tie
					opts.Height = height

					seqPairs, _, err := KClosestPairs(ta, tb, k, opts)
					if err != nil {
						t.Fatal(err)
					}
					want := distances(seqPairs)

					stdOpts := opts
					stdOpts.Algorithm = SortedDistances
					stdPairs, _, err := KClosestPairs(ta, tb, k, stdOpts)
					if err != nil {
						t.Fatal(err)
					}
					sameDistances(t, d.name+"/STD", distances(stdPairs), want)

					for _, workers := range []int{2, 4} {
						popts := opts
						popts.Parallelism = workers
						parPairs, stats, err := KClosestPairs(ta, tb, k, popts)
						if err != nil {
							t.Fatal(err)
						}
						label := d.name
						sameDistances(t, label, distances(parPairs), want)
						if stats.Accesses() <= 0 || stats.PointPairsCompared <= 0 {
							t.Fatalf("%s: implausible parallel stats: %v", label, stats)
						}
					}
				}
			}
		}
		// Validate one parallel instance in full against brute force
		// (refs, points, ordering), not just the distance multiset.
		opts := DefaultOptions(Heap)
		opts.Parallelism = 4
		pairs, _, err := KClosestPairs(ta, tb, 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, pairs, d.ps, d.qs, 10)
	}
}

// TestParallelismOneTakesSequentialPath: Parallelism 0 and 1 must run the
// exact sequential algorithm — identical pairs and identical statistics,
// including the paper's disk access counts.
func TestParallelismOneTakesSequentialPath(t *testing.T) {
	ps := uniformPoints(4500, 800, 0)
	qs := uniformPoints(4600, 700, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)

	base := DefaultOptions(Heap)
	wantPairs, wantStats, err := KClosestPairs(ta, tb, 25, base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.Parallelism = 1
	gotPairs, gotStats, err := KClosestPairs(ta, tb, 25, one)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("Parallelism=1 stats = %v, want %v", gotStats, wantStats)
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("got %d pairs, want %d", len(gotPairs), len(wantPairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, gotPairs[i], wantPairs[i])
		}
	}
}

// TestParallelAutoAndValidation covers AutoParallelism resolution and the
// Parallelism validation bound.
func TestParallelAutoAndValidation(t *testing.T) {
	ps := uniformPoints(4700, 300, 0)
	qs := uniformPoints(4800, 300, 0.5)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)

	opts := DefaultOptions(Heap)
	opts.Parallelism = AutoParallelism
	pairs, _, err := KClosestPairs(ta, tb, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, pairs, ps, qs, 5)

	opts.Parallelism = AutoParallelism - 1
	if _, _, err := KClosestPairs(ta, tb, 5, opts); err == nil {
		t.Fatal("Parallelism below AutoParallelism must be rejected")
	}
}

// TestParallelSurfacesInjectedReadErrors: a page read failure in any
// worker must abort the whole parallel query with that error (not hang,
// not panic).
func TestParallelSurfacesInjectedReadErrors(t *testing.T) {
	ps := uniformPoints(4900, 500, 0)
	qs := uniformPoints(5000, 500, 0.5)
	ta, fa := buildFaultTree(t, ps)
	tb, _ := buildFaultTree(t, qs)

	opts := DefaultOptions(Heap)
	opts.Parallelism = 4
	fa.FailReadAfter(5)
	_, _, err := KClosestPairs(ta, tb, 10, opts)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	fa.FailReadAfter(-1)

	// The trees must still be usable after the aborted run.
	pairs, _, err := KClosestPairs(ta, tb, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, pairs, ps, qs, 10)
}

// TestParallelSelfJoinSharedPool runs a parallel join of a tree with
// itself (shared buffer pool) to exercise concurrent access to one pool
// from both sides of the join.
func TestParallelSelfJoinSharedPool(t *testing.T) {
	ps := uniformPoints(5100, 600, 0)
	ta := buildTree(t, ps, 256)

	seq, _, err := KClosestPairs(ta, ta, 20, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(Heap)
	opts.Parallelism = 4
	par, stats, err := KClosestPairs(ta, ta, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameDistances(t, "self", distances(par), distances(seq))
	if stats.IOQ != (storage.IOStats{}) {
		t.Fatalf("shared pool must report its delta once, got IOQ = %v", stats.IOQ)
	}
	for _, p := range par {
		if p.Dist != 0 && math.IsNaN(p.Dist) {
			t.Fatalf("bad distance %v", p)
		}
	}
}
